// Ablation studies beyond the paper's tables (DESIGN.md §4):
//   A1  dense vs sparse proportional crossover as |V| grows at fixed |R|
//   A2  path-split semantics: inherit-at-split vs the paper-literal reset
//   A3  budget shrink fraction f sweep (the paper recommends 0.6-0.8)
//   A4  grouping strategy: round-robin vs hash vs contiguous vs activity
#include <cstdio>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "datagen/generator.h"
#include "extensions/diffusion.h"
#include "paths/path_tracker.h"
#include "policies/proportional_dense.h"
#include "policies/proportional_sparse.h"
#include "scalable/budget.h"
#include "scalable/grouped.h"
#include "util/memory.h"
#include "util/strings.h"

using namespace tinprov;

namespace {

void DenseVsSparseCrossover() {
  std::printf("\nA1 — dense vs sparse proportional, |R| = 50K fixed:\n");
  TablePrinter table({"|V|", "dense time", "dense mem", "sparse time",
                      "sparse mem", "winner"});
  for (const size_t vertices : {100, 400, 1600, 6400}) {
    GeneratorConfig config;
    config.num_vertices = vertices;
    config.num_interactions = 50000;
    config.src_skew = 1.0;
    config.dst_skew = 1.0;
    config.quantity_model = QuantityModel::kLogNormal;
    config.quantity_param1 = 1.0;
    config.quantity_param2 = 1.0;
    auto tin = Generate(config);
    if (!tin.ok()) continue;
    ProportionalDenseTracker dense(vertices);
    ProportionalSparseTracker sparse(vertices);
    auto md = MeasureRun(&dense, *tin, "");
    auto ms = MeasureRun(&sparse, *tin, "");
    if (!md.ok() || !ms.ok()) continue;
    table.AddRow({std::to_string(vertices), FormatSeconds(md->seconds),
                  FormatBytes(md->peak_memory), FormatSeconds(ms->seconds),
                  FormatBytes(ms->peak_memory),
                  md->seconds < ms->seconds ? "dense" : "sparse"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected: dense wins on small |V| (SIMD, no allocation); "
              "sparse wins once the\n|V|^2 matrix dwarfs the realized list "
              "lengths.\n");
}

void PathSplitModes() {
  std::printf("\nA2 — path-split semantics (LIFO + paths, Taxis-like):\n");
  const Tin tin = bench::MustMakeDataset(DatasetKind::kTaxis,
                                         bench::GetScale() * 0.5);
  TablePrinter table({"mode", "time", "mem paths", "arena nodes",
                      "avg path length"});
  for (const PathSplitMode mode :
       {PathSplitMode::kInheritAtSplit, PathSplitMode::kResetAtSplit}) {
    LifoPathTracker tracker(tin.num_vertices(), mode);
    auto m = MeasureRun(&tracker, tin, "");
    if (!m.ok()) continue;
    table.AddRow({mode == PathSplitMode::kInheritAtSplit ? "inherit"
                                                         : "reset",
                  FormatSeconds(m->seconds),
                  FormatBytes(tracker.PathMemoryUsage()),
                  std::to_string(tracker.num_arena_nodes()),
                  FormatCompact(tracker.AveragePathLength(), 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected: reset mode shortens routes (split fragments forget "
              "their history)\nand so stores fewer arena nodes.\n");
}

void ShrinkFractionSweep() {
  std::printf("\nA3 — budget keep-fraction f sweep (C = 50, CTU-like):\n");
  const Tin tin =
      bench::MustMakeDataset(DatasetKind::kCtu, bench::GetScale());
  TablePrinter table({"f", "time", "peak mem", "avg shrinks",
                      "% vertices shrunk"});
  for (const double fraction : {0.3, 0.5, 0.6, 0.7, 0.8, 0.95}) {
    BudgetConfig config;
    config.capacity = 50;
    config.keep_fraction = fraction;
    BudgetTracker tracker(tin.num_vertices(), config);
    auto m = MeasureRun(&tracker, tin, "");
    if (!m.ok()) continue;
    const ShrinkStats stats = tracker.ComputeShrinkStats();
    table.AddRow({FormatCompact(fraction, 2), FormatSeconds(m->seconds),
                  FormatBytes(m->peak_memory),
                  FormatCompact(stats.avg_shrinks, 2),
                  FormatCompact(stats.pct_vertices, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected: small f -> aggressive eviction, frequent loss; "
              "f near 1 -> shrinks\ntrigger constantly (each one frees "
              "almost nothing). The paper's 0.6-0.8 balances\nboth.\n");
}

void GroupingStrategies() {
  std::printf("\nA4 — grouping strategies (m = 50, Prosper-like):\n");
  const Tin tin =
      bench::MustMakeDataset(DatasetKind::kProsper, bench::GetScale());
  const size_t m = 50;
  struct Strategy {
    const char* name;
    GroupAssignment groups;
  };
  const Strategy strategies[] = {
      {"round-robin", RoundRobinGroups(tin.num_vertices(), m)},
      {"hash", HashGroups(tin.num_vertices(), m)},
      {"contiguous", ContiguousGroups(tin.num_vertices(), m)},
      {"activity", ActivityGroups(tin, m)},
  };
  TablePrinter table({"strategy", "time", "peak mem"});
  for (const Strategy& strategy : strategies) {
    GroupedTracker tracker(tin.num_vertices(), strategy.groups, m);
    auto meas = MeasureRun(&tracker, tin, "");
    if (!meas.ok()) continue;
    table.AddRow({strategy.name, FormatSeconds(meas->seconds),
                  FormatBytes(meas->peak_memory)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected (paper Section 7.3): cost is independent of how "
              "vertices are allocated\nto groups — only m matters.\n");
}

void RelayVsDiffusion() {
  std::printf("\nA5 — relay (TIN) vs diffusion (social-network) semantics "
              "(Taxis-like):\n");
  const Tin tin = bench::MustMakeDataset(DatasetKind::kTaxis,
                                         bench::GetScale() * 0.2);
  ProportionalSparseTracker relay(tin.num_vertices());
  DiffusionTracker diffusion(tin.num_vertices());
  auto mr = MeasureRun(&relay, tin, "");
  auto md = MeasureRun(&diffusion, tin, "");
  if (!mr.ok() || !md.ok()) return;
  double relay_total = 0.0;
  double diffusion_total = 0.0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    relay_total += relay.BufferTotal(v);
    diffusion_total += diffusion.BufferTotal(v);
  }
  TablePrinter table({"semantics", "time", "peak mem", "total buffered",
                      "generated"});
  table.AddRow({"relay (move)", FormatSeconds(mr->seconds),
                FormatBytes(mr->peak_memory), FormatCompact(relay_total, 0),
                FormatCompact(relay.total_generated(), 0)});
  table.AddRow({"diffusion (copy)", FormatSeconds(md->seconds),
                FormatBytes(md->peak_memory),
                FormatCompact(diffusion_total, 0),
                FormatCompact(diffusion.total_generated(), 0)});
  std::printf("%s", table.ToString().c_str());
  std::printf("Expected: diffusion inflates the buffered mass (copies are "
              "never consumed),\nwhich is why relay-based TIN provenance "
              "needs its own algorithms (paper §8).\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations", "Design-choice studies beyond the paper");
  DenseVsSparseCrossover();
  PathSplitModes();
  ShrinkFractionSweep();
  GroupingStrategies();
  RelayVsDiffusion();
  return 0;
}
