// Reproduces paper Figure 8 (runtime/memory of budget-based provenance vs
// the per-vertex capacity C) and Table 9 (shrink statistics).
#include <cstdio>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "scalable/budget.h"
#include "util/memory.h"
#include "util/strings.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Figure 8 & Table 9",
                     "Budget-based provenance: cost and shrink statistics "
                     "vs capacity C");

  bench::JsonBenchReporter reporter("bench_budget");

  const std::vector<size_t> capacities = {10, 50, 100, 200, 500, 1000};
  for (const DatasetKind dataset :
       {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    std::printf("\n%s network:\n", std::string(DatasetName(dataset)).c_str());
    TablePrinter table({"C", "runtime", "peak memory", "avg shrinks",
                        "% vertices shrunk"});
    for (const size_t capacity : capacities) {
      BudgetConfig config;
      config.capacity = capacity;
      config.keep_fraction = 0.7;
      BudgetTracker tracker(tin.num_vertices(), config);
      auto m = MeasureRun(&tracker, tin, "");
      if (!m.ok()) {
        std::fprintf(stderr, "measurement failed\n");
        return 1;
      }
      const ShrinkStats stats = tracker.ComputeShrinkStats();
      reporter.Record(std::string(DatasetName(dataset)) + "/C=" +
                          std::to_string(capacity),
                      m->seconds,
                      m->seconds > 0.0
                          ? static_cast<double>(tin.num_interactions()) /
                                m->seconds
                          : 0.0,
                      m->peak_memory);
      table.AddRow({std::to_string(capacity), FormatSeconds(m->seconds),
                    FormatBytes(m->peak_memory),
                    FormatCompact(stats.avg_shrinks, 2),
                    FormatCompact(stats.pct_vertices, 2)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf(
      "\nExpected shape (paper): runtime and memory grow with C (longer "
      "lists, costlier\nmerges); avg shrinks and %% of shrunk vertices fall "
      "as C grows and converge to\nlow values — most buffers are shrunk "
      "only a few times.\n");
  return 0;
}
