// Reproduces paper Figure 6: cumulative time and memory of full (sparse)
// proportional provenance as interactions are processed. The paper shows
// superlinear growth — the provenance lists lengthen over time, so each
// interaction gets more expensive — which motivates the Section 5.3
// scope-limiting techniques.
#include <cstdio>

#include "analytics/report.h"
#include "bench_util.h"
#include "policies/proportional_sparse.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader(
      "Figure 6", "Cumulative cost of sparse proportional provenance");

  bench::JsonBenchReporter reporter("bench_cumulative");

  for (const DatasetKind dataset :
       {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    ProportionalSparseTracker tracker(tin.num_vertices());
    const auto& stream = tin.interactions();
    const size_t step = stream.size() / 10 == 0 ? 1 : stream.size() / 10;

    std::printf("\n%s network:\n", std::string(DatasetName(dataset)).c_str());
    TablePrinter table({"#interactions", "cumulative time", "memory",
                        "avg list length"});
    Stopwatch watch;
    for (size_t i = 0; i < stream.size(); ++i) {
      if (!tracker.Process(stream[i]).ok()) {
        std::fprintf(stderr, "replay failed at interaction %zu\n", i);
        return 1;
      }
      if ((i + 1) % step == 0 || i + 1 == stream.size()) {
        table.AddRow({std::to_string(i + 1),
                      FormatSeconds(watch.ElapsedSeconds()),
                      FormatBytes(tracker.MemoryUsage()),
                      FormatCompact(tracker.AverageListLength(), 2)});
      }
    }
    reporter.Record(std::string(DatasetName(dataset)) + "/full_replay",
                    watch.ElapsedSeconds(),
                    watch.ElapsedSeconds() > 0.0
                        ? static_cast<double>(stream.size()) /
                              watch.ElapsedSeconds()
                        : 0.0,
                    tracker.MemoryUsage());
    std::printf("%s", table.ToString().c_str());
  }
  std::printf(
      "\nExpected shape (paper): cumulative time grows superlinearly with "
      "#interactions\n(list merges get more expensive as the per-vertex "
      "lists populate); memory grows\nwith the lists.\n");
  return 0;
}
