// Reproduces paper Table 6: characteristics of the evaluation datasets.
#include <cstdio>

#include "analytics/report.h"
#include "bench_util.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Table 6", "Characteristics of datasets");
  std::printf("scale = %g (paper sizes / 1000 for Bitcoin at scale 1)\n\n",
              scale);
  bench::JsonBenchReporter reporter("bench_datasets");

  TablePrinter table({"Dataset", "#nodes", "#interactions", "#edges",
                      "avg r.q", "self-loops", "memory"});
  for (const DatasetKind kind : AllDatasets()) {
    Stopwatch watch;
    const Tin tin = bench::MustMakeDataset(kind, scale);
    const double gen_seconds = watch.ElapsedSeconds();
    const TinStats stats = tin.ComputeStats();
    const double rate =
        gen_seconds > 0.0
            ? static_cast<double>(stats.num_interactions) / gen_seconds
            : 0.0;
    reporter.Record(std::string(DatasetName(kind)) + "/generate",
                    gen_seconds, rate, tin.MemoryUsage());
    table.AddRow({std::string(DatasetName(kind)),
                  std::to_string(stats.num_vertices),
                  std::to_string(stats.num_interactions),
                  std::to_string(stats.num_edges),
                  FormatCompact(stats.avg_quantity, 2),
                  std::to_string(stats.num_self_loops),
                  FormatBytes(tin.MemoryUsage())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("Paper reference (full size): Bitcoin 12M/45.5M avg 34.4; CTU "
              "608K/2.8M avg 19.2KB;\nProsper 100K/3.08M avg $76; Flights "
              "629/5.7M avg 125; Taxis 255/231K avg 1.53.\n");
  return 0;
}
