// Extension bench (paper Section 8 future work): eager annotation
// maintenance vs lazy replay-on-demand, in the spirit of Ariadne's "replay
// lazy". Eager pays per interaction and holds standing state; lazy pays per
// query. The crossover depends on the query rate — reported here as the
// break-even number of queries.
#include <cstdio>

#include "analytics/report.h"
#include "bench_util.h"
#include "lazy/replay.h"
#include "lazy/time_travel.h"
#include "util/memory.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace tinprov;

namespace {

// A tiny TINPROV_SCALE can shrink a preset to an empty stream, and the
// historical section below reads interactions().back() — UB on an empty
// log. Fail with a clear message instead.
bool EnsureNonEmpty(const Tin& tin, DatasetKind kind, double scale) {
  if (tin.num_interactions() > 0) return true;
  std::fprintf(stderr,
               "bench_lazy: dataset %s has 0 interactions at TINPROV_SCALE=%g;"
               " raise the scale\n",
               std::string(DatasetName(kind)).c_str(), scale);
  return false;
}

}  // namespace

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Extension",
                     "Eager annotation maintenance vs lazy replay (FIFO)");
  bench::JsonBenchReporter reporter("bench_lazy");

  const size_t kQueries = 20;
  for (const DatasetKind dataset :
       {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    if (!EnsureNonEmpty(tin, dataset, scale)) return 1;
    Rng rng(11);
    std::vector<VertexId> query_vertices;
    for (size_t i = 0; i < kQueries; ++i) {
      query_vertices.push_back(
          static_cast<VertexId>(rng.NextBounded(tin.num_vertices())));
    }

    // Eager: one replay, then queries are O(buffer).
    auto eager = CreateTracker(PolicyKind::kFifo, tin.num_vertices());
    Stopwatch watch;
    if (!eager->ProcessAll(tin).ok()) return 1;
    const double eager_build = watch.ElapsedSeconds();
    watch.Restart();
    double checksum = 0.0;
    for (const VertexId v : query_vertices) {
      checksum += eager->Provenance(v).Total();
    }
    (void)checksum;
    const double eager_query = watch.ElapsedSeconds();

    // Lazy: no standing state; each query replays (full vs sliced).
    LazyReplayEngine lazy(tin, PolicyKind::kFifo);
    watch.Restart();
    size_t replayed_full = 0;
    for (const VertexId v : query_vertices) {
      if (!lazy.Provenance(v).ok()) return 1;
      replayed_full += lazy.last_stats().interactions_replayed;
    }
    const double lazy_full = watch.ElapsedSeconds();
    watch.Restart();
    size_t replayed_sliced = 0;
    for (const VertexId v : query_vertices) {
      if (!lazy.ProvenanceSliced(v).ok()) return 1;
      replayed_sliced += lazy.last_stats().interactions_replayed;
    }
    const double lazy_sliced = watch.ElapsedSeconds();

    std::printf("\n%s network (%zu interactions, %zu queries):\n",
                std::string(DatasetName(dataset)).c_str(),
                tin.num_interactions(), kQueries);
    TablePrinter table({"strategy", "build time", "query time",
                        "interactions replayed", "standing memory"});
    table.AddRow({"eager (FIFO)", FormatSeconds(eager_build),
                  FormatSeconds(eager_query),
                  std::to_string(tin.num_interactions()),
                  FormatBytes(eager->MemoryUsage())});
    table.AddRow({"lazy full replay", "0us", FormatSeconds(lazy_full),
                  std::to_string(replayed_full), "0B"});
    table.AddRow({"lazy sliced replay", "0us", FormatSeconds(lazy_sliced),
                  std::to_string(replayed_sliced), "0B"});
    std::printf("%s", table.ToString().c_str());
    const std::string dataset_name(DatasetName(dataset));
    reporter.Record(dataset_name + "/FIFO/eager_build", eager_build, 0.0,
                    eager->MemoryUsage());
    reporter.Record(dataset_name + "/FIFO/lazy_full_queries", lazy_full);
    reporter.Record(dataset_name + "/FIFO/lazy_sliced_queries", lazy_sliced);
    const double per_lazy_query = lazy_sliced / static_cast<double>(kQueries);
    if (per_lazy_query > 0.0) {
      std::printf("break-even: eager wins beyond ~%.0f queries over the "
                  "stream's lifetime\n",
                  eager_build / per_lazy_query);
    }
  }
  // Historical queries: the time-travel index (periodic snapshots + delta
  // replay) vs full-prefix replay, probing random past times.
  std::printf("\nHistorical queries (FIFO, CTU-like, 20 random past times):\n");
  {
    const Tin tin = bench::MustMakeDataset(DatasetKind::kCtu, scale);
    if (!EnsureNonEmpty(tin, DatasetKind::kCtu, scale)) return 1;
    const Timestamp end = tin.interactions().back().t;
    Rng rng(12);
    std::vector<std::pair<VertexId, Timestamp>> probes;
    for (size_t i = 0; i < kQueries; ++i) {
      probes.emplace_back(
          static_cast<VertexId>(rng.NextBounded(tin.num_vertices())),
          rng.NextDouble() * end);
    }
    TablePrinter table({"strategy", "build time", "query time",
                        "standing memory"});
    Stopwatch watch;
    auto index = TimeTravelIndex::Build(tin, PolicyKind::kFifo,
                                        tin.num_interactions() / 20 + 1);
    const double index_build = watch.ElapsedSeconds();
    if (!index.ok()) return 1;
    watch.Restart();
    for (const auto& [v, t] : probes) {
      if (!(*index)->Provenance(v, t).ok()) return 1;
    }
    const double index_query = watch.ElapsedSeconds();
    LazyReplayEngine lazy(tin, PolicyKind::kFifo);
    watch.Restart();
    for (const auto& [v, t] : probes) {
      if (!lazy.Provenance(v, t).ok()) return 1;
    }
    const double replay_query = watch.ElapsedSeconds();
    table.AddRow({"time-travel index", FormatSeconds(index_build),
                  FormatSeconds(index_query),
                  FormatBytes((*index)->MemoryUsage())});
    table.AddRow({"full-prefix replay", "0us", FormatSeconds(replay_query),
                  "0B"});
    std::printf("%s", table.ToString().c_str());
    reporter.Record("CTU/FIFO/time_travel_build", index_build, 0.0,
                    (*index)->MemoryUsage());
    reporter.Record("CTU/FIFO/time_travel_queries", index_query);
    reporter.Record("CTU/FIFO/prefix_replay_queries", replay_query);
  }

  std::printf(
      "\nExpected shape: slicing replays a fraction of the stream (the "
      "query vertex's\ntemporal influence cone); eager amortizes its one-off "
      "build cost once queries\nare frequent; the time-travel index answers "
      "historical queries in O(snapshot +\ndelta) instead of O(prefix).\n");
  return 0;
}
