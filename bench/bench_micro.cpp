// google-benchmark microbenchmarks of the data structures that dominate the
// per-interaction cost of each policy (paper Sections 4.1-4.3 complexity
// analysis): heap vs queue buffer operations, sparse list merging, and the
// dense vector kernels.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/buffer.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "policies/proportional_sparse.h"
#include "util/cpu.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/simd_dispatch.h"
#include "util/stopwatch.h"

namespace tinprov {
namespace {

void BM_HeapPushPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<ProvTriple> triples(n);
  for (size_t i = 0; i < n; ++i) {
    triples[i] = {static_cast<VertexId>(i), rng.NextDouble(), 1.0};
  }
  for (auto _ : state) {
    BinaryHeap<ProvTriple, EarlierBirthFirst> heap;
    for (const ProvTriple& t : triples) heap.Push(t);
    while (!heap.empty()) benchmark::DoNotOptimize(heap.Pop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_HeapPushPop)->Range(64, 16384);

void BM_RingDequeFifo(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RingDeque<ProvPair> deque;
    for (size_t i = 0; i < n; ++i) {
      deque.PushBack({static_cast<VertexId>(i), 1.0});
    }
    while (!deque.empty()) benchmark::DoNotOptimize(deque.PopFront());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_RingDequeFifo)->Range(64, 16384);

void BM_RingDequeLifo(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    RingDeque<ProvPair> deque;
    for (size_t i = 0; i < n; ++i) {
      deque.PushBack({static_cast<VertexId>(i), 1.0});
    }
    while (!deque.empty()) benchmark::DoNotOptimize(deque.PopBack());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * 2);
}
BENCHMARK(BM_RingDequeLifo)->Range(64, 16384);

SparseVector MakeSparse(size_t len, uint64_t seed) {
  Rng rng(seed);
  SparseVector v;
  VertexId origin = 0;
  for (size_t i = 0; i < len; ++i) {
    origin += static_cast<VertexId>(1 + rng.NextBounded(5));
    v.push_back({origin, rng.NextDouble() + 0.1});
  }
  return v;
}

// The pre-PR merge path, kept as the committed baseline's comparison
// point: the destination must be copied each round because the
// reference merge destroys it, exactly as the old replay loop's
// in-place merge grew dst in situ.
void BM_SparseMergeReference(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const SparseVector src = MakeSparse(len, 2);
  const SparseVector base = MakeSparse(len, 3);
  for (auto _ : state) {
    SparseVector dst = base;
    MergeScaled(&dst, src, 0.5);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * len * 2);
}
BENCHMARK(BM_SparseMergeReference)->Range(16, 65536);

// The production path of SparseProportionalBase::Process: one gallop
// pass into reusable pooled scratch, inputs untouched. Same logical
// operation as the reference (merge src*f over base), so the two
// series are directly comparable in BENCH_micro.json; acceptance
// target is >= 2x the reference's items/s.
void BM_SparseMerge(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const SparseVector src = MakeSparse(len, 2);
  const SparseVector base = MakeSparse(len, 3);
  NodePool pool;
  SparseVector scratch(&pool);
  for (auto _ : state) {
    MergeScaledInto(&scratch, base, src, 0.5);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * len * 2);
}
BENCHMARK(BM_SparseMerge)->Range(16, 65536);

// The same gallop merge pinned to one dispatch table, registered in
// main() once per level the host can execute ("BM_SparseMergeDispatch/
// scalar" etc.). These rows extend the >= 2x-the-reference acceptance
// gate to every dispatch level (scripts/merge_gate.py checks the
// recorded JSON), and the scalar row doubles as the portable-path
// floor the runtime dispatch must beat.
std::vector<simd::PairLane> MakePairLanes(size_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<simd::PairLane> v(len);
  uint32_t origin = 0;
  for (size_t i = 0; i < len; ++i) {
    origin += static_cast<uint32_t>(1 + rng.NextBounded(5));
    v[i] = {origin, 0, rng.NextDouble() + 0.1};
  }
  return v;
}

void BM_SparseMergeDispatch(benchmark::State& state, cpu::SimdLevel level) {
  const size_t len = static_cast<size_t>(state.range(0));
  const std::vector<simd::PairLane> a = MakePairLanes(len, 3);
  const std::vector<simd::PairLane> b = MakePairLanes(len, 2);
  std::vector<simd::PairLane> out(2 * len);
  const simd::KernelTable& kernels = simd::KernelsFor(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels.gallop_merge_scaled(
        out.data(), a.data(), len, b.data(), len, 0.5));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * len * 2);
}

void RegisterDispatchBenchmarks() {
  for (const cpu::SimdLevel level :
       {cpu::SimdLevel::kScalar, cpu::SimdLevel::kSse2,
        cpu::SimdLevel::kAvx2}) {
    if (level > cpu::DetectSimdLevel()) continue;  // table would fault
    const std::string name =
        std::string("BM_SparseMergeDispatch/") + cpu::SimdLevelName(level);
    benchmark::RegisterBenchmark(name.c_str(), BM_SparseMergeDispatch, level)
        ->Range(16, 65536);
  }
}

// Skewed shape: a short update list merging into a long accumulated
// one — the steady state of replay on a hub vertex. Galloping skips
// the long runs of untouched destination entries, so this is where the
// kernel's advantage is largest.
void BM_SparseMergeSkewed(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const SparseVector src = MakeSparse(len / 16 + 1, 2);
  const SparseVector base = MakeSparse(len, 3);
  NodePool pool;
  SparseVector scratch(&pool);
  for (auto _ : state) {
    MergeScaledInto(&scratch, base, src, 0.5);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          (len + len / 16 + 1));
}
BENCHMARK(BM_SparseMergeSkewed)->Range(256, 65536);

// The "source keeps (1 - f)" pass — simd::ScalePairsInPlace — which
// follows every partial transfer.
void BM_SparseScalePairs(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  SparseVector pairs = MakeSparse(len, 5);
  for (auto _ : state) {
    simd::ScalePairsInPlace(pairs.data(), 0.999999, pairs.size());
    benchmark::DoNotOptimize(pairs.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * len);
}
BENCHMARK(BM_SparseScalePairs)->Range(64, 65536);

void BM_DenseTransferFraction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> src(n, 1.0);
  std::vector<double> dst(n, 1.0);
  for (auto _ : state) {
    simd::TransferFraction(dst.data(), src.data(), 0.5, n);
    benchmark::DoNotOptimize(dst.data());
    benchmark::DoNotOptimize(src.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DenseTransferFraction)->Range(8, 1 << 20);

void BM_DenseAdd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> src(n, 1.0);
  std::vector<double> dst(n, 1.0);
  for (auto _ : state) {
    simd::Add(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DenseAdd)->Range(8, 1 << 20);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(4);
  ZipfDistribution zipf(static_cast<uint64_t>(state.range(0)), 1.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Range(1024, 1 << 24);

// The obs/ primitives themselves, so a metrics-hot-path regression
// shows up here before it shows up as engine overhead. In a
// TINPROV_METRICS=OFF build both measure an empty loop.
void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.micro_counter");
  for (auto _ : state) {
    counter->Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram("bench.micro_histogram");
  uint64_t value = 1;
  for (auto _ : state) {
    histogram->Observe(value);
    value = (value * 2862933555777941757ULL + 3037000493ULL) >> 32;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogramObserve);

// Overhead smoke for the ISSUE-6 acceptance bound: the sparse-merge
// replay kernel with per-iteration instrumentation (one counter add +
// one histogram observe, the densest the engine ever instruments a hot
// loop) must stay within 2% of the bare kernel. Warn-only — timing
// noise on shared CI boxes is not a build failure — but the number is
// printed on every run so a drift is visible in the logs.
void ReportMetricsOverhead() {
  constexpr size_t kLen = 256;
  constexpr size_t kIters = 20000;
  constexpr int kReps = 9;
  const SparseVector src = MakeSparse(kLen, 2);
  const SparseVector base = MakeSparse(kLen, 3);
  NodePool pool;
  SparseVector scratch(&pool);

  const auto time_loop = [&](bool instrumented) {
    Stopwatch watch;
    for (size_t i = 0; i < kIters; ++i) {
      MergeScaledInto(&scratch, base, src, 0.5);
      benchmark::DoNotOptimize(scratch.data());
      if (instrumented) {
        TINPROV_COUNTER_ADD("bench.overhead_probe", 1);
        TINPROV_HISTOGRAM_OBSERVE("bench.overhead_probe_len", scratch.size());
      }
    }
    return watch.ElapsedSeconds();
  };

  std::vector<double> raw(kReps);
  std::vector<double> instrumented(kReps);
  time_loop(false);  // warm the pool and caches
  for (int rep = 0; rep < kReps; ++rep) {
    raw[rep] = time_loop(false);
    instrumented[rep] = time_loop(true);
  }
  std::nth_element(raw.begin(), raw.begin() + kReps / 2, raw.end());
  std::nth_element(instrumented.begin(), instrumented.begin() + kReps / 2,
                   instrumented.end());
  const double raw_median = raw[kReps / 2];
  const double instr_median = instrumented[kReps / 2];
  const double overhead = raw_median > 0.0
                              ? (instr_median - raw_median) / raw_median
                              : 0.0;
  std::printf(
      "metrics overhead smoke (%s build): sparse-merge %zu-entry kernel, "
      "bare %.3fus/iter vs instrumented %.3fus/iter -> %+.2f%%\n",
      obs::kMetricsEnabled ? "metrics-on" : "metrics-off", kLen,
      raw_median / kIters * 1e6, instr_median / kIters * 1e6,
      overhead * 100.0);
  if (overhead > 0.02) {
    std::printf(
        "WARNING: metrics overhead %.2f%% exceeds the 2%% budget — "
        "re-run on a quiet machine before chasing it\n",
        overhead * 100.0);
  }

#if !defined(TINPROV_NO_THREADS)
  // Third series: the same instrumented kernel while an ops-plane
  // Recorder samples the whole registry every 10ms from its background
  // thread — the EnableOpsServer steady state. The registry scrape is
  // read-only over sharded atomics, so it must not push the hot loop
  // past the same 2% budget.
  obs::Recorder recorder({/*interval_ms=*/10, /*capacity=*/512});
  if (recorder.Start().ok()) {
    std::vector<double> sampled(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      sampled[rep] = time_loop(true);
    }
    recorder.Stop();
    std::nth_element(sampled.begin(), sampled.begin() + kReps / 2,
                     sampled.end());
    const double sampled_median = sampled[kReps / 2];
    const double sampled_overhead =
        raw_median > 0.0 ? (sampled_median - raw_median) / raw_median : 0.0;
    std::printf(
        "recorder overhead smoke: instrumented kernel + 10ms registry "
        "sampler %.3fus/iter -> %+.2f%% vs bare (%zu samples taken)\n",
        sampled_median / kIters * 1e6, sampled_overhead * 100.0,
        recorder.total_samples());
    if (sampled_overhead > 0.02) {
      std::printf(
          "WARNING: recorder overhead %.2f%% exceeds the 2%% budget — "
          "re-run on a quiet machine before chasing it\n",
          sampled_overhead * 100.0);
    }
  }
#endif  // !TINPROV_NO_THREADS
}

}  // namespace
}  // namespace tinprov

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Host-shape context for bench_compare.py: which kernel table this
  // run dispatched to, and the host ceiling it was clamped from.
  benchmark::AddCustomContext(
      "simd", tinprov::cpu::SimdLevelName(tinprov::cpu::ActiveSimdLevel()));
  benchmark::AddCustomContext(
      "simd_detected",
      tinprov::cpu::SimdLevelName(tinprov::cpu::DetectSimdLevel()));
  benchmark::AddCustomContext("tinprov_native",
                              tinprov::bench::kNativeBuild ? "true" : "false");
  benchmark::AddCustomContext("compiler", tinprov::bench::CompilerVersion());
  tinprov::RegisterDispatchBenchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tinprov::ReportMetricsOverhead();
  return 0;
}
