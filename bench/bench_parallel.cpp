// Parallel sharded engines: pro-rata replay AND ingest throughput
// versus thread count on the Table 6 presets. Not a paper experiment —
// the paper's Section 8 names parallel provenance tracking as future
// work; this harness measures the repo's two realizations of it: the
// label-sharded replay engine (src/parallel/sharded_replay.h) and the
// vertex-sharded ingest engine (src/parallel/sharded_ingest.h), both
// bit-identical to their sequential counterparts by construction
// (tests/test_parallel.cc).
//
// Expected shape: the list-heavy networks (many interactions per
// vertex, long provenance lists) approach linear scaling, because the
// superlinear list work dominates the replicated scalar bookkeeping.
// Sparse networks with short lists are scan-bound and gain little —
// the replicated scan is the Amdahl floor of both designs.
//
// The sweep is clamped to std::thread::hardware_concurrency() so the
// recorded JSON reflects real parallelism; TINPROV_THREADS overrides
// the cap, and rows beyond the hardware width are annotated as
// oversubscribed (they exercise the scheduler, not the machine).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "parallel/sharded_ingest.h"
#include "parallel/sharded_replay.h"
#include "stream/interaction_stream.h"
#include "util/memory.h"
#include "util/strings.h"

using namespace tinprov;

namespace {

size_t HardwareWidth() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Sweep cap: the hardware width unless TINPROV_THREADS asks for more
// (or less) explicitly.
size_t MaxThreads() {
  const char* env = std::getenv("TINPROV_THREADS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return HardwareWidth();
}

// 1, 2, 4, ... up to `cap`, always ending at `cap` itself.
std::vector<size_t> ThreadSweep(size_t cap) {
  std::vector<size_t> sweep = {1};
  for (size_t t = 2; t < cap; t *= 2) sweep.push_back(t);
  if (cap > 1) sweep.push_back(cap);
  return sweep;
}

// "4" on a wide-enough machine, "4*" when the row oversubscribes it.
std::string ThreadLabel(size_t threads) {
  std::string label = std::to_string(threads);
  if (threads > HardwareWidth()) label += "*";
  return label;
}

// JSON row names carry the annotation too, so a baseline recorded with
// an oversubscribed sweep can never masquerade as a scaling result.
std::string JsonSuffix(size_t threads) {
  std::string suffix = "/t" + std::to_string(threads);
  if (threads > HardwareWidth()) suffix += "/oversub";
  return suffix;
}

}  // namespace

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Parallel replay + ingest",
                     "Sharded pro-rata throughput vs threads");
  bench::JsonBenchReporter reporter("bench_parallel");

  const std::vector<size_t> thread_counts = ThreadSweep(MaxThreads());
  std::printf("hardware_concurrency = %zu%s\n\n", HardwareWidth(),
              MaxThreads() > HardwareWidth()
                  ? "  (* rows oversubscribe: scheduler exercise, not "
                    "speedup)"
                  : "");

  const ScalableParams params;  // defaults; Prop-sparse ignores them
  for (const DatasetKind dataset :
       {DatasetKind::kFlights, DatasetKind::kTaxis, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    const std::string dataset_name(DatasetName(dataset));
    std::printf("%s network (%zu vertices, %zu interactions):\n",
                dataset_name.c_str(), tin.num_vertices(),
                tin.num_interactions());

    // --- Label-sharded replay sweep --------------------------------
    TablePrinter replay_table({"threads", "time", "speedup", "inter/s",
                               "memory", "path"});
    double replay_baseline = 0.0;
    for (const size_t threads : thread_counts) {
      MeasureOptions options;
      options.tin = &tin;
      options.dense_memory_limit = bench::kDenseMemoryLimit;
      options.parallel = true;
      options.parallel_params.num_threads = threads;
      auto m = MeasureTracker({"Prop-sparse", params}, options);
      if (!m.ok()) {
        std::fprintf(stderr, "replay measurement failed: %s\n",
                     m.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) replay_baseline = m->seconds;
      const double rate =
          m->seconds > 0.0
              ? static_cast<double>(tin.num_interactions()) / m->seconds
              : 0.0;
      std::string speedup = "-";
      if (m->seconds > 0.0) {
        speedup = FormatCompact(replay_baseline / m->seconds, 2) + "x";
      }
      replay_table.AddRow({ThreadLabel(threads), FormatSeconds(m->seconds),
                           speedup, FormatCompact(rate, 2),
                           FormatBytes(m->peak_memory),
                           m->parallel ? "sharded" : "sequential"});
      reporter.Record(
          dataset_name + "/Prop-sparse/replay" + JsonSuffix(threads),
          m->seconds, rate, m->peak_memory);
    }
    std::printf("replay (label-sharded):\n%s\n",
                replay_table.ToString().c_str());

    // --- Vertex-sharded ingest sweep -------------------------------
    // Same stream each round; the engine falls back to a sequential
    // StreamIngestor at one thread, so t1 is the honest baseline.
    TablePrinter ingest_table({"threads", "time", "speedup", "inter/s",
                               "memory", "path"});
    double ingest_baseline = 0.0;
    for (const size_t threads : thread_counts) {
      auto spec = TrackerRegistry::Global().Sharded(
          {"Prop-sparse", params, TrackerMode::kStreaming}, tin.Stats());
      if (!spec.ok()) {
        std::fprintf(stderr, "ingest spec failed: %s\n",
                     spec.status().ToString().c_str());
        return 1;
      }
      ParallelParams parallel;
      parallel.num_threads = threads;
      ShardedIngestEngine engine(tin.Stats(), *std::move(spec), parallel);
      MaterializedStream stream(tin);
      auto result = engine.IngestStream(stream);
      if (!result.ok()) {
        std::fprintf(stderr, "ingest measurement failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const double seconds = result->stats.seconds;
      if (threads == 1) ingest_baseline = seconds;
      const double rate =
          seconds > 0.0
              ? static_cast<double>(tin.num_interactions()) / seconds
              : 0.0;
      std::string speedup = "-";
      if (seconds > 0.0) {
        speedup = FormatCompact(ingest_baseline / seconds, 2) + "x";
      }
      ingest_table.AddRow(
          {ThreadLabel(threads), FormatSeconds(seconds), speedup,
           FormatCompact(rate, 2),
           FormatBytes(result->stats.tracker_peak_memory),
           result->used_parallel_path
               ? std::to_string(result->num_shards) + " vertex shards"
               : "sequential"});
      reporter.Record(
          dataset_name + "/Prop-sparse/ingest" + JsonSuffix(threads),
          seconds, rate, result->stats.tracker_peak_memory);
    }
    std::printf("ingest (vertex-sharded):\n%s\n",
                ingest_table.ToString().c_str());
  }
  std::printf(
      "Expected shape: list-heavy networks (Flights, Taxis) approach "
      "linear scaling;\nthe replicated scalar bookkeeping is the "
      "sequential floor, so sparse short-list\nnetworks gain less. Both "
      "engines are bit-identical to their sequential\ncounterparts at any "
      "thread count (tests/test_parallel.cc proves it).\n");
  return 0;
}
