// Parallel sharded replay: pro-rata replay throughput versus thread
// count on the Table 6 presets. Not a paper experiment — the paper's
// Section 8 names parallel provenance tracking as future work; this
// harness measures the repo's label-sharded realization of it
// (src/parallel/sharded_replay.h), whose results are bit-identical to
// the sequential trackers by construction (tests/test_parallel.cc).
//
// Expected shape: the list-heavy networks (many interactions per
// vertex, long provenance lists) approach linear scaling, because the
// superlinear list work dominates the replicated stream scan. Sparse
// networks with short lists are scan-bound and gain little — the scan
// is the Amdahl floor of this design.
//
// TINPROV_THREADS caps the sweep (default: up to 4 or the hardware
// concurrency, whichever is larger — oversubscribed runs on small CPUs
// still exercise the pool, they just cannot show real speedup).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "parallel/sharded_replay.h"
#include "util/memory.h"
#include "util/strings.h"

using namespace tinprov;

namespace {

size_t MaxThreads() {
  const char* env = std::getenv("TINPROV_THREADS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(4, hw == 0 ? 1 : hw);
}

}  // namespace

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Parallel replay",
                     "Sharded pro-rata replay throughput vs threads");
  bench::JsonBenchReporter reporter("bench_parallel");

  std::vector<size_t> thread_counts = {1};
  for (size_t t = 2; t <= MaxThreads(); t *= 2) thread_counts.push_back(t);
  std::printf("hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());

  const ScalableParams params;  // defaults; Prop-sparse ignores them
  for (const DatasetKind dataset :
       {DatasetKind::kFlights, DatasetKind::kTaxis, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    const std::string dataset_name(DatasetName(dataset));
    std::printf("%s network (%zu vertices, %zu interactions):\n",
                dataset_name.c_str(), tin.num_vertices(),
                tin.num_interactions());
    TablePrinter table({"threads", "time", "speedup", "inter/s", "memory",
                        "path"});
    double baseline_seconds = 0.0;
    for (const size_t threads : thread_counts) {
      MeasureOptions options;
      options.tin = &tin;
      options.dense_memory_limit = bench::kDenseMemoryLimit;
      options.parallel = true;
      options.parallel_params.num_threads = threads;
      auto m = MeasureTracker({"Prop-sparse", params}, options);
      if (!m.ok()) {
        std::fprintf(stderr, "measurement failed: %s\n",
                     m.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) baseline_seconds = m->seconds;
      const double rate =
          m->seconds > 0.0
              ? static_cast<double>(tin.num_interactions()) / m->seconds
              : 0.0;
      std::string speedup = "-";
      if (m->seconds > 0.0) {
        speedup = FormatCompact(baseline_seconds / m->seconds, 2) + "x";
      }
      table.AddRow({std::to_string(threads), FormatSeconds(m->seconds),
                    speedup, FormatCompact(rate, 2),
                    FormatBytes(m->peak_memory),
                    m->parallel ? "sharded" : "sequential"});
      reporter.Record(dataset_name + "/Prop-sparse/t" +
                          std::to_string(threads),
                      m->seconds, rate, m->peak_memory);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf(
      "Expected shape: list-heavy networks (Flights, Taxis) approach "
      "linear scaling;\nthe replicated stream scan is the sequential "
      "floor, so sparse short-list\nnetworks gain less. Results are "
      "bit-identical to sequential replay at any\nthread count "
      "(tests/test_parallel.cc proves it).\n");
  return 0;
}
