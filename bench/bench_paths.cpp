// Reproduces paper Table 10: the overhead of tracking quantity routes
// (how-provenance) on top of the LIFO policy, on all five datasets —
// runtime, memory split into provenance entries vs stored paths, and the
// average path length.
#include <cstdio>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "paths/path_generation_tracker.h"
#include "paths/path_tracker.h"
#include "policies/receipt_order.h"
#include "util/memory.h"
#include "util/strings.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Table 10", "Tracking provenance paths in LIFO");

  TablePrinter table({"Dataset", "time", "LIFO-only time", "mem entries",
                      "mem paths", "total mem", "avg path length"});
  for (const DatasetKind dataset : AllDatasets()) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    LifoPathTracker with_paths(tin.num_vertices());
    auto m = MeasureRun(&with_paths, tin, "");
    LifoTracker plain(tin.num_vertices());
    auto base = MeasureRun(&plain, tin, "");
    if (!m.ok() || !base.ok()) {
      std::fprintf(stderr, "measurement failed\n");
      return 1;
    }
    table.AddRow({std::string(DatasetName(dataset)),
                  FormatSeconds(m->seconds), FormatSeconds(base->seconds),
                  FormatBytes(with_paths.EntryMemoryUsage()),
                  FormatBytes(with_paths.PathMemoryUsage()),
                  FormatBytes(with_paths.MemoryUsage()),
                  FormatCompact(with_paths.AveragePathLength(), 2)});
  }
  std::printf("%s", table.ToString().c_str());

  // Extension: the same overhead measured on the generation-time policy
  // (Section 6 applies to both the §4.1 and §4.2 selection models; the
  // paper's table evaluates LIFO only).
  std::printf("\nExtension — paths on Least Recently Born:\n");
  TablePrinter lrb_table({"Dataset", "time", "mem paths",
                          "avg path length"});
  for (const DatasetKind dataset : AllDatasets()) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    LrbPathTracker tracker(tin.num_vertices());
    auto m = MeasureRun(&tracker, tin, "");
    if (!m.ok()) {
      std::fprintf(stderr, "measurement failed\n");
      return 1;
    }
    lrb_table.AddRow({std::string(DatasetName(dataset)),
                      FormatSeconds(m->seconds),
                      FormatBytes(tracker.PathMemoryUsage()),
                      FormatCompact(tracker.AveragePathLength(), 2)});
  }
  std::printf("%s", lrb_table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): path tracking costs a small constant "
      "factor in runtime;\npath memory tracks the average path length — "
      "highest on Flights, where few\nvertices and many interactions "
      "produce very long routes.\n");
  return 0;
}
