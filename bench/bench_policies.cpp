// Reproduces paper Tables 7 and 8: runtime and peak memory of every
// selection policy on every dataset. Dense proportional runs are gated by
// the same feasibility rule as the paper ("-" cells: the |V|^2 vectors do
// not fit); at default scale the gate reproduces the paper's pattern
// (dense only on Flights and Taxis).
#include <cstdio>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "util/memory.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Tables 7 & 8",
                     "Runtime (sec) and peak memory per selection policy");
  bench::JsonBenchReporter reporter("bench_policies");

  const std::vector<PolicyKind> policies = AllPolicies();
  std::vector<std::string> headers = {"Dataset"};
  for (const PolicyKind kind : policies) {
    headers.push_back(std::string(PolicyName(kind)));
  }
  TablePrinter runtime_table(headers);
  TablePrinter memory_table(headers);

  for (const DatasetKind dataset : AllDatasets()) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    std::vector<std::string> runtime_row = {std::string(DatasetName(dataset))};
    std::vector<std::string> memory_row = runtime_row;
    for (const PolicyKind kind : policies) {
      auto m = MeasurePolicy(kind, tin, std::string(DatasetName(dataset)),
                             bench::kDenseMemoryLimit);
      if (!m.ok()) {
        std::fprintf(stderr, "measurement failed: %s\n",
                     m.status().ToString().c_str());
        return 1;
      }
      if (!m->feasible) {
        runtime_row.push_back("-");
        memory_row.push_back("-");
        continue;
      }
      runtime_row.push_back(FormatSeconds(m->seconds));
      memory_row.push_back(FormatBytes(m->peak_memory));
      const double rate =
          m->seconds > 0.0
              ? static_cast<double>(tin.num_interactions()) / m->seconds
              : 0.0;
      reporter.Record(std::string(DatasetName(dataset)) + "/" +
                          std::string(PolicyName(kind)),
                      m->seconds, rate, m->peak_memory);
    }
    runtime_table.AddRow(runtime_row);
    memory_table.AddRow(memory_row);
  }

  std::printf("\nTable 7 analogue — runtime per policy:\n%s",
              runtime_table.ToString().c_str());
  std::printf("\nTable 8 analogue — peak provenance memory per policy:\n%s",
              memory_table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): NoProv << receipt-order < generation-time "
      "<< proportional;\ndense proportional feasible only on the "
      "small-vertex networks (Flights, Taxis);\nreceipt-order uses less "
      "memory than generation-time (2-field vs 3-field tuples).\n");
  return 0;
}
