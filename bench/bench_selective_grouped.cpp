// Reproduces paper Figure 5: runtime and memory of selective and grouped
// proportional provenance as a function of k (tracked vertices / groups) on
// the three large-vertex-set networks.
#include <cstdio>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "scalable/grouped.h"
#include "scalable/selective.h"
#include "util/memory.h"
#include "util/stopwatch.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Figure 5",
                     "Selective & grouped proportional provenance vs k");

  bench::JsonBenchReporter reporter("bench_selective_grouped");

  const std::vector<size_t> ks = {5, 20, 50, 100, 150, 200};
  for (const DatasetKind dataset :
       {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    std::printf("\n%s network (%zu vertices, %zu interactions):\n",
                std::string(DatasetName(dataset)).c_str(), tin.num_vertices(),
                tin.num_interactions());
    TablePrinter table({"k", "selective time", "selective mem",
                        "grouped time", "grouped mem"});
    for (const size_t k : ks) {
      // Selective: track the top-k generating vertices, as in the paper
      // (selection itself runs NoProv and is not part of the measured cost).
      const std::vector<VertexId> tracked = TopGeneratingVertices(tin, k);
      SelectiveTracker selective(tin.num_vertices(), tracked);
      auto sel = MeasureRun(&selective, tin, "");
      // Grouped: round-robin allocation into k groups, as in the paper.
      GroupedTracker grouped(tin.num_vertices(),
                             RoundRobinGroups(tin.num_vertices(), k), k);
      auto grp = MeasureRun(&grouped, tin, "");
      if (!sel.ok() || !grp.ok()) {
        std::fprintf(stderr, "measurement failed\n");
        return 1;
      }
      const std::string prefix = std::string(DatasetName(dataset));
      reporter.Record(prefix + "/selective/k=" + std::to_string(k),
                      sel->seconds, 0.0, sel->peak_memory);
      reporter.Record(prefix + "/grouped/k=" + std::to_string(k),
                      grp->seconds, 0.0, grp->peak_memory);
      table.AddRow({std::to_string(k), FormatSeconds(sel->seconds),
                    FormatBytes(sel->peak_memory), FormatSeconds(grp->seconds),
                    FormatBytes(grp->peak_memory)});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf(
      "\nExpected shape (paper): runtime roughly flat for k < ~20 (SIMD "
      "covers the whole\nvector in a few lanes), then linear in k; memory "
      "linear in k throughout;\nselective and grouped indistinguishable at "
      "equal k.\n");
  return 0;
}
