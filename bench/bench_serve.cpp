// Serving while ingesting: concurrent provenance queries against the
// epoch-snapshot service vs the stop-the-world alternative. Not a paper
// experiment — the paper replays offline — but the serve/ layer's
// reason to exist: reader threads answering Provenance(v) from pinned
// epochs while the writer ingests, with bounded staleness instead of a
// stopped pipeline.
//
// For each reader count the harness drives one full ingest of the
// Bitcoin preset stream and measures sustained ingest rate, query
// throughput, and query latency percentiles (p50/p99). Every Nth query
// result is captured with its epoch prefix and — after the drain —
// verified bit-identical against a fresh tracker replayed over exactly
// that prefix of the materialized log (GeneratorStream emits the same
// sequence Generate() materializes). Any mismatch fails the run:
// snapshot isolation is an exactness claim, not a best-effort one.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/registry.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "obs/recorder.h"
#include "serve/service.h"
#include "stream/interaction_stream.h"
#include "util/stopwatch.h"
#include "util/strings.h"

#if !defined(TINPROV_NO_THREADS)
#include <chrono>
#include <thread>
#endif

using namespace tinprov;

namespace {

struct Sample {
  size_t prefix = 0;
  VertexId v = 0;
  Buffer buffer;
};

struct ReaderLog {
  std::vector<int64_t> latencies_ns;
  std::vector<Sample> samples;
};

constexpr size_t kSampleEvery = 64;

#if !defined(TINPROV_NO_THREADS)
// One reader: query rotating vertices until the ingest drains, logging
// per-query latency and capturing every kSampleEvery-th answer.
void ReaderLoop(const ProvenanceService& service, VertexId start,
                size_t num_vertices, ReaderLog* log) {
  VertexId v = start;
  size_t count = 0;
  while (!service.IngestDone()) {
    Stopwatch watch;
    const QueryResult result = service.Provenance(v);
    log->latencies_ns.push_back(watch.ElapsedNanos());
    if (!result.status.ok()) {
      std::fprintf(stderr, "reader query failed: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
    if (count++ % kSampleEvery == 0) {
      log->samples.push_back({result.epoch.prefix, v, result.buffer});
    }
    v = (v + 13) % static_cast<VertexId>(num_vertices);
  }
}
#endif  // !TINPROV_NO_THREADS

int64_t Percentile(std::vector<int64_t>* sorted_ns, double p) {
  if (sorted_ns->empty()) return 0;
  const size_t index = std::min(
      sorted_ns->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ns->size())));
  return (*sorted_ns)[index];
}

// Stop-the-world verification of every captured sample: one reference
// tracker advanced prefix-by-prefix in sorted order.
void VerifySamples(const TrackerSpec& spec, const Tin& tin,
                   std::vector<Sample> samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.prefix < b.prefix;
            });
  auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
  if (!factory.ok()) {
    std::fprintf(stderr, "verify factory failed: %s\n",
                 factory.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<Tracker> reference = (*factory)();
  const auto& log = tin.interactions();
  size_t applied = 0;
  for (const Sample& sample : samples) {
    if (sample.prefix > log.size()) {
      std::fprintf(stderr, "FAIL: epoch prefix %zu beyond the log (%zu)\n",
                   sample.prefix, log.size());
      std::exit(1);
    }
    while (applied < sample.prefix) {
      const Status status = reference->Process(log[applied++]);
      if (!status.ok()) {
        std::fprintf(stderr, "verify replay failed: %s\n",
                     status.ToString().c_str());
        std::exit(1);
      }
    }
    const Buffer expected = reference->Provenance(sample.v);
    const bool same = expected.total == sample.buffer.total &&
                      expected.entries.size() == sample.buffer.entries.size() &&
                      std::equal(expected.entries.begin(),
                                 expected.entries.end(),
                                 sample.buffer.entries.begin());
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: served answer diverged from stop-the-world replay "
                   "at prefix %zu vertex %u\n",
                   sample.prefix, sample.v);
      std::exit(1);
    }
  }
}

void WriteFileOrDie(const char* path, const std::string& contents) {
  FILE* file = std::fopen(path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::exit(1);
  }
  std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
}

// Ops-plane smoke mode, driven by scripts/smoke.sh: with
// TINPROV_OPS_PORT set, stand up one service with its ops server
// enabled, publish the bound port to TINPROV_OPS_PORT_FILE, and keep
// executing queries until the driver drops "<port file>.done" (or
// TINPROV_OPS_HOLD_S elapses) so it can curl the live endpoints. The
// recorder's time series lands in TINPROV_RECORDER_OUT on the way out.
// Builds without threads cannot host the server; they publish "skip" so
// the driver knows not to wait.
int RunOpsMode(const TrackerSpec& spec, const GeneratorConfig& config,
               ServeOptions options) {
  const char* port_env = std::getenv("TINPROV_OPS_PORT");
  const char* port_file = std::getenv("TINPROV_OPS_PORT_FILE");
#if defined(TINPROV_NO_THREADS)
  (void)spec;
  (void)config;
  (void)options;
  (void)port_env;
  if (port_file != nullptr) WriteFileOrDie(port_file, "skip\n");
  std::printf("ops smoke: skipped (built without threads)\n");
  return 0;
#else
  options.ops_recorder_interval_ms = 50;  // dense samples for a short hold
  options.slow_query_ns = 1;              // every query hits /tracez?slow=1
  double hold_s = 10.0;
  if (const char* hold = std::getenv("TINPROV_OPS_HOLD_S")) {
    hold_s = std::atof(hold);
  }

  auto stream = GeneratorStream::Create(config);
  if (!stream.ok()) {
    std::fprintf(stderr, "generator stream failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  auto service = ProvenanceService::Create(spec, stream->Stats(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "service creation failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  Status status = (*service)->Start(
      std::make_unique<GeneratorStream>(*std::move(stream)));
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto port = (*service)->EnableOpsServer(
      static_cast<uint16_t>(std::atoi(port_env)));
  if (!port.ok()) {
    std::fprintf(stderr, "ops server failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }
  std::printf("ops smoke: serving on 127.0.0.1:%u\n", *port);
  if (port_file != nullptr) {
    WriteFileOrDie(port_file, std::to_string(*port) + "\n");
  }

  // Keep the query-side counters and the slow-query ring moving while
  // the driver probes the endpoints.
  const std::string done_path =
      port_file != nullptr ? std::string(port_file) + ".done" : std::string();
  Stopwatch hold;
  VertexId v = 0;
  while (hold.ElapsedSeconds() < hold_s) {
    QueryRequest request;
    request.kind = QueryKind::kProvenance;
    request.v = v;
    (void)(*service)->Execute(request);
    v = (v + 13) % static_cast<VertexId>(config.num_vertices);
    if (!done_path.empty()) {
      if (FILE* done = std::fopen(done_path.c_str(), "r")) {
        std::fclose(done);
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  status = (*service)->WaitIngest();
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (const char* recorder_out = std::getenv("TINPROV_RECORDER_OUT")) {
    WriteFileOrDie(recorder_out,
                   (*service)->ops_recorder()->TimeSeriesJson());
  }
  (*service)->DisableOpsServer();
  std::printf("ops smoke: done after %.1fs\n", hold.ElapsedSeconds());
  return 0;
#endif
}

}  // namespace

int main() {
  const double scale = bench::GetScale();
  if (std::getenv("TINPROV_OPS_PORT") != nullptr) {
    return RunOpsMode({"Prop-sparse", ScalableParams{},
                       TrackerMode::kStreaming},
                      PresetConfig(DatasetKind::kBitcoin, scale),
                      ServeOptions{});
  }
  bench::PrintHeader("Serving under ingest",
                     "Snapshot-isolated queries vs a live writer "
                     "(Prop-sparse, epoch ring)");
  bench::JsonBenchReporter reporter("bench_serve");

  const GeneratorConfig config = PresetConfig(DatasetKind::kBitcoin, scale);
  const Tin tin = bench::MustMakeDataset(DatasetKind::kBitcoin, scale);
  const TrackerSpec spec{"Prop-sparse", ScalableParams{},
                         TrackerMode::kStreaming};
  const double rate_base = static_cast<double>(config.num_interactions);

  ServeOptions options;
  options.epoch_interval =
      std::max<size_t>(256, config.num_interactions / 32);
  options.ring_size = 4;

  std::printf("\nBitcoin network (%zu vertices, %zu interactions), epoch "
              "interval %zu:\n",
              config.num_vertices, config.num_interactions,
              options.epoch_interval);
  TablePrinter table({"readers", "ingest time", "ingest inter/s", "queries",
                      "queries/s", "query p50", "query p99", "epochs"});

#if defined(TINPROV_NO_THREADS)
  const std::vector<size_t> reader_counts = {0};
#else
  const std::vector<size_t> reader_counts = {0, 1, 2, 4};
#endif

  for (const size_t readers : reader_counts) {
    auto stream = GeneratorStream::Create(config);
    if (!stream.ok()) {
      std::fprintf(stderr, "generator stream failed: %s\n",
                   stream.status().ToString().c_str());
      return 1;
    }
    auto service = ProvenanceService::Create(spec, tin.Stats(), options);
    if (!service.ok()) {
      std::fprintf(stderr, "service creation failed: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }

    std::vector<ReaderLog> logs(std::max<size_t>(readers, 1));
    Stopwatch wall;
    Status status = (*service)->Start(
        std::make_unique<GeneratorStream>(*std::move(stream)));
    if (!status.ok()) {
      std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
      return 1;
    }
#if !defined(TINPROV_NO_THREADS)
    std::vector<std::thread> threads;
    for (size_t r = 0; r < readers; ++r) {
      threads.emplace_back(ReaderLoop, std::cref(**service),
                           static_cast<VertexId>(r), config.num_vertices,
                           &logs[r]);
    }
    for (std::thread& thread : threads) thread.join();
#endif
    status = (*service)->WaitIngest();
    const double ingest_seconds = wall.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
      return 1;
    }
    if (readers == 0) {
      // The zero-reader leg still proves the query path post-drain and
      // anchors the ingest-rate baseline the reader legs compare to.
      ReaderLog& log = logs[0];
      for (VertexId v = 0; v < config.num_vertices;
           v += std::max<VertexId>(1, config.num_vertices / 64)) {
        Stopwatch watch;
        const QueryResult result = (*service)->Provenance(v);
        log.latencies_ns.push_back(watch.ElapsedNanos());
        if (!result.status.ok()) return 1;
        log.samples.push_back({result.epoch.prefix, v, result.buffer});
      }
    }

    std::vector<int64_t> latencies;
    std::vector<Sample> samples;
    for (ReaderLog& log : logs) {
      latencies.insert(latencies.end(), log.latencies_ns.begin(),
                       log.latencies_ns.end());
      samples.insert(samples.end(),
                     std::make_move_iterator(log.samples.begin()),
                     std::make_move_iterator(log.samples.end()));
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = static_cast<double>(Percentile(&latencies, 0.50)) / 1e9;
    const double p99 = static_cast<double>(Percentile(&latencies, 0.99)) / 1e9;
    const double ingest_rate = rate_base / std::max(ingest_seconds, 1e-12);
    const double query_rate = static_cast<double>(latencies.size()) /
                              std::max(ingest_seconds, 1e-12);
    const uint64_t epochs = (*service)->LatestEpoch().seq;

    table.AddRow({std::to_string(readers), FormatSeconds(ingest_seconds),
                  FormatCompact(ingest_rate, 2),
                  std::to_string(latencies.size()),
                  FormatCompact(query_rate, 2), FormatSeconds(p50),
                  FormatSeconds(p99), std::to_string(epochs)});

    VerifySamples(spec, tin, std::move(samples));

    const std::string row = "Bitcoin/Prop-sparse/r" + std::to_string(readers);
    reporter.Record(row + "/ingest", ingest_seconds, ingest_rate);
    if (!latencies.empty()) {
      reporter.Record(row + "/query_p50", p50);
      reporter.Record(row + "/query_p99", p99);
      reporter.Record(row + "/queries", ingest_seconds, query_rate);
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nEvery sampled answer was verified bit-identical to a fresh tracker "
      "replayed\nover exactly the answer's epoch prefix — snapshot isolation "
      "holds under\nconcurrent readers. Expected shape: aggregate queries/s "
      "grows with reader\ncount while ingest keeps making progress (readers "
      "never take a writer lock;\nany slowdown is core contention from the "
      "closed-loop readers, not blocking).\n");
  return 0;
}
