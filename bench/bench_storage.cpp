// Durable-log cost and crash recovery: what the storage layer charges
// at ingest time (checksummed segment appends, synced vs buffered, and
// epoch snapshot writes) and what it charges at restart (recovery time
// vs trusted log length, with and without a snapshot to shortcut the
// replay). Not a paper experiment — the paper replays offline — but
// the price tag on the serve layer's restart-resume guarantee.
//
// The binary doubles as the crash-smoke harness (scripts/crash_smoke.sh):
//   TINPROV_CRASH_ROLE=ingest  — run a durable ProvenanceService over a
//     deterministic generated stream rooted at TINPROV_CRASH_DIR; the
//     harness kill -9s this process mid-flight. Writes a manifest file
//     first so the verifier can cross-check the run's shape.
//     TINPROV_CRASH_THROTTLE_US slows the stream so the kill lands
//     mid-ingest rather than after the drain.
//   TINPROV_CRASH_ROLE=verify — recover the directory the kill left
//     behind and assert the contract: the trusted log is an exact
//     prefix of the generated stream and the recovered tracker state is
//     bit-identical to a clean replay of that prefix. On mismatch the
//     recovered and reference states are dumped next to the log
//     (diff-*.bin) for the CI failure artifact, and the exit is 1.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/registry.h"
#include "bench_util.h"
#include "datagen/generator.h"
#include "serve/service.h"
#include "storage/durable_log.h"
#include "storage/env.h"
#include "storage/recovery.h"
#include "stream/interaction_stream.h"
#include "util/stopwatch.h"

#if !defined(TINPROV_NO_THREADS)
#include <chrono>
#include <thread>
#endif

using namespace tinprov;

namespace {

// --- Shared helpers --------------------------------------------------------

std::string ScratchDir(const char* tag) {
  std::string dir = "bench_storage_" + std::string(tag);
  (void)storage::Env::Posix()->CreateDir(dir);
  return dir;
}

void RemoveDirRecursive(const std::string& dir) {
  auto names = storage::Env::Posix()->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)storage::Env::Posix()->DeleteFile(storage::JoinPath(dir, name));
    }
  }
  ::rmdir(dir.c_str());
}

/// The deterministic crash-smoke dataset: both roles regenerate it from
/// the same scale, so the verifier never needs the ingester's memory.
GeneratorConfig CrashConfig(double scale) {
  GeneratorConfig config;
  config.num_vertices = 200;
  config.num_interactions =
      std::max<size_t>(5000, static_cast<size_t>(200000 * scale));
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 777;
  return config;
}

Tin MustGenerate(const GeneratorConfig& config) {
  auto tin = Generate(config);
  if (!tin.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 tin.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(tin).value();
}

TrackerSpec CrashSpec() {
  const char* name = std::getenv("TINPROV_CRASH_SPEC");
  TrackerSpec spec;
  spec.name = (name != nullptr && name[0] != '\0') ? name : "Prop-sparse";
  spec.mode = TrackerMode::kStreaming;
  return spec;
}

// --- Crash-smoke roles -----------------------------------------------------

/// Rate-limits a stream so an external kill -9 lands mid-ingest. In
/// TINPROV_NO_THREADS builds the throttle is a no-op (no sleep
/// primitive); the harness compensates by killing sooner.
class ThrottledStream : public InteractionStream {
 public:
  ThrottledStream(std::unique_ptr<InteractionStream> base, uint64_t sleep_us)
      : base_(std::move(base)), sleep_us_(sleep_us) {}

  bool Next(Interaction* out) override {
#if !defined(TINPROV_NO_THREADS)
    if (sleep_us_ > 0 && ++count_ % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
    }
#endif
    return base_->Next(out);
  }

  DatasetStats Stats() const override { return base_->Stats(); }

 private:
  std::unique_ptr<InteractionStream> base_;
  uint64_t sleep_us_;
  uint64_t count_ = 0;
};

std::string RequiredCrashDir() {
  const char* dir = std::getenv("TINPROV_CRASH_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    std::fprintf(stderr, "TINPROV_CRASH_DIR must name the durable dir\n");
    std::exit(2);
  }
  return dir;
}

int RunCrashIngest() {
  const std::string dir = RequiredCrashDir();
  const double scale = bench::GetScale();
  const GeneratorConfig config = CrashConfig(scale);
  const Tin tin = MustGenerate(config);
  const TrackerSpec spec = CrashSpec();

  // Manifest first: the verifier cross-checks that both sides agree on
  // the run's shape before trusting a "prefix of the dataset" verdict.
  if (!storage::Env::Posix()->CreateDir(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 2;
  }
  {
    std::FILE* manifest =
        std::fopen(storage::JoinPath(dir, "MANIFEST.txt").c_str(), "w");
    if (manifest == nullptr) return 2;
    std::fprintf(manifest, "spec=%s\nseed=%llu\ninteractions=%zu\n",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(config.seed),
                 tin.num_interactions());
    std::fclose(manifest);
  }

  ServeOptions options;
  options.epoch_interval = 1024;
  options.ingest_batch = 128;
  options.durability.dir = dir;
  options.durability.log.rotate_bytes = 256 * 1024;
  options.durability.history_snapshot_interval = 2048;

  auto service = ProvenanceService::Create(spec, tin.Stats(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "service create failed: %s\n",
                 service.status().ToString().c_str());
    return 2;
  }

  uint64_t throttle_us = 0;
  if (const char* env = std::getenv("TINPROV_CRASH_THROTTLE_US")) {
    throttle_us = std::strtoull(env, nullptr, 10);
  }
  std::unique_ptr<InteractionStream> stream = std::make_unique<VectorStream>(
      tin.num_vertices(), tin.interactions());
  stream =
      std::make_unique<ThrottledStream>(std::move(stream), throttle_us);

  Status status = (*service)->Start(std::move(stream));
  if (status.ok()) status = (*service)->WaitIngest();
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return 2;
  }
  std::printf("crash-ingest: drained %zu interactions without being killed\n",
              tin.num_interactions());
  return 0;
}

int RunCrashVerify() {
  const std::string dir = RequiredCrashDir();
  const double scale = bench::GetScale();
  const GeneratorConfig config = CrashConfig(scale);
  const Tin tin = MustGenerate(config);
  const std::vector<Interaction>& data = tin.interactions();
  const TrackerSpec spec = CrashSpec();

  auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
  if (!factory.ok()) {
    std::fprintf(stderr, "factory failed: %s\n",
                 factory.status().ToString().c_str());
    return 2;
  }

  storage::RecoveryManager manager(storage::Env::Posix(), dir);
  auto recovered = manager.Recover(*factory);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }

  // Contract 1: the trusted log is an exact prefix of the stream fed in.
  if (recovered->prefix > data.size()) {
    std::fprintf(stderr, "recovered prefix %llu exceeds the dataset (%zu)\n",
                 static_cast<unsigned long long>(recovered->prefix),
                 data.size());
    return 1;
  }
  for (size_t i = 0; i < recovered->log.size(); ++i) {
    const Interaction& got = recovered->log[i];
    const Interaction& want = data[i];
    if (got.src != want.src || got.dst != want.dst || got.t != want.t ||
        got.quantity != want.quantity) {
      std::fprintf(stderr, "trusted log diverges at interaction %zu\n", i);
      return 1;
    }
  }

  // Contract 2: the recovered state is bit-identical to a clean replay
  // of exactly that prefix.
  std::unique_ptr<Tracker> reference = (*factory)();
  for (const Interaction& interaction : recovered->log) {
    const Status status = reference->Process(interaction);
    if (!status.ok()) {
      std::fprintf(stderr, "reference replay failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
  }
  std::vector<uint8_t> reference_state;
  reference->SaveState(&reference_state);
  if (recovered->state != reference_state) {
    size_t first = 0;
    const size_t common =
        std::min(recovered->state.size(), reference_state.size());
    while (first < common && recovered->state[first] == reference_state[first])
      ++first;
    std::fprintf(stderr,
                 "recovered state diverges from clean replay at byte %zu "
                 "(%zu vs %zu bytes total)\n",
                 first, recovered->state.size(), reference_state.size());
    // Dump both states next to the log for the CI failure artifact.
    for (const auto& [name, bytes] :
         {std::pair<const char*, const std::vector<uint8_t>*>(
              "diff-recovered-state.bin", &recovered->state),
          std::pair<const char*, const std::vector<uint8_t>*>(
              "diff-reference-state.bin", &reference_state)}) {
      std::FILE* out =
          std::fopen(storage::JoinPath(dir, name).c_str(), "wb");
      if (out != nullptr) {
        std::fwrite(bytes->data(), 1, bytes->size(), out);
        std::fclose(out);
      }
    }
    return 1;
  }

  std::printf(
      "crash-verify: OK prefix=%llu/%zu snapshot_prefix=%llu replayed=%llu "
      "torn=%zu corrupt=%zu dropped=%zu snapshots_skipped=%zu\n",
      static_cast<unsigned long long>(recovered->prefix), data.size(),
      static_cast<unsigned long long>(recovered->snapshot_prefix),
      static_cast<unsigned long long>(recovered->replayed),
      recovered->torn_tails, recovered->corrupt_records,
      recovered->segments_dropped, recovered->snapshots_skipped);
  return 0;
}

// --- Table mode ------------------------------------------------------------

struct AppendRun {
  double seconds = 0.0;
  uint64_t bytes = 0;
};

AppendRun RunAppends(const std::vector<Interaction>& data, bool synced) {
  const std::string dir = ScratchDir(synced ? "synced" : "buffered");
  storage::DurableLogOptions options;
  options.rotate_bytes = 4 * 1024 * 1024;
  options.sync_each_append = synced;
  auto log = storage::DurableLog::Open(storage::Env::Posix(), dir, 0, 0,
                                       options);
  if (!log.ok()) {
    std::fprintf(stderr, "open failed: %s\n", log.status().ToString().c_str());
    std::exit(1);
  }
  constexpr size_t kBatch = 256;
  Stopwatch watch;
  for (size_t i = 0; i < data.size(); i += kBatch) {
    const size_t n = std::min(kBatch, data.size() - i);
    const Status status = (*log)->Append(&data[i], n);
    if (!status.ok()) {
      std::fprintf(stderr, "append failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  if (!(*log)->Seal().ok()) std::exit(1);
  AppendRun run;
  run.seconds = watch.ElapsedSeconds();
  auto names = storage::Env::Posix()->ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      auto size = storage::Env::Posix()->FileSize(storage::JoinPath(dir, name));
      if (size.ok()) run.bytes += *size;
    }
  }
  RemoveDirRecursive(dir);
  return run;
}

int RunTables() {
  const double scale = bench::GetScale();
  bench::JsonBenchReporter reporter("bench_storage");
  bench::PrintHeader("STORAGE",
                     "durable log write cost and crash-recovery time");

  GeneratorConfig config = CrashConfig(scale);
  const Tin tin = MustGenerate(config);
  const std::vector<Interaction>& data = tin.interactions();
  const size_t total = data.size();

  // (a) Append throughput, synced vs buffered.
  std::printf("\n[a] segment append throughput (%zu interactions, "
              "batch 256)\n",
              total);
  std::printf("  %-10s %12s %12s %12s\n", "mode", "seconds", "Minter/s",
              "MiB/s");
  for (const bool synced : {true, false}) {
    const AppendRun run = RunAppends(data, synced);
    const double rate = static_cast<double>(total) / run.seconds;
    std::printf("  %-10s %12.4f %12.3f %12.2f\n",
                synced ? "synced" : "buffered", run.seconds, rate / 1e6,
                static_cast<double>(run.bytes) / run.seconds / (1 << 20));
    reporter.Record(std::string("storage/append/") +
                        (synced ? "synced" : "buffered"),
                    run.seconds, rate);
  }

  // (b) Recovery time vs trusted log length, with and without a
  // snapshot shortcutting the replay.
  auto factory = TrackerRegistry::Global().Factory(
      TrackerSpec{"Prop-sparse", {}, TrackerMode::kStreaming}, tin.Stats());
  if (!factory.ok()) {
    std::fprintf(stderr, "factory failed: %s\n",
                 factory.status().ToString().c_str());
    return 1;
  }
  std::printf("\n[b] recovery time vs log length (Prop-sparse)\n");
  std::printf("  %-12s %-10s %12s %12s %12s\n", "interactions", "snapshot",
              "write s", "recover s", "replayed");
  for (const size_t length : {total / 4, total / 2, total}) {
    for (const bool with_snapshot : {false, true}) {
      const std::string dir = ScratchDir("recover");
      storage::DurableLogOptions options;
      options.rotate_bytes = 1024 * 1024;
      options.sync_each_append = false;
      auto log = storage::DurableLog::Open(storage::Env::Posix(), dir, 0, 0,
                                           options);
      if (!log.ok()) return 1;
      std::unique_ptr<Tracker> writer = (*factory)();
      Stopwatch write_watch;
      const size_t snapshot_every = length / 4 + 1;
      size_t last_snapshot = 0;
      for (size_t i = 0; i < length; i += 256) {
        const size_t n = std::min<size_t>(256, length - i);
        for (size_t j = 0; j < n; ++j) {
          if (!writer->Process(data[i + j]).ok()) return 1;
        }
        if (!(*log)->Append(&data[i], n).ok()) return 1;
        if (with_snapshot && i + n - last_snapshot >= snapshot_every) {
          last_snapshot = i + n;
          std::vector<uint8_t> state;
          writer->SaveState(&state);
          if (!(*log)->WriteSnapshot(i + n, data[i + n - 1].t, state).ok()) {
            return 1;
          }
        }
      }
      if (!(*log)->Seal().ok()) return 1;
      const double write_seconds = write_watch.ElapsedSeconds();
      log->reset();

      storage::RecoveryManager manager(storage::Env::Posix(), dir);
      Stopwatch recover_watch;
      auto recovered = manager.Recover(*factory);
      const double recover_seconds = recover_watch.ElapsedSeconds();
      if (!recovered.ok() || recovered->prefix != length) {
        std::fprintf(stderr, "recovery failed or short: %s\n",
                     recovered.ok() ? "short prefix"
                                    : recovered.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-12zu %-10s %12.4f %12.4f %12llu\n", length,
                  with_snapshot ? "yes" : "no", write_seconds,
                  recover_seconds,
                  static_cast<unsigned long long>(recovered->replayed));
      reporter.Record("storage/recover/len=" + std::to_string(length) +
                          (with_snapshot ? "/snapshot" : "/full-replay"),
                      recover_seconds, static_cast<double>(length) /
                                           recover_seconds);
      RemoveDirRecursive(dir);
    }
  }

  std::printf("\nstorage bench complete\n");
  return 0;
}

}  // namespace

int main() {
  const char* role = std::getenv("TINPROV_CRASH_ROLE");
  if (role != nullptr && std::strcmp(role, "ingest") == 0) {
    return RunCrashIngest();
  }
  if (role != nullptr && std::strcmp(role, "verify") == 0) {
    return RunCrashVerify();
  }
  return RunTables();
}
