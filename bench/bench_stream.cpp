// Streaming ingestion: materialized-log replay vs the pull-based
// stream pipeline. Not a paper experiment — the paper replays
// materialized logs — but its setting is interactions *arriving* in
// time order, and this harness measures what the stream/ layer buys:
// the same provenance results (bit-identical; tests/test_stream.cc)
// with no materialized log anywhere in the pipeline, so ingestion-side
// memory is a constant micro-batch buffer instead of the whole stream.
//
// Three paths per dataset, all Prop-sparse:
//   materialized       generate a Tin, then MeasureTracker over it
//   streaming          GeneratorStream -> StreamIngestor (micro-batches)
//   streaming+sharded  GeneratorStream -> ShardedReplayEngine::ReplayStream
//                      (bounded broadcast queue; sequential fallback on
//                      single-thread machines)
//
// The run fails (non-zero exit) if the streaming pipeline's peak
// buffering is not independent of the stream length — the acceptance
// bar for streaming ingestion.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "parallel/sharded_replay.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"
#include "util/memory.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace tinprov;

namespace {

GeneratorStream MustMakeStream(const GeneratorConfig& config) {
  auto stream = GeneratorStream::Create(config);
  if (!stream.ok()) {
    std::fprintf(stderr, "generator stream failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(stream);
}

}  // namespace

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Streaming ingestion",
                     "Materialized replay vs pull-based stream pipeline "
                     "(Prop-sparse)");
  bench::JsonBenchReporter reporter("bench_stream");
  const ScalableParams params;

  for (const DatasetKind dataset :
       {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kFlights}) {
    const GeneratorConfig config = PresetConfig(dataset, scale);
    const std::string name(DatasetName(dataset));
    const double rate_base = static_cast<double>(config.num_interactions);

    // Materialized: the log is generated, held whole, then replayed.
    Stopwatch watch;
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    const double generate_seconds = watch.ElapsedSeconds();
    MeasureOptions materialized_options;
    materialized_options.tin = &tin;
    materialized_options.dense_memory_limit = bench::kDenseMemoryLimit;
    auto materialized =
        MeasureTracker({"Prop-sparse", params}, materialized_options);
    if (!materialized.ok()) {
      std::fprintf(stderr, "materialized measurement failed: %s\n",
                   materialized.status().ToString().c_str());
      return 1;
    }

    // Streaming: interactions flow straight from the generator into the
    // tracker; the only stream-side buffer is the micro-batch.
    GeneratorStream stream = MustMakeStream(config);
    IngestStats ingest;
    MeasureOptions streaming_options;
    streaming_options.stream = &stream;
    streaming_options.dense_memory_limit = bench::kDenseMemoryLimit;
    streaming_options.ingest_stats = &ingest;
    auto streaming = MeasureTracker(
        {"Prop-sparse", params, TrackerMode::kStreaming}, streaming_options);
    if (!streaming.ok()) {
      std::fprintf(stderr, "streaming measurement failed: %s\n",
                   streaming.status().ToString().c_str());
      return 1;
    }

    // Streaming + sharded: the same stream fanned out to label shards
    // through the bounded broadcast queue.
    auto spec = TrackerRegistry::Global().Sharded(
        {"Prop-sparse", params, TrackerMode::kStreaming},
        DatasetStats{config.num_vertices, config.num_interactions});
    if (!spec.ok()) {
      std::fprintf(stderr, "spec failed: %s\n",
                   spec.status().ToString().c_str());
      return 1;
    }
    ParallelParams parallel;  // hardware threads, one shard each
    ShardedReplayEngine engine(
        DatasetStats{config.num_vertices, config.num_interactions},
        *std::move(spec), parallel);
    GeneratorStream sharded_stream = MustMakeStream(config);
    auto sharded = engine.ReplayStream(sharded_stream);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharded streaming replay failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }

    std::printf("\n%s network (%zu vertices, %zu interactions):\n",
                name.c_str(), config.num_vertices, config.num_interactions);
    TablePrinter table({"path", "ingest time", "inter/s", "pipeline buffer",
                        "tracker memory", "notes"});
    const size_t log_bytes = tin.MemoryUsage();
    table.AddRow(
        {"materialized", FormatSeconds(materialized->seconds),
         FormatCompact(rate_base / std::max(materialized->seconds, 1e-12), 2),
         FormatBytes(log_bytes), FormatBytes(materialized->peak_memory),
         "log held whole; +" + FormatSeconds(generate_seconds) + " generate"});
    table.AddRow(
        {"streaming", FormatSeconds(streaming->seconds),
         FormatCompact(rate_base / std::max(streaming->seconds, 1e-12), 2),
         FormatBytes(ingest.peak_batch * sizeof(Interaction)),
         FormatBytes(streaming->peak_memory),
         std::to_string(ingest.batches) + " batches, watermark-checked"});
    // Annotate rows whose worker count exceeds the machine width — on
    // a small host they measure scheduling, not parallel speedup.
    const unsigned hw = std::thread::hardware_concurrency();
    const bool oversubscribed =
        hw != 0 && sharded->num_threads > static_cast<size_t>(hw);
    table.AddRow(
        {"streaming+sharded", FormatSeconds(sharded->replay_seconds),
         FormatCompact(rate_base / std::max(sharded->replay_seconds, 1e-12),
                       2),
         FormatBytes((parallel.stream_queue_chunks + sharded->num_threads) *
                     parallel.stream_chunk * sizeof(Interaction)),
         FormatBytes(sharded->num_entries * sizeof(ProvPair)),
         sharded->used_parallel_path
             ? std::to_string(sharded->num_shards) + " shards / " +
                   std::to_string(sharded->num_threads) + " threads" +
                   (oversubscribed ? " (oversubscribed)" : "")
             : "sequential fallback (1 worker)"});
    std::printf("%s", table.ToString().c_str());

    reporter.Record(name + "/Prop-sparse/materialized",
                    materialized->seconds,
                    rate_base / std::max(materialized->seconds, 1e-12),
                    materialized->peak_memory);
    reporter.Record(name + "/Prop-sparse/streaming", streaming->seconds,
                    rate_base / std::max(streaming->seconds, 1e-12),
                    streaming->peak_memory);
    reporter.Record(name + "/Prop-sparse/streaming_sharded",
                    sharded->replay_seconds,
                    rate_base / std::max(sharded->replay_seconds, 1e-12),
                    sharded->num_entries * sizeof(ProvPair));
  }

  // Acceptance check: streaming-side buffering must be independent of
  // the stream length. Run the same preset at 1x and 4x interactions
  // and require the identical peak batch buffer (the ingest stats are
  // the witness — a materialized path would scale 4x here).
  {
    GeneratorConfig config = PresetConfig(DatasetKind::kTaxis, scale);
    // A batch both runs fill (presets are clamped to >= 200
    // interactions), so the peak is the batch size, not the stream.
    IngestOptions options;
    options.batch_size = 64;
    size_t peaks[2] = {0, 0};
    for (int round = 0; round < 2; ++round) {
      if (round == 1) config.num_interactions *= 4;
      GeneratorStream stream = MustMakeStream(config);
      auto factory = TrackerRegistry::Global().Factory(
          {"Prop-sparse", params, TrackerMode::kStreaming},
          DatasetStats{config.num_vertices, config.num_interactions});
      if (!factory.ok()) {
        std::fprintf(stderr, "flatness factory failed: %s\n",
                     factory.status().ToString().c_str());
        return 1;
      }
      std::unique_ptr<Tracker> tracker = (*factory)();
      StreamIngestor ingestor(tracker.get(), options);
      const Status status = ingestor.IngestAll(stream);
      if (!status.ok()) {
        std::fprintf(stderr, "flatness run failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      peaks[round] = ingestor.stats().peak_batch;
    }
    std::printf("\npipeline buffering: %zu interactions peak at 1x, %zu at "
                "4x stream length\n",
                peaks[0], peaks[1]);
    if (peaks[1] != peaks[0]) {
      std::fprintf(stderr,
                   "FAIL: streaming peak buffering grew with stream length "
                   "(%zu -> %zu)\n",
                   peaks[0], peaks[1]);
      return 1;
    }
  }

  std::printf(
      "\nExpected shape: streaming matches materialized replay throughput "
      "(same\nper-interaction work, no log materialization) while its "
      "pipeline buffer stays\na constant micro-batch; sharded streaming "
      "adds the parallel list-work split\non multi-core machines. Results "
      "are bit-identical on every path\n(tests/test_stream.cc proves "
      "it).\n");
  return 0;
}
