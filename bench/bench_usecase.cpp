// Reproduces paper Figure 9: provenance alerts on the Bitcoin network under
// the proportional policy. After every interaction the receiving vertex is
// checked; if its balance exceeds a threshold and none of it originates
// from its direct neighbors, an alert fires ("smurfing" indicator). Alerts
// with fewer than 5 contributing origins are the paper's red dots.
#include <cstdio>

#include "analytics/alerts.h"
#include "analytics/report.h"
#include "analytics/summary.h"
#include "bench_util.h"
#include "policies/proportional_sparse.h"
#include "util/stopwatch.h"
#include "util/strings.h"

using namespace tinprov;

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Figure 9", "Provenance alerts in Bitcoin (use case)");

  // The paper uses the first 100K Bitcoin interactions with a 10K BTC
  // threshold; at our default 1/1000 scale a proportionally smaller
  // threshold produces a comparable alert density.
  const Tin tin = bench::MustMakeDataset(DatasetKind::kBitcoin, scale * 0.5);
  AlertConfig config;
  config.threshold = 25.0;
  config.few_sources = 5;

  ProportionalSparseTracker tracker(tin.num_vertices());
  SmurfingAlertEngine engine(&tracker, config);
  Stopwatch watch;
  const Status st = engine.ProcessAll(tin);
  if (!st.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double seconds = watch.ElapsedSeconds();

  size_t few = 0;
  for (const Alert& alert : engine.alerts()) few += alert.few_sources ? 1 : 0;
  std::printf("\n%zu interactions scanned in %s (threshold %.0f units (paper: 10K BTC at full scale))\n",
              tin.num_interactions(), FormatSeconds(seconds).c_str(),
              config.threshold);
  std::printf("alerts: %zu total; %zu 'red' (fewer than %zu origins), %zu "
              "'blue' (numerous origins)\n\n",
              engine.alerts().size(), few, config.few_sources,
              engine.alerts().size() - few);

  TablePrinter table({"tx#", "vertex", "buffered", "#origins", "class"});
  const size_t show =
      engine.alerts().size() < 12 ? engine.alerts().size() : 12;
  for (size_t i = 0; i < show; ++i) {
    const Alert& a = engine.alerts()[i];
    table.AddRow({std::to_string(a.interaction_index),
                  std::to_string(a.vertex), FormatCompact(a.buffered, 2),
                  std::to_string(a.num_origins),
                  a.few_sources ? "red (few)" : "blue (many)"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper): most alerts are 'blue' — large amounts "
      "assembled from\nnumerous indirect sources, the smurfing signature.\n");

  // Provenance mining over the final state (paper §8 future work): how are
  // accounts financed, network-wide?
  const ProvenanceSummary summary = Summarize(tracker);
  std::printf(
      "\nProvenance mining: %zu funded accounts; mean %.1f origins "
      "(max %.0f),\nmean entropy %.2f bits, mean top-origin share %.0f%%\n",
      summary.nonempty_buffers, summary.mean_origins, summary.max_origins,
      summary.mean_entropy_bits, summary.mean_top_share * 100.0);
  const auto concentrated = MostConcentrated(tracker, 3, config.threshold);
  for (const VertexProvenanceProfile& p : concentrated) {
    std::printf(
        "  single-backer candidate: account %u holds %.1f, %.0f%% from one "
        "origin\n",
        p.vertex, p.buffered, p.top_share * 100.0);
  }
  return 0;
}
