// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness accepts the TINPROV_SCALE environment variable (default 1.0
// = laptop-sized presets, see datagen/presets.h); raise it to approach
// paper-sized runs. Output is printed as aligned tables whose rows mirror
// the corresponding paper table or figure series.
#ifndef TINPROV_BENCH_BENCH_UTIL_H_
#define TINPROV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/presets.h"
#include "util/status.h"

namespace tinprov::bench {

/// Scale factor from $TINPROV_SCALE, default 1.0.
inline double GetScale() {
  const char* env = std::getenv("TINPROV_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// Generates a preset dataset at the harness scale, aborting on failure
/// (benchmarks have no meaningful recovery path).
inline Tin MustMakeDataset(DatasetKind kind, double scale) {
  auto tin = MakeDataset(kind, scale);
  if (!tin.ok()) {
    std::fprintf(stderr, "dataset generation failed for %s: %s\n",
                 std::string(DatasetName(kind)).c_str(),
                 tin.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(tin).value();
}

/// Memory ceiling for the dense proportional tracker, mirroring the paper's
/// feasibility pattern at default scale: dense fits only on the
/// small-vertex-set networks (Flights, Taxis), exactly as in Tables 7-8.
inline constexpr size_t kDenseMemoryLimit = size_t{128} * 1024 * 1024;

/// Prints a section header for a reproduced table/figure.
inline void PrintHeader(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("(synthetic stand-in datasets; compare shapes, not absolutes)\n");
  std::printf("==============================================================\n");
}

}  // namespace tinprov::bench

#endif  // TINPROV_BENCH_BENCH_UTIL_H_
