// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness accepts the TINPROV_SCALE environment variable (default 1.0
// = laptop-sized presets, see datagen/presets.h); raise it to approach
// paper-sized runs. Output is printed as aligned tables whose rows mirror
// the corresponding paper table or figure series.
//
// Setting TINPROV_BENCH_JSON=<path> additionally records every measured
// row as a google-benchmark-format JSON file (the BENCH_*.json
// trajectory points; see scripts/bench_baseline.sh), so perf history is
// machine-comparable across commits.
#ifndef TINPROV_BENCH_BENCH_UTIL_H_
#define TINPROV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <vector>

#include "datagen/presets.h"
#include "obs/export.h"
#include "util/cpu.h"
#include "util/status.h"

namespace tinprov::bench {

/// The compiler that produced this binary, for the host-shape check in
/// bench_compare.py (native vs portable and gcc vs clang codegen are
/// not comparable runs).
inline const char* CompilerVersion() {
#if defined(__clang_version__)
  return "clang " __clang_version__;
#elif defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

/// Whether the binary was built with TINPROV_NATIVE=ON (-march=native).
inline constexpr bool kNativeBuild =
#if defined(TINPROV_NATIVE_BUILD)
    true;
#else
    false;
#endif

/// Scale factor from $TINPROV_SCALE, default 1.0.
inline double GetScale() {
  const char* env = std::getenv("TINPROV_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

/// Generates a preset dataset at the harness scale, aborting on failure
/// (benchmarks have no meaningful recovery path).
inline Tin MustMakeDataset(DatasetKind kind, double scale) {
  auto tin = MakeDataset(kind, scale);
  if (!tin.ok()) {
    std::fprintf(stderr, "dataset generation failed for %s: %s\n",
                 std::string(DatasetName(kind)).c_str(),
                 tin.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(tin).value();
}

/// Memory ceiling for the dense proportional tracker, mirroring the paper's
/// feasibility pattern at default scale: dense fits only on the
/// small-vertex-set networks (Flights, Taxis), exactly as in Tables 7-8.
inline constexpr size_t kDenseMemoryLimit = size_t{128} * 1024 * 1024;

/// Prints a section header for a reproduced table/figure.
inline void PrintHeader(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("(synthetic stand-in datasets; compare shapes, not absolutes)\n");
  std::printf("==============================================================\n");
}

/// Collects named measurements and, when $TINPROV_BENCH_JSON names a
/// path, writes them on destruction in the shape google-benchmark emits
/// with --benchmark_format=json: a "context" object and a "benchmarks"
/// array whose entries carry name / real_time / time_unit (plus our
/// items_per_second and peak_memory counters). scripts/bench_compare.py
/// consumes either producer interchangeably. With the variable unset
/// the reporter is inert, so instrumented benches cost nothing in
/// normal table runs.
class JsonBenchReporter {
 public:
  explicit JsonBenchReporter(const char* executable) {
    const char* path = std::getenv("TINPROV_BENCH_JSON");
    if (path != nullptr && path[0] != '\0') path_ = path;
    executable_ = executable;
  }

  JsonBenchReporter(const JsonBenchReporter&) = delete;
  JsonBenchReporter& operator=(const JsonBenchReporter&) = delete;

  bool active() const { return !path_.empty(); }

  /// Records one measurement. `items_per_second` and `peak_memory` are
  /// omitted from the JSON when zero.
  void Record(const std::string& name, double real_seconds,
              double items_per_second = 0.0, size_t peak_memory = 0) {
    if (!active()) return;
    entries_.push_back({name, real_seconds, items_per_second, peak_memory});
  }

  ~JsonBenchReporter() {
    if (!active()) return;
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    char date[32] = "";
    const std::time_t now = std::time(nullptr);
    std::tm tm_buf{};
    if (gmtime_r(&now, &tm_buf) != nullptr) {
      std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ", &tm_buf);
    }
    std::fprintf(out,
                 "{\n"
                 "  \"context\": {\n"
                 "    \"date\": \"%s\",\n"
                 "    \"executable\": \"%s\",\n"
                 "    \"num_cpus\": %u,\n"
                 "    \"tinprov_native\": %s,\n"
                 "    \"simd\": \"%s\",\n"
                 "    \"compiler\": \"%s\",\n"
                 "    \"tinprov_scale\": %g\n"
                 "  },\n"
                 "  \"benchmarks\": [\n",
                 date, Escaped(executable_).c_str(),
                 std::thread::hardware_concurrency(),
                 kNativeBuild ? "true" : "false",
                 cpu::SimdLevelName(cpu::ActiveSimdLevel()),
                 Escaped(CompilerVersion()).c_str(), GetScale());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(out,
                   "    {\n"
                   "      \"name\": \"%s\",\n"
                   "      \"run_name\": \"%s\",\n"
                   "      \"run_type\": \"iteration\",\n"
                   "      \"repetitions\": 1,\n"
                   "      \"iterations\": 1,\n"
                   "      \"real_time\": %.9g,\n"
                   "      \"cpu_time\": %.9g,\n"
                   "      \"time_unit\": \"s\"",
                   Escaped(e.name).c_str(), Escaped(e.name).c_str(),
                   e.real_seconds, e.real_seconds);
      if (e.items_per_second > 0.0) {
        std::fprintf(out, ",\n      \"items_per_second\": %.9g",
                     e.items_per_second);
      }
      if (e.peak_memory > 0) {
        std::fprintf(out, ",\n      \"peak_memory\": %zu", e.peak_memory);
      }
      std::fprintf(out, "\n    }%s\n", i + 1 < entries_.size() ? "," : "");
    }
    // The engine-metrics snapshot rides along with the timings, so
    // baseline JSONs answer "how many interactions / snapshots / bytes"
    // and not just "how long".
    std::fprintf(out, "  ],\n  \"metrics\": %s\n}\n",
                 obs::MetricsJson().c_str());
    std::fclose(out);
    std::printf("wrote %zu benchmark records to %s\n", entries_.size(),
                path_.c_str());
  }

 private:
  struct Entry {
    std::string name;
    double real_seconds;
    double items_per_second;
    size_t peak_memory;
  };

  static std::string Escaped(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::string executable_;
  std::vector<Entry> entries_;
};

}  // namespace tinprov::bench

#endif  // TINPROV_BENCH_BENCH_UTIL_H_
