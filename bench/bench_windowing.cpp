// Reproduces paper Figure 7: runtime and memory of the windowing approach
// (Section 5.3.1) for different window sizes W.
//
// The paper sweeps W from 2K to 16K interactions against the full-size
// streams (2.8M - 45.5M interactions). Because this harness runs scaled-down
// streams, it scales W by the same ratio, keeping W/|R| — the quantity that
// determines the reset frequency, and with it the runtime/memory trade-off —
// equal to the paper's.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "bench_util.h"
#include "scalable/windowed.h"
#include "util/memory.h"

using namespace tinprov;

namespace {

// Full-size interaction counts from paper Table 6.
double PaperInteractions(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kBitcoin:
      return 45.5e6;
    case DatasetKind::kCtu:
      return 2.8e6;
    case DatasetKind::kProsper:
      return 3.08e6;
    default:
      return 1e6;
  }
}

}  // namespace

int main() {
  const double scale = bench::GetScale();
  bench::PrintHeader("Figure 7", "Windowing approach: cost vs window size W");

  bench::JsonBenchReporter reporter("bench_windowing");

  const std::vector<double> paper_windows = {2000, 4000, 8000, 12000, 16000};
  for (const DatasetKind dataset :
       {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kProsper}) {
    const Tin tin = bench::MustMakeDataset(dataset, scale);
    const double ratio = static_cast<double>(tin.num_interactions()) /
                         PaperInteractions(dataset);
    std::printf("\n%s network (%zu interactions; W scaled by %.2g to keep "
                "the paper's W/|R|):\n",
                std::string(DatasetName(dataset)).c_str(),
                tin.num_interactions(), ratio);
    TablePrinter table({"paper W", "scaled W", "runtime", "peak memory",
                        "resets"});
    for (const double paper_w : paper_windows) {
      const size_t window = std::max<size_t>(
          1, static_cast<size_t>(paper_w * ratio + 0.5));
      WindowedTracker tracker(tin.num_vertices(), window);
      auto m = MeasureRun(&tracker, tin, "");
      if (!m.ok()) {
        std::fprintf(stderr, "measurement failed\n");
        return 1;
      }
      reporter.Record(std::string(DatasetName(dataset)) + "/W=" +
                          std::to_string(static_cast<size_t>(paper_w)),
                      m->seconds,
                      m->seconds > 0.0
                          ? static_cast<double>(tin.num_interactions()) /
                                m->seconds
                          : 0.0,
                      m->peak_memory);
      table.AddRow({std::to_string(static_cast<size_t>(paper_w)),
                    std::to_string(window), FormatSeconds(m->seconds),
                    FormatBytes(m->peak_memory),
                    std::to_string(tracker.reset_count())});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf(
      "\nExpected shape (paper): larger W -> fewer O(|V|) resets -> lower "
      "runtime, but\nhigher memory (lists live longer before being collapsed "
      "to alpha).\n");
  return 0;
}
