#!/usr/bin/env bash
# Records the machine-readable perf trajectory: runs the instrumented
# benches at a smoke scale and collects google-benchmark-format JSON
# (BENCH_*.json) for bench_micro (native --benchmark_out) and for the
# table harnesses (via the TINPROV_BENCH_JSON reporter in
# bench/bench_util.h).
#
# Usage: scripts/bench_baseline.sh [build-dir] [out-dir]
#   build-dir  default: build
#   out-dir    default: bench-json
#
# Environment:
#   TINPROV_SCALE           dataset scale for the table harnesses
#                           (default 0.1 — keep it fixed when comparing)
#   TINPROV_BENCH_MIN_TIME  bench_micro --benchmark_min_time (default 0.05)
#   TINPROV_BASELINE_DIR    when set, compare the fresh JSON against the
#                           baselines in that directory with
#                           scripts/bench_compare.py (warn-only)
#
# The committed trajectory lives in bench/baselines/; refresh it with
#   scripts/bench_baseline.sh build bench/baselines
# on the baseline machine and commit the diff.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-json}"
SCALE="${TINPROV_SCALE:-0.1}"
MIN_TIME="${TINPROV_BENCH_MIN_TIME:-0.05}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — configure and build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

if [[ -x "${BUILD_DIR}/bench/bench_micro" ]]; then
  echo "--- bench_micro -> ${OUT_DIR}/BENCH_micro.json"
  "${BUILD_DIR}/bench/bench_micro" \
    --benchmark_min_time="${MIN_TIME}" \
    --benchmark_out="${OUT_DIR}/BENCH_micro.json" \
    --benchmark_out_format=json >/dev/null
else
  echo "--- skipping bench_micro (google-benchmark not available)"
fi

json_run() {
  local name="$1"
  local out="$2"
  local exe="${BUILD_DIR}/bench/${name}"
  if [[ ! -x "${exe}" ]]; then
    echo "--- skipping ${name} (not built)"
    return 0
  fi
  echo "--- ${name} -> ${out} (TINPROV_SCALE=${SCALE})"
  TINPROV_SCALE="${SCALE}" TINPROV_BENCH_JSON="${out}" "${exe}" >/dev/null
}

json_run bench_policies "${OUT_DIR}/BENCH_policies.json"
json_run bench_datasets "${OUT_DIR}/BENCH_datasets.json"
json_run bench_parallel "${OUT_DIR}/BENCH_parallel.json"
json_run bench_lazy "${OUT_DIR}/BENCH_lazy.json"
json_run bench_stream "${OUT_DIR}/BENCH_stream.json"
json_run bench_serve "${OUT_DIR}/BENCH_serve.json"
json_run bench_storage "${OUT_DIR}/BENCH_storage.json"
json_run bench_budget "${OUT_DIR}/BENCH_budget.json"
json_run bench_windowing "${OUT_DIR}/BENCH_windowing.json"
json_run bench_selective_grouped "${OUT_DIR}/BENCH_selective_grouped.json"
json_run bench_cumulative "${OUT_DIR}/BENCH_cumulative.json"

echo "baseline: $(ls "${OUT_DIR}"/BENCH_*.json 2>/dev/null | wc -l) JSON files in ${OUT_DIR}"

if [[ -n "${TINPROV_BASELINE_DIR:-}" ]]; then
  # Regression gate is advisory: machines differ, CI runners are noisy;
  # the comparison prints >25% slowdowns and always exits 0 here.
  python3 "$(dirname "$0")/bench_compare.py" \
    "${TINPROV_BASELINE_DIR}" "${OUT_DIR}" || true
fi
