#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json perf-trajectory files.

Both google-benchmark's --benchmark_out JSON and the bench_util.h
JsonBenchReporter emit the same shape: {"context": ..., "benchmarks":
[{"name", "real_time", "time_unit", ...}]}. Benchmarks are matched by
(file, name); a benchmark is flagged when its real_time grew by more
than the threshold (default 25%).

Usage: bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]
                        [--fail-on-regress]

Exits 0 unless --fail-on-regress (alias: --strict) is given and a
regression was found — CI keeps the default warn-only mode, the flag is
for local gates and release branches. Only the standard library is
used.
"""

import argparse
import json
import pathlib
import sys

TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def load_times(path):
    """Returns {benchmark name: real_time in seconds}."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        name = bench.get("name")
        real = bench.get("real_time")
        if name is None or real is None:
            continue
        times[name] = real * TIME_UNITS.get(bench.get("time_unit", "ns"), 1e-9)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=pathlib.Path)
    parser.add_argument("current_dir", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that counts as a "
                             "regression (default 0.25 = 25%%)")
    parser.add_argument("--fail-on-regress", "--strict", dest="strict",
                        action="store_true",
                        help="exit 1 when a regression is found "
                             "(default: warn only, as CI runs it)")
    args = parser.parse_args()

    regressions = []
    improvements = []
    compared = 0
    for current_path in sorted(args.current_dir.glob("BENCH_*.json")):
        baseline_path = args.baseline_dir / current_path.name
        if not baseline_path.exists():
            print(f"note: no baseline for {current_path.name}, skipping")
            continue
        try:
            baseline = load_times(baseline_path)
            current = load_times(current_path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: cannot compare {current_path.name}: {error}")
            continue
        for name, base_time in sorted(baseline.items()):
            cur_time = current.get(name)
            if cur_time is None or base_time <= 0.0:
                continue
            compared += 1
            ratio = cur_time / base_time
            record = (current_path.name, name, base_time, cur_time, ratio)
            if ratio > 1.0 + args.threshold:
                regressions.append(record)
            elif ratio < 1.0 - args.threshold:
                improvements.append(record)

    print(f"bench_compare: {compared} benchmarks compared against "
          f"{args.baseline_dir}")
    for label, records in (("REGRESSION", regressions),
                           ("improvement", improvements)):
        for file_name, name, base_time, cur_time, ratio in records:
            print(f"  {label}: {file_name}:{name}  "
                  f"{base_time * 1e3:.3f}ms -> {cur_time * 1e3:.3f}ms  "
                  f"({ratio:.2f}x)")
    if not regressions:
        print(f"  no regressions beyond {args.threshold:.0%} "
              f"({len(improvements)} improvements)")
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
