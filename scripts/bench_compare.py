#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json perf-trajectory files.

Both google-benchmark's --benchmark_out JSON and the bench_util.h
JsonBenchReporter emit the same shape: {"context": ..., "benchmarks":
[{"name", "real_time", "time_unit", ...}]}. Benchmarks are matched by
(file, name); a benchmark is flagged when its real_time grew by more
than the threshold (default 25%).

Files whose recorded host shape (context num_cpus / tinprov_native /
simd / compiler) differs between baseline and current are skipped with
a warning: a baseline recorded on a 1-CPU box would otherwise read as a
sharding regression on any wider machine, a scalar-dispatch baseline
would read as a vectorization miracle on an AVX2 host, and
native-vs-portable or cross-compiler codegen differences are not
regressions either. Old baselines without those context fields compare
as before.

Usage: bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]
                        [--fail-on-regress]

Exits 0 unless --fail-on-regress (alias: --strict) is given and a
regression was found — CI keeps the default warn-only mode, the flag is
for local gates and release branches. Only the standard library is
used.
"""

import argparse
import json
import pathlib
import sys

TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


# Context fields that define the host shape; a mismatch in any of them
# (when both sides recorded the field) makes timings incomparable.
HOST_SHAPE_FIELDS = ("num_cpus", "tinprov_native", "simd", "compiler")


def host_shape_mismatch(baseline_context, current_context):
    """Returns the first (field, base, cur) whose values differ, else None."""
    for field in HOST_SHAPE_FIELDS:
        base = baseline_context.get(field)
        cur = current_context.get(field)
        if base is not None and cur is not None and base != cur:
            return field, base, cur
    return None


def load_report(path):
    """Returns ({benchmark name: real_time in seconds}, context dict)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        name = bench.get("name")
        real = bench.get("real_time")
        if name is None or real is None:
            continue
        times[name] = real * TIME_UNITS.get(bench.get("time_unit", "ns"), 1e-9)
    return times, data.get("context", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", type=pathlib.Path)
    parser.add_argument("current_dir", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that counts as a "
                             "regression (default 0.25 = 25%%)")
    parser.add_argument("--fail-on-regress", "--strict", dest="strict",
                        action="store_true",
                        help="exit 1 when a regression is found "
                             "(default: warn only, as CI runs it)")
    args = parser.parse_args()

    regressions = []
    improvements = []
    compared = 0
    for current_path in sorted(args.current_dir.glob("BENCH_*.json")):
        baseline_path = args.baseline_dir / current_path.name
        if not baseline_path.exists():
            print(f"note: no baseline for {current_path.name}, skipping")
            continue
        try:
            baseline, baseline_context = load_report(baseline_path)
            current, current_context = load_report(current_path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: cannot compare {current_path.name}: {error}")
            continue
        mismatch = host_shape_mismatch(baseline_context, current_context)
        if mismatch is not None:
            field, base, cur = mismatch
            print(f"warning: {current_path.name}: host shape differs "
                  f"({field}: baseline {base!r} vs current {cur!r}), "
                  f"skipping — re-record the baseline on this host")
            continue
        for name, base_time in sorted(baseline.items()):
            cur_time = current.get(name)
            if cur_time is None or base_time <= 0.0:
                continue
            compared += 1
            ratio = cur_time / base_time
            record = (current_path.name, name, base_time, cur_time, ratio)
            if ratio > 1.0 + args.threshold:
                regressions.append(record)
            elif ratio < 1.0 - args.threshold:
                improvements.append(record)

    print(f"bench_compare: {compared} benchmarks compared against "
          f"{args.baseline_dir}")
    for label, records in (("REGRESSION", regressions),
                           ("improvement", improvements)):
        for file_name, name, base_time, cur_time, ratio in records:
            print(f"  {label}: {file_name}:{name}  "
                  f"{base_time * 1e3:.3f}ms -> {cur_time * 1e3:.3f}ms  "
                  f"({ratio:.2f}x)")
    if not regressions:
        print(f"  no regressions beyond {args.threshold:.0%} "
              f"({len(improvements)} improvements)")
    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
