#!/usr/bin/env bash
# Kill-loop crash test: repeatedly kill -9 a durable ingest mid-flight,
# then recover the directory it left behind and verify the contract —
# the trusted log is an exact prefix of the stream and the recovered
# tracker state is bit-identical to a clean replay of that prefix
# (bench_storage's TINPROV_CRASH_ROLE=ingest/verify modes do the work).
#
# Usage: scripts/crash_smoke.sh [build-dir] [rounds]
#   build-dir  default: build
#   rounds     kill-9 iterations per tracker (default 3)
#
# Environment:
#   TINPROV_SCALE             dataset scale (default 0.1)
#   TINPROV_CRASH_SPECS       space-separated tracker names to cycle
#                             (default "Prop-sparse FIFO Windowed")
#   TINPROV_CRASH_ARTIFACTS   on failure, the durable dir (log segments,
#                             snapshots, MANIFEST.txt, diff-*.bin) is
#                             moved here for CI upload (default
#                             crash-artifacts)
set -uo pipefail

BUILD_DIR="${1:-build}"
ROUNDS="${2:-3}"
export TINPROV_SCALE="${TINPROV_SCALE:-0.1}"
SPECS="${TINPROV_CRASH_SPECS:-Prop-sparse FIFO Windowed}"
ARTIFACTS="${TINPROV_CRASH_ARTIFACTS:-crash-artifacts}"
BENCH="${BUILD_DIR}/bench/bench_storage"

if [[ ! -x "${BENCH}" ]]; then
  echo "error: ${BENCH} not found — configure and build first" >&2
  exit 1
fi

fail() {
  local dir="$1"
  shift
  echo "crash_smoke: FAILED — $*" >&2
  mkdir -p "${ARTIFACTS}"
  mv "${dir}" "${ARTIFACTS}/" 2>/dev/null || true
  echo "crash_smoke: durable dir preserved under ${ARTIFACTS}/" >&2
  exit 1
}

round=0
for spec in ${SPECS}; do
  for i in $(seq 1 "${ROUNDS}"); do
    round=$((round + 1))
    DIR="$(mktemp -d /tmp/tinprov-crash.XXXXXX)/log"
    # Stagger the kill so different rounds die in different phases:
    # early (first segment), mid-stream, and near/after the drain.
    DELAY_MS=$((50 + (round * 97) % 400))

    TINPROV_CRASH_ROLE=ingest TINPROV_CRASH_DIR="${DIR}" \
      TINPROV_CRASH_SPEC="${spec}" TINPROV_CRASH_THROTTLE_US=1500 \
      "${BENCH}" >/dev/null 2>&1 &
    PID=$!
    # Busy-poll instead of a plain sleep: if the ingest drains before
    # the delay elapses, that round degenerates to a clean-shutdown
    # check, which is also worth verifying.
    for _ in $(seq 1 $((DELAY_MS / 10))); do
      kill -0 "${PID}" 2>/dev/null || break
      sleep 0.01
    done
    if kill -9 "${PID}" 2>/dev/null; then
      verdict="killed at ~${DELAY_MS}ms"
    else
      verdict="drained before the kill"
    fi
    wait "${PID}" 2>/dev/null

    OUT="$(TINPROV_CRASH_ROLE=verify TINPROV_CRASH_DIR="${DIR}" \
      TINPROV_CRASH_SPEC="${spec}" "${BENCH}" 2>&1)" ||
      fail "${DIR}" "round ${round} (${spec}, ${verdict}): ${OUT}"
    echo "crash_smoke: round ${round} ${spec} (${verdict}): ${OUT##*$'\n'}"
    rm -rf "$(dirname "${DIR}")"
  done
done

echo "crash_smoke: all $((round)) kill/recover rounds verified"
