#!/usr/bin/env python3
"""Gallop-merge baseline gate over a recorded BENCH_micro.json.

The original gate required the production merge (BM_SparseMerge) to
beat the pre-optimization reference merge (BM_SparseMergeReference) at
every committed size. bench_micro now also registers the merge pinned
to each dispatch level the host can execute (BM_SparseMergeDispatch/
scalar|sse2|avx2), and this script extends the same bar to every one
of those series — so a per-ISA kernel regression (say, the SSE2 lanes
taking a denormal-assist penalty) fails the gate even when the
default-dispatch numbers still look fine.

Default bar: 1.0x — no series may lose to the reference merge. That
is far enough below the healthy ~2x margin to stay robust on noisy CI
runners. The ISSUE-10 acceptance experiment (default dispatch >= 2x
the reference) is a stricter local run: --min-ratio 2.0 --series
default.

Usage: merge_gate.py BENCH_micro.json [--min-ratio 1.0]
                     [--series default,scalar,sse2,avx2] [--warn-only]

Exits 1 on a violated bar unless --warn-only. Standard library only.
"""

import argparse
import json
import pathlib
import sys

LEVELS = ("scalar", "sse2", "avx2")


def load_rates(path):
    """Returns {name: items_per_second} for iteration rows."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    rates = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("name")
        rate = bench.get("items_per_second")
        if name and rate:
            rates[name] = rate
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=pathlib.Path)
    parser.add_argument("--min-ratio", type=float, default=1.0,
                        help="required series/reference rate ratio "
                             "(default 1.0: never lose to the reference)")
    parser.add_argument("--series", default="",
                        help="comma-separated subset of "
                             "default,scalar,sse2,avx2 to check; "
                             "default: every series present in the file")
    parser.add_argument("--warn-only", action="store_true",
                        help="report violations but exit 0")
    args = parser.parse_args()

    rates = load_rates(args.report)
    reference = {}
    series = {}  # "default" or level name -> {size: rate}
    for name, rate in rates.items():
        parts = name.split("/")
        if parts[0] == "BM_SparseMergeReference" and len(parts) == 2:
            reference[parts[1]] = rate
        elif parts[0] == "BM_SparseMerge" and len(parts) == 2:
            series.setdefault("default", {})[parts[1]] = rate
        elif (parts[0] == "BM_SparseMergeDispatch" and len(parts) == 3
              and parts[1] in LEVELS):
            series.setdefault(parts[1], {})[parts[2]] = rate

    if not reference or not series:
        print(f"merge_gate: {args.report} lacks the merge series "
              f"(reference sizes: {len(reference)}, series: "
              f"{sorted(series)}) — nothing to gate")
        return 0

    wanted = [s.strip() for s in args.series.split(",") if s.strip()]
    names = [s for s in ("default",) + LEVELS
             if s in series and (not wanted or s in wanted)]
    missing = [s for s in wanted if s not in series]
    if missing:
        print(f"merge_gate: requested series absent from the report: "
              f"{','.join(missing)}")
        return 0 if args.warn_only else 1

    failures = 0
    checked = 0
    for name in names:
        for size, rate in sorted(series[name].items(),
                                 key=lambda kv: int(kv[0])):
            base = reference.get(size)
            if base is None or base <= 0.0:
                continue
            checked += 1
            ratio = rate / base
            if ratio < args.min_ratio:
                failures += 1
            print(f"  {'ok' if ratio >= args.min_ratio else 'FAIL'}: "
                  f"{name}/{size}  {ratio:.2f}x reference "
                  f"(bar {args.min_ratio:.1f}x)")
    print(f"merge_gate: {checked} series/size points checked against "
          f"BM_SparseMergeReference, {failures} below the bar")
    if failures and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
