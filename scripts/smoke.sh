#!/usr/bin/env bash
# Runs every registered bench at a reduced scale and fails on the first
# non-zero exit, so bench bit-rot is caught cheaply in CI.
#
# Usage: scripts/smoke.sh [build-dir]   (default: build)
#
# TINPROV_SMOKE_LOG, when set, collects every bench's stdout into that
# file (CI uploads it as the bench-smoke-<compiler> artifact); without
# it output is discarded as before. TINPROV_LAZY_SMOKE_LOG additionally
# captures bench_lazy's output on its own for the per-job bench-lazy
# artifact, and TINPROV_SERVE_SMOKE_LOG does the same for bench_serve's
# serving-latency table. TINPROV_RECORDER_SMOKE_OUT names the file the
# ops-endpoint smoke leaves the Recorder time-series JSON in.
set -euo pipefail

BUILD_DIR="${1:-build}"
export TINPROV_SCALE="${TINPROV_SCALE:-0.1}"
LOG_FILE="${TINPROV_SMOKE_LOG:-/dev/null}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — configure and build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

run() {
  local name="$1"
  shift
  local exe="${BUILD_DIR}/bench/${name}"
  if [[ ! -x "${exe}" ]]; then
    echo "--- skipping ${name} (not built)"
    return 0
  fi
  echo "--- ${name} (TINPROV_SCALE=${TINPROV_SCALE})"
  echo "=== ${name} (TINPROV_SCALE=${TINPROV_SCALE}) ===" >>"${LOG_FILE}"
  "${exe}" "$@" >>"${LOG_FILE}"
  echo "    OK"
}

# Pins TINPROV_SCALE for one bench regardless of the caller's value: the
# scalable benches sweep W/C/k grids, so their smoke cost is bounded
# even when someone exports a large scale for the classic benches.
run_pinned() {
  local scale="$1"
  shift
  TINPROV_SCALE="${scale}" run "$@"
}

# Like run, but additionally copies the bench's output into its own file
# when extra_log is non-empty — CI uploads bench_lazy's crossover table
# as a separate per-job artifact without paying a second run.
run_logged() {
  local extra_log="$1"
  shift
  if [[ -z "${extra_log}" ]]; then
    run "$@"
    return
  fi
  local saved_log="${LOG_FILE}"
  LOG_FILE="${extra_log}"
  : >"${extra_log}"
  run "$@"
  LOG_FILE="${saved_log}"
  if [[ "${saved_log}" != "/dev/null" ]]; then
    cat "${extra_log}" >>"${saved_log}"
  fi
}

run bench_datasets
run bench_policies
run bench_cumulative
run_pinned 0.1 bench_selective_grouped
run_pinned 0.1 bench_windowing
run_pinned 0.1 bench_budget
# bench_lazy's query cost is O(queries x stream) per strategy, so its
# smoke scale stays pinned like the scalable sweeps above; its output
# additionally lands in TINPROV_LAZY_SMOKE_LOG when set.
TINPROV_SCALE=0.1 run_logged "${TINPROV_LAZY_SMOKE_LOG:-}" bench_lazy
# bench_parallel replays each preset once per thread count (and each
# shard re-scans the stream), so its smoke scale stays pinned too.
run_pinned 0.1 bench_parallel
# bench_stream replays each preset three times (materialized, streaming,
# streaming+sharded) plus the 1x/4x buffering-flatness check, so its
# smoke scale stays pinned like the other multi-pass harnesses.
run_pinned 0.1 bench_stream
# bench_serve runs one full ingest per reader count with closed-loop
# reader threads, so its smoke scale stays pinned too; its latency table
# additionally lands in TINPROV_SERVE_SMOKE_LOG when set (CI uploads it
# as the per-job bench-serve artifact).
TINPROV_SCALE=0.1 run_logged "${TINPROV_SERVE_SMOKE_LOG:-}" bench_serve
# bench_storage writes and recovers real on-disk logs; pinned so the
# smoke's disk and fsync cost stays bounded.
run_pinned 0.1 bench_storage
run bench_micro --benchmark_min_time=0.01

# Crash-recovery smoke: kill -9 a durable ingest mid-flight and verify
# the restart resumes bit-identically (scripts/crash_smoke.sh drives
# bench_storage's ingest/verify roles). One round per tracker here —
# the dedicated CI step runs the longer loop.
echo "--- crash smoke"
"$(dirname "$0")/crash_smoke.sh" "${BUILD_DIR}" 1

# Observability smoke: the obs unit tests guard the metrics/trace
# exporters the trace check below depends on, so run them first when the
# build has tests at all.
if [[ -f "${BUILD_DIR}/CTestTestfile.cmake" ]]; then
  echo "--- ctest -L obs"
  ctest --test-dir "${BUILD_DIR}" -L obs --output-on-failure
fi

# Ops-endpoint smoke: bench_serve's TINPROV_OPS_PORT mode stands up a
# real ProvenanceService with EnableOpsServer on an ephemeral port and
# holds while this script curls the live endpoints, validating status
# codes and JSON shape with python3. Builds without threads publish
# "skip" in the port file instead of a port. The recorder's time-series
# JSON lands in TINPROV_RECORDER_SMOKE_OUT (CI uploads it per leg).
if [[ -x "${BUILD_DIR}/bench/bench_serve" ]] && command -v curl >/dev/null; then
  echo "--- ops endpoint smoke"
  OPS_PORT_FILE="$(mktemp /tmp/tinprov-ops-port.XXXXXX)"
  RECORDER_OUT="${TINPROV_RECORDER_SMOKE_OUT:-$(mktemp /tmp/tinprov-recorder.XXXXXX.json)}"
  : >"${OPS_PORT_FILE}"
  rm -f "${OPS_PORT_FILE}.done"
  TINPROV_SCALE=0.05 TINPROV_OPS_PORT=0 \
    TINPROV_OPS_PORT_FILE="${OPS_PORT_FILE}" TINPROV_OPS_HOLD_S=60 \
    TINPROV_RECORDER_OUT="${RECORDER_OUT}" \
    "${BUILD_DIR}/bench/bench_serve" >>"${LOG_FILE}" &
  OPS_PID=$!
  for _ in $(seq 1 150); do
    [[ -s "${OPS_PORT_FILE}" ]] && break
    sleep 0.2
  done
  OPS_PORT="$(tr -d '[:space:]' <"${OPS_PORT_FILE}")"
  if [[ "${OPS_PORT}" == "skip" ]]; then
    echo "    skipped (ops server unavailable in this build)"
    touch "${OPS_PORT_FILE}.done"
    wait "${OPS_PID}"
  elif [[ -z "${OPS_PORT}" ]]; then
    echo "error: bench_serve never published its ops port" >&2
    kill "${OPS_PID}" 2>/dev/null || true
    exit 1
  else
    # curl -f fails the script on any non-2xx status; python3 rejects
    # malformed JSON and missing fields.
    BASE="http://127.0.0.1:${OPS_PORT}"
    curl -fsS "${BASE}/metrics" | grep -q '# TYPE'
    curl -fsS "${BASE}/metricsz" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert "counters" in doc and "gauges" in doc, sorted(doc)
'
    curl -fsS "${BASE}/healthz" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert doc["healthy"] is True, doc
assert "serve.epoch_age" in doc["checks"], sorted(doc["checks"])
assert "ingest.watermark_lag" in doc["checks"], sorted(doc["checks"])
'
    curl -fsS "${BASE}/statusz" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
for key in ("service", "epoch", "ingest", "queries", "memory", "recorder"):
    assert key in doc, f"statusz missing {key}"
assert doc["epoch"]["prefix"] >= 0
'
    curl -fsS "${BASE}/tracez?slow=1" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
assert "queries" in doc, sorted(doc)
assert doc["recorded"] >= 1, doc["recorded"]  # ops mode marks all slow
'
    touch "${OPS_PORT_FILE}.done"
    wait "${OPS_PID}"
    python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["samples"], "recorder exported no samples"
' "${RECORDER_OUT}"
    echo "    OK (port ${OPS_PORT}, recorder ${RECORDER_OUT})"
  fi
  rm -f "${OPS_PORT_FILE}" "${OPS_PORT_FILE}.done"
fi

# Trace smoke: re-run bench_stream with TINPROV_TRACE set and verify the
# exported chrome://tracing JSON parses and covers the ingest spans. The
# shard-replay/exchange spans are only required when this machine can
# actually take the parallel path — bench_stream uses hardware threads,
# and a single-CPU box falls back to the sequential replay.
TRACE_FILE="${TINPROV_TRACE_SMOKE_OUT:-$(mktemp /tmp/tinprov-trace.XXXXXX.json)}"
if [[ -x "${BUILD_DIR}/bench/bench_stream" ]]; then
  echo "--- trace smoke (TINPROV_TRACE=${TRACE_FILE})"
  TINPROV_SCALE=0.1 TINPROV_TRACE="${TRACE_FILE}" \
    "${BUILD_DIR}/bench/bench_stream" >>"${LOG_FILE}"
  if [[ -s "${TRACE_FILE}" ]]; then
    python3 - "${TRACE_FILE}" <<'PY'
import json
import os
import sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
names = {e["name"] for e in events}
assert events, "trace file has no events"
assert "ingest.batch" in names, f"no ingest span in {sorted(names)}"
if (os.cpu_count() or 1) > 1:
    assert "replay.shard" in names, f"no shard span in {sorted(names)}"
    assert "replay.exchange" in names, f"no exchange span in {sorted(names)}"
print(f"    OK ({len(events)} events, {len(names)} span names)")
PY
  else
    # A TINPROV_METRICS=OFF build never registers the atexit exporter.
    echo "    skipped (no trace emitted — metrics disabled in this build?)"
  fi
fi

echo "smoke: all registered benches completed"
