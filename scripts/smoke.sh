#!/usr/bin/env bash
# Runs every registered bench at a reduced scale and fails on the first
# non-zero exit, so bench bit-rot is caught cheaply in CI.
#
# Usage: scripts/smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
export TINPROV_SCALE="${TINPROV_SCALE:-0.1}"

if [[ ! -d "${BUILD_DIR}/bench" ]]; then
  echo "error: ${BUILD_DIR}/bench not found — configure and build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

run() {
  local name="$1"
  shift
  local exe="${BUILD_DIR}/bench/${name}"
  if [[ ! -x "${exe}" ]]; then
    echo "--- skipping ${name} (not built)"
    return 0
  fi
  echo "--- ${name} (TINPROV_SCALE=${TINPROV_SCALE})"
  "${exe}" "$@" >/dev/null
  echo "    OK"
}

run bench_datasets
run bench_policies
run bench_cumulative
run bench_micro --benchmark_min_time=0.01

echo "smoke: all registered benches completed"
