#include "analytics/experiment.h"

#include <algorithm>
#include <utility>

#include "lazy/replay.h"
#include "obs/trace.h"
#include "policies/proportional_dense.h"
#include "policies/proportional_sparse.h"
#include "scalable/grouped.h"
#include "scalable/selective.h"
#include "scalable/windowed.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace tinprov {

StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("null tracker for " + label);
  }
  const auto& stream = tin.interactions();
  // ~64 samples across the run: enough to catch the peak of policies
  // whose footprint is not monotone (e.g. budgeted tracking later),
  // cheap enough not to distort the timing.
  const size_t sample_every = std::max<size_t>(1, stream.size() / 64);
  size_t peak = tracker->MemoryUsage();
  obs::TraceSpan span("analytics.measure_run", "analytics");
  Stopwatch watch;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Status status = tracker->Process(stream[i]);
    if (!status.ok()) {
      return Status(status.code(), "replaying " + label + " at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
    if ((i + 1) % sample_every == 0) {
      peak = std::max(peak, tracker->MemoryUsage());
    }
  }
  Measurement measurement;
  measurement.seconds = watch.ElapsedSeconds();
  measurement.peak_memory = std::max(peak, tracker->MemoryUsage());
  measurement.feasible = true;
  return measurement;
}

StatusOr<Measurement> MeasureStreamRun(Tracker* tracker,
                                       InteractionStream& stream,
                                       const std::string& label,
                                       IngestStats* ingest_stats) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("null tracker for " + label);
  }
  obs::TraceSpan span("analytics.measure_stream_run", "analytics");
  StreamIngestor ingestor(tracker);
  const Status status = ingestor.IngestAll(stream);
  if (!status.ok()) {
    return Status(status.code(),
                  "streaming " + label + ": " + status.message());
  }
  if (ingest_stats != nullptr) *ingest_stats = ingestor.stats();
  Measurement measurement;
  measurement.seconds = ingestor.stats().seconds;
  measurement.peak_memory =
      std::max(ingestor.stats().tracker_peak_memory, tracker->MemoryUsage());
  measurement.feasible = true;
  return measurement;
}

StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit) {
  if (kind == PolicyKind::kProportionalDense && dense_memory_limit > 0 &&
      DenseMemoryBound(tin.num_vertices()) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  std::unique_ptr<Tracker> tracker = CreateTracker(kind, tin.num_vertices());
  if (tracker == nullptr) {
    return Status::InvalidArgument("unknown policy kind");
  }
  return MeasureRun(tracker.get(), tin,
                    dataset_name + "/" + std::string(PolicyName(kind)));
}

namespace {

Status UnknownTrackerName(std::string_view name) {
  std::string known;
  for (const std::string& candidate : AllTrackerNames()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  return Status::InvalidArgument("unknown tracker name: \"" +
                                 std::string(name) + "\" (expected one of " +
                                 known + ")");
}

}  // namespace

StatusOr<std::unique_ptr<Tracker>> CreateTrackerByName(
    std::string_view name, const Tin& tin, const ScalableParams& params) {
  auto factory = NamedTrackerFactory(name, tin, params);
  if (!factory.ok()) return factory.status();
  std::unique_ptr<Tracker> tracker = (*factory)();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null for \"" +
                            std::string(name) + "\"");
  }
  return tracker;
}

StatusOr<TrackerFactory> NamedTrackerFactory(std::string_view name,
                                             const Tin& tin,
                                             const ScalableParams& params) {
  const size_t n = tin.num_vertices();
  const auto kind = PolicyKindFromName(name);
  if (kind.ok()) {
    return PolicyTrackerFactory(tin, *kind);
  }

  const std::string lower = AsciiLower(name);
  if (lower == "budget") {
    return TrackerFactory([n, budget = params.budget] {
      return std::unique_ptr<Tracker>(
          std::make_unique<BudgetTracker>(n, budget));
    });
  }
  if (lower == "windowed" || lower == "selective" || lower == "grouped") {
    // Label-decomposable trackers are constructed in exactly one place —
    // NamedShardedSpec — and the sequential closure there is the shard
    // factory unrestricted, so the parallel engine and this factory can
    // never configure the same name differently. The selection
    // preprocessing (Selective's scan, Grouped's assignment) still runs
    // once, captured in the closure; per-query construction stays cheap.
    auto spec = NamedShardedSpec(name, tin, params);
    if (!spec.ok()) return spec.status();
    return std::move(spec->sequential);
  }

  return UnknownTrackerName(name);
}

std::vector<std::string> AllTrackerNames() {
  std::vector<std::string> names;
  for (const PolicyKind kind : AllPolicies()) {
    names.emplace_back(PolicyName(kind));
  }
  names.emplace_back("Selective");
  names.emplace_back("Grouped");
  names.emplace_back("Windowed");
  names.emplace_back("Budget");
  return names;
}

namespace {

/// The streaming stand-in for Selective's selection step: a stream
/// cannot be pre-scanned for its top generators, so the tracked set is
/// fixed a priori as the k lowest vertex ids.
std::vector<VertexId> FirstVertices(size_t num_vertices, size_t k) {
  std::vector<VertexId> tracked(std::min(num_vertices, k));
  for (size_t i = 0; i < tracked.size(); ++i) {
    tracked[i] = static_cast<VertexId>(i);
  }
  return tracked;
}

/// Shared body of NamedShardedSpec (tin != nullptr) and StreamShardedSpec
/// (tin == nullptr): the decomposability classification is identical;
/// only Selective's selection step and the non-decomposable fallback
/// factory differ between the materialized and streaming forms.
StatusOr<ShardedSpec> ShardedSpecImpl(std::string_view name,
                                      const DatasetStats& stats,
                                      const ScalableParams& params,
                                      const Tin* tin) {
  ShardedSpec spec;
  const size_t n = stats.num_vertices;
  const auto kind = PolicyKindFromName(name);
  const std::string lower = AsciiLower(name);
  // Order-based policies consume entries across labels, the dense
  // representation is memory-gated, and BudgetTracker's shrink ranks a
  // vertex's whole list — none of those decompose; everything
  // label-linear gets a make_shard closure below, with its selection
  // preprocessing run exactly once and captured.
  if (kind.ok() && *kind == PolicyKind::kProportionalSparse) {
    spec.decomposable = true;
    spec.label_count = n;
    spec.make_shard = [n] {
      return std::make_unique<ProportionalSparseTracker>(n);
    };
  } else if (!kind.ok() && lower == "windowed") {
    spec.decomposable = true;
    spec.label_count = n;
    spec.make_shard = [n, window = params.window] {
      return std::make_unique<WindowedTracker>(n, window);
    };
  } else if (!kind.ok() && lower == "selective") {
    spec.decomposable = true;
    spec.label_count = n;
    spec.make_shard =
        [n, tracked = tin != nullptr
                          ? TopGeneratingVertices(*tin, params.num_tracked)
                          : FirstVertices(n, params.num_tracked)] {
          return std::make_unique<SelectiveTracker>(n, tracked);
        };
  } else if (!kind.ok() && lower == "grouped") {
    const size_t k = std::max<size_t>(1, params.num_groups);
    spec.decomposable = true;
    spec.label_count = k;  // labels are group ids, not vertices
    spec.make_shard = [n, k, groups = RoundRobinGroups(n, k)] {
      return std::make_unique<GroupedTracker>(n, groups, k);
    };
  }

  if (spec.decomposable) {
    // The sequential reference is the shard factory unrestricted, so
    // shard and reference trackers cannot drift apart: the engine's
    // bit-identical contract rests on them sharing one configuration.
    spec.sequential = [factory = spec.make_shard] {
      return std::unique_ptr<Tracker>(factory());
    };
    return spec;
  }
  auto sequential = tin != nullptr
                        ? NamedTrackerFactory(name, *tin, params)
                        : StreamTrackerFactory(name, stats, params);
  if (!sequential.ok()) return sequential.status();
  spec.sequential = *std::move(sequential);
  return spec;
}

}  // namespace

StatusOr<ShardedSpec> NamedShardedSpec(std::string_view name, const Tin& tin,
                                       const ScalableParams& params) {
  return ShardedSpecImpl(name, tin.Stats(), params, &tin);
}

StatusOr<ShardedSpec> StreamShardedSpec(std::string_view name,
                                        const DatasetStats& stats,
                                        const ScalableParams& params) {
  return ShardedSpecImpl(name, stats, params, nullptr);
}

StatusOr<TrackerFactory> StreamTrackerFactory(std::string_view name,
                                              const DatasetStats& stats,
                                              const ScalableParams& params) {
  const size_t n = stats.num_vertices;
  const auto kind = PolicyKindFromName(name);
  if (kind.ok()) {
    return TrackerFactory(
        [n, kind = *kind] { return CreateTracker(kind, n); });
  }

  const std::string lower = AsciiLower(name);
  if (lower == "budget") {
    return TrackerFactory([n, budget = params.budget] {
      return std::unique_ptr<Tracker>(
          std::make_unique<BudgetTracker>(n, budget));
    });
  }
  if (lower == "windowed" || lower == "selective" || lower == "grouped") {
    // Same single-construction-site discipline as NamedTrackerFactory:
    // the spec's unrestricted sequential closure IS the factory.
    auto spec = StreamShardedSpec(name, stats, params);
    if (!spec.ok()) return spec.status();
    return std::move(spec->sequential);
  }

  return UnknownTrackerName(name);
}

StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          const Tin& tin,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit) {
  // Same feasibility gate as MeasurePolicy; applied here directly so
  // every branch labels its run with the caller's name, nothing more.
  const auto kind = PolicyKindFromName(name);
  if (kind.ok() && *kind == PolicyKind::kProportionalDense &&
      dense_memory_limit > 0 &&
      DenseMemoryBound(tin.num_vertices()) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  auto tracker = CreateTrackerByName(name, tin, params);
  if (!tracker.ok()) return tracker.status();
  return MeasureRun(tracker->get(), tin, std::string(name));
}

StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          const Tin& tin,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit,
                                          const ParallelParams& parallel) {
  auto spec = NamedShardedSpec(name, tin, params);
  if (!spec.ok()) return spec.status();
  const bool decomposable = spec->decomposable;
  ShardedReplayEngine engine(tin, *std::move(spec), parallel);
  if (!decomposable || engine.ResolvedThreads() <= 1) {
    // Non-decomposable or single-threaded: the classic path measures
    // the same replay and additionally samples the in-run memory peak.
    return MeasureNamedTracker(name, tin, params, dense_memory_limit);
  }
  auto result = engine.Replay();
  if (!result.ok()) return result.status();
  Measurement measurement;
  // replay_seconds excludes the exchange/materialization phase, making
  // this number comparable to MeasureRun's Process()-loop timing: a
  // sequential tracker needs no exchange to become queryable, and
  // neither do the shard trackers (QueryPrefix interleaves on demand).
  measurement.seconds = result->replay_seconds;
  measurement.peak_memory = result->num_entries * sizeof(ProvPair) +
                            tin.num_vertices() * sizeof(double);
  measurement.parallel = result->used_parallel_path;
  return measurement;
}

StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          InteractionStream& stream,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit,
                                          IngestStats* ingest_stats) {
  const DatasetStats stats = stream.Stats();
  const auto kind = PolicyKindFromName(name);
  if (kind.ok() && *kind == PolicyKind::kProportionalDense &&
      dense_memory_limit > 0 &&
      DenseMemoryBound(stats.num_vertices) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  auto factory = StreamTrackerFactory(name, stats, params);
  if (!factory.ok()) return factory.status();
  std::unique_ptr<Tracker> tracker = (*factory)();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null for \"" +
                            std::string(name) + "\"");
  }
  return MeasureStreamRun(tracker.get(), stream, std::string(name),
                          ingest_stats);
}

}  // namespace tinprov
