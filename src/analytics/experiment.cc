#include "analytics/experiment.h"

#include <algorithm>
#include <utility>

#include "lazy/replay.h"
#include "policies/proportional_dense.h"
#include "scalable/grouped.h"
#include "scalable/selective.h"
#include "scalable/windowed.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace tinprov {

StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("null tracker for " + label);
  }
  const auto& stream = tin.interactions();
  // ~64 samples across the run: enough to catch the peak of policies
  // whose footprint is not monotone (e.g. budgeted tracking later),
  // cheap enough not to distort the timing.
  const size_t sample_every = std::max<size_t>(1, stream.size() / 64);
  size_t peak = tracker->MemoryUsage();
  Stopwatch watch;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Status status = tracker->Process(stream[i]);
    if (!status.ok()) {
      return Status(status.code(), "replaying " + label + " at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
    if ((i + 1) % sample_every == 0) {
      peak = std::max(peak, tracker->MemoryUsage());
    }
  }
  Measurement measurement;
  measurement.seconds = watch.ElapsedSeconds();
  measurement.peak_memory = std::max(peak, tracker->MemoryUsage());
  measurement.feasible = true;
  return measurement;
}

StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit) {
  if (kind == PolicyKind::kProportionalDense && dense_memory_limit > 0 &&
      DenseMemoryBound(tin.num_vertices()) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  std::unique_ptr<Tracker> tracker = CreateTracker(kind, tin.num_vertices());
  if (tracker == nullptr) {
    return Status::InvalidArgument("unknown policy kind");
  }
  return MeasureRun(tracker.get(), tin,
                    dataset_name + "/" + std::string(PolicyName(kind)));
}

StatusOr<std::unique_ptr<Tracker>> CreateTrackerByName(
    std::string_view name, const Tin& tin, const ScalableParams& params) {
  auto factory = NamedTrackerFactory(name, tin, params);
  if (!factory.ok()) return factory.status();
  std::unique_ptr<Tracker> tracker = (*factory)();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null for \"" +
                            std::string(name) + "\"");
  }
  return tracker;
}

StatusOr<TrackerFactory> NamedTrackerFactory(std::string_view name,
                                             const Tin& tin,
                                             const ScalableParams& params) {
  const size_t n = tin.num_vertices();
  const auto kind = PolicyKindFromName(name);
  if (kind.ok()) {
    return PolicyTrackerFactory(tin, *kind);
  }

  const std::string lower = AsciiLower(name);
  if (lower == "windowed") {
    return TrackerFactory([n, window = params.window] {
      return std::unique_ptr<Tracker>(
          std::make_unique<WindowedTracker>(n, window));
    });
  }
  if (lower == "budget") {
    return TrackerFactory([n, budget = params.budget] {
      return std::unique_ptr<Tracker>(
          std::make_unique<BudgetTracker>(n, budget));
    });
  }
  if (lower == "selective") {
    // The selection scan runs once, outside the closure: it is the
    // paper's preprocessing step, excluded from per-query tracking cost.
    return TrackerFactory(
        [n, tracked = TopGeneratingVertices(tin, params.num_tracked)] {
          return std::unique_ptr<Tracker>(
              std::make_unique<SelectiveTracker>(n, tracked));
        });
  }
  if (lower == "grouped") {
    const size_t k = std::max<size_t>(1, params.num_groups);
    return TrackerFactory([n, k, groups = RoundRobinGroups(n, k)] {
      return std::unique_ptr<Tracker>(
          std::make_unique<GroupedTracker>(n, groups, k));
    });
  }

  std::string known;
  for (const std::string& candidate : AllTrackerNames()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  return Status::InvalidArgument("unknown tracker name: \"" +
                                 std::string(name) + "\" (expected one of " +
                                 known + ")");
}

std::vector<std::string> AllTrackerNames() {
  std::vector<std::string> names;
  for (const PolicyKind kind : AllPolicies()) {
    names.emplace_back(PolicyName(kind));
  }
  names.emplace_back("Selective");
  names.emplace_back("Grouped");
  names.emplace_back("Windowed");
  names.emplace_back("Budget");
  return names;
}

StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          const Tin& tin,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit) {
  // Same feasibility gate as MeasurePolicy; applied here directly so
  // every branch labels its run with the caller's name, nothing more.
  const auto kind = PolicyKindFromName(name);
  if (kind.ok() && *kind == PolicyKind::kProportionalDense &&
      dense_memory_limit > 0 &&
      DenseMemoryBound(tin.num_vertices()) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  auto tracker = CreateTrackerByName(name, tin, params);
  if (!tracker.ok()) return tracker.status();
  return MeasureRun(tracker->get(), tin, std::string(name));
}

}  // namespace tinprov
