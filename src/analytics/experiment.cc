#include "analytics/experiment.h"

#include <algorithm>

#include "policies/proportional_dense.h"
#include "util/stopwatch.h"

namespace tinprov {

StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("null tracker for " + label);
  }
  const auto& stream = tin.interactions();
  // ~64 samples across the run: enough to catch the peak of policies
  // whose footprint is not monotone (e.g. budgeted tracking later),
  // cheap enough not to distort the timing.
  const size_t sample_every = std::max<size_t>(1, stream.size() / 64);
  size_t peak = tracker->MemoryUsage();
  Stopwatch watch;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Status status = tracker->Process(stream[i]);
    if (!status.ok()) {
      return Status(status.code(), "replaying " + label + " at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
    if ((i + 1) % sample_every == 0) {
      peak = std::max(peak, tracker->MemoryUsage());
    }
  }
  Measurement measurement;
  measurement.seconds = watch.ElapsedSeconds();
  measurement.peak_memory = std::max(peak, tracker->MemoryUsage());
  measurement.feasible = true;
  return measurement;
}

StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit) {
  if (kind == PolicyKind::kProportionalDense && dense_memory_limit > 0 &&
      DenseMemoryBound(tin.num_vertices()) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  std::unique_ptr<Tracker> tracker = CreateTracker(kind, tin.num_vertices());
  if (tracker == nullptr) {
    return Status::InvalidArgument("unknown policy kind");
  }
  return MeasureRun(tracker.get(), tin,
                    dataset_name + "/" + std::string(PolicyName(kind)));
}

}  // namespace tinprov
