#include "analytics/experiment.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "policies/proportional_dense.h"
#include "util/stopwatch.h"

namespace tinprov {

StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("null tracker for " + label);
  }
  const auto& stream = tin.interactions();
  // ~64 samples across the run: enough to catch the peak of policies
  // whose footprint is not monotone (e.g. budgeted tracking later),
  // cheap enough not to distort the timing.
  const size_t sample_every = std::max<size_t>(1, stream.size() / 64);
  size_t peak = tracker->MemoryUsage();
  obs::TraceSpan span("analytics.measure_run", "analytics");
  Stopwatch watch;
  for (size_t i = 0; i < stream.size(); ++i) {
    const Status status = tracker->Process(stream[i]);
    if (!status.ok()) {
      return Status(status.code(), "replaying " + label + " at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
    if ((i + 1) % sample_every == 0) {
      peak = std::max(peak, tracker->MemoryUsage());
    }
  }
  Measurement measurement;
  measurement.seconds = watch.ElapsedSeconds();
  measurement.peak_memory = std::max(peak, tracker->MemoryUsage());
  measurement.feasible = true;
  return measurement;
}

StatusOr<Measurement> MeasureStreamRun(Tracker* tracker,
                                       InteractionStream& stream,
                                       const std::string& label,
                                       IngestStats* ingest_stats) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("null tracker for " + label);
  }
  obs::TraceSpan span("analytics.measure_stream_run", "analytics");
  StreamIngestor ingestor(tracker);
  const Status status = ingestor.IngestAll(stream);
  if (!status.ok()) {
    return Status(status.code(),
                  "streaming " + label + ": " + status.message());
  }
  if (ingest_stats != nullptr) *ingest_stats = ingestor.stats();
  Measurement measurement;
  measurement.seconds = ingestor.stats().seconds;
  measurement.peak_memory =
      std::max(ingestor.stats().tracker_peak_memory, tracker->MemoryUsage());
  measurement.feasible = true;
  return measurement;
}

StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit) {
  if (kind == PolicyKind::kProportionalDense && dense_memory_limit > 0 &&
      DenseMemoryBound(tin.num_vertices()) > dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }
  std::unique_ptr<Tracker> tracker = CreateTracker(kind, tin.num_vertices());
  if (tracker == nullptr) {
    return Status::InvalidArgument("unknown policy kind");
  }
  return MeasureRun(tracker.get(), tin,
                    dataset_name + "/" + std::string(PolicyName(kind)));
}

StatusOr<Measurement> MeasureTracker(const TrackerSpec& spec,
                                     const MeasureOptions& options) {
  if ((options.tin != nullptr) == (options.stream != nullptr)) {
    return Status::InvalidArgument(
        "MeasureOptions must set exactly one of tin and stream");
  }
  const TrackerRegistry& registry = TrackerRegistry::Global();
  const Status valid = registry.Validate(spec);
  if (!valid.ok()) return valid;

  // Same feasibility gate as MeasurePolicy, applied over whichever
  // input is present before any construction work happens.
  const size_t num_vertices = options.tin != nullptr
                                  ? options.tin->num_vertices()
                                  : options.stream->Stats().num_vertices;
  const auto kind = PolicyKindFromName(spec.name);
  if (kind.ok() && *kind == PolicyKind::kProportionalDense &&
      options.dense_memory_limit > 0 &&
      DenseMemoryBound(num_vertices) > options.dense_memory_limit) {
    Measurement measurement;
    measurement.feasible = false;
    return measurement;
  }

  if (options.stream != nullptr) {
    auto tracker = registry.Create(spec, options.stream->Stats());
    if (!tracker.ok()) return tracker.status();
    return MeasureStreamRun(tracker->get(), *options.stream, spec.name,
                            options.ingest_stats);
  }

  const Tin& tin = *options.tin;
  if (options.parallel) {
    auto sharded = registry.Sharded(spec, tin);
    if (!sharded.ok()) return sharded.status();
    const bool decomposable = sharded->decomposable;
    ShardedReplayEngine engine(tin, *std::move(sharded),
                               options.parallel_params);
    if (decomposable && engine.ResolvedThreads() > 1) {
      auto result = engine.Replay();
      if (!result.ok()) return result.status();
      Measurement measurement;
      // replay_seconds excludes the exchange/materialization phase,
      // making this number comparable to MeasureRun's Process()-loop
      // timing: a sequential tracker needs no exchange to become
      // queryable, and neither do the shard trackers (QueryPrefix
      // interleaves on demand).
      measurement.seconds = result->replay_seconds;
      measurement.peak_memory = result->num_entries * sizeof(ProvPair) +
                                tin.num_vertices() * sizeof(double);
      measurement.parallel = result->used_parallel_path;
      return measurement;
    }
    // Non-decomposable or single-threaded: fall through to the classic
    // path, which measures the same replay and additionally samples the
    // in-run memory peak.
  }
  auto tracker = registry.Create(spec, tin);
  if (!tracker.ok()) return tracker.status();
  return MeasureRun(tracker->get(), tin, spec.name);
}

}  // namespace tinprov
