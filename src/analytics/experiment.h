// Measurement harness shared by the table/figure reproduction benches:
// replay a tracker over a TIN or an interaction stream, timing the run
// and sampling peak logical provenance memory, with the paper's
// dense-proportional feasibility gate (the "-" cells of Tables 7-8).
//
// Tracker construction lives in analytics/registry.h (TrackerRegistry);
// the one measurement entry point is MeasureTracker(TrackerSpec,
// MeasureOptions).
#ifndef TINPROV_ANALYTICS_EXPERIMENT_H_
#define TINPROV_ANALYTICS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analytics/registry.h"
#include "core/tin.h"
#include "parallel/sharded_replay.h"
#include "policies/tracker.h"
#include "stream/ingest.h"
#include "util/status.h"

namespace tinprov {

struct Measurement {
  double seconds = 0.0;
  size_t peak_memory = 0;  // peak Tracker::MemoryUsage() during replay
  bool feasible = true;    // false: skipped by the memory gate, no run
  bool parallel = false;   // true: measured via the sharded replay engine
};

/// Replays `tin` through `tracker`, returning wall time and the peak of
/// the tracker's logical memory sampled throughout the run. `label` is
/// used in error messages only.
StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label);

/// Streaming MeasureRun: drives `tracker` from `stream` through a
/// StreamIngestor (micro-batched, watermark-checked, arena pre-sizing
/// from stream.Stats()). The memory peak is sampled once per batch —
/// coarser than MeasureRun's ~64 in-run samples, but Tin-free. When
/// `ingest_stats` is non-null it receives the full ingest accounting
/// (watermark, batches, peak buffering).
StatusOr<Measurement> MeasureStreamRun(Tracker* tracker,
                                       InteractionStream& stream,
                                       const std::string& label,
                                       IngestStats* ingest_stats = nullptr);

/// Creates a tracker for `kind` and measures it. When `kind` is the
/// dense proportional policy and its worst-case memory over
/// tin.num_vertices() exceeds `dense_memory_limit`, returns a
/// measurement with feasible == false instead of running — reproducing
/// the paper's feasibility pattern. A zero limit disables the gate.
StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit);

/// Everything that varies a measurement besides the tracker itself.
/// Exactly one input must be set: `tin` (materialized replay) or
/// `stream` (Tin-free streaming ingest). The remaining fields refine
/// the run:
///   - dense_memory_limit: the paper's feasibility gate for the dense
///     proportional policy, applied over the input's vertex count; a
///     zero limit disables the gate (feasible == false short-circuits
///     the run, exactly as MeasurePolicy does).
///   - parallel + parallel_params: replay `tin` through the sharded
///     engine when the spec is decomposable and more than one shard
///     resolves (results stay bit-identical either way — see
///     parallel/sharded_replay.h). On the parallel path peak_memory is
///     the end-of-replay logical footprint (per-interaction peak
///     sampling would serialize the shards). Ignored for streams.
///   - ingest_stats: receives the full ingest accounting on the
///     streaming path (watermark, batches, peak buffering).
struct MeasureOptions {
  const Tin* tin = nullptr;
  InteractionStream* stream = nullptr;
  size_t dense_memory_limit = 0;
  bool parallel = false;
  ParallelParams parallel_params;
  IngestStats* ingest_stats = nullptr;
};

/// The one measurement entry point: measures `spec` under `options`.
/// Replaces the former MeasureNamedTracker overload family — new knobs
/// become MeasureOptions fields, not signatures. Streaming inputs
/// require TrackerMode::kStreaming on the spec (construction from the
/// dataset's shape alone is part of the streaming contract).
StatusOr<Measurement> MeasureTracker(const TrackerSpec& spec,
                                     const MeasureOptions& options);

}  // namespace tinprov

#endif  // TINPROV_ANALYTICS_EXPERIMENT_H_
