// Measurement harness shared by the table/figure reproduction benches:
// replay a tracker over a TIN, timing the run and sampling peak logical
// provenance memory, with the paper's dense-proportional feasibility
// gate (the "-" cells of Tables 7-8).
#ifndef TINPROV_ANALYTICS_EXPERIMENT_H_
#define TINPROV_ANALYTICS_EXPERIMENT_H_

#include <string>

#include "core/tin.h"
#include "policies/tracker.h"
#include "util/status.h"

namespace tinprov {

struct Measurement {
  double seconds = 0.0;
  size_t peak_memory = 0;  // peak Tracker::MemoryUsage() during replay
  bool feasible = true;    // false: skipped by the memory gate, no run
};

/// Replays `tin` through `tracker`, returning wall time and the peak of
/// the tracker's logical memory sampled throughout the run. `label` is
/// used in error messages only.
StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label);

/// Creates a tracker for `kind` and measures it. When `kind` is the
/// dense proportional policy and its worst-case memory over
/// tin.num_vertices() exceeds `dense_memory_limit`, returns a
/// measurement with feasible == false instead of running — reproducing
/// the paper's feasibility pattern. A zero limit disables the gate.
StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit);

}  // namespace tinprov

#endif  // TINPROV_ANALYTICS_EXPERIMENT_H_
