// Measurement harness shared by the table/figure reproduction benches:
// replay a tracker over a TIN, timing the run and sampling peak logical
// provenance memory, with the paper's dense-proportional feasibility
// gate (the "-" cells of Tables 7-8).
#ifndef TINPROV_ANALYTICS_EXPERIMENT_H_
#define TINPROV_ANALYTICS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/tin.h"
#include "parallel/sharded_replay.h"
#include "policies/tracker.h"
#include "scalable/budget.h"
#include "stream/ingest.h"
#include "util/status.h"

namespace tinprov {

struct Measurement {
  double seconds = 0.0;
  size_t peak_memory = 0;  // peak Tracker::MemoryUsage() during replay
  bool feasible = true;    // false: skipped by the memory gate, no run
  bool parallel = false;   // true: measured via the sharded replay engine
};

/// Replays `tin` through `tracker`, returning wall time and the peak of
/// the tracker's logical memory sampled throughout the run. `label` is
/// used in error messages only.
StatusOr<Measurement> MeasureRun(Tracker* tracker, const Tin& tin,
                                 const std::string& label);

/// Streaming MeasureRun: drives `tracker` from `stream` through a
/// StreamIngestor (micro-batched, watermark-checked, arena pre-sizing
/// from stream.Stats()). The memory peak is sampled once per batch —
/// coarser than MeasureRun's ~64 in-run samples, but Tin-free. When
/// `ingest_stats` is non-null it receives the full ingest accounting
/// (watermark, batches, peak buffering).
StatusOr<Measurement> MeasureStreamRun(Tracker* tracker,
                                       InteractionStream& stream,
                                       const std::string& label,
                                       IngestStats* ingest_stats = nullptr);

/// Creates a tracker for `kind` and measures it. When `kind` is the
/// dense proportional policy and its worst-case memory over
/// tin.num_vertices() exceeds `dense_memory_limit`, returns a
/// measurement with feasible == false instead of running — reproducing
/// the paper's feasibility pattern. A zero limit disables the gate.
StatusOr<Measurement> MeasurePolicy(PolicyKind kind, const Tin& tin,
                                    const std::string& dataset_name,
                                    size_t dense_memory_limit);

/// Parameters for the scalable trackers when constructed by name. The
/// defaults give every tracker a sensible mid-range configuration; the
/// scalable benches sweep these explicitly instead.
struct ScalableParams {
  size_t window = 4096;     // WindowedTracker reset period
  size_t num_tracked = 32;  // SelectiveTracker: top-k generating vertices
  size_t num_groups = 32;   // GroupedTracker: round-robin group count
  BudgetConfig budget;      // BudgetTracker capacity / keep fraction
};

/// Builds any factory-constructible tracker by display name,
/// case-insensitively: the seven PolicyName() policies plus "Windowed",
/// "Budget", "Selective" (tracked set = TopGeneratingVertices over
/// `tin`), and "Grouped" (round-robin groups). Unknown names yield
/// InvalidArgument listing the accepted names.
StatusOr<std::unique_ptr<Tracker>> CreateTrackerByName(
    std::string_view name, const Tin& tin, const ScalableParams& params);

/// The construction behind CreateTrackerByName, packaged as a reusable
/// closure for the lazy/ engines, which build one fresh tracker per
/// query (LazyReplayEngine) or per snapshot restore (TimeTravelIndex).
/// Selection preprocessing — Selective's TopGeneratingVertices scan,
/// Grouped's assignment — runs once here, not per construction, so a
/// lazy query never re-pays the paper's selection step. Name resolution
/// matches CreateTrackerByName exactly.
StatusOr<TrackerFactory> NamedTrackerFactory(std::string_view name,
                                             const Tin& tin,
                                             const ScalableParams& params);

/// Tin-free NamedTrackerFactory for streaming pipelines: resolves the
/// same names from the dataset's shape alone. One semantic difference
/// is forced by streaming: "Selective" cannot pre-scan the stream for
/// its top generators (the selection step needs a materialized log), so
/// it tracks the params.num_tracked lowest vertex ids — a fixed a
/// priori set. Every other name is configured identically to its
/// materialized counterpart.
StatusOr<TrackerFactory> StreamTrackerFactory(std::string_view name,
                                              const DatasetStats& stats,
                                              const ScalableParams& params);

/// Every name CreateTrackerByName accepts, in reporting order: the
/// Table 7/8 policies first, then the Section 5.2-5.3 scalable trackers.
std::vector<std::string> AllTrackerNames();

/// Measures the named tracker over `tin` with MeasureRun semantics,
/// labelling the run with `name`. The dense feasibility gate applies
/// exactly as in MeasurePolicy; scalable names are built from `params`
/// and always run.
StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          const Tin& tin,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit);

/// Sharded-replay description of the named tracker for the parallel
/// engine. Name resolution matches CreateTrackerByName; selection
/// preprocessing (Selective's scan, Grouped's assignment) runs once
/// here. Pro-rata trackers with label-linear semantics — Prop-sparse,
/// Selective, Grouped, Windowed — come back decomposable; every other
/// name yields a sequential-only spec the engine still accepts, so
/// callers can pass any factory name.
StatusOr<ShardedSpec> NamedShardedSpec(std::string_view name, const Tin& tin,
                                       const ScalableParams& params);

/// Tin-free NamedShardedSpec for the engine's streaming form
/// (ShardedReplayEngine over DatasetStats + ReplayStream). Same
/// decomposability classification; "Selective" uses the a-priori
/// tracked set StreamTrackerFactory documents.
StatusOr<ShardedSpec> StreamShardedSpec(std::string_view name,
                                        const DatasetStats& stats,
                                        const ScalableParams& params);

/// Like MeasureNamedTracker, but replays through the parallel sharded
/// engine when `parallel` resolves to more than one shard and the name
/// is decomposable (results stay bit-identical either way — see
/// parallel/sharded_replay.h). On the parallel path peak_memory is the
/// end-of-replay logical footprint (per-interaction peak sampling would
/// serialize the shards).
StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          const Tin& tin,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit,
                                          const ParallelParams& parallel);

/// Streaming overload of MeasureNamedTracker: constructs the tracker
/// from stream.Stats() alone (StreamTrackerFactory — no materialized
/// log anywhere in the pipeline) and drives it with MeasureStreamRun.
/// The dense feasibility gate applies over stats.num_vertices.
StatusOr<Measurement> MeasureNamedTracker(std::string_view name,
                                          InteractionStream& stream,
                                          const ScalableParams& params,
                                          size_t dense_memory_limit,
                                          IngestStats* ingest_stats = nullptr);

}  // namespace tinprov

#endif  // TINPROV_ANALYTICS_EXPERIMENT_H_
