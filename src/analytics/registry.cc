#include "analytics/registry.h"

#include <algorithm>
#include <utility>

#include "policies/proportional_sparse.h"
#include "scalable/grouped.h"
#include "scalable/selective.h"
#include "scalable/windowed.h"
#include "util/strings.h"

namespace tinprov {

namespace {

Status UnknownTrackerName(std::string_view name) {
  std::string known;
  for (const std::string& candidate : TrackerRegistry::Global().Names()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  return Status::InvalidArgument("unknown tracker name: \"" +
                                 std::string(name) + "\" (expected one of " +
                                 known + ")");
}

/// The streaming stand-in for Selective's selection step: a stream
/// cannot be pre-scanned for its top generators, so the tracked set is
/// fixed a priori as the k lowest vertex ids.
std::vector<VertexId> FirstVertices(size_t num_vertices, size_t k) {
  std::vector<VertexId> tracked(std::min(num_vertices, k));
  for (size_t i = 0; i < tracked.size(); ++i) {
    tracked[i] = static_cast<VertexId>(i);
  }
  return tracked;
}

/// Shared body of the two Sharded() overloads (tin != nullptr iff the
/// spec resolved in materialized mode with a log available): the
/// decomposability classification is identical; only Selective's
/// selection step and the non-decomposable fallback factory differ
/// between the materialized and streaming forms.
StatusOr<ShardedSpec> ShardedSpecImpl(const TrackerRegistry& registry,
                                      const TrackerSpec& tracker_spec,
                                      const DatasetStats& stats,
                                      const Tin* tin) {
  ShardedSpec spec;
  const ScalableParams& params = tracker_spec.params;
  const size_t n = stats.num_vertices;
  const auto kind = PolicyKindFromName(tracker_spec.name);
  const std::string lower = AsciiLower(tracker_spec.name);
  // Order-based policies consume entries across labels, the dense
  // representation is memory-gated, and BudgetTracker's shrink ranks a
  // vertex's whole list — none of those decompose; everything
  // label-linear gets a make_shard closure below, with its selection
  // preprocessing run exactly once and captured.
  if (kind.ok() && *kind == PolicyKind::kProportionalSparse) {
    spec.decomposable = true;
    spec.label_count = n;
    spec.make_shard = [n] {
      return std::make_unique<ProportionalSparseTracker>(n);
    };
  } else if (!kind.ok() && lower == "windowed") {
    spec.decomposable = true;
    spec.label_count = n;
    spec.make_shard = [n, window = params.window] {
      return std::make_unique<WindowedTracker>(n, window);
    };
  } else if (!kind.ok() && lower == "selective") {
    spec.decomposable = true;
    spec.label_count = n;
    spec.make_shard =
        [n, tracked = tin != nullptr
                          ? TopGeneratingVertices(*tin, params.num_tracked)
                          : FirstVertices(n, params.num_tracked)] {
          return std::make_unique<SelectiveTracker>(n, tracked);
        };
  } else if (!kind.ok() && lower == "grouped") {
    const size_t k = std::max<size_t>(1, params.num_groups);
    spec.decomposable = true;
    spec.label_count = k;  // labels are group ids, not vertices
    spec.make_shard = [n, k, groups = RoundRobinGroups(n, k)] {
      return std::make_unique<GroupedTracker>(n, groups, k);
    };
  }

  if (spec.decomposable) {
    // The sequential reference is the shard factory unrestricted, so
    // shard and reference trackers cannot drift apart: the engine's
    // bit-identical contract rests on them sharing one configuration.
    spec.sequential = [factory = spec.make_shard] {
      return std::unique_ptr<Tracker>(factory());
    };
    return spec;
  }
  auto sequential = tin != nullptr ? registry.Factory(tracker_spec, *tin)
                                   : registry.Factory(tracker_spec, stats);
  if (!sequential.ok()) return sequential.status();
  spec.sequential = *std::move(sequential);
  return spec;
}

StatusOr<std::unique_ptr<Tracker>> BuildOne(StatusOr<TrackerFactory> factory,
                                            const TrackerSpec& spec) {
  if (!factory.ok()) return factory.status();
  std::unique_ptr<Tracker> tracker = (*factory)();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null for \"" +
                            spec.name + "\"");
  }
  return tracker;
}

}  // namespace

const TrackerRegistry& TrackerRegistry::Global() {
  static const TrackerRegistry registry;
  return registry;
}

std::vector<std::string> TrackerRegistry::Names() const {
  std::vector<std::string> names;
  for (const PolicyKind kind : AllPolicies()) {
    names.emplace_back(PolicyName(kind));
  }
  names.emplace_back("Selective");
  names.emplace_back("Grouped");
  names.emplace_back("Windowed");
  names.emplace_back("Budget");
  return names;
}

Status TrackerRegistry::Validate(const TrackerSpec& spec) const {
  if (PolicyKindFromName(spec.name).ok()) return Status::Ok();
  const std::string lower = AsciiLower(spec.name);
  if (lower == "budget" || lower == "windowed" || lower == "selective" ||
      lower == "grouped") {
    return Status::Ok();
  }
  return UnknownTrackerName(spec.name);
}

StatusOr<TrackerFactory> TrackerRegistry::Factory(const TrackerSpec& spec,
                                                  const Tin& tin) const {
  if (spec.mode == TrackerMode::kStreaming) {
    // Streaming resolution is defined over the dataset's shape alone;
    // routing through the stats overload keeps that true even when a
    // log happens to be available.
    return Factory(spec, tin.Stats());
  }
  const size_t n = tin.num_vertices();
  const auto kind = PolicyKindFromName(spec.name);
  if (kind.ok()) {
    return TrackerFactory([n, kind = *kind] { return CreateTracker(kind, n); });
  }

  const std::string lower = AsciiLower(spec.name);
  if (lower == "budget") {
    return TrackerFactory([n, budget = spec.params.budget] {
      return std::unique_ptr<Tracker>(
          std::make_unique<BudgetTracker>(n, budget));
    });
  }
  if (lower == "windowed" || lower == "selective" || lower == "grouped") {
    // Label-decomposable trackers are constructed in exactly one place
    // — Sharded() — and the sequential closure there is the shard
    // factory unrestricted, so the parallel engine and this factory can
    // never configure the same name differently. The selection
    // preprocessing (Selective's scan, Grouped's assignment) still runs
    // once, captured in the closure; per-query construction stays cheap.
    auto sharded = Sharded(spec, tin);
    if (!sharded.ok()) return sharded.status();
    return std::move(sharded->sequential);
  }

  return UnknownTrackerName(spec.name);
}

StatusOr<TrackerFactory> TrackerRegistry::Factory(
    const TrackerSpec& spec, const DatasetStats& stats) const {
  if (spec.mode == TrackerMode::kMaterialized) {
    return Status::InvalidArgument(
        "materialized-mode spec \"" + spec.name +
        "\" resolved from DatasetStats alone: selection preprocessing "
        "needs a log — pass a Tin or set TrackerMode::kStreaming");
  }
  const size_t n = stats.num_vertices;
  const auto kind = PolicyKindFromName(spec.name);
  if (kind.ok()) {
    return TrackerFactory([n, kind = *kind] { return CreateTracker(kind, n); });
  }

  const std::string lower = AsciiLower(spec.name);
  if (lower == "budget") {
    return TrackerFactory([n, budget = spec.params.budget] {
      return std::unique_ptr<Tracker>(
          std::make_unique<BudgetTracker>(n, budget));
    });
  }
  if (lower == "windowed" || lower == "selective" || lower == "grouped") {
    // Same single-construction-site discipline as the materialized
    // overload: the spec's unrestricted sequential closure IS the
    // factory.
    auto sharded = Sharded(spec, stats);
    if (!sharded.ok()) return sharded.status();
    return std::move(sharded->sequential);
  }

  return UnknownTrackerName(spec.name);
}

StatusOr<std::unique_ptr<Tracker>> TrackerRegistry::Create(
    const TrackerSpec& spec, const Tin& tin) const {
  return BuildOne(Factory(spec, tin), spec);
}

StatusOr<std::unique_ptr<Tracker>> TrackerRegistry::Create(
    const TrackerSpec& spec, const DatasetStats& stats) const {
  return BuildOne(Factory(spec, stats), spec);
}

StatusOr<ShardedSpec> TrackerRegistry::Sharded(const TrackerSpec& spec,
                                               const Tin& tin) const {
  // Streaming mode keeps Selective's a-priori tracked set even though a
  // log is present, matching what Factory(spec, tin) would build.
  const Tin* log = spec.mode == TrackerMode::kMaterialized ? &tin : nullptr;
  return ShardedSpecImpl(*this, spec, tin.Stats(), log);
}

StatusOr<ShardedSpec> TrackerRegistry::Sharded(
    const TrackerSpec& spec, const DatasetStats& stats) const {
  if (spec.mode == TrackerMode::kMaterialized) {
    return Status::InvalidArgument(
        "materialized-mode spec \"" + spec.name +
        "\" resolved from DatasetStats alone: selection preprocessing "
        "needs a log — pass a Tin or set TrackerMode::kStreaming");
  }
  return ShardedSpecImpl(*this, spec, stats, nullptr);
}

}  // namespace tinprov
