// The single tracker construction surface: every factory-constructible
// tracker — the seven PolicyName() policies plus the scalable/ layer —
// behind one registry keyed by a TrackerSpec.
//
// This replaces the five name-taking entry points that accreted over
// PRs 1-5 (now removed): callers describe the tracker once (name +
// ScalableParams + mode) and ask the registry for whichever artifact
// the consuming engine needs — a one-shot Tracker, a reusable
// TrackerFactory, or a ShardedSpec for the parallel engine.
#ifndef TINPROV_ANALYTICS_REGISTRY_H_
#define TINPROV_ANALYTICS_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/tin.h"
#include "parallel/sharded_replay.h"
#include "policies/tracker.h"
#include "scalable/budget.h"
#include "util/status.h"

namespace tinprov {

/// Parameters for the scalable trackers when constructed by name. The
/// defaults give every tracker a sensible mid-range configuration; the
/// scalable benches sweep these explicitly instead.
struct ScalableParams {
  size_t window = 4096;     // WindowedTracker reset period
  size_t num_tracked = 32;  // SelectiveTracker: top-k generating vertices
  size_t num_groups = 32;   // GroupedTracker: round-robin group count
  BudgetConfig budget;      // BudgetTracker capacity / keep fraction
};

/// How a spec's selection preprocessing may be performed.
///   kMaterialized — a log is available: Selective pre-scans it for its
///     top generating vertices, Activity sharding can measure labels.
///   kStreaming — the dataset's shape is all that is known up front.
///     One semantic difference is forced by streaming: "Selective"
///     cannot pre-scan the stream for its top generators, so it tracks
///     the params.num_tracked lowest vertex ids — a fixed a priori set.
///     Every other name is configured identically in both modes.
enum class TrackerMode {
  kMaterialized,
  kStreaming,
};

/// Everything needed to (re)build an identically configured tracker:
/// the display name (case-insensitive; see TrackerRegistry::Names()),
/// the scalable parameters, and the construction mode.
struct TrackerSpec {
  std::string name = "Prop-sparse";
  ScalableParams params;
  TrackerMode mode = TrackerMode::kMaterialized;
};

/// Name-based tracker construction, one registry for every consumer.
/// Stateless and therefore thread-safe; Global() returns the shared
/// instance. Unknown names yield InvalidArgument listing the accepted
/// names. Selection preprocessing (Selective's scan, Grouped's
/// assignment) runs once per call and is captured in the returned
/// closure, so a lazy query or epoch restore never re-pays it.
class TrackerRegistry {
 public:
  static const TrackerRegistry& Global();

  /// Every accepted spec name, in reporting order: the Table 7/8
  /// policies first, then the Section 5.2-5.3 scalable trackers.
  std::vector<std::string> Names() const;

  /// Ok iff spec.name resolves.
  Status Validate(const TrackerSpec& spec) const;

  /// A factory of fresh, identically configured trackers. The
  /// materialized overload honours spec.mode (kStreaming resolves from
  /// tin.Stats() alone); the stats overload requires kStreaming, since
  /// materialized selection preprocessing needs a log to scan.
  StatusOr<TrackerFactory> Factory(const TrackerSpec& spec,
                                   const Tin& tin) const;
  StatusOr<TrackerFactory> Factory(const TrackerSpec& spec,
                                   const DatasetStats& stats) const;

  /// One tracker, built through Factory().
  StatusOr<std::unique_ptr<Tracker>> Create(const TrackerSpec& spec,
                                            const Tin& tin) const;
  StatusOr<std::unique_ptr<Tracker>> Create(const TrackerSpec& spec,
                                            const DatasetStats& stats) const;

  /// Sharded-replay description for the parallel engine. Pro-rata
  /// trackers with label-linear semantics — Prop-sparse, Selective,
  /// Grouped, Windowed — come back decomposable; every other name
  /// yields a sequential-only spec the engine still accepts. The
  /// sequential closure is the shard factory unrestricted, so shard and
  /// reference trackers can never be configured differently.
  StatusOr<ShardedSpec> Sharded(const TrackerSpec& spec,
                                const Tin& tin) const;
  StatusOr<ShardedSpec> Sharded(const TrackerSpec& spec,
                                const DatasetStats& stats) const;

 private:
  TrackerRegistry() = default;
};

}  // namespace tinprov

#endif  // TINPROV_ANALYTICS_REGISTRY_H_
