#include "analytics/report.h"

namespace tinprov {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += "  ";
      const std::string& cell = row[c];
      const size_t pad = widths[c] - cell.size();
      if (c == 0) {
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
    }
    // Trailing spaces on left-aligned last cells are ugly in terminals.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  append_row(headers_);
  size_t total_width = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (const size_t w : widths) total_width += w;
  out.append(total_width, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(row);
  return out;
}

}  // namespace tinprov
