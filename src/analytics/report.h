// Aligned plain-text tables, mirroring the layout of the paper's tables
// in bench output.
#ifndef TINPROV_ANALYTICS_REPORT_H_
#define TINPROV_ANALYTICS_REPORT_H_

#include <string>
#include <vector>

#include "util/memory.h"
#include "util/strings.h"

namespace tinprov {

/// Collects rows and renders them with per-column alignment: the first
/// column (labels) left-aligned, the rest (numbers) right-aligned.
/// Rows shorter than the header are padded with empty cells; longer rows
/// are truncated.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tinprov

#endif  // TINPROV_ANALYTICS_REPORT_H_
