// Per-vertex provenance storage primitives.
//
// The paper's policies differ in what they store per unit of buffered
// quantity and in which entry a transfer consumes first:
//   - receipt order (LIFO/FIFO): 2-field tuples (origin, quantity) in a
//     deque, consumed from one end or the other;
//   - generation order (LRB/MRB): 3-field tuples (origin, birth, quantity)
//     in a binary heap keyed on birth time;
//   - proportional: a per-origin breakdown, consumed pro rata.
// This header provides the tuple types, the two containers, and the
// policy-agnostic Buffer snapshot that trackers return from queries.
#ifndef TINPROV_CORE_BUFFER_H_
#define TINPROV_CORE_BUFFER_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/types.h"

namespace tinprov {

/// Receipt-order tuple: who the quantity originates from and how much.
struct ProvPair {
  VertexId origin = 0;
  double quantity = 0.0;
};

inline bool operator==(const ProvPair& a, const ProvPair& b) {
  return a.origin == b.origin && a.quantity == b.quantity;
}

/// Generation-order tuple: adds the generation (birth) timestamp.
struct ProvTriple {
  VertexId origin = 0;
  Timestamp birth = 0.0;
  double quantity = 0.0;
};

/// Heap priority: pop the entry with the earliest birth first
/// ("least recently born" selection).
struct EarlierBirthFirst {
  bool operator()(const ProvTriple& a, const ProvTriple& b) const {
    return a.birth < b.birth;
  }
};

/// Heap priority: pop the entry with the latest birth first
/// ("most recently born" selection).
struct LaterBirthFirst {
  bool operator()(const ProvTriple& a, const ProvTriple& b) const {
    return a.birth > b.birth;
  }
};

/// Array-backed binary heap. Compare(a, b) == true means a pops before b.
/// Unlike std::priority_queue it exposes a mutable top, which the
/// generation-order trackers use to split an entry in place when a
/// transfer consumes it only partially.
template <typename T, typename Compare>
class BinaryHeap {
 public:
  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  void clear() { items_.clear(); }

  void Push(const T& item) {
    items_.push_back(item);
    SiftUp(items_.size() - 1);
  }

  const T& Top() const {
    assert(!items_.empty());
    return items_.front();
  }

  /// Mutable access to the top entry. Callers may change fields that do
  /// not affect ordering (e.g. quantity, never birth).
  T& MutableTop() {
    assert(!items_.empty());
    return items_.front();
  }

  T Pop() {
    assert(!items_.empty());
    T top = items_.front();
    items_.front() = items_.back();
    items_.pop_back();
    if (!items_.empty()) SiftDown(0);
    return top;
  }

  size_t capacity() const { return items_.capacity(); }

  /// The backing array in heap layout. Snapshot serialization stores it
  /// verbatim so a restored heap pops equal-priority entries in exactly
  /// the order the original would have — Restore() round-trips state
  /// bit-exactly where rebuilding via Push() need not.
  const std::vector<T>& Items() const { return items_; }

  /// Replaces the contents with `items`, which must already satisfy the
  /// heap property (e.g. a verbatim copy of another heap's Items()).
  void AssignItems(std::vector<T> items) { items_ = std::move(items); }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!compare_(items_[i], items_[parent])) break;
      std::swap(items_[i], items_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = items_.size();
    for (;;) {
      const size_t left = 2 * i + 1;
      const size_t right = left + 1;
      size_t best = i;
      if (left < n && compare_(items_[left], items_[best])) best = left;
      if (right < n && compare_(items_[right], items_[best])) best = right;
      if (best == i) break;
      std::swap(items_[i], items_[best]);
      i = best;
    }
  }

  std::vector<T> items_;
  Compare compare_;
};

/// Power-of-two ring buffer supporting O(1) push/pop at both ends.
/// Backs the receipt-order buffers: LIFO pops the back, FIFO the front,
/// and both push arrivals at the back.
template <typename T>
class RingDeque {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  void PushBack(const T& item) {
    if (size_ == items_.size()) Grow();
    items_[Wrap(head_ + size_)] = item;
    ++size_;
  }

  T PopFront() {
    assert(size_ > 0);
    T item = items_[head_];
    head_ = Wrap(head_ + 1);
    --size_;
    return item;
  }

  T PopBack() {
    assert(size_ > 0);
    --size_;
    return items_[Wrap(head_ + size_)];
  }

  T& Front() {
    assert(size_ > 0);
    return items_[head_];
  }

  T& Back() {
    assert(size_ > 0);
    return items_[Wrap(head_ + size_ - 1)];
  }

  const T& At(size_t i) const {
    assert(i < size_);
    return items_[Wrap(head_ + i)];
  }

  size_t capacity() const { return items_.size(); }

 private:
  size_t Wrap(size_t i) const { return i & (items_.size() - 1); }

  void Grow() {
    const size_t new_capacity = items_.empty() ? 8 : items_.size() * 2;
    std::vector<T> grown(new_capacity);
    for (size_t i = 0; i < size_; ++i) grown[i] = items_[Wrap(head_ + i)];
    items_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> items_;
  size_t head_ = 0;
  size_t size_ = 0;
};

/// Policy-agnostic snapshot of one vertex's provenance, returned by
/// Tracker::Provenance(). `entries` lists the per-origin breakdown in a
/// policy-defined order; `total` is the buffered quantity. For the
/// no-provenance baseline `entries` is empty and only `total` is known.
struct Buffer {
  std::vector<ProvPair> entries;
  double total = 0.0;

  double Total() const { return total; }

  /// Sum over entries; equals Total() for provenance-bearing policies.
  double EntrySum() const {
    double sum = 0.0;
    for (const ProvPair& entry : entries) sum += entry.quantity;
    return sum;
  }
};

}  // namespace tinprov

#endif  // TINPROV_CORE_BUFFER_H_
