// Field-wise serialization of the provenance tuple types.
//
// ProvPair and ProvTriple carry alignment padding, so memcpy-ing whole
// structs would leak indeterminate bytes into snapshots and break the
// save -> restore -> save byte-equality contract of Tracker::SaveState.
// These helpers write each field individually: the wire image is a pure
// function of the logical state.
#ifndef TINPROV_CORE_BUFFER_IO_H_
#define TINPROV_CORE_BUFFER_IO_H_

#include <cstdint>
#include <vector>

#include "core/buffer.h"
#include "util/serialize.h"

namespace tinprov {

inline constexpr size_t WireSize(const ProvPair&) {
  return sizeof(VertexId) + sizeof(double);
}

inline constexpr size_t WireSize(const ProvTriple&) {
  return sizeof(VertexId) + sizeof(Timestamp) + sizeof(double);
}

inline void AppendEntry(ByteWriter* writer, const ProvPair& entry) {
  writer->Append(entry.origin);
  writer->Append(entry.quantity);
}

inline void AppendEntry(ByteWriter* writer, const ProvTriple& entry) {
  writer->Append(entry.origin);
  writer->Append(entry.birth);
  writer->Append(entry.quantity);
}

inline Status ReadEntry(ByteReader* reader, ProvPair* entry) {
  Status status = reader->Read(&entry->origin);
  if (!status.ok()) return status;
  return reader->Read(&entry->quantity);
}

inline Status ReadEntry(ByteReader* reader, ProvTriple* entry) {
  Status status = reader->Read(&entry->origin);
  if (!status.ok()) return status;
  status = reader->Read(&entry->birth);
  if (!status.ok()) return status;
  return reader->Read(&entry->quantity);
}

// Vec is any contiguous container of ProvPair/ProvTriple with
// std::vector's basic interface — std::vector itself for the ordered
// policies, util/pool.h's PooledVec for the proportional lists.
template <typename Vec>
void AppendEntryVector(ByteWriter* writer, const Vec& values) {
  writer->Append<uint64_t>(values.size());
  for (const auto& value : values) AppendEntry(writer, value);
}

template <typename Vec>
Status ReadEntryVector(ByteReader* reader, Vec* out) {
  using T = typename Vec::value_type;
  uint64_t count = 0;
  Status status = reader->Read(&count);
  if (!status.ok()) return status;
  // Gate the allocation on the remaining bytes so a corrupted length
  // cannot demand more memory than the snapshot could possibly fill.
  if (count > reader->remaining() / WireSize(T{})) {
    return Status::InvalidArgument(
        "snapshot truncated: entry vector of " + std::to_string(count) +
        " entries exceeds the remaining bytes");
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    T entry;
    status = ReadEntry(reader, &entry);
    if (!status.ok()) return status;
    out->push_back(entry);
  }
  return Status::Ok();
}

}  // namespace tinprov

#endif  // TINPROV_CORE_BUFFER_IO_H_
