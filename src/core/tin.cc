#include "core/tin.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tinprov {

Tin::Tin(size_t num_vertices, std::vector<Interaction> interactions)
    : num_vertices_(num_vertices), interactions_(std::move(interactions)) {
  obs::TraceSpan span("core.tin_build", "core");
  std::stable_sort(
      interactions_.begin(), interactions_.end(),
      [](const Interaction& a, const Interaction& b) { return a.t < b.t; });
#ifndef NDEBUG
  for (const Interaction& interaction : interactions_) {
    assert(interaction.src < num_vertices_);
    assert(interaction.dst < num_vertices_);
  }
#endif

  // Counting pass, then fill — the usual two-pass CSR build.
  index_offsets_.assign(num_vertices_ + 1, 0);
  for (const Interaction& interaction : interactions_) {
    ++index_offsets_[interaction.src + 1];
    if (interaction.dst != interaction.src) {
      ++index_offsets_[interaction.dst + 1];
    }
  }
  for (size_t v = 0; v < num_vertices_; ++v) {
    index_offsets_[v + 1] += index_offsets_[v];
  }
  index_entries_.resize(index_offsets_[num_vertices_]);
  std::vector<uint32_t> cursor(index_offsets_.begin(),
                               index_offsets_.end() - 1);
  for (size_t i = 0; i < interactions_.size(); ++i) {
    const Interaction& interaction = interactions_[i];
    index_entries_[cursor[interaction.src]++] = static_cast<uint32_t>(i);
    if (interaction.dst != interaction.src) {
      index_entries_[cursor[interaction.dst]++] = static_cast<uint32_t>(i);
    }
  }
  TINPROV_GAUGE_SET("memory.tin_bytes", MemoryUsage());
}

const uint32_t* Tin::VertexInteractions(VertexId v, size_t* count) const {
  if (v >= num_vertices_) {
    *count = 0;
    return nullptr;
  }
  *count = index_offsets_[v + 1] - index_offsets_[v];
  return index_entries_.data() + index_offsets_[v];
}

size_t Tin::MemoryUsage() const {
  return interactions_.capacity() * sizeof(Interaction) +
         index_offsets_.capacity() * sizeof(uint32_t) +
         index_entries_.capacity() * sizeof(uint32_t);
}

TinStats Tin::ComputeStats() const {
  TinStats stats;
  stats.num_vertices = num_vertices_;
  stats.num_interactions = interactions_.size();
  std::unordered_set<uint64_t> edges;
  edges.reserve(interactions_.size());
  double quantity_sum = 0.0;
  for (const Interaction& interaction : interactions_) {
    edges.insert((static_cast<uint64_t>(interaction.src) << 32) |
                 interaction.dst);
    quantity_sum += interaction.quantity;
    stats.num_self_loops += interaction.src == interaction.dst ? 1 : 0;
  }
  stats.num_edges = edges.size();
  stats.avg_quantity = interactions_.empty()
                           ? 0.0
                           : quantity_sum /
                                 static_cast<double>(interactions_.size());
  return stats;
}

}  // namespace tinprov
