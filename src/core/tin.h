// The Tin container: an immutable, time-sorted interaction log plus a
// per-vertex index over it.
#ifndef TINPROV_CORE_TIN_H_
#define TINPROV_CORE_TIN_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace tinprov {

/// Aggregate characteristics, mirroring paper Table 6.
struct TinStats {
  size_t num_vertices = 0;
  size_t num_interactions = 0;
  size_t num_edges = 0;       // distinct (src, dst) pairs
  size_t num_self_loops = 0;  // interactions with src == dst
  double avg_quantity = 0.0;
};

/// The shape a processing pipeline needs to know about its input before
/// seeing a single interaction: the vertex-id space and, when known, the
/// stream length. This is the Tin-free half of TinStats — streams
/// (stream/interaction_stream.h) advertise it so trackers can pre-size
/// allocations (Tracker::ReserveHint) without a materialized log.
struct DatasetStats {
  size_t num_vertices = 0;
  /// Expected interaction count; 0 means unknown (open-ended stream).
  size_t num_interactions = 0;
};

/// An immutable temporal interaction network. Construction sorts the log
/// by timestamp (stable, so simultaneous interactions keep their input
/// order) and builds a CSR index from each vertex to the interactions
/// that touch it, in time order.
class Tin {
 public:
  Tin() = default;

  /// `num_vertices` must cover every id referenced by `interactions`.
  Tin(size_t num_vertices, std::vector<Interaction> interactions);

  size_t num_vertices() const { return num_vertices_; }
  size_t num_interactions() const { return interactions_.size(); }

  /// Time-sorted interaction log.
  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }

  /// Indices (into interactions()) of the interactions where `v` is the
  /// source or the destination, in time order. Self-loops appear once.
  /// This is the slicing index used by replay-on-demand engines.
  const uint32_t* VertexInteractions(VertexId v, size_t* count) const;

  /// Bytes held by the log and the vertex index.
  size_t MemoryUsage() const;

  /// The pre-sizing shape of this log; O(1), unlike ComputeStats().
  DatasetStats Stats() const { return {num_vertices_, interactions_.size()}; }

  /// Scans the log; O(|interactions|) time, O(|edges|) space.
  TinStats ComputeStats() const;

 private:
  size_t num_vertices_ = 0;
  std::vector<Interaction> interactions_;
  // CSR layout: index_offsets_[v] .. index_offsets_[v+1] span
  // index_entries_ with interaction indices touching v.
  std::vector<uint32_t> index_offsets_;
  std::vector<uint32_t> index_entries_;
};

}  // namespace tinprov

#endif  // TINPROV_CORE_TIN_H_
