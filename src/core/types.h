// Fundamental value types of a temporal interaction network (TIN).
//
// Following the paper's model (Definition 1): a TIN is a graph whose
// edges carry a time-ordered sequence of interactions; each interaction
// (src, dst, t, quantity) moves `quantity` units from src's buffer to
// dst's buffer at time t. When src holds less than `quantity`, the
// deficit is newly generated at src at time t.
#ifndef TINPROV_CORE_TYPES_H_
#define TINPROV_CORE_TYPES_H_

#include <cstdint>

namespace tinprov {

/// Dense vertex identifier in [0, num_vertices).
using VertexId = uint32_t;

/// Interaction timestamp. Continuous to support scaled synthetic streams
/// and fractional historical queries.
using Timestamp = double;

constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

struct Interaction {
  VertexId src = 0;
  VertexId dst = 0;
  Timestamp t = 0.0;
  double quantity = 0.0;
};

}  // namespace tinprov

#endif  // TINPROV_CORE_TYPES_H_
