#include "datagen/generator.h"

#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

namespace tinprov {

namespace {

// Fisher-Yates permutation of [0, n), so that the Zipf head does not
// coincide across the source and destination distributions.
std::vector<VertexId> RandomPermutation(size_t n, Rng& rng) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  return perm;
}

}  // namespace

StatusOr<InteractionEmitter> InteractionEmitter::Create(
    const GeneratorConfig& config) {
  if (config.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  if (config.num_interactions == 0) {
    return Status::InvalidArgument("num_interactions must be positive");
  }
  if (config.num_vertices > static_cast<size_t>(kInvalidVertex)) {
    return Status::InvalidArgument("num_vertices exceeds VertexId range");
  }
  if (config.mean_inter_arrival <= 0.0) {
    return Status::InvalidArgument("mean_inter_arrival must be positive");
  }
  if (config.self_loop_fraction < 0.0 || config.self_loop_fraction > 1.0) {
    return Status::InvalidArgument("self_loop_fraction must be in [0, 1]");
  }
  if (config.quantity_model == QuantityModel::kPareto &&
      config.quantity_param2 <= 0.0) {
    return Status::InvalidArgument("Pareto alpha must be positive");
  }
  return InteractionEmitter(config);
}

InteractionEmitter::InteractionEmitter(const GeneratorConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.src_skew > 0.0) {
    src_zipf_.emplace(config_.num_vertices, config_.src_skew);
  }
  if (config_.dst_skew > 0.0) {
    dst_zipf_.emplace(config_.num_vertices, config_.dst_skew);
  }
  // Draw order matters for bit-identical emission: src permutation,
  // then dst permutation, then the per-interaction samples.
  src_perm_ = RandomPermutation(config_.num_vertices, rng_);
  dst_perm_ = RandomPermutation(config_.num_vertices, rng_);
}

double InteractionEmitter::SampleQuantity() {
  switch (config_.quantity_model) {
    case QuantityModel::kFixed:
      return config_.quantity_param1;
    case QuantityModel::kUniform:
      return config_.quantity_param1 +
             (config_.quantity_param2 - config_.quantity_param1) *
                 rng_.NextDouble();
    case QuantityModel::kLogNormal:
      return std::exp(config_.quantity_param1 +
                      config_.quantity_param2 * rng_.NextGaussian());
    case QuantityModel::kPareto:
      return config_.quantity_param1 *
             std::pow(1.0 - rng_.NextDouble(), -1.0 / config_.quantity_param2);
  }
  return 0.0;
}

Interaction InteractionEmitter::Next() {
  // Exponential inter-arrival keeps timestamps strictly increasing in
  // expectation and distinct with probability 1.
  t_ += -config_.mean_inter_arrival *
        std::log(1.0 - rng_.NextDouble() + 1e-300);
  Interaction interaction;
  interaction.t = t_;
  interaction.src =
      src_perm_[src_zipf_ ? (*src_zipf_)(rng_)
                          : rng_.NextBounded(config_.num_vertices)];
  if (config_.self_loop_fraction > 0.0 &&
      rng_.NextDouble() < config_.self_loop_fraction) {
    interaction.dst = interaction.src;
  } else {
    interaction.dst =
        dst_perm_[dst_zipf_ ? (*dst_zipf_)(rng_)
                            : rng_.NextBounded(config_.num_vertices)];
  }
  interaction.quantity = SampleQuantity();
  ++emitted_;
  return interaction;
}

StatusOr<Tin> Generate(const GeneratorConfig& config) {
  auto emitter = InteractionEmitter::Create(config);
  if (!emitter.ok()) return emitter.status();

  std::vector<Interaction> interactions;
  interactions.reserve(config.num_interactions);
  while (!emitter->Done()) {
    interactions.push_back(emitter->Next());
  }
  return Tin(config.num_vertices, std::move(interactions));
}

}  // namespace tinprov
