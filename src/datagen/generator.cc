#include "datagen/generator.h"

#include <cmath>
#include <numeric>
#include <optional>
#include <vector>

#include "util/random.h"

namespace tinprov {

namespace {

double SampleQuantity(const GeneratorConfig& config, Rng& rng) {
  switch (config.quantity_model) {
    case QuantityModel::kFixed:
      return config.quantity_param1;
    case QuantityModel::kUniform:
      return config.quantity_param1 +
             (config.quantity_param2 - config.quantity_param1) *
                 rng.NextDouble();
    case QuantityModel::kLogNormal:
      return std::exp(config.quantity_param1 +
                      config.quantity_param2 * rng.NextGaussian());
    case QuantityModel::kPareto:
      return config.quantity_param1 *
             std::pow(1.0 - rng.NextDouble(), -1.0 / config.quantity_param2);
  }
  return 0.0;
}

// Fisher-Yates permutation of [0, n), so that the Zipf head does not
// coincide across the source and destination distributions.
std::vector<VertexId> RandomPermutation(size_t n, Rng& rng) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  return perm;
}

}  // namespace

StatusOr<Tin> Generate(const GeneratorConfig& config) {
  if (config.num_vertices == 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  if (config.num_interactions == 0) {
    return Status::InvalidArgument("num_interactions must be positive");
  }
  if (config.num_vertices > static_cast<size_t>(kInvalidVertex)) {
    return Status::InvalidArgument("num_vertices exceeds VertexId range");
  }
  if (config.mean_inter_arrival <= 0.0) {
    return Status::InvalidArgument("mean_inter_arrival must be positive");
  }
  if (config.self_loop_fraction < 0.0 || config.self_loop_fraction > 1.0) {
    return Status::InvalidArgument("self_loop_fraction must be in [0, 1]");
  }
  if (config.quantity_model == QuantityModel::kPareto &&
      config.quantity_param2 <= 0.0) {
    return Status::InvalidArgument("Pareto alpha must be positive");
  }

  Rng rng(config.seed);
  std::optional<ZipfDistribution> src_zipf;
  std::optional<ZipfDistribution> dst_zipf;
  if (config.src_skew > 0.0) {
    src_zipf.emplace(config.num_vertices, config.src_skew);
  }
  if (config.dst_skew > 0.0) {
    dst_zipf.emplace(config.num_vertices, config.dst_skew);
  }
  const std::vector<VertexId> src_perm =
      RandomPermutation(config.num_vertices, rng);
  const std::vector<VertexId> dst_perm =
      RandomPermutation(config.num_vertices, rng);

  std::vector<Interaction> interactions;
  interactions.reserve(config.num_interactions);
  double t = 0.0;
  for (size_t i = 0; i < config.num_interactions; ++i) {
    // Exponential inter-arrival keeps timestamps strictly increasing in
    // expectation and distinct with probability 1.
    t += -config.mean_inter_arrival * std::log(1.0 - rng.NextDouble() + 1e-300);
    Interaction interaction;
    interaction.t = t;
    interaction.src =
        src_perm[src_zipf ? (*src_zipf)(rng)
                          : rng.NextBounded(config.num_vertices)];
    if (config.self_loop_fraction > 0.0 &&
        rng.NextDouble() < config.self_loop_fraction) {
      interaction.dst = interaction.src;
    } else {
      interaction.dst =
          dst_perm[dst_zipf ? (*dst_zipf)(rng)
                            : rng.NextBounded(config.num_vertices)];
    }
    interaction.quantity = SampleQuantity(config, rng);
    interactions.push_back(interaction);
  }
  return Tin(config.num_vertices, std::move(interactions));
}

}  // namespace tinprov
