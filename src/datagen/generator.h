// Seeded synthetic TIN generator. Source/destination popularity follows
// independent Zipf distributions over randomly permuted vertex ids;
// inter-arrival times are exponential; quantities come from a pluggable
// marginal. Identical configs always produce identical streams.
//
// The generator is an incremental emitter (InteractionEmitter): it
// draws one interaction per Next() call in non-decreasing time order,
// holding only O(num_vertices) state. Generate() materializes the whole
// emission into a Tin; stream/interaction_stream.h's GeneratorStream
// pulls from the same emitter without ever materializing the log, so
// the two paths produce bit-identical interaction sequences.
#ifndef TINPROV_DATAGEN_GENERATOR_H_
#define TINPROV_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/tin.h"
#include "util/random.h"
#include "util/status.h"

namespace tinprov {

enum class QuantityModel {
  kFixed,      // param1 = value
  kUniform,    // param1 = low, param2 = high
  kLogNormal,  // param1 = mu, param2 = sigma (of the underlying normal)
  kPareto,     // param1 = minimum, param2 = alpha (tail index)
};

struct GeneratorConfig {
  size_t num_vertices = 0;
  size_t num_interactions = 0;

  // Zipf skew of the source / destination popularity distribution;
  // values <= 0 mean uniform.
  double src_skew = 1.0;
  double dst_skew = 1.0;

  QuantityModel quantity_model = QuantityModel::kLogNormal;
  double quantity_param1 = 0.0;
  double quantity_param2 = 1.0;

  // Probability that an interaction is forced into a self-loop (on top
  // of the self-loops Zipf sampling produces by chance).
  double self_loop_fraction = 0.0;

  double mean_inter_arrival = 1.0;
  uint64_t seed = 42;
};

/// The incremental generator core: validates the config once, then
/// emits config.num_interactions interactions one Next() call at a
/// time, each with a timestamp >= the previous one. Standing state is
/// the RNG plus two vertex permutations — O(num_vertices), independent
/// of the stream length.
class InteractionEmitter {
 public:
  /// An exhausted emitter (Done() from the start) — the empty state
  /// StatusOr and default-constructed members need. Create() is the
  /// real entry point.
  InteractionEmitter() : rng_(0) {}

  /// Fails on empty or inconsistent configs (the checks Generate()
  /// always applied).
  static StatusOr<InteractionEmitter> Create(const GeneratorConfig& config);

  /// True once every configured interaction has been emitted.
  bool Done() const { return emitted_ == config_.num_interactions; }

  /// Draws the next interaction. Must not be called when Done().
  Interaction Next();

  size_t emitted() const { return emitted_; }
  const GeneratorConfig& config() const { return config_; }

 private:
  explicit InteractionEmitter(const GeneratorConfig& config);

  double SampleQuantity();

  GeneratorConfig config_;
  Rng rng_;
  std::optional<ZipfDistribution> src_zipf_;
  std::optional<ZipfDistribution> dst_zipf_;
  std::vector<VertexId> src_perm_;
  std::vector<VertexId> dst_perm_;
  double t_ = 0.0;
  size_t emitted_ = 0;
};

/// Generates a time-sorted TIN; fails on empty or inconsistent configs.
/// Equivalent to draining a fresh InteractionEmitter into a Tin.
StatusOr<Tin> Generate(const GeneratorConfig& config);

}  // namespace tinprov

#endif  // TINPROV_DATAGEN_GENERATOR_H_
