// Seeded synthetic TIN generator. Source/destination popularity follows
// independent Zipf distributions over randomly permuted vertex ids;
// inter-arrival times are exponential; quantities come from a pluggable
// marginal. Identical configs always produce identical streams.
#ifndef TINPROV_DATAGEN_GENERATOR_H_
#define TINPROV_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "core/tin.h"
#include "util/status.h"

namespace tinprov {

enum class QuantityModel {
  kFixed,      // param1 = value
  kUniform,    // param1 = low, param2 = high
  kLogNormal,  // param1 = mu, param2 = sigma (of the underlying normal)
  kPareto,     // param1 = minimum, param2 = alpha (tail index)
};

struct GeneratorConfig {
  size_t num_vertices = 0;
  size_t num_interactions = 0;

  // Zipf skew of the source / destination popularity distribution;
  // values <= 0 mean uniform.
  double src_skew = 1.0;
  double dst_skew = 1.0;

  QuantityModel quantity_model = QuantityModel::kLogNormal;
  double quantity_param1 = 0.0;
  double quantity_param2 = 1.0;

  // Probability that an interaction is forced into a self-loop (on top
  // of the self-loops Zipf sampling produces by chance).
  double self_loop_fraction = 0.0;

  double mean_inter_arrival = 1.0;
  uint64_t seed = 42;
};

/// Generates a time-sorted TIN; fails on empty or inconsistent configs.
StatusOr<Tin> Generate(const GeneratorConfig& config);

}  // namespace tinprov

#endif  // TINPROV_DATAGEN_GENERATOR_H_
