#include "datagen/presets.h"

#include <cmath>

namespace tinprov {

namespace {

struct PresetSpec {
  size_t base_vertices;
  size_t base_interactions;
  // Flights and Taxis keep the paper's real vertex count: their defining
  // property is a tiny vertex set under a huge interaction stream.
  bool vertices_fixed;
  double src_skew;
  double dst_skew;
  QuantityModel quantity_model;
  double quantity_param1;
  double quantity_param2;
  double self_loop_fraction;
  uint64_t seed;
};

// Base sizes are the paper's Table 6 counts shrunk to laptop scale
// (Bitcoin by 1000x; the others by enough that every bench finishes in
// seconds at scale 1). Log-normal parameters are solved from the paper's
// mean quantities: mean = exp(mu + sigma^2 / 2).
PresetSpec GetSpec(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kBitcoin:
      return {12000, 45500, false, 1.2, 1.2,
              QuantityModel::kLogNormal, 2.41, 1.5, 0.005, 101};
    case DatasetKind::kCtu:
      return {6080, 28000, false, 1.1, 1.3,
              QuantityModel::kLogNormal, 7.86, 2.0, 0.02, 102};
    case DatasetKind::kProsper:
      return {5000, 30800, false, 0.8, 0.8,
              QuantityModel::kLogNormal, 3.83, 1.0, 0.0, 103};
    case DatasetKind::kFlights:
      return {629, 5700, true, 0.6, 0.6,
              QuantityModel::kUniform, 50.0, 200.0, 0.0, 104};
    case DatasetKind::kTaxis:
      return {255, 2310, true, 0.5, 0.5,
              QuantityModel::kLogNormal, 0.30, 0.5, 0.15, 105};
  }
  return {};
}

}  // namespace

std::string_view DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kBitcoin:
      return "Bitcoin";
    case DatasetKind::kCtu:
      return "CTU";
    case DatasetKind::kProsper:
      return "Prosper";
    case DatasetKind::kFlights:
      return "Flights";
    case DatasetKind::kTaxis:
      return "Taxis";
  }
  return "?";
}

std::vector<DatasetKind> AllDatasets() {
  return {DatasetKind::kBitcoin, DatasetKind::kCtu, DatasetKind::kProsper,
          DatasetKind::kFlights, DatasetKind::kTaxis};
}

GeneratorConfig PresetConfig(DatasetKind kind, double scale) {
  const PresetSpec spec = GetSpec(kind);
  GeneratorConfig config;
  // Scale < 1 shrinks only the stream, never the vertex set: the
  // dense-feasibility pattern of Tables 7-8 is a property of |V| and
  // must not flip when someone runs a quick TINPROV_SCALE=0.1 pass.
  config.num_vertices =
      spec.vertices_fixed || scale <= 1.0
          ? spec.base_vertices
          : static_cast<size_t>(
                std::llround(static_cast<double>(spec.base_vertices) * scale));
  config.num_interactions = static_cast<size_t>(std::llround(
      static_cast<double>(spec.base_interactions) * scale));
  if (config.num_interactions < 200) config.num_interactions = 200;
  config.src_skew = spec.src_skew;
  config.dst_skew = spec.dst_skew;
  config.quantity_model = spec.quantity_model;
  config.quantity_param1 = spec.quantity_param1;
  config.quantity_param2 = spec.quantity_param2;
  config.self_loop_fraction = spec.self_loop_fraction;
  config.seed = spec.seed;
  return config;
}

StatusOr<Tin> MakeDataset(DatasetKind kind, double scale) {
  if (scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  return Generate(PresetConfig(kind, scale));
}

}  // namespace tinprov
