// Named synthetic stand-ins for the paper's five evaluation datasets
// (Table 6), scaled so that a laptop reproduces the tables' *shapes* in
// seconds. TINPROV_SCALE (read by the bench harnesses) multiplies the
// interaction counts; vertex counts only grow beyond the base when
// scale > 1, so the dense-proportional feasibility pattern (dense fits
// only on Flights and Taxis) is stable across scales.
#ifndef TINPROV_DATAGEN_PRESETS_H_
#define TINPROV_DATAGEN_PRESETS_H_

#include <string_view>
#include <vector>

#include "datagen/generator.h"

namespace tinprov {

enum class DatasetKind {
  kBitcoin,  // 12M nodes / 45.5M interactions at full size; heavy tails
  kCtu,      // network-traffic flows; bytes as quantity
  kProsper,  // loan marketplace; dollar quantities
  kFlights,  // 629 airports, very high interactions-per-vertex
  kTaxis,    // 255 zones, passenger counts; many self-loops
};

std::string_view DatasetName(DatasetKind kind);

/// All presets in the paper's Table 6 row order.
std::vector<DatasetKind> AllDatasets();

/// The generator configuration behind a preset at a given scale —
/// exposed so tests and future harnesses can inspect or tweak it.
GeneratorConfig PresetConfig(DatasetKind kind, double scale);

/// Generates the preset. scale <= 0 is invalid.
StatusOr<Tin> MakeDataset(DatasetKind kind, double scale);

}  // namespace tinprov

#endif  // TINPROV_DATAGEN_PRESETS_H_
