#include "lazy/replay.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tinprov {

namespace {

/// Every lazy query shape funnels its per-query cost through here.
/// (The parameter is unused when TINPROV_METRICS=OFF expands the
/// macros to no-ops.)
void RecordLazyQuery([[maybe_unused]] const ReplayStats& stats) {
  TINPROV_COUNTER_ADD("lazy.queries", 1);
  TINPROV_COUNTER_ADD("lazy.replayed_interactions",
                      stats.interactions_replayed);
  TINPROV_HISTOGRAM_OBSERVE("lazy.cone_vertices", stats.cone_vertices);
  TINPROV_HISTOGRAM_OBSERVE("lazy.cone_interactions",
                            stats.interactions_replayed);
}

}  // namespace

size_t PrefixLength(const Tin& tin, Timestamp t) {
  const auto& log = tin.interactions();
  const auto it = std::upper_bound(
      log.begin(), log.end(), t,
      [](Timestamp time, const Interaction& x) { return time < x.t; });
  return static_cast<size_t>(it - log.begin());
}

std::vector<uint32_t> BackwardInfluenceCone(const Tin& tin, VertexId v,
                                            size_t* cone_vertices) {
  if (cone_vertices != nullptr) *cone_vertices = 0;
  std::vector<uint32_t> cone;
  const size_t n = tin.num_vertices();
  if (v >= n) return cone;

  // Label-correcting reverse traversal: bound[u] is the latest time up
  // to which u's history matters for v. Bounds only grow, so each vertex
  // re-scans its (time-ordered) interaction index from a persistent
  // cursor — total work is linear in scanned index entries. Indices are
  // collected as found and sorted/deduplicated at the end (an
  // interaction appears at most twice, once per cone endpoint), keeping
  // the query cost proportional to the cone, not the log.
  constexpr Timestamp kUnreached = std::numeric_limits<Timestamp>::lowest();
  const auto& log = tin.interactions();
  std::vector<Timestamp> bound(n, kUnreached);
  std::vector<uint32_t> cursor(n, 0);
  std::vector<VertexId> worklist;
  bound[v] = std::numeric_limits<Timestamp>::infinity();
  worklist.push_back(v);
  size_t num_cone_vertices = 1;

  while (!worklist.empty()) {
    const VertexId u = worklist.back();
    worklist.pop_back();
    const Timestamp limit = bound[u];
    size_t count = 0;
    const uint32_t* entries = tin.VertexInteractions(u, &count);
    uint32_t& pos = cursor[u];
    while (pos < count) {
      const uint32_t index = entries[pos];
      const Interaction& x = log[index];
      if (x.t > limit) break;
      ++pos;
      // Outflows from u reshape u's buffer; inflows additionally pull
      // their source into the cone up to the transfer time (ties at the
      // same timestamp are included — over-covering is harmless, the
      // closure keeps every included interaction itself exact).
      cone.push_back(index);
      if (x.dst == u && x.src != u && x.t > bound[x.src]) {
        if (bound[x.src] == kUnreached) ++num_cone_vertices;
        bound[x.src] = x.t;
        worklist.push_back(x.src);
      }
    }
  }

  std::sort(cone.begin(), cone.end());
  cone.erase(std::unique(cone.begin(), cone.end()), cone.end());
  if (cone_vertices != nullptr) *cone_vertices = num_cone_vertices;
  return cone;
}

LazyReplayEngine::LazyReplayEngine(const Tin& tin, PolicyKind kind)
    : tin_(&tin),
      factory_([kind, n = tin.num_vertices()] {
        return CreateTracker(kind, n);
      }) {}

LazyReplayEngine::LazyReplayEngine(const Tin& tin, TrackerFactory factory)
    : tin_(&tin), factory_(std::move(factory)) {}

StatusOr<std::unique_ptr<Tracker>> LazyReplayEngine::MakeTracker() const {
  if (!factory_) {
    return Status::FailedPrecondition("lazy engine has no tracker factory");
  }
  std::unique_ptr<Tracker> tracker = factory_();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  return tracker;
}

void LazyReplayEngine::EnableParallel(ShardedSpec spec,
                                      ParallelParams params) {
  // The spec's sequential factory becomes the engine's factory, so all
  // three query shapes — full/prefix (sharded) and sliced (per-query
  // tracker) — answer from one tracker configuration; a spec for a
  // different policy than the constructor's factory cannot produce
  // split-brain answers.
  if (spec.sequential) factory_ = spec.sequential;
  sharded_ =
      std::make_unique<ShardedReplayEngine>(*tin_, std::move(spec), params);
}

StatusOr<Buffer> LazyReplayEngine::ReplayPrefix(VertexId v, size_t prefix) {
  obs::TraceSpan span("lazy.prefix_query", "lazy");
  if (v >= tin_->num_vertices()) {
    return Status::InvalidArgument("query vertex " + std::to_string(v) +
                                   " out of range");
  }
  if (sharded_ != nullptr) {
    // QueryPrefix materializes only v's list, not all |V| of them.
    auto result = sharded_->QueryPrefix(v, prefix);
    if (!result.ok()) return result.status();
    last_stats_.interactions_replayed = prefix;
    last_stats_.cone_vertices = tin_->num_vertices();
    RecordLazyQuery(last_stats_);
    return result;
  }
  auto tracker = MakeTracker();
  if (!tracker.ok()) return tracker.status();
  const auto& log = tin_->interactions();
  for (size_t i = 0; i < prefix; ++i) {
    const Status status = (*tracker)->Process(log[i]);
    if (!status.ok()) {
      return Status(status.code(), "lazy replay at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
  }
  last_stats_.interactions_replayed = prefix;
  last_stats_.cone_vertices = tin_->num_vertices();
  RecordLazyQuery(last_stats_);
  return (*tracker)->Provenance(v);
}

StatusOr<Buffer> LazyReplayEngine::Provenance(VertexId v) {
  return ReplayPrefix(v, tin_->num_interactions());
}

StatusOr<Buffer> LazyReplayEngine::Provenance(VertexId v, Timestamp t) {
  return ReplayPrefix(v, PrefixLength(*tin_, t));
}

StatusOr<Buffer> LazyReplayEngine::ProvenanceSliced(VertexId v) {
  obs::TraceSpan span("lazy.sliced_query", "lazy");
  if (v >= tin_->num_vertices()) {
    return Status::InvalidArgument("query vertex " + std::to_string(v) +
                                   " out of range");
  }
  size_t cone_vertices = 0;
  const std::vector<uint32_t> cone =
      BackwardInfluenceCone(*tin_, v, &cone_vertices);
  auto tracker = MakeTracker();
  if (!tracker.ok()) return tracker.status();
  const auto& log = tin_->interactions();
  for (const uint32_t index : cone) {
    const Status status = (*tracker)->Process(log[index]);
    if (!status.ok()) {
      return Status(status.code(), "sliced replay at interaction " +
                                       std::to_string(index) + ": " +
                                       status.message());
    }
  }
  last_stats_.interactions_replayed = cone.size();
  last_stats_.cone_vertices = cone_vertices;
  RecordLazyQuery(last_stats_);
  return (*tracker)->Provenance(v);
}

}  // namespace tinprov
