// Replay-on-demand provenance (paper Section 8 future work; Ariadne's
// "replay lazy" strategy). The eager trackers pay per interaction and
// hold standing per-vertex state; this engine pays per query instead:
// it holds only a reference to the immutable Tin and, for each query,
// constructs a fresh tracker and replays the relevant interactions
// through it. Three query shapes:
//   - Provenance(v): full replay of the whole log;
//   - Provenance(v, t): replay of the historical prefix with
//     timestamps <= t;
//   - ProvenanceSliced(v): replay of only v's backward temporal
//     influence cone — the subset of interactions that can affect v's
//     final buffer, found by a reverse traversal over
//     Tin::VertexInteractions respecting timestamps.
// All three return exactly what the corresponding eager tracker would
// (bit-exact, since the surviving interactions are applied in the same
// order to identical fresh state).
#ifndef TINPROV_LAZY_REPLAY_H_
#define TINPROV_LAZY_REPLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/buffer.h"
#include "core/tin.h"
#include "core/types.h"
#include "parallel/sharded_replay.h"
#include "policies/tracker.h"
#include "util/status.h"

namespace tinprov {

/// Per-query replay cost, for the eager-vs-lazy crossover accounting of
/// bench_lazy.
struct ReplayStats {
  /// Interactions fed through the per-query tracker.
  size_t interactions_replayed = 0;
  /// Vertices whose history the query had to reconstruct: the influence
  /// cone for sliced queries, all of them for full/prefix replays.
  size_t cone_vertices = 0;
};

/// Number of interactions with timestamp <= t — the historical replay
/// prefix shared by the lazy engine and the time-travel index.
size_t PrefixLength(const Tin& tin, Timestamp t);

/// Indices (into tin.interactions(), ascending and therefore in time
/// order) of the interactions in `v`'s backward temporal influence
/// cone. A vertex u joins the cone with a time bound T when some cone
/// vertex receives quantity from u at time T; every interaction
/// touching u at or before T is then replayed, because outflows reshape
/// u's buffer composition and inflows recursively pull their own
/// sources into the cone. Replaying exactly this closure in global time
/// order reproduces v's final buffer bit-exactly.
/// `cone_vertices` (optional) receives the number of cone vertices.
/// An out-of-range `v` yields an empty cone.
std::vector<uint32_t> BackwardInfluenceCone(const Tin& tin, VertexId v,
                                            size_t* cone_vertices);

class LazyReplayEngine {
 public:
  /// Replays through fresh CreateTracker(kind, ...) instances.
  LazyReplayEngine(const Tin& tin, PolicyKind kind);

  /// Replays through whatever `factory` builds — any policy or scalable
  /// tracker (see TrackerRegistry::Factory()). Note that sliced
  /// replay assumes a tracker's behaviour at a vertex depends only on
  /// the histories of cone vertices; WindowedTracker's global reset
  /// counter violates that, so only full/prefix replay is exact for it.
  LazyReplayEngine(const Tin& tin, TrackerFactory factory);

  /// Provenance of `v` after the whole log, via full replay.
  StatusOr<Buffer> Provenance(VertexId v);

  /// Provenance of `v` at historical time `t` (inclusive), via prefix
  /// replay. Times before the first interaction yield an empty buffer.
  StatusOr<Buffer> Provenance(VertexId v, Timestamp t);

  /// Provenance of `v` after the whole log, replaying only v's backward
  /// temporal influence cone. Exact for every PolicyKind and for the
  /// vertex-local scalable trackers (Selective/Grouped/Budget); NOT for
  /// WindowedTracker, whose global reset counter sees a different
  /// interaction count under slicing — use Provenance() there.
  StatusOr<Buffer> ProvenanceSliced(VertexId v);

  /// Cost of the most recent successful query.
  const ReplayStats& last_stats() const { return last_stats_; }

  /// Routes full and historical-prefix queries through the parallel
  /// sharded engine (see parallel/sharded_replay.h). Results stay
  /// bit-identical — non-decomposable specs fall back to a sequential
  /// replay inside the engine. The spec's sequential factory also
  /// replaces this engine's tracker factory, so sliced queries — which
  /// stay per-query sequential (the influence cone is not
  /// label-aligned) — answer from the same configuration as the
  /// sharded paths. Typically paired with TrackerRegistry::Sharded().
  void EnableParallel(ShardedSpec spec, ParallelParams params);

 private:
  StatusOr<Buffer> ReplayPrefix(VertexId v, size_t prefix);
  StatusOr<std::unique_ptr<Tracker>> MakeTracker() const;

  const Tin* tin_;
  TrackerFactory factory_;
  std::unique_ptr<ShardedReplayEngine> sharded_;
  ReplayStats last_stats_;
};

}  // namespace tinprov

#endif  // TINPROV_LAZY_REPLAY_H_
