#include "lazy/time_travel.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/interaction_stream.h"

namespace tinprov {

StatusOr<std::unique_ptr<TimeTravelIndex>> TimeTravelIndex::Build(
    const Tin& tin, PolicyKind kind, size_t snapshot_interval) {
  const size_t n = tin.num_vertices();
  return Build(
      tin, [kind, n] { return CreateTracker(kind, n); }, snapshot_interval);
}

StatusOr<std::unique_ptr<TimeTravelIndex>> TimeTravelIndex::Build(
    const Tin& tin, TrackerFactory factory, size_t snapshot_interval) {
  auto index =
      NewStreaming(tin.num_vertices(), std::move(factory), snapshot_interval);
  if (!index.ok()) return index.status();
  // The caller already holds the materialized log, so nothing needs to
  // be retained: feed it through the same Observe() path the streaming
  // form uses and point the index at the borrowed Tin.
  (*index)->retain_log_ = false;
  (*index)->tin_ = &tin;
  for (const Interaction& interaction : tin.interactions()) {
    const Status status = (*index)->Observe(interaction);
    if (!status.ok()) return status;
  }
  const Status status = (*index)->Finalize();
  if (!status.ok()) return status;
  return index;
}

StatusOr<std::unique_ptr<TimeTravelIndex>> TimeTravelIndex::NewStreaming(
    size_t num_vertices, TrackerFactory factory, size_t snapshot_interval) {
  if (!factory) {
    return Status::InvalidArgument("time-travel index needs a factory");
  }
  const size_t interval = snapshot_interval == 0 ? 1 : snapshot_interval;
  std::unique_ptr<TimeTravelIndex> index(
      new TimeTravelIndex(num_vertices, std::move(factory), interval));
  index->retain_log_ = true;
  index->build_tracker_ = index->factory_();
  if (index->build_tracker_ == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  return index;
}

Status TimeTravelIndex::Observe(const Interaction& interaction) {
  if (finalized_) {
    return Status::FailedPrecondition(
        "time-travel index is finalized — no further interactions");
  }
  if (interaction.t < watermark_) {
    return Status::InvalidArgument(
        "time-travel build at interaction " + std::to_string(observed_) +
        ": timestamp below the watermark — wrap the source in a "
        "SortingStream");
  }
  watermark_ = interaction.t;
  const Status status = build_tracker_->Process(interaction);
  if (!status.ok()) {
    return Status(status.code(), "time-travel build at interaction " +
                                     std::to_string(observed_) + ": " +
                                     status.message());
  }
  if (retain_log_) log_.push_back(interaction);
  ++observed_;
  if (observed_ % interval_ == 0) {
    Snapshot snapshot;
    snapshot.prefix = observed_;
    {
      TINPROV_SCOPED_LATENCY_NS("timetravel.save_ns");
      build_tracker_->SaveState(&snapshot.state);
    }
    snapshots_.push_back(std::move(snapshot));
    TINPROV_COUNTER_ADD("timetravel.snapshots", 1);
    TINPROV_GAUGE_SET("memory.timetravel_bytes", MemoryUsage());
  }
  return Status::Ok();
}

Status TimeTravelIndex::ObserveStream(InteractionStream& stream) {
  Interaction interaction;
  while (stream.Next(&interaction)) {
    const Status status = Observe(interaction);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status TimeTravelIndex::Finalize() {
  if (finalized_) return Status::Ok();
  if (retain_log_) {
    // Arrivals were watermark-checked, so the Tin constructor's stable
    // sort is an identity permutation and the snapshot prefixes keep
    // pointing at the right log positions.
    owned_tin_ = std::make_unique<Tin>(num_vertices_, std::move(log_));
    log_ = {};
    tin_ = owned_tin_.get();
  }
  if (tin_ == nullptr) {
    return Status::FailedPrecondition(
        "time-travel index has no log to query");
  }
  build_tracker_.reset();
  finalized_ = true;
  TINPROV_GAUGE_SET("memory.timetravel_bytes", MemoryUsage());
  return Status::Ok();
}

StatusOr<Buffer> TimeTravelIndex::Provenance(VertexId v, Timestamp t) const {
  obs::TraceSpan span("timetravel.query", "lazy");
  TINPROV_COUNTER_ADD("timetravel.queries", 1);
  if (!finalized_) {
    return Status::FailedPrecondition(
        "time-travel index is still ingesting — call Finalize() first");
  }
  if (v >= tin_->num_vertices()) {
    return Status::InvalidArgument("query vertex " + std::to_string(v) +
                                   " out of range");
  }
  const size_t prefix = PrefixLength(*tin_, t);
  // Latest snapshot at or before the query prefix; none means the delta
  // starts from a fresh tracker (t before the first checkpoint).
  const auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), prefix,
      [](size_t p, const Snapshot& s) { return p < s.prefix; });
  std::unique_ptr<Tracker> tracker = factory_();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  size_t start = 0;
  if (it != snapshots_.begin()) {
    const Snapshot& snapshot = *(it - 1);
    TINPROV_SCOPED_LATENCY_NS("timetravel.restore_ns");
    TINPROV_COUNTER_ADD("timetravel.restores", 1);
    const Status status =
        tracker->RestoreState(snapshot.state.data(), snapshot.state.size());
    if (!status.ok()) {
      return Status(status.code(), "restoring snapshot at prefix " +
                                       std::to_string(snapshot.prefix) +
                                       ": " + status.message());
    }
    start = snapshot.prefix;
  }
  const auto& log = tin_->interactions();
  for (size_t i = start; i < prefix; ++i) {
    const Status status = tracker->Process(log[i]);
    if (!status.ok()) {
      return Status(status.code(), "delta replay at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
  }
  TINPROV_COUNTER_ADD("timetravel.delta_interactions", prefix - start);
  return tracker->Provenance(v);
}

Status TimeTravelIndex::SaveFinalState(std::vector<uint8_t>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("null output buffer");
  }
  if (!finalized_) {
    return Status::FailedPrecondition(
        "time-travel index is still ingesting — call Finalize() first");
  }
  std::unique_ptr<Tracker> tracker = factory_();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  size_t start = 0;
  if (!snapshots_.empty()) {
    const Snapshot& snapshot = snapshots_.back();
    const Status status =
        tracker->RestoreState(snapshot.state.data(), snapshot.state.size());
    if (!status.ok()) {
      return Status(status.code(), "restoring snapshot at prefix " +
                                       std::to_string(snapshot.prefix) + ": " +
                                       status.message());
    }
    start = snapshot.prefix;
  }
  const auto& log = tin_->interactions();
  for (size_t i = start; i < log.size(); ++i) {
    const Status status = tracker->Process(log[i]);
    if (!status.ok()) {
      return Status(status.code(), "final-state replay at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
  }
  tracker->SaveState(out);
  return Status::Ok();
}

size_t TimeTravelIndex::MemoryUsage() const {
  size_t bytes = 0;
  for (const Snapshot& snapshot : snapshots_) {
    bytes += snapshot.state.size() + sizeof(snapshot.prefix);
  }
  bytes += log_.capacity() * sizeof(Interaction);
  if (owned_tin_ != nullptr) bytes += owned_tin_->MemoryUsage();
  return bytes;
}

}  // namespace tinprov
