#include "lazy/time_travel.h"

#include <algorithm>
#include <utility>

namespace tinprov {

StatusOr<std::unique_ptr<TimeTravelIndex>> TimeTravelIndex::Build(
    const Tin& tin, PolicyKind kind, size_t snapshot_interval) {
  return Build(tin, PolicyTrackerFactory(tin, kind), snapshot_interval);
}

StatusOr<std::unique_ptr<TimeTravelIndex>> TimeTravelIndex::Build(
    const Tin& tin, TrackerFactory factory, size_t snapshot_interval) {
  if (!factory) {
    return Status::InvalidArgument("time-travel index needs a factory");
  }
  const size_t interval = snapshot_interval == 0 ? 1 : snapshot_interval;
  std::unique_ptr<TimeTravelIndex> index(
      new TimeTravelIndex(tin, std::move(factory), interval));
  std::unique_ptr<Tracker> tracker = index->factory_();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  const auto& log = tin.interactions();
  for (size_t i = 0; i < log.size(); ++i) {
    const Status status = tracker->Process(log[i]);
    if (!status.ok()) {
      return Status(status.code(), "time-travel build at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
    if ((i + 1) % interval == 0) {
      Snapshot snapshot;
      snapshot.prefix = i + 1;
      tracker->SaveState(&snapshot.state);
      index->snapshots_.push_back(std::move(snapshot));
    }
  }
  return index;
}

StatusOr<Buffer> TimeTravelIndex::Provenance(VertexId v, Timestamp t) const {
  if (v >= tin_->num_vertices()) {
    return Status::InvalidArgument("query vertex " + std::to_string(v) +
                                   " out of range");
  }
  const size_t prefix = PrefixLength(*tin_, t);
  // Latest snapshot at or before the query prefix; none means the delta
  // starts from a fresh tracker (t before the first checkpoint).
  const auto it = std::upper_bound(
      snapshots_.begin(), snapshots_.end(), prefix,
      [](size_t p, const Snapshot& s) { return p < s.prefix; });
  std::unique_ptr<Tracker> tracker = factory_();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  size_t start = 0;
  if (it != snapshots_.begin()) {
    const Snapshot& snapshot = *(it - 1);
    const Status status =
        tracker->RestoreState(snapshot.state.data(), snapshot.state.size());
    if (!status.ok()) {
      return Status(status.code(), "restoring snapshot at prefix " +
                                       std::to_string(snapshot.prefix) +
                                       ": " + status.message());
    }
    start = snapshot.prefix;
  }
  const auto& log = tin_->interactions();
  for (size_t i = start; i < prefix; ++i) {
    const Status status = tracker->Process(log[i]);
    if (!status.ok()) {
      return Status(status.code(), "delta replay at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
  }
  return tracker->Provenance(v);
}

size_t TimeTravelIndex::MemoryUsage() const {
  size_t bytes = 0;
  for (const Snapshot& snapshot : snapshots_) {
    bytes += snapshot.state.size() + sizeof(snapshot.prefix);
  }
  return bytes;
}

}  // namespace tinprov
