// The time-travel index: periodic tracker snapshots + delta replay.
//
// Pure lazy replay answers a historical Provenance(v, t) in O(prefix);
// the index instead checkpoints the tracker's serialized state (the
// snapshot/restore capability of policies/tracker.h) every
// snapshot_interval interactions during one build replay. A query then
// restores the nearest snapshot at or before t's prefix and replays
// only the delta — O(snapshot + interval) instead of O(prefix) — at the
// price of MemoryUsage() bytes of standing serialized state. bench_lazy
// measures both sides of that trade.
#ifndef TINPROV_LAZY_TIME_TRAVEL_H_
#define TINPROV_LAZY_TIME_TRAVEL_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/buffer.h"
#include "core/tin.h"
#include "core/types.h"
#include "lazy/replay.h"
#include "policies/tracker.h"
#include "util/status.h"

namespace tinprov {

class InteractionStream;  // stream/interaction_stream.h

class TimeTravelIndex {
 public:
  /// Builds the index over `tin` for `kind`, snapshotting every
  /// `snapshot_interval` interactions (0 is treated as 1). Fails if the
  /// build replay rejects an interaction.
  static StatusOr<std::unique_ptr<TimeTravelIndex>> Build(
      const Tin& tin, PolicyKind kind, size_t snapshot_interval);

  /// As above for an arbitrary tracker factory (any policy or scalable
  /// tracker); snapshots and queries construct trackers through it, so
  /// it must build identically configured instances every call.
  static StatusOr<std::unique_ptr<TimeTravelIndex>> Build(
      const Tin& tin, TrackerFactory factory, size_t snapshot_interval);

  /// Streaming construction: the index is built as interactions arrive
  /// instead of from a pre-materialized log. Observe() each interaction
  /// (snapshots are cut at the ingest watermark, i.e. every
  /// snapshot_interval observed interactions, exactly where Build()
  /// would cut them), then Finalize() to enable queries. The index
  /// retains the observed log — historical delta replay needs it — so
  /// standing memory still grows with the stream; what streaming buys
  /// is single-pass ingestion with the build tracker and snapshots
  /// advancing while data arrives. Results are bit-identical to
  /// Build() over the materialized equivalent.
  static StatusOr<std::unique_ptr<TimeTravelIndex>> NewStreaming(
      size_t num_vertices, TrackerFactory factory, size_t snapshot_interval);

  /// Applies one arriving interaction to the unfinalized index.
  /// Enforces non-decreasing timestamps (wrap disordered sources in a
  /// SortingStream); FailedPrecondition once finalized.
  Status Observe(const Interaction& interaction);

  /// Drains `stream` through Observe().
  Status ObserveStream(InteractionStream& stream);

  /// Ends ingestion: materializes the retained log's index and enables
  /// Provenance(). Idempotent; Observe() is rejected afterwards.
  Status Finalize();

  /// True when the index answers queries (Build() returns finalized
  /// indexes; streaming ones finalize explicitly).
  bool finalized() const { return finalized_; }

  /// Timestamp of the last observed interaction.
  Timestamp watermark() const { return watermark_; }

  /// Provenance of `v` at historical time `t` (inclusive): restore the
  /// nearest snapshot at or before t's prefix, replay the delta. Equals
  /// full-prefix replay bit-exactly. Times before the first interaction
  /// yield an empty buffer.
  StatusOr<Buffer> Provenance(VertexId v, Timestamp t) const;

  size_t num_snapshots() const { return snapshots_.size(); }
  size_t snapshot_interval() const { return interval_; }

  /// Vertex count the index was built over.
  size_t num_vertices() const { return num_vertices_; }

  /// Interactions observed so far — the prefix length at watermark().
  size_t num_observed() const { return observed_; }

  /// Serializes the tracker state at the index's watermark (every
  /// observed interaction applied), appending to `out` in Tracker
  /// SaveState() format: RestoreState() on an identically configured
  /// tracker resumes replay bit-exactly after the last observed
  /// interaction. Stateless — the index keeps no end-of-log tracker, so
  /// this restores the newest snapshot and replays the tail delta (at
  /// most snapshot_interval interactions). The serve layer uses this to
  /// hand a historical index's final state to a live tracker.
  /// FailedPrecondition before Finalize().
  Status SaveFinalState(std::vector<uint8_t>* out) const;

  /// Standing bytes of serialized snapshot state plus the per-snapshot
  /// prefix bookkeeping (excluding container-header overhead, matching
  /// the Tracker::MemoryUsage() accounting convention). A streaming
  /// index additionally counts the log it retains; a Build() index
  /// borrows its log, so the log is the caller's bill.
  size_t MemoryUsage() const;

 private:
  struct Snapshot {
    size_t prefix = 0;  // interactions already applied to `state`
    std::vector<uint8_t> state;
  };

  TimeTravelIndex(size_t num_vertices, TrackerFactory factory,
                  size_t interval)
      : num_vertices_(num_vertices),
        factory_(std::move(factory)),
        interval_(interval) {}

  size_t num_vertices_;
  const Tin* tin_ = nullptr;          // set at Finalize (or by Build)
  std::unique_ptr<Tin> owned_tin_;    // streaming form owns its log
  TrackerFactory factory_;
  size_t interval_;
  std::vector<Snapshot> snapshots_;
  std::unique_ptr<Tracker> build_tracker_;  // live between ctor and Finalize
  std::vector<Interaction> log_;      // retained arrivals (streaming form)
  bool retain_log_ = false;
  bool finalized_ = false;
  size_t observed_ = 0;
  Timestamp watermark_ = std::numeric_limits<Timestamp>::lowest();
};

}  // namespace tinprov

#endif  // TINPROV_LAZY_TIME_TRAVEL_H_
