// The time-travel index: periodic tracker snapshots + delta replay.
//
// Pure lazy replay answers a historical Provenance(v, t) in O(prefix);
// the index instead checkpoints the tracker's serialized state (the
// snapshot/restore capability of policies/tracker.h) every
// snapshot_interval interactions during one build replay. A query then
// restores the nearest snapshot at or before t's prefix and replays
// only the delta — O(snapshot + interval) instead of O(prefix) — at the
// price of MemoryUsage() bytes of standing serialized state. bench_lazy
// measures both sides of that trade.
#ifndef TINPROV_LAZY_TIME_TRAVEL_H_
#define TINPROV_LAZY_TIME_TRAVEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/buffer.h"
#include "core/tin.h"
#include "core/types.h"
#include "lazy/replay.h"
#include "policies/tracker.h"
#include "util/status.h"

namespace tinprov {

class TimeTravelIndex {
 public:
  /// Builds the index over `tin` for `kind`, snapshotting every
  /// `snapshot_interval` interactions (0 is treated as 1). Fails if the
  /// build replay rejects an interaction.
  static StatusOr<std::unique_ptr<TimeTravelIndex>> Build(
      const Tin& tin, PolicyKind kind, size_t snapshot_interval);

  /// As above for an arbitrary tracker factory (any policy or scalable
  /// tracker); snapshots and queries construct trackers through it, so
  /// it must build identically configured instances every call.
  static StatusOr<std::unique_ptr<TimeTravelIndex>> Build(
      const Tin& tin, TrackerFactory factory, size_t snapshot_interval);

  /// Provenance of `v` at historical time `t` (inclusive): restore the
  /// nearest snapshot at or before t's prefix, replay the delta. Equals
  /// full-prefix replay bit-exactly. Times before the first interaction
  /// yield an empty buffer.
  StatusOr<Buffer> Provenance(VertexId v, Timestamp t) const;

  size_t num_snapshots() const { return snapshots_.size(); }
  size_t snapshot_interval() const { return interval_; }

  /// Standing bytes of serialized snapshot state plus the per-snapshot
  /// prefix bookkeeping (excluding container-header overhead, matching
  /// the Tracker::MemoryUsage() accounting convention).
  size_t MemoryUsage() const;

 private:
  struct Snapshot {
    size_t prefix = 0;  // interactions already applied to `state`
    std::vector<uint8_t> state;
  };

  TimeTravelIndex(const Tin& tin, TrackerFactory factory, size_t interval)
      : tin_(&tin), factory_(std::move(factory)), interval_(interval) {}

  const Tin* tin_;
  TrackerFactory factory_;
  size_t interval_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace tinprov

#endif  // TINPROV_LAZY_TIME_TRAVEL_H_
