#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace tinprov::obs {

namespace {

/// "ingest.batch_ns" -> "tinprov_ingest_batch_ns".
std::string PrometheusName(const std::string& name) {
  std::string out = "tinprov_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    out += (std::isalnum(uc) != 0) ? c : '_';
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string PrometheusText() {
  const MetricsRegistry& registry = MetricsRegistry::Global();
  std::string out;

  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [name, snapshot] : registry.HistogramSnapshots()) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " summary\n";
    out += prom + "{quantile=\"0.5\"} " + FormatDouble(snapshot.p50) + "\n";
    out += prom + "{quantile=\"0.9\"} " + FormatDouble(snapshot.p90) + "\n";
    out += prom + "{quantile=\"0.99\"} " + FormatDouble(snapshot.p99) + "\n";
    out += prom + "_sum " + std::to_string(snapshot.sum) + "\n";
    out += prom + "_count " + std::to_string(snapshot.count) + "\n";
  }
  return out;
}

std::string MetricsJson() {
  const MetricsRegistry& registry = MetricsRegistry::Global();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, snapshot] : registry.HistogramSnapshots()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(snapshot.count) +
           ",\"sum\":" + std::to_string(snapshot.sum) +
           ",\"p50\":" + FormatDouble(snapshot.p50) +
           ",\"p90\":" + FormatDouble(snapshot.p90) +
           ",\"p99\":" + FormatDouble(snapshot.p99) + "}";
  }
  out += "}}";
  return out;
}

double EngineMemoryBytes() { return MetricsRegistry::Global().MemoryBytes(); }

}  // namespace tinprov::obs
