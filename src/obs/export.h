// Exporters for the metrics registry: Prometheus text format for
// scraping, and a compact JSON snapshot that bench_util.h merges into
// the bench baseline reports so perf history carries engine metrics
// alongside wall times.
#ifndef TINPROV_OBS_EXPORT_H_
#define TINPROV_OBS_EXPORT_H_

#include <string>

namespace tinprov::obs {

/// The registry in Prometheus text exposition format. Metric names are
/// prefixed "tinprov_" and sanitized to [a-zA-Z0-9_]; counters emit
/// TYPE counter, gauges TYPE gauge, histograms TYPE summary with
/// quantile="0.5|0.9|0.99" labels plus _sum and _count series.
std::string PrometheusText();

/// Compact single-line JSON snapshot:
/// {"counters":{...},"gauges":{...},
///  "histograms":{name:{"count":..,"sum":..,"p50":..,"p90":..,"p99":..}}}
/// Keys are the raw metric names; values of non-finite gauges render
/// as 0 so the output is always strict JSON.
std::string MetricsJson();

/// Engine-wide memory in bytes: MetricsRegistry::Global().MemoryBytes().
double EngineMemoryBytes();

}  // namespace tinprov::obs

#endif  // TINPROV_OBS_EXPORT_H_
