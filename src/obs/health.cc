#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>

#include "obs/metrics.h"

namespace tinprov::obs {

namespace {

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

HealthRegistry& HealthRegistry::Global() {
  static HealthRegistry* const registry = new HealthRegistry();
  return *registry;
}

void HealthRegistry::Register(std::string name, HealthCheck check) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      checks_.begin(), checks_.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  if (it != checks_.end() && it->first == name) {
    it->second = std::move(check);
    return;
  }
  checks_.insert(it, {std::move(name), std::move(check)});
}

void HealthRegistry::Unregister(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      checks_.begin(), checks_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it != checks_.end() && it->first == name) checks_.erase(it);
}

HealthRegistry::Report HealthRegistry::RunAll() const {
  // Snapshot the callbacks, run them unlocked: a check may itself take
  // engine locks, and holding mu_ across arbitrary callbacks invites
  // lock-order trouble.
  std::vector<std::pair<std::string, HealthCheck>> checks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    checks = checks_;
  }
  Report report;
  report.checks.reserve(checks.size());
  for (const auto& [name, check] : checks) {
    CheckStatus status;
    status.name = name;
    try {
      status.result = check();
    } catch (const std::exception& e) {
      status.result.healthy = false;
      status.result.message = std::string("check threw: ") + e.what();
    } catch (...) {
      status.result.healthy = false;
      status.result.message = "check threw";
    }
    report.healthy = report.healthy && status.result.healthy;
    MetricsRegistry::Global()
        .GetGauge("health." + name)
        ->Set(status.result.healthy ? 1.0 : 0.0);
    report.checks.push_back(std::move(status));
  }
  return report;
}

std::string HealthRegistry::Json(bool* healthy) const {
  const Report report = RunAll();
  if (healthy != nullptr) *healthy = report.healthy;
  std::string out = "{\"healthy\":";
  out += report.healthy ? "true" : "false";
  out += ",\"checks\":{";
  bool first = true;
  for (const CheckStatus& status : report.checks) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(status.name) + "\":{\"healthy\":";
    out += status.result.healthy ? "true" : "false";
    out += ",\"value\":" + JsonDouble(status.result.value);
    out += ",\"message\":\"" + JsonEscape(status.result.message) + "\"}";
  }
  out += "}}";
  return out;
}

size_t HealthRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_.size();
}

void HealthRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  checks_.clear();
}

HealthCheck GaugeAtMostCheck(std::string gauge_name, double limit) {
  return [gauge_name = std::move(gauge_name), limit]() {
    const double value =
        MetricsRegistry::Global().GetGauge(gauge_name)->Value();
    HealthResult result;
    result.healthy = value <= limit;
    result.value = value;
    // Human text, not JSON: an infinite limit reads "inf", not "0".
    char text[128];
    std::snprintf(text, sizeof(text), " = %g (limit %g)", value, limit);
    result.message = gauge_name + text;
    return result;
  };
}

}  // namespace tinprov::obs
