// HealthRegistry: named liveness/health checks behind one registry,
// the decision layer of the ops plane (obs/http.h serves it at
// /healthz; the serve and stream layers register their checks when
// ProvenanceService::EnableOpsServer wires them up).
//
// A check is a callback returning HealthResult — a verdict, the
// observed value, and a human-readable detail line. RunAll() executes
// every registered check, aggregates (healthy iff every check is), and
// mirrors each verdict into a `health.<name>` gauge (1 healthy, 0 not)
// so scrapes of /metrics carry the same signal the /healthz page shows.
//
// Checks must be safe to call from any thread (the ops server's accept
// thread runs them); the usual shape is a closure over the metrics
// registry's gauges or over an engine object that outlives the
// registration. Unregister before the subject dies.
#ifndef TINPROV_OBS_HEALTH_H_
#define TINPROV_OBS_HEALTH_H_

#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tinprov::obs {

struct HealthResult {
  bool healthy = true;
  /// The quantity the verdict was derived from (lag, depth, age, ...).
  double value = 0.0;
  /// One line of detail, e.g. "epoch age 0.12s (limit 10s)".
  std::string message;
};

using HealthCheck = std::function<HealthResult()>;

class HealthRegistry {
 public:
  /// The process-wide registry (deliberately leaked, like the metrics
  /// registry). Engine layers register here by default.
  static HealthRegistry& Global();

  HealthRegistry() = default;
  HealthRegistry(const HealthRegistry&) = delete;
  HealthRegistry& operator=(const HealthRegistry&) = delete;

  /// Registers (or replaces) the check called `name`.
  void Register(std::string name, HealthCheck check);

  /// Removes `name`; unknown names are a no-op.
  void Unregister(std::string_view name);

  struct CheckStatus {
    std::string name;
    HealthResult result;
  };

  struct Report {
    bool healthy = true;  // conjunction over every check; true when empty
    std::vector<CheckStatus> checks;  // sorted by name
  };

  /// Runs every check and publishes a `health.<name>` gauge per verdict.
  /// A check that throws is reported unhealthy rather than propagating.
  Report RunAll() const;

  /// RunAll() as one strict-JSON object:
  /// {"healthy":true,"checks":{"name":{"healthy":true,"value":..,
  ///  "message":".."}, ...}}
  /// When `healthy` is non-null it receives the aggregate verdict of
  /// the same run (so callers don't re-run the checks to learn it).
  std::string Json(bool* healthy = nullptr) const;

  size_t size() const;

  /// Test support: drops every registered check.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, HealthCheck>> checks_;  // sorted
};

/// A threshold check over a metrics-registry gauge: healthy while
/// gauge(name) <= limit. The gauge is interned on first run, so the
/// check is valid even before the instrumented code path has fired.
HealthCheck GaugeAtMostCheck(std::string gauge_name, double limit);

}  // namespace tinprov::obs

#endif  // TINPROV_OBS_HEALTH_H_
