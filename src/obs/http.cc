#include "obs/http.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#if !defined(TINPROV_NO_THREADS)
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "obs/export.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"

namespace tinprov::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True when `query` carries `key` as a truthy flag: "key", "key=1",
/// "key=true" among '&'-separated pairs.
bool QueryFlag(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    const size_t amp = query.find('&', pos);
    const std::string_view pair =
        query.substr(pos, amp == std::string_view::npos ? amp : amp - pos);
    const size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      if (eq == std::string_view::npos) return true;
      const std::string_view value = pair.substr(eq + 1);
      return value == "1" || value == "true";
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return false;
}

// Only the threaded connection handler emits status lines; a
// TINPROV_NO_THREADS build compiles Dispatch() but never serializes.
[[maybe_unused]] const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

}  // namespace

OpsServer::OpsServer() {
  const int64_t start_ns = SteadyNowNs();

  SetHandler("/metrics", [](std::string_view) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = PrometheusText();
    return response;
  });

  SetHandler("/metricsz", [](std::string_view) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = MetricsJson();
    return response;
  });

  SetHandler("/healthz", [](std::string_view) {
    HttpResponse response;
    response.content_type = "application/json";
    bool healthy = true;
    response.body = HealthRegistry::Global().Json(&healthy);
    response.status = healthy ? 200 : 503;
    return response;
  });

  SetHandler("/tracez", [](std::string_view query) {
    HttpResponse response;
    response.content_type = "application/json";
    if (QueryFlag(query, "slow")) {
      response.body = SlowQueryLog::Global().Json();
    } else if (QueryFlag(query, "drain")) {
      response.body = TraceSink::Global().DrainJson();
    } else {
      response.body = TraceSink::Global().ToJson();
    }
    return response;
  });

  // The bare-process status page; serve/ installs a service-aware one
  // on top of this when ProvenanceService::EnableOpsServer wires up.
  SetHandler("/statusz", [start_ns](std::string_view) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"uptime_s\":%.3f,\"memory_bytes\":%.0f,"
                  "\"counters\":%zu,\"gauges\":%zu,\"histograms\":%zu}",
                  static_cast<double>(SteadyNowNs() - start_ns) / 1e9,
                  registry.MemoryBytes(), registry.CounterValues().size(),
                  registry.GaugeValues().size(),
                  registry.HistogramSnapshots().size());
    HttpResponse response;
    response.content_type = "application/json";
    response.body = buf;
    return response;
  });
}

OpsServer::~OpsServer() { Stop(); }

void OpsServer::SetHandler(std::string path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[std::move(path)] = std::move(handler);
}

HttpResponse OpsServer::Dispatch(std::string_view target) const {
  const size_t question = target.find('?');
  const std::string_view path = target.substr(0, question);
  const std::string_view query =
      question == std::string_view::npos ? std::string_view{}
                                         : target.substr(question + 1);
  HttpHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    HttpResponse response;
    response.status = 404;
    response.body = "not found\n";
    return response;
  }
  return handler(query);
}

#if !defined(TINPROV_NO_THREADS)

Status OpsServer::Start(uint16_t port) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::FailedPrecondition("ops server running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("ops server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("ops server: bind(127.0.0.1:" +
                            std::to_string(port) + ") failed");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Status::Internal("ops server: listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Internal("ops server: getsockname() failed");
  }

  std::lock_guard<std::mutex> lock(mu_);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  running_ = true;
  thread_ = std::thread(&OpsServer::AcceptLoop, this);
  return Status::Ok();
}

void OpsServer::Stop() {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    fd = listen_fd_;
    listen_fd_ = -1;
  }
  // shutdown() unblocks the accept thread; close() releases the port.
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

bool OpsServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void OpsServer::AcceptLoop() {
  for (;;) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fd = listen_fd_;
    }
    if (fd < 0) return;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      // Stop() closed the socket underneath us — or a transient error;
      // either way re-check listen_fd_ and bail once it is gone.
      std::lock_guard<std::mutex> lock(mu_);
      if (listen_fd_ < 0) return;
      continue;
    }
    HandleConnection(client);
    ::close(client);
  }
}

void OpsServer::HandleConnection(int fd) const {
  // An ops page request fits in one read; bound it so a stuck client
  // can't pin the accept thread.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  char buf[4096];
  size_t used = 0;
  while (used < sizeof(buf)) {
    const ssize_t n = ::recv(fd, buf + used, sizeof(buf) - used, 0);
    if (n <= 0) break;
    used += static_cast<size_t>(n);
    if (std::string_view(buf, used).find("\r\n\r\n") !=
        std::string_view::npos) {
      break;
    }
  }

  const std::string_view request(buf, used);
  const size_t line_end = request.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? request : request.substr(0, line_end);

  HttpResponse response;
  const size_t sp1 = line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (line.substr(0, sp1) != "GET") {
    response.status = 405;
    response.body = "GET only\n";
  } else {
    response = Dispatch(line.substr(sp1 + 1, sp2 - sp1 - 1));
  }

  char header[256];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());

  std::string wire(header, static_cast<size_t>(header_len));
  wire += response.body;
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

#else  // TINPROV_NO_THREADS

Status OpsServer::Start(uint16_t port) {
  (void)port;
  return Status::FailedPrecondition(
      "ops server needs threads (TINPROV_PARALLEL=OFF); use Dispatch()");
}

void OpsServer::Stop() {}

bool OpsServer::running() const { return false; }

#endif

}  // namespace tinprov::obs
