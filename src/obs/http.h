// OpsServer: a dependency-free, localhost-bound HTTP/1.0 endpoint that
// makes the obs/ layer live — metrics, health, status, and traces on
// demand from curl or a Prometheus scraper instead of only at exit.
//
// Scope is deliberately tiny: one blocking accept thread, GET only,
// Connection: close, 127.0.0.1 only (an ops page, not a public
// server). Every route is a Handler — a callback from request query
// string to Response — and the constructor installs the built-ins:
//
//   /metrics   Prometheus text exposition (export.h PrometheusText())
//   /metricsz  the registry as JSON (export.h MetricsJson())
//   /healthz   HealthRegistry::RunAll(); HTTP 200 healthy, 503 not
//   /statusz   process snapshot (uptime, memory, registry census) —
//              serve/ overrides this with the full service view
//   /tracez    TraceSink JSON; ?drain=1 consumes the ring (each event
//              handed out once), ?slow=1 the SlowQueryLog instead
//
// SetHandler replaces or adds routes; Dispatch() is the transport-free
// core (tests and TINPROV_NO_THREADS builds call it directly — under
// TINPROV_NO_THREADS Start() returns FailedPrecondition since there is
// no thread to accept on).
#ifndef TINPROV_OBS_HTTP_H_
#define TINPROV_OBS_HTTP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#if !defined(TINPROV_NO_THREADS)
#include <thread>
#endif

#include "util/status.h"

namespace tinprov::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Route callback: receives the request's query string (the part after
/// '?', possibly empty) and produces the response. Must be callable
/// from the accept thread at any time between Start() and Stop().
using HttpHandler = std::function<HttpResponse(std::string_view query)>;

class OpsServer {
 public:
  /// Installs the built-in routes listed above.
  OpsServer();
  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;
  ~OpsServer();

  /// Adds or replaces the handler for `path` (e.g. "/statusz").
  void SetHandler(std::string path, HttpHandler handler);

  /// Routes `target` ("/path" or "/path?query") through the handler
  /// table: 404 for unknown paths, the handler's response otherwise.
  /// This is the whole server minus the socket — tests hit it directly.
  HttpResponse Dispatch(std::string_view target) const;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port())
  /// and spawns the accept thread. FailedPrecondition when already
  /// running or built without threads; Internal on socket errors.
  Status Start(uint16_t port);

  /// Closes the listen socket and joins the accept thread; idempotent.
  void Stop();

  /// The bound port; 0 before a successful Start().
  uint16_t port() const { return port_; }

  bool running() const;

 private:
#if !defined(TINPROV_NO_THREADS)
  void AcceptLoop();
  void HandleConnection(int fd) const;
#endif

  mutable std::mutex mu_;
  std::map<std::string, HttpHandler, std::less<>> handlers_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
#if !defined(TINPROV_NO_THREADS)
  bool running_ = false;
  std::thread thread_;
#endif
};

}  // namespace tinprov::obs

#endif  // TINPROV_OBS_HTTP_H_
