#include "obs/metrics.h"

#include <algorithm>

#include "util/cpu.h"

namespace tinprov::obs {

uint64_t Histogram::Count() const {
#if defined(TINPROV_METRICS_ENABLED)
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
#else
  return 0;
#endif
}

double Histogram::BucketLow(size_t i) {
  if (i == 0) return 0.0;
  return static_cast<double>(uint64_t{1} << (i - 1));
}

double Histogram::BucketHigh(size_t i) {
  if (i == 0) return 1.0;
  if (i >= 63) return 2.0 * static_cast<double>(uint64_t{1} << 62);
  return static_cast<double>(uint64_t{1} << i);
}

double Histogram::Percentile(double p) const {
#if defined(TINPROV_METRICS_ENABLED)
  p = std::min(1.0, std::max(0.0, p));
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // The sample with (1-based) rank ceil(p * total); linear
  // interpolation inside its bucket.
  double rank = p * static_cast<double>(total);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Bucket 0 is degenerate: it holds only the exact value 0.
      if (i == 0) return 0.0;
      const double fraction = (rank - static_cast<double>(before)) /
                              static_cast<double>(counts[i]);
      return BucketLow(i) + fraction * (BucketHigh(i) - BucketLow(i));
    }
  }
  return BucketHigh(kNumBuckets - 1);
#else
  (void)p;
  return 0.0;
#endif
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot snapshot;
  snapshot.count = Count();
  snapshot.sum = Sum();
  snapshot.p50 = Percentile(0.50);
  snapshot.p90 = Percentile(0.90);
  snapshot.p99 = Percentile(0.99);
  return snapshot;
}

void Histogram::Reset() {
#if defined(TINPROV_METRICS_ENABLED)
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
#endif
}

MetricsRegistry& MetricsRegistry::Global() {
  // Deliberately leaked: instrumentation sites cache raw pointers and
  // may fire from static destructors, so the registry must outlive
  // everything.
  static MetricsRegistry* const registry = [] {
    auto* r = new MetricsRegistry();
    // The dispatch level is fixed for the process lifetime (util/cpu.h),
    // so publish it once: every exporter, /statusz, and recorded bench
    // JSON then carries which kernel table this run actually used.
    r->GetGauge("cpu.simd_level")
        ->Set(static_cast<double>(cpu::ActiveSimdLevel()));
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->Value());
  }
  return values;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> values;
  values.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    values.emplace_back(name, gauge->Value());
  }
  return values;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> values;
  values.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    values.emplace_back(name, histogram->GetSnapshot());
  }
  return values;
}

double MetricsRegistry::MemoryBytes() const {
  constexpr std::string_view kPrefix = "memory.";
  double bytes = 0.0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, gauge] : gauges_) {
    if (std::string_view(name).substr(0, kPrefix.size()) == kPrefix) {
      bytes += gauge->Value();
    }
  }
  return bytes;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace tinprov::obs
