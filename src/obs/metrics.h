// Process-wide metrics: named counters, gauges, and log2-bucket latency
// histograms behind one MetricsRegistry.
//
// This is the observability substrate every engine layer reports
// through (stream ingest rate, shard balance, snapshot cost, tracker
// memory) and that the exporters (obs/export.h) turn into Prometheus
// text or a JSON snapshot merged into the bench baselines.
//
// Concurrency model: every mutation is a relaxed atomic op. Counters
// additionally shard across a small set of cache-line-padded cells
// indexed by a per-thread slot, so the hot per-interaction increments
// never contend on one line. Reads (Value(), snapshots) sum the cells;
// they are exact once writers have quiesced (joined), and monotone
// best-effort while they run — good enough for live dashboards, exact
// for end-of-run reports.
//
// Cost model: instrumentation call sites go through the TINPROV_*
// macros below, which cache the registry lookup in a function-local
// static and compile to NOTHING when the library is built with
// -DTINPROV_METRICS=OFF (no clock reads, no atomics, no argument
// evaluation). tests/test_obs.cc holds the no-op proof; bench_micro's
// overhead smoke holds the <=2% bound for the ON build.
#ifndef TINPROV_OBS_METRICS_H_
#define TINPROV_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace tinprov::obs {

/// True when the library was compiled with metrics (the default);
/// false under -DTINPROV_METRICS=OFF, where every metric op is a no-op.
#if defined(TINPROV_METRICS_ENABLED)
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

namespace internal {

inline constexpr size_t kCounterShards = 8;  // power of two

/// Stable small slot for the calling thread, assigned round-robin on
/// first use so concurrent replay workers land on distinct cells.
inline size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return slot;
}

struct alignas(64) PaddedCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonic counter, per-thread sharded (see file comment).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
#if defined(TINPROV_METRICS_ENABLED)
    cells_[internal::ThreadSlot()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
#if defined(TINPROV_METRICS_ENABLED)
    uint64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
#else
    return 0;
#endif
  }

  /// Test support: zeroes the cells. Never called on hot paths.
  void Reset() {
#if defined(TINPROV_METRICS_ENABLED)
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
#endif
  }

 private:
#if defined(TINPROV_METRICS_ENABLED)
  internal::PaddedCell cells_[internal::kCounterShards];
#endif
};

/// Last-written-wins gauge with atomic add and monotone-max variants.
/// Double-valued so one type covers byte totals, watermarks, depths,
/// and the alpha residue.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
#if defined(TINPROV_METRICS_ENABLED)
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void Add(double d) {
#if defined(TINPROV_METRICS_ENABLED)
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + d,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)d;
#endif
  }

  /// Raises the gauge to `v` if larger (peak tracking).
  void SetMax(double v) {
#if defined(TINPROV_METRICS_ENABLED)
    double current = value_.load(std::memory_order_relaxed);
    while (current < v && !value_.compare_exchange_weak(
                              current, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  double Value() const {
#if defined(TINPROV_METRICS_ENABLED)
    return value_.load(std::memory_order_relaxed);
#else
    return 0.0;
#endif
  }

  void Reset() { Set(0.0); }

 private:
#if defined(TINPROV_METRICS_ENABLED)
  std::atomic<double> value_{0.0};
#endif
};

/// Log2-bucket histogram over non-negative integer samples (latencies
/// in nanoseconds, list lengths, cone sizes). Bucket 0 holds the value
/// 0; bucket i>0 holds [2^(i-1), 2^i). Percentiles interpolate linearly
/// inside the selected bucket, so the estimate is within the bucket's
/// 2x width of the exact quantile (tests/test_obs.cc pins this down).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
#if defined(TINPROV_METRICS_ENABLED)
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  uint64_t Count() const;
  uint64_t Sum() const {
#if defined(TINPROV_METRICS_ENABLED)
    return sum_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  /// Estimated quantile for `p` in [0, 1]; 0 when empty.
  double Percentile(double p) const;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Snapshot GetSnapshot() const;

  void Reset();

  /// Lower (inclusive) and upper (exclusive) value bound of bucket `i`.
  static double BucketLow(size_t i);
  static double BucketHigh(size_t i);

  static size_t BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    size_t bits = 0;
    while (value > 0) {
      value >>= 1;
      ++bits;
    }
    return bits < kNumBuckets ? bits : kNumBuckets - 1;
  }

 private:
#if defined(TINPROV_METRICS_ENABLED)
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
#endif
};

/// The process-wide registry. Get*() interns by name and returns a
/// pointer that stays valid for the life of the process (the registry
/// is deliberately leaked, so instrumentation in static destructors
/// cannot use-after-free). Counters, gauges, and histograms occupy
/// separate namespaces.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Sorted (name, value) views for the exporters.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>>
  HistogramSnapshots() const;

  /// Engine-wide bytes: the sum of every gauge whose name starts with
  /// "memory." — the one call that unifies tracker MemoryUsage(),
  /// pool/arena reservations, time-travel snapshot state, and ingest
  /// buffering, each kept current by its layer's sampling points.
  double MemoryBytes() const;

  /// Test support: zeroes every registered metric without invalidating
  /// the pointers cached at instrumentation sites.
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII latency probe: observes elapsed nanoseconds into a histogram on
/// destruction. Use through TINPROV_SCOPED_LATENCY_NS so the clock
/// reads vanish in no-metrics builds.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram) : histogram_(histogram) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    histogram_->Observe(static_cast<uint64_t>(watch_.ElapsedNanos()));
  }

 private:
  Histogram* histogram_;
  Stopwatch watch_;
};

/// RAII busy/idle probe: adds elapsed nanoseconds to a counter on
/// destruction (e.g. per-shard busy vs queue-wait idle time).
class ScopedCounterNs {
 public:
  explicit ScopedCounterNs(Counter* counter) : counter_(counter) {}
  ScopedCounterNs(const ScopedCounterNs&) = delete;
  ScopedCounterNs& operator=(const ScopedCounterNs&) = delete;
  ~ScopedCounterNs() {
    counter_->Add(static_cast<uint64_t>(watch_.ElapsedNanos()));
  }

 private:
  Counter* counter_;
  Stopwatch watch_;
};

}  // namespace tinprov::obs

// Instrumentation macros. Each caches its registry lookup in a
// function-local static (thread-safe, one lock ever per site) and
// compiles to an empty statement — arguments unevaluated — when the
// library is built with -DTINPROV_METRICS=OFF.
#if defined(TINPROV_METRICS_ENABLED)

#define TINPROV_COUNTER_ADD(name, delta)                             \
  do {                                                               \
    static ::tinprov::obs::Counter* const tinprov_metric_counter_ =  \
        ::tinprov::obs::MetricsRegistry::Global().GetCounter(name);  \
    tinprov_metric_counter_->Add(                                    \
        static_cast<uint64_t>(delta));                               \
  } while (0)

#define TINPROV_GAUGE_SET(name, value)                               \
  do {                                                               \
    static ::tinprov::obs::Gauge* const tinprov_metric_gauge_ =      \
        ::tinprov::obs::MetricsRegistry::Global().GetGauge(name);    \
    tinprov_metric_gauge_->Set(static_cast<double>(value));          \
  } while (0)

#define TINPROV_GAUGE_MAX(name, value)                               \
  do {                                                               \
    static ::tinprov::obs::Gauge* const tinprov_metric_gauge_ =      \
        ::tinprov::obs::MetricsRegistry::Global().GetGauge(name);    \
    tinprov_metric_gauge_->SetMax(static_cast<double>(value));       \
  } while (0)

#define TINPROV_HISTOGRAM_OBSERVE(name, value)                       \
  do {                                                               \
    static ::tinprov::obs::Histogram* const tinprov_metric_hist_ =   \
        ::tinprov::obs::MetricsRegistry::Global().GetHistogram(name);\
    tinprov_metric_hist_->Observe(static_cast<uint64_t>(value));     \
  } while (0)

#define TINPROV_OBS_CONCAT_IMPL(a, b) a##b
#define TINPROV_OBS_CONCAT(a, b) TINPROV_OBS_CONCAT_IMPL(a, b)

#define TINPROV_SCOPED_LATENCY_NS(name)                              \
  static ::tinprov::obs::Histogram* const TINPROV_OBS_CONCAT(        \
      tinprov_latency_hist_, __LINE__) =                             \
      ::tinprov::obs::MetricsRegistry::Global().GetHistogram(name);  \
  ::tinprov::obs::ScopedLatency TINPROV_OBS_CONCAT(                  \
      tinprov_latency_span_, __LINE__){TINPROV_OBS_CONCAT(           \
      tinprov_latency_hist_, __LINE__)}

#define TINPROV_SCOPED_COUNTER_NS(name)                              \
  static ::tinprov::obs::Counter* const TINPROV_OBS_CONCAT(          \
      tinprov_counter_ns_, __LINE__) =                               \
      ::tinprov::obs::MetricsRegistry::Global().GetCounter(name);    \
  ::tinprov::obs::ScopedCounterNs TINPROV_OBS_CONCAT(                \
      tinprov_counter_span_, __LINE__){TINPROV_OBS_CONCAT(           \
      tinprov_counter_ns_, __LINE__)}

#else  // !TINPROV_METRICS_ENABLED

#define TINPROV_COUNTER_ADD(name, delta) do { } while (0)
#define TINPROV_GAUGE_SET(name, value) do { } while (0)
#define TINPROV_GAUGE_MAX(name, value) do { } while (0)
#define TINPROV_HISTOGRAM_OBSERVE(name, value) do { } while (0)
#define TINPROV_SCOPED_LATENCY_NS(name) do { } while (0)
#define TINPROV_SCOPED_COUNTER_NS(name) do { } while (0)

#endif  // TINPROV_METRICS_ENABLED

#endif  // TINPROV_OBS_METRICS_H_
