#include "obs/recorder.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace tinprov::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

/// Looks `name` up in a sorted (name, value) sample column.
template <typename V>
const V* FindSorted(const std::vector<std::pair<std::string, V>>& column,
                    std::string_view name) {
  const auto it = std::lower_bound(
      column.begin(), column.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == column.end() || it->first != name) return nullptr;
  return &it->second;
}

}  // namespace

Recorder::Recorder(RecorderOptions options)
    : options_{options.interval_ms < 1 ? 1 : options.interval_ms,
               options.capacity == 0 ? 1 : options.capacity},
      epoch_ns_(SteadyNowNs()) {}

Recorder::~Recorder() { Stop(); }

Recorder::Sample Recorder::Capture(int64_t t_ns) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Sample sample;
  sample.t_ns = t_ns;
  sample.counters = registry.CounterValues();
  sample.gauges = registry.GaugeValues();
  for (const auto& [name, snapshot] : registry.HistogramSnapshots()) {
    sample.histograms.emplace_back(name,
                                   std::make_pair(snapshot.count, snapshot.sum));
  }
  return sample;
}

void Recorder::Append(Sample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(sample));
  if (ring_.size() > options_.capacity) ring_.pop_front();
  ++total_;
}

void Recorder::SampleNow() { Append(Capture(SteadyNowNs() - epoch_ns_)); }

#if !defined(TINPROV_NO_THREADS)

Status Recorder::Start() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (started_) {
      return Status::FailedPrecondition("recorder already started");
    }
    started_ = true;
    stopping_ = false;
  }
  SampleNow();  // the window is never empty while the recorder runs
  thread_ = std::thread(&Recorder::Loop, this);
  return Status::Ok();
}

void Recorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(stop_mu_);
  started_ = false;
}

void Recorder::Loop() {
  const auto interval = std::chrono::milliseconds(options_.interval_ms);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_cv_.wait_for(lock, interval, [this] { return stopping_; })) {
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

#else  // TINPROV_NO_THREADS

Status Recorder::Start() {
  return Status::FailedPrecondition(
      "recorder thread disabled (TINPROV_PARALLEL=OFF); call SampleNow()");
}

void Recorder::Stop() {}

#endif

double Recorder::Rate(std::string_view counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0.0;
  const Sample& oldest = ring_.front();
  const Sample& newest = ring_.back();
  const double span_s =
      static_cast<double>(newest.t_ns - oldest.t_ns) / 1e9;
  if (span_s <= 0.0) return 0.0;
  const uint64_t* end = FindSorted(newest.counters, counter);
  if (end == nullptr) return 0.0;
  const uint64_t* begin = FindSorted(oldest.counters, counter);
  // A counter born mid-window starts from zero.
  const uint64_t base = begin == nullptr ? 0 : *begin;
  if (*end <= base) return 0.0;
  return static_cast<double>(*end - base) / span_s;
}

double Recorder::Delta(std::string_view counter) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0.0;
  const uint64_t* end = FindSorted(ring_.back().counters, counter);
  if (end == nullptr) return 0.0;
  const uint64_t* begin = FindSorted(ring_.front().counters, counter);
  const uint64_t base = begin == nullptr ? 0 : *begin;
  return *end <= base ? 0.0 : static_cast<double>(*end - base);
}

double Recorder::LatestGauge(std::string_view gauge) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return 0.0;
  const double* value = FindSorted(ring_.back().gauges, gauge);
  return value == nullptr ? 0.0 : *value;
}

size_t Recorder::num_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Recorder::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double Recorder::WindowSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return 0.0;
  return static_cast<double>(ring_.back().t_ns - ring_.front().t_ns) / 1e9;
}

std::string Recorder::TimeSeriesJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"interval_ms\":";
  AppendU64(&out, static_cast<uint64_t>(options_.interval_ms));
  out += ",\"capacity\":";
  AppendU64(&out, options_.capacity);
  out += ",\"total_samples\":";
  AppendU64(&out, total_);
  out += ",\"samples\":[";
  bool first_sample = true;
  for (const Sample& sample : ring_) {
    if (!first_sample) out += ",";
    first_sample = false;
    out += "{\"t_s\":" + JsonDouble(static_cast<double>(sample.t_ns) / 1e9);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : sample.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":";
      AppendU64(&out, value);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : sample.gauges) {
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":" + JsonDouble(value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, counts] : sample.histograms) {
      if (!first) out += ",";
      first = false;
      out += "\"" + name + "\":{\"count\":";
      AppendU64(&out, counts.first);
      out += ",\"sum\":";
      AppendU64(&out, counts.second);
      out += "}";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void Recorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_ = 0;
}

}  // namespace tinprov::obs
