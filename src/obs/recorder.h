// Recorder: continuous sampling of the whole MetricsRegistry into a
// bounded ring of timestamped snapshots — the time axis the registry's
// point-in-time counters lack.
//
// A background thread wakes every interval_ms, captures every counter,
// gauge, and histogram summary, and appends the sample to a ring of
// `capacity` entries (oldest evicted first), so the ring always holds
// the most recent capacity×interval window. From that window the
// recorder derives what a status page actually wants: windowed rates
// (interactions/s, queries/s via Rate()), deltas (Delta()), and the
// full series as time-series JSON (TimeSeriesJson()) for offline
// plotting next to the BENCH_*.json metrics blobs.
//
// Threading: Start()/Stop() manage the sampler thread; every accessor
// is thread-safe against it. Under -DTINPROV_PARALLEL=OFF
// (TINPROV_NO_THREADS) Start() returns FailedPrecondition and callers
// drive SampleNow() inline instead — the ring/rate/JSON machinery is
// identical either way.
#ifndef TINPROV_OBS_RECORDER_H_
#define TINPROV_OBS_RECORDER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if !defined(TINPROV_NO_THREADS)
#include <condition_variable>
#include <thread>
#endif

#include "util/status.h"

namespace tinprov::obs {

struct RecorderOptions {
  /// Sampling period of the background thread.
  int64_t interval_ms = 250;
  /// Ring bound: samples kept before the oldest is evicted.
  size_t capacity = 512;
};

class Recorder {
 public:
  /// One full-registry capture. Histograms are kept as (count, sum)
  /// pairs — enough to derive observation rates and mean latency over
  /// any sub-window without storing 64 buckets per sample.
  struct Sample {
    int64_t t_ns = 0;  // since the recorder's construction, steady clock
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, std::pair<uint64_t, uint64_t>>>
        histograms;  // name -> (count, sum)
  };

  explicit Recorder(RecorderOptions options = {});
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;
  ~Recorder();

  /// Spawns the sampler thread (takes one sample immediately so the
  /// window is never empty). FailedPrecondition when already started or
  /// built without threads (drive SampleNow() instead).
  Status Start();

  /// Joins the sampler thread; idempotent. The ring is kept.
  void Stop();

  /// Takes one sample inline from any thread (the TINPROV_NO_THREADS
  /// path, and tests that want deterministic windows).
  void SampleNow();

  /// Counter increase per second across the ring's window: (newest -
  /// oldest) / span. Zero while the window has fewer than two samples,
  /// no time span, or no such counter.
  double Rate(std::string_view counter) const;

  /// Counter increase across the ring's window (newest - oldest).
  double Delta(std::string_view counter) const;

  /// The newest sampled value of `gauge`; 0 when absent.
  double LatestGauge(std::string_view gauge) const;

  size_t num_samples() const;
  /// Samples ever taken (evictions included).
  uint64_t total_samples() const;
  /// Seconds covered by the ring (newest.t - oldest.t).
  double WindowSeconds() const;

  /// The ring as strict JSON, oldest first:
  /// {"interval_ms":..,"capacity":..,"total_samples":..,"samples":[
  ///  {"t_s":..,"counters":{..},"gauges":{..},
  ///   "histograms":{"name":{"count":..,"sum":..},..}}, ...]}
  std::string TimeSeriesJson() const;

  /// Test support: drops every sample (the thread, if any, keeps going).
  void Clear();

 private:
  void Append(Sample sample);
  static Sample Capture(int64_t t_ns);

  const RecorderOptions options_;
  const int64_t epoch_ns_;

  mutable std::mutex mu_;
  std::deque<Sample> ring_;
  uint64_t total_ = 0;

#if !defined(TINPROV_NO_THREADS)
  void Loop();

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
#endif
};

}  // namespace tinprov::obs

#endif  // TINPROV_OBS_RECORDER_H_
