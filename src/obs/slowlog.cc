#include "obs/slowlog.h"

#include <algorithm>
#include <cstdio>

namespace tinprov::obs {

namespace {

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

}  // namespace

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* const log = new SlowQueryLog();
  return *log;
}

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<size_t>(capacity_, 64));
}

void SlowQueryLog::Record(const SlowQueryRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
    return;
  }
  ring_[next_] = record;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, next_ points at the oldest slot.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::string SlowQueryLog::Json() const {
  std::vector<SlowQueryRecord> records = Snapshot();
  uint64_t recorded;
  uint64_t dropped;
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorded = recorded_;
    dropped = dropped_;
    capacity = capacity_;
  }
  std::string out = "{\"capacity\":";
  AppendU64(&out, capacity);
  out += ",\"recorded\":";
  AppendU64(&out, recorded);
  out += ",\"dropped\":";
  AppendU64(&out, dropped);
  out += ",\"queries\":[";
  bool first = true;
  for (const SlowQueryRecord& r : records) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":";
    AppendU64(&out, r.query_id);
    out += ",\"kind\":\"" + JsonEscape(r.kind) + "\",\"vertex\":";
    AppendU64(&out, r.vertex);
    out += ",\"latency_ns\":";
    AppendI64(&out, r.latency_ns);
    out += ",\"replayed\":";
    AppendU64(&out, r.replayed_interactions);
    out += ",\"epoch_seq\":";
    AppendU64(&out, r.epoch_seq);
    out += ",\"epoch_prefix\":";
    AppendU64(&out, r.epoch_prefix);
    out += "}";
  }
  out += "]}";
  return out;
}

void SlowQueryLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t SlowQueryLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t SlowQueryLog::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace tinprov::obs
