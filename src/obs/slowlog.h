// SlowQueryLog: a bounded structured ring of the slowest queries the
// serve layer answered — the "what was slow and why" page of the ops
// plane, served at /tracez?slow=1 by obs/http.h.
//
// ProvenanceService::Execute tags every query with a process-unique id
// and records the ones whose latency crosses the service's threshold
// (ServeOptions::slow_query_ns). A record carries enough to diagnose
// the outlier without a debugger: the query kind and vertex, the
// latency, how many log interactions the answer had to delta-replay
// (0 for epoch-ring hits — those are the fast path), and the epoch the
// answer resolved against.
//
// The ring is fixed-capacity and mutex-guarded; when full, the oldest
// record is overwritten and dropped() counts the loss, so a long-lived
// service keeps its most recent window of slow queries. All methods are
// thread-safe.
#ifndef TINPROV_OBS_SLOWLOG_H_
#define TINPROV_OBS_SLOWLOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tinprov::obs {

struct SlowQueryRecord {
  uint64_t query_id = 0;
  /// Stable short name of the query kind ("provenance",
  /// "provenance_at", "top_origins"); must outlive the process
  /// (string literal), the log stores the pointer.
  const char* kind = "";
  uint64_t vertex = 0;
  int64_t latency_ns = 0;
  /// Log interactions delta-replayed to build the answer; 0 when the
  /// query resolved from a published epoch directly.
  uint64_t replayed_interactions = 0;
  /// The epoch the answer was resolved against.
  uint64_t epoch_seq = 0;
  uint64_t epoch_prefix = 0;
};

class SlowQueryLog {
 public:
  /// The process-wide log (deliberately leaked, like the registries).
  static SlowQueryLog& Global();

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Process-unique, monotonically increasing query id; never 0.
  uint64_t NextQueryId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends one record (the caller has already applied its threshold).
  void Record(const SlowQueryRecord& record);

  /// Oldest-first copy of the ring.
  std::vector<SlowQueryRecord> Snapshot() const;

  /// The ring as strict JSON, oldest first:
  /// {"capacity":..,"recorded":..,"dropped":..,"queries":[{"id":..,
  ///  "kind":"..","vertex":..,"latency_ns":..,"replayed":..,
  ///  "epoch_seq":..,"epoch_prefix":..}, ...]}
  std::string Json() const;

  /// Rebounds the ring (drops current contents). Never 0.
  void SetCapacity(size_t capacity);

  size_t size() const;
  /// Records overwritten because the ring was full.
  uint64_t dropped() const;
  /// Records ever passed to Record().
  uint64_t recorded() const;

  /// Test support: drops every record and zeroes the accounting (the id
  /// counter keeps advancing — ids stay process-unique).
  void Clear();

 private:
  static constexpr size_t kDefaultCapacity = 256;

  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> ring_;
  size_t capacity_;
  size_t next_ = 0;        // ring slot the next record lands in
  uint64_t recorded_ = 0;  // total ever recorded
  uint64_t dropped_ = 0;   // overwritten records
  std::atomic<uint64_t> next_id_{0};
};

}  // namespace tinprov::obs

#endif  // TINPROV_OBS_SLOWLOG_H_
