#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace tinprov::obs {

namespace {

/// Small stable id for the calling thread (chrome://tracing lanes).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Only ever registered by the metrics-enabled constructor below, so a
// TINPROV_METRICS=OFF build would otherwise warn it is unused.
[[maybe_unused]] void ExportTraceAtExit() {
  TraceSink& sink = TraceSink::Global();
  const char* path = std::getenv("TINPROV_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  const Status status = sink.WriteJson(path);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: trace export to %s failed: %s\n", path,
                 status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "wrote %zu trace events to %s (%zu dropped)\n",
               sink.num_events(), path, sink.dropped_events());
}

}  // namespace

TraceSink::TraceSink() : epoch_ns_(SteadyNowNs()) {
#if defined(TINPROV_METRICS_ENABLED)
  const char* path = std::getenv("TINPROV_TRACE");
  if (path != nullptr && path[0] != '\0') {
    path_ = path;
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit(ExportTraceAtExit);
  }
#endif
}

TraceSink& TraceSink::Global() {
  static TraceSink* const sink = new TraceSink();
  return *sink;
}

int64_t TraceSink::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void TraceSink::Record(const char* name, const char* category,
                       int64_t start_ns, int64_t duration_ns) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Event event{name, category, start_ns, duration_ns, CurrentTid()};
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;  // explicit, so drains don't skew the accounting
  }
  ++recorded_;
}

size_t TraceSink::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

size_t TraceSink::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t TraceSink::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

std::string TraceSink::ToJsonLocked() const {
  std::string out;
  out.reserve(ring_.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[256];
  // Oldest-first: when the ring has wrapped, events [next_, end) precede
  // [0, next_).
  const size_t n = ring_.size();
  const size_t start = n == capacity_ ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const Event& event = ring_[(start + i) % n];
    std::snprintf(line, sizeof(line),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                  i == 0 ? "" : ",",
                  event.name, event.category,
                  static_cast<double>(event.start_ns) / 1e3,
                  static_cast<double>(event.duration_ns) / 1e3, event.tid);
    out += line;
  }
  out += "]}\n";
  return out;
}

std::string TraceSink::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ToJsonLocked();
}

std::string TraceSink::DrainJson() {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = ToJsonLocked();
  // Consume the exported events; recorded_/dropped_ stay cumulative so
  // the loss accounting survives any number of drains.
  ring_.clear();
  next_ = 0;
  return out;
}

Status TraceSink::WriteJson(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  if (written != json.size()) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::Ok();
}

void TraceSink::SetEnabledForTesting(bool enabled) {
#if defined(TINPROV_METRICS_ENABLED)
  enabled_.store(enabled, std::memory_order_relaxed);
#else
  (void)enabled;
#endif
}

void TraceSink::SetCapacityForTesting(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

}  // namespace tinprov::obs
