// Phase tracing: RAII TraceSpan -> bounded ring-buffer TraceSink ->
// chrome://tracing JSON export.
//
// Spans mark engine phases (an ingest micro-batch, one shard's replay,
// the exchange) with name, category, wall-clock interval, and a small
// thread id, so a whole pipeline run can be read as a timeline in
// chrome://tracing or https://ui.perfetto.dev.
//
// Activation: tracing is OFF by default and costs one relaxed atomic
// load per span. Setting TINPROV_TRACE=<file> in the environment turns
// it on for the process and writes the trace JSON to <file> at exit
// (std::atexit). Tests drive the sink directly via the ForTesting
// hooks; no-metrics builds (-DTINPROV_METRICS=OFF) never enable it.
//
// The sink is a fixed-capacity ring: when full, the oldest events are
// overwritten and dropped_events() counts the loss — a long run keeps
// its most recent window instead of growing without bound. Export is
// safe at any point in the process's life, not just at exit: ToJson()
// is a read-only snapshot (idempotent — call it as often as you like),
// and DrainJson() atomically exports-and-empties the ring so a live
// endpoint (/tracez on the ops server) can hand out each event exactly
// once while spans keep being emitted concurrently. Dropped/recorded
// totals are cumulative across drains. Span name and category must be
// string literals (or otherwise outlive the process); the sink stores
// the pointers, never copies.
#ifndef TINPROV_OBS_TRACE_H_
#define TINPROV_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace tinprov::obs {

class TraceSink {
 public:
  /// The process-wide sink (deliberately leaked, like the registry).
  /// First use reads $TINPROV_TRACE and registers the at-exit export.
  static TraceSink& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one complete span. No-op while disabled.
  void Record(const char* name, const char* category, int64_t start_ns,
              int64_t duration_ns);

  /// Nanoseconds since the sink's epoch (first use), monotonic.
  int64_t NowNs() const;

  /// The trace in chrome://tracing "trace_event" JSON format
  /// (traceEvents array of complete "X" events, ts/dur in microseconds).
  /// Read-only and idempotent: the ring is left untouched, so repeated
  /// calls (and a later at-exit export) see the same events.
  std::string ToJson() const;

  /// Atomically exports the current ring as ToJson() and empties it, so
  /// each event is handed out exactly once even while spans are being
  /// recorded concurrently. recorded/dropped totals are preserved
  /// (cumulative), only the buffered events are consumed.
  std::string DrainJson();

  /// Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

  size_t num_events() const;
  /// Events overwritten because the ring was full (cumulative: draining
  /// the ring does not reset this, unlike Clear()).
  size_t dropped_events() const;
  /// Events ever recorded (cumulative across drains).
  size_t recorded_events() const;

  /// Test hooks: toggle recording, bound the ring, drop all events.
  void SetEnabledForTesting(bool enabled);
  void SetCapacityForTesting(size_t capacity);
  void Clear();

 private:
  struct Event {
    const char* name;
    const char* category;
    int64_t start_ns;
    int64_t duration_ns;
    uint32_t tid;
  };

  TraceSink();

  /// Serializes the ring oldest-first; requires mu_ held.
  std::string ToJsonLocked() const;

  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  mutable std::mutex mu_;
  std::vector<Event> ring_;
  size_t capacity_ = kDefaultCapacity;
  size_t next_ = 0;       // ring slot the next event lands in
  size_t recorded_ = 0;   // total events ever recorded
  size_t dropped_ = 0;    // events overwritten while the ring was full
  std::atomic<bool> enabled_{false};
  std::string path_;      // $TINPROV_TRACE target, empty when unset
  int64_t epoch_ns_ = 0;  // steady-clock origin for timestamps
};

/// RAII phase span: captures the interval between construction and
/// destruction into the global sink. Near-zero cost while tracing is
/// off (one atomic load, no clock reads).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "engine")
      : name_(name), category_(category) {
    TraceSink& sink = TraceSink::Global();
    active_ = sink.enabled();
    if (active_) start_ns_ = sink.NowNs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (!active_) return;
    TraceSink& sink = TraceSink::Global();
    sink.Record(name_, category_, start_ns_, sink.NowNs() - start_ns_);
  }

 private:
  const char* name_;
  const char* category_;
  int64_t start_ns_ = 0;
  bool active_;
};

}  // namespace tinprov::obs

#endif  // TINPROV_OBS_TRACE_H_
