#include "parallel/scheduler.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/metrics.h"

#if !defined(TINPROV_NO_THREADS)
#include <thread>
#endif

namespace tinprov {

size_t HardwareThreads() {
#if defined(TINPROV_NO_THREADS)
  return 1;
#else
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
#endif
}

WorkStealingScheduler::WorkStealingScheduler(size_t num_threads)
    : num_threads_(num_threads == 0 ? HardwareThreads() : num_threads) {}

namespace {

// A worker's deque of loop indices, packed {begin:32, end:32} into one
// atomic so both ends move with a single CAS: the owner pops index
// `begin` from the front, thieves split the back half off by lowering
// `end`. Empty when begin == end.
constexpr uint64_t Pack(uint64_t begin, uint64_t end) {
  return (begin << 32) | end;
}
constexpr uint32_t RangeBegin(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 32);
}
constexpr uint32_t RangeEnd(uint64_t packed) {
  return static_cast<uint32_t>(packed);
}

struct alignas(64) RangeDeque {
  std::atomic<uint64_t> range{0};
};

}  // namespace

void WorkStealingScheduler::ParallelFor(
    size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) return;
#if defined(TINPROV_NO_THREADS)
  const bool inline_path = true;
#else
  const size_t workers = std::min(num_threads_, count);
  const bool inline_path = workers <= 1;
#endif
  if (inline_path) {
    for (size_t i = 0; i < count; ++i) body(i);
    stats_.tasks += count;
    TINPROV_COUNTER_ADD("parallel.tasks", count);
    return;
  }

#if !defined(TINPROV_NO_THREADS)
  std::vector<RangeDeque> deques(workers);
  for (size_t w = 0; w < workers; ++w) {
    // Same contiguous pre-split a static partition would use; stealing
    // only redistributes the remainder under skew.
    const uint64_t begin = count * w / workers;
    const uint64_t end = count * (w + 1) / workers;
    deques[w].range.store(Pack(begin, end), std::memory_order_relaxed);
  }
  std::atomic<uint64_t> total_steals{0};

  const auto worker_main = [&](size_t w) {
    uint64_t steals = 0;
    for (;;) {
      // Drain our own deque front-first.
      uint64_t cur = deques[w].range.load(std::memory_order_acquire);
      while (RangeBegin(cur) < RangeEnd(cur)) {
        const uint32_t index = RangeBegin(cur);
        if (deques[w].range.compare_exchange_weak(
                cur, Pack(index + 1, RangeEnd(cur)),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          body(index);
          cur = deques[w].range.load(std::memory_order_acquire);
        }
        // On CAS failure `cur` was reloaded by compare_exchange.
      }
      // Empty: steal the back half of the largest victim remainder.
      // One full scan finding nothing means every deque was empty at
      // some point in the scan; any work that still exists is in the
      // tiny private window of another thief, which will finish it —
      // exiting here is safe because the caller joins all workers.
      size_t victim = workers;
      uint64_t victim_range = 0;
      for (size_t probe = 1; probe < workers; ++probe) {
        const size_t candidate = (w + probe) % workers;
        const uint64_t range =
            deques[candidate].range.load(std::memory_order_acquire);
        const uint32_t avail = RangeEnd(range) - RangeBegin(range);
        if (RangeBegin(range) < RangeEnd(range) &&
            (victim == workers ||
             avail > RangeEnd(victim_range) - RangeBegin(victim_range))) {
          victim = candidate;
          victim_range = range;
        }
      }
      if (victim == workers) break;
      const uint32_t begin = RangeBegin(victim_range);
      const uint32_t end = RangeEnd(victim_range);
      const uint32_t take = (end - begin + 1) / 2;
      const uint32_t split = end - take;
      if (deques[victim].range.compare_exchange_strong(
              victim_range, Pack(begin, split), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        // Install the stolen [split, end) as our own deque. Ours is
        // empty and nobody else pushes into it, but a thief may be
        // lowering our end concurrently — only a CAS from the empty
        // state is safe. A thief can only see what we publish, so the
        // expected value is exactly the drained range we left behind.
        uint64_t mine = deques[w].range.load(std::memory_order_acquire);
        if (RangeBegin(mine) == RangeEnd(mine) &&
            deques[w].range.compare_exchange_strong(
                mine, Pack(split, end), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          ++steals;
        } else {
          // Could not publish (stale thief racing on our empty deque);
          // run the stolen range privately instead.
          ++steals;
          for (uint32_t i = split; i < end; ++i) body(i);
        }
      }
      // CAS failure: victim moved under us; rescan.
    }
    total_steals.fetch_add(steals, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) threads.emplace_back(worker_main, w);
  worker_main(0);
  for (std::thread& thread : threads) thread.join();

  stats_.tasks += count;
  stats_.steals += total_steals.load(std::memory_order_relaxed);
  TINPROV_COUNTER_ADD("parallel.tasks", count);
  TINPROV_COUNTER_ADD("parallel.steals",
                      total_steals.load(std::memory_order_relaxed));
#endif
}

struct ResidentPool::Impl {
#if !defined(TINPROV_NO_THREADS)
  std::vector<std::thread> threads;
#endif
};

ResidentPool::ResidentPool(std::vector<std::function<void()>> tasks)
    : impl_(new Impl) {
#if defined(TINPROV_NO_THREADS)
  // Documented fallback only — blocking pipelines must not get here.
  for (auto& task : tasks) task();
#else
  impl_->threads.reserve(tasks.size());
  for (auto& task : tasks) impl_->threads.emplace_back(std::move(task));
#endif
}

ResidentPool::~ResidentPool() {
  Join();
  delete impl_;
}

void ResidentPool::Join() {
#if !defined(TINPROV_NO_THREADS)
  for (std::thread& thread : impl_->threads) {
    if (thread.joinable()) thread.join();
  }
#endif
}

}  // namespace tinprov
