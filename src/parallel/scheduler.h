// Work-stealing loop scheduler for the parallel engines.
//
// ParallelFor splits [0, count) into per-worker index deques (one
// packed atomic {begin, end} range per worker — the front is where the
// owner pops, the back is where thieves split off half with a CAS, so
// both sides are lock-free). A worker that drains its own deque scans
// the others and steals the back half of the largest remainder; work
// only ever moves between deques atomically, so the scheduler never
// loses or duplicates an index. This replaces the shared-atomic-counter
// self-scheduled pool the sharded replay engine used: under skew the
// counter made every claim contend on one cache line, while here the
// common case touches only the worker's own range and stealing is the
// exception that gets counted (`parallel.steals`).
//
// The calling thread is worker 0 and threads are spawned per call —
// identical lifecycle (and 1-thread/TINPROV_NO_THREADS inline fast
// path, no threads, no atomics beyond a relaxed stats add) to the pool
// it replaces, so single-threaded callers pay nothing new.
#ifndef TINPROV_PARALLEL_SCHEDULER_H_
#define TINPROV_PARALLEL_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace tinprov {

/// std::thread::hardware_concurrency() with the zero-means-unknown case
/// mapped to 1; always 1 under TINPROV_NO_THREADS.
size_t HardwareThreads();

class WorkStealingScheduler {
 public:
  /// `num_threads` == 0 means HardwareThreads().
  explicit WorkStealingScheduler(size_t num_threads = 0);

  size_t num_threads() const { return num_threads_; }

  /// Runs body(i) exactly once for every i in [0, count) across up to
  /// min(num_threads, count) workers, the calling thread included, and
  /// returns when all of them finished. `body` must not throw and must
  /// tolerate concurrent invocations on distinct indices; count must be
  /// below 2^32 (ranges pack into one 64-bit atomic). Invocation order
  /// is unspecified.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Cumulative over this scheduler's lifetime. `tasks` counts body
  /// invocations, `steals` counts back-half range steals (0 on the
  /// inline path). Updated once per ParallelFor by the calling thread;
  /// read it from that thread, not concurrently with a running loop.
  struct Stats {
    uint64_t tasks = 0;
    uint64_t steals = 0;
  };
  Stats stats() const { return stats_; }

 private:
  size_t num_threads_;
  Stats stats_;
};

/// Spawns one dedicated thread per task and joins them in Join() (or
/// the destructor). For resident pipeline workers — the streaming
/// replay's shard consumers, the sharded ingest's exchange peers —
/// whose tasks block on queues and therefore must not share threads.
/// Callers are expected to take their TINPROV_NO_THREADS / 1-thread
/// inline path instead of constructing one of these; doing so anyway
/// runs the tasks sequentially in the constructor, which deadlocks
/// tasks that wait on each other.
class ResidentPool {
 public:
  explicit ResidentPool(std::vector<std::function<void()>> tasks);
  ~ResidentPool();

  ResidentPool(const ResidentPool&) = delete;
  ResidentPool& operator=(const ResidentPool&) = delete;

  /// Blocks until every task returned. Idempotent.
  void Join();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace tinprov

#endif  // TINPROV_PARALLEL_SCHEDULER_H_
