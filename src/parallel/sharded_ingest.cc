#include "parallel/sharded_ingest.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/scheduler.h"
#include "policies/proportional_base.h"
#include "scalable/grouped.h"
#include "stream/interaction_stream.h"
#include "util/stopwatch.h"

#if !defined(TINPROV_NO_THREADS)
#include <condition_variable>
#include <deque>
#include <mutex>
#endif

namespace tinprov {

ShardedIngestEngine::ShardedIngestEngine(const DatasetStats& stats,
                                         ShardedSpec spec,
                                         ParallelParams params,
                                         IngestOptions options)
    : stats_(stats), spec_(std::move(spec)), params_(params),
      options_(options) {}

std::vector<uint32_t> ShardedIngestEngine::AssignVertices(size_t num_vertices,
                                                          size_t num_shards) {
  // Contiguous ranges: vertex ids cluster in generators and real logs,
  // so ranges keep a shard's lists dense in its pool, and the owner
  // lookup stays a cheap monotone map.
  return ContiguousGroups(num_vertices, num_shards);
}

size_t ShardedIngestEngine::ResolvedShards() const {
  size_t shards = 0;
  if (!UsesShards(&shards)) return 1;
  return shards;
}

bool ShardedIngestEngine::UsesShards(size_t* num_shards) const {
#if defined(TINPROV_NO_THREADS)
  // Shard workers block on each other's mailboxes, so they need real
  // threads; ResidentPool's sequential fallback would deadlock.
  *num_shards = 1;
  return false;
#else
  const size_t threads =
      params_.num_threads == 0 ? HardwareThreads() : params_.num_threads;
  // Shards and workers are 1:1 (every shard must be able to block on
  // its mailboxes independently), so unlike the replay engine a shard
  // request beyond the thread budget is clamped, not queued.
  size_t shards = params_.num_shards == 0 ? threads : params_.num_shards;
  shards = std::min(shards, threads);
  shards = std::min(shards, stats_.num_vertices);
  *num_shards = std::max<size_t>(1, shards);
  return spec_.decomposable && spec_.make_shard != nullptr && shards > 1 &&
         options_.sink == nullptr;
#endif
}

StatusOr<ShardedIngestResult> ShardedIngestEngine::IngestStream(
    InteractionStream& stream) const {
  size_t shards = 0;
  if (!UsesShards(&shards)) {
    return SequentialIngest(stream);
  }
  return ParallelIngest(stream, shards);
}

StatusOr<ShardedIngestResult> ShardedIngestEngine::SequentialIngest(
    InteractionStream& stream) const {
  if (!spec_.sequential) {
    return Status::FailedPrecondition(
        "sharded spec has no sequential tracker factory");
  }
  std::unique_ptr<Tracker> tracker = spec_.sequential();
  if (tracker == nullptr) {
    return Status::Internal("sequential tracker factory returned null");
  }
  StreamIngestor ingestor(tracker.get(), options_);
  const Status status = ingestor.IngestAll(stream);
  if (!status.ok()) {
    return Status(status.code(), "sequential ingest: " + status.message());
  }
  ShardedIngestResult result;
  result.stats = ingestor.stats();
  result.tracker = std::move(tracker);
  return result;
}

#if !defined(TINPROV_NO_THREADS)

namespace {

/// One cross-shard transfer: the source shard's pre-scaled outgoing
/// list for the interaction at global position `seq`. Pushed even when
/// empty — the receiver pops unconditionally at that position, which
/// is what keeps the exchange deterministic.
struct ExchangeMessage {
  uint64_t seq = 0;
  std::vector<ProvPair> pairs;
};

/// Bounded FIFO between one ordered shard pair: one pusher (the source
/// owner), one popper (the destination owner). The capacity only needs
/// to exist for buffering to stay bounded — deadlock-freedom holds for
/// any capacity >= 1 (see the header's minimal-position argument).
class Mailbox {
 public:
  static constexpr size_t kCapacity = 256;

  /// False when the ingest aborted.
  bool Push(ExchangeMessage message, const std::atomic<bool>& abort) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return abort.load(std::memory_order_relaxed) ||
             queue_.size() < kCapacity;
    });
    if (abort.load(std::memory_order_relaxed)) return false;
    queue_.push_back(std::move(message));
    lock.unlock();
    cv_.notify_one();
    return true;
  }

  /// False when the ingest aborted (a message owed to a healthy popper
  /// always arrives — see the deadlock-freedom argument).
  bool Pop(ExchangeMessage* message, const std::atomic<bool>& abort) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return abort.load(std::memory_order_relaxed) || !queue_.empty();
    });
    if (queue_.empty()) return false;  // only reachable on abort
    *message = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    cv_.notify_one();
    return true;
  }

  /// Post-join check: a drained exchange ends with every mailbox empty.
  size_t UndrainedSize() {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  void NotifyAbort() { cv_.notify_all(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ExchangeMessage> queue_;
};

}  // namespace

StatusOr<ShardedIngestResult> ShardedIngestEngine::ParallelIngest(
    InteractionStream& stream, size_t num_shards) const {
  obs::TraceSpan span("ingest.sharded", "parallel");
  Stopwatch total_watch;
  const size_t num_vertices = stats_.num_vertices;
  const std::vector<uint32_t> owner = AssignVertices(num_vertices, num_shards);

  // Shard trackers are built up front on the caller (construction is
  // O(|V|)) and pre-sized from whatever length the stream advertises.
  std::vector<std::unique_ptr<SparseProportionalBase>> trackers(num_shards);
  const DatasetStats advertised = stream.Stats();
  for (size_t s = 0; s < num_shards; ++s) {
    trackers[s] = spec_.make_shard();
    if (trackers[s] == nullptr) {
      return Status::Internal("shard tracker factory returned null");
    }
    if (options_.reserve_from_stats && advertised.num_interactions > 0) {
      const size_t hint = std::min(advertised.num_interactions,
                                   (size_t{8} << 20) / sizeof(ProvPair)) /
                              num_shards +
                          16;
      trackers[s]->ReserveEntries(hint);
    }
  }

  // mailboxes[from * num_shards + to]; the diagonal is never used.
  std::vector<Mailbox> mailboxes(num_shards * num_shards);
  std::atomic<bool> abort{false};
  const auto raise_abort = [&] {
    abort.store(true, std::memory_order_relaxed);
    for (Mailbox& mailbox : mailboxes) mailbox.NotifyAbort();
  };

  // Bounded broadcast queue, same shape as the streaming replay's: the
  // producer (calling thread) is the only one that touches the stream
  // and enforces the time-order contract; every worker consumes every
  // chunk in order.
  const size_t chunk_capacity = std::max<size_t>(1, params_.stream_chunk);
  const size_t max_chunks = std::max<size_t>(1, params_.stream_queue_chunks);
  std::mutex mu;
  std::condition_variable producer_cv, consumer_cv;
  std::deque<std::shared_ptr<const std::vector<Interaction>>> chunks;
  size_t base = 0;  // global index of chunks.front()
  std::vector<size_t> cursor(num_shards, 0);
  bool done = false;
  std::vector<Status> worker_status(num_shards, Status::Ok());
  std::vector<double> worker_seconds(num_shards, 0.0);

  const auto worker_main = [&](size_t s) {
    obs::TraceSpan worker_span("ingest.shard", "parallel");
    SparseProportionalBase& tracker = *trackers[s];
    SparseVector outgoing;  // heap-backed scratch, reused per transfer
    ExchangeMessage message;
    uint64_t position = 0;  // global interaction index, equal across workers
    Status status = Status::Ok();
    for (;;) {
      std::shared_ptr<const std::vector<Interaction>> chunk;
      {
        std::unique_lock<std::mutex> lock(mu);
        {
          TINPROV_SCOPED_COUNTER_NS("parallel.worker_idle_ns");
          consumer_cv.wait(lock, [&] {
            return abort.load(std::memory_order_relaxed) || done ||
                   cursor[s] < base + chunks.size();
          });
        }
        if (abort.load(std::memory_order_relaxed)) return;
        if (cursor[s] == base + chunks.size()) return;  // done and drained
        chunk = chunks[cursor[s] - base];
        ++cursor[s];
      }
      producer_cv.notify_one();
      Stopwatch watch;
      for (const Interaction& interaction : *chunk) {
        const bool own_src = owner[interaction.src] == s;
        const bool own_dst = owner[interaction.dst] == s;
        const bool transfers =
            interaction.quantity > 0.0 && interaction.src != interaction.dst;
        if (transfers && own_src && !own_dst) {
          status = tracker.ProcessVertexSharded(interaction, true, false,
                                                &outgoing, nullptr, 0);
          if (status.ok()) {
            message.seq = position;
            message.pairs.assign(outgoing.begin(), outgoing.end());
            if (!mailboxes[s * num_shards + owner[interaction.dst]].Push(
                    std::move(message), abort)) {
              return;  // aborted by a peer; its status wins
            }
            message = ExchangeMessage{};
          }
        } else if (transfers && own_dst && !own_src) {
          if (!mailboxes[owner[interaction.src] * num_shards + s].Pop(
                  &message, abort)) {
            return;  // aborted by a peer
          }
          if (message.seq != position) {
            status = Status::Internal(
                "shard " + std::to_string(s) + " exchange out of order: got " +
                std::to_string(message.seq) + ", expected " +
                std::to_string(position));
          } else {
            status = tracker.ProcessVertexSharded(interaction, false, true,
                                                  nullptr, message.pairs.data(),
                                                  message.pairs.size());
          }
        } else {
          // Owns both endpoints (exactly Process()), owns neither
          // (replicated bookkeeping only), or nothing moves.
          status = tracker.ProcessVertexSharded(interaction, own_src, own_dst,
                                                nullptr, nullptr, 0);
        }
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          worker_status[s] =
              Status(status.code(), "shard " + std::to_string(s) +
                                        " ingest at interaction " +
                                        std::to_string(position) + ": " +
                                        status.message());
          raise_abort();
          producer_cv.notify_all();
          consumer_cv.notify_all();
          return;
        }
        ++position;
      }
      worker_seconds[s] += watch.ElapsedSeconds();
      TINPROV_COUNTER_ADD("parallel.shard_busy_ns", watch.ElapsedNanos());
    }
  };

  std::vector<std::function<void()>> worker_tasks;
  worker_tasks.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    worker_tasks.emplace_back([&worker_main, s] { worker_main(s); });
  }
  ResidentPool workers(std::move(worker_tasks));

  // Producer loop: pull, order-check, broadcast. stats.watermark keeps
  // its applied-interactions default until the first chunk lands, like
  // StreamIngestor's.
  IngestStats stats;
  Timestamp pull_watermark = options_.initial_watermark;
  Status producer_status = Status::Ok();
  std::vector<Interaction> scratch;
  for (;;) {
    scratch.clear();
    Interaction interaction;
    while (scratch.size() < chunk_capacity && stream.Next(&interaction)) {
      if (options_.enforce_time_order && interaction.t < pull_watermark) {
        producer_status = Status::InvalidArgument(
            "stream interaction " +
            std::to_string(stats.interactions + scratch.size()) +
            " has timestamp below the watermark — wrap the source in a "
            "SortingStream");
        break;
      }
      if (interaction.src >= num_vertices || interaction.dst >= num_vertices) {
        // The owner map is indexed before any tracker sees the
        // interaction, so the producer repeats the tracker's own check.
        producer_status = Status::InvalidArgument(
            "interaction references vertex beyond " +
            std::to_string(num_vertices));
        break;
      }
      pull_watermark = interaction.t;
      scratch.push_back(interaction);
    }
    if (!producer_status.ok() || scratch.empty()) break;
    stats.interactions += scratch.size();
    stats.batches += 1;
    stats.peak_batch = std::max(stats.peak_batch, scratch.size());
    stats.watermark = scratch.back().t;
    const bool exhausted = scratch.size() < chunk_capacity;
    auto chunk =
        std::make_shared<const std::vector<Interaction>>(std::move(scratch));
    {
      std::unique_lock<std::mutex> lock(mu);
      for (;;) {
        while (!chunks.empty() &&
               *std::min_element(cursor.begin(), cursor.end()) > base) {
          chunks.pop_front();
          ++base;
        }
        if (abort.load(std::memory_order_relaxed) ||
            chunks.size() < max_chunks) {
          break;
        }
        producer_cv.wait(lock);
      }
      if (abort.load(std::memory_order_relaxed)) break;
      chunks.push_back(std::move(chunk));
      TINPROV_COUNTER_ADD("stream.chunks", 1);
      TINPROV_GAUGE_SET("stream.queue_depth", chunks.size());
      TINPROV_GAUGE_MAX("stream.queue_depth_peak", chunks.size());
    }
    consumer_cv.notify_all();
    if (exhausted) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    if (!producer_status.ok()) raise_abort();
  }
  consumer_cv.notify_all();
  workers.Join();
  if (!producer_status.ok()) return producer_status;
  for (const Status& status : worker_status) {
    if (!status.ok()) return status;
  }
  for (size_t index = 0; index < mailboxes.size(); ++index) {
    const size_t undrained = mailboxes[index].UndrainedSize();
    if (undrained != 0) {
      return Status::Internal(
          "exchange " + std::to_string(index / num_shards) + " -> " +
          std::to_string(index % num_shards) + " left " +
          std::to_string(undrained) + " undrained messages");
    }
  }

  // Merge the shard trackers into one full tracker. AdoptVertexShards
  // verifies the replicated-scalar witness, so a spec that lied about
  // decomposability fails here instead of returning silently wrong
  // provenance.
  std::unique_ptr<SparseProportionalBase> merged = spec_.make_shard();
  if (merged == nullptr) {
    return Status::Internal("shard tracker factory returned null");
  }
  size_t total_entries = 0;
  for (const auto& tracker : trackers) total_entries += tracker->num_entries();
  merged->ReserveEntries(total_entries + 16);
  const Status adopted = merged->AdoptVertexShards(trackers, owner);
  if (!adopted.ok()) return adopted;

  ShardedIngestResult result;
  result.used_parallel_path = true;
  result.num_shards = num_shards;
  result.num_threads = num_shards;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    info.labels = static_cast<size_t>(
        std::count(owner.begin(), owner.end(), static_cast<uint32_t>(s)));
    info.entries = trackers[s]->num_entries();
    info.seconds = worker_seconds[s];
    info.pool_bytes = trackers[s]->PoolBytesReserved();
    result.shards.push_back(info);
  }
  stats.tracker_peak_memory = merged->MemoryUsage();
  stats.seconds = total_watch.ElapsedSeconds();
  result.stats = stats;
  result.tracker = std::move(merged);
  TINPROV_COUNTER_ADD("parallel.ingests", 1);
  TINPROV_COUNTER_ADD("parallel.shards_run", num_shards);
  return result;
}

#else  // TINPROV_NO_THREADS

StatusOr<ShardedIngestResult> ShardedIngestEngine::ParallelIngest(
    InteractionStream& stream, size_t /*num_shards*/) const {
  return SequentialIngest(stream);  // UsesShards() never routes here
}

#endif

}  // namespace tinprov
