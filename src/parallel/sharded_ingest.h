// Vertex-sharded parallel ingest of the pro-rata provenance trackers.
//
// The sharded replay engine (sharded_replay.h) partitions the
// generation-LABEL space: every shard replays the full log and keeps
// the label slice it owns. That parallelizes replay-style analytics,
// but a serving pipeline ingests exactly once and wants the full
// tracker at the end — re-scanning per shard and interleaving slices
// is the wrong shape for it. This engine partitions the VERTEX space
// instead: each shard owns a contiguous vertex range and maintains
// exactly the per-vertex lists and balances of its range, because the
// pro-rata update is linear per list too — an interaction reads src's
// list, writes dst's list, and touches nothing else.
//
// The scalar bookkeeping (deficits, balances, the attribution
// accounting, the subclass hooks) is REPLICATED: every shard replays
// it for every interaction. It is O(1) per interaction — the Amdahl
// floor the label-sharded replay already pays for its full-log scans —
// and buys three properties:
//   - `fraction` is locally computable in every shard, so the only
//     cross-shard traffic is the transferred pair list itself;
//   - total_generated and the attribution total evolve through the
//     identical op sequence in every shard, giving a bit-exact
//     divergence witness (checked at adoption);
//   - a merged tracker (per-vertex state from each owner shard,
//     replicated state from any shard) is bit-identical to a
//     sequential StreamIngestor over the same stream — snapshots and
//     further processing cannot tell the difference.
//
// When an interaction's endpoints live in different shards, the source
// shard exports the moved share pre-scaled (the receiver merges at
// factor 1.0, which is exact) through a per-shard-pair FIFO mailbox,
// tagged with the interaction's global sequence number; the receiver
// verifies the tag, so the exchange is deterministic regardless of
// thread timing. Each shard runs on its own resident worker and
// consumes the stream chunk-by-chunk from the same bounded broadcast
// queue the streaming replay uses. Deadlock-freedom: workers process
// interactions in the same global order, so the worker at the globally
// minimal position can always act — the message it would pop can only
// be owed by a worker at the same position (which pushes, since FIFO
// order means the mailbox it pushes into cannot be full of older
// messages the receiver skipped).
//
// Trackers that are not list-linear (the order-based policies;
// BudgetTracker, whose shrink debits the attribution total from stored
// tuples — partitioned state, so the replicated witness would diverge)
// take a sequential StreamIngestor fallback inside the same engine:
// one API, bit-identical results either way. The decomposable set is
// exactly ShardedSpec's (the same linearity argument covers both).
#ifndef TINPROV_PARALLEL_SHARDED_INGEST_H_
#define TINPROV_PARALLEL_SHARDED_INGEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"
#include "parallel/sharded_replay.h"
#include "policies/tracker.h"
#include "stream/ingest.h"
#include "util/status.h"

namespace tinprov {

class InteractionStream;  // stream/interaction_stream.h

/// Outcome of a sharded ingest: a live, queryable tracker plus the
/// stats a pipeline observes about its ingestion.
struct ShardedIngestResult {
  /// Bit-identical to what a sequential StreamIngestor over the same
  /// stream would have produced on spec.sequential().
  std::unique_ptr<Tracker> tracker;
  /// Same fields StreamIngestor publishes (watermark, counters, wall
  /// time); on the parallel path tracker_peak_memory is the merged
  /// tracker's final footprint, not a per-batch sample.
  IngestStats stats;
  /// False when the sequential fallback ran.
  bool used_parallel_path = false;
  size_t num_shards = 1;
  size_t num_threads = 1;
  /// Per-shard accounting (ShardInfo::labels counts owned vertices).
  std::vector<ShardInfo> shards;
};

class ShardedIngestEngine {
 public:
  /// `spec` names the tracker configuration (TrackerRegistry::Sharded
  /// builds one); `params` sizes the shard/thread layout; `options`
  /// carries the StreamIngestor contract (time order, initial
  /// watermark, sink). A durability sink must observe batches only
  /// after the tracker applied them, which serializes the pipeline —
  /// options.sink != nullptr therefore routes through the sequential
  /// fallback.
  ShardedIngestEngine(const DatasetStats& stats, ShardedSpec spec,
                      ParallelParams params = {}, IngestOptions options = {});

  /// Drains `stream` once and returns the resulting tracker. Parallel
  /// when the spec is decomposable and more than one shard resolves;
  /// sequential StreamIngestor otherwise (same result either way).
  StatusOr<ShardedIngestResult> IngestStream(InteractionStream& stream) const;

  /// Threads the engine will actually use for shard workers. Unlike
  /// the replay engine, shards and workers are 1:1 here — every shard
  /// must be able to block on its mailboxes independently — so this is
  /// also the shard count the parallel path runs with.
  size_t ResolvedShards() const;

  /// vertex -> owning shard: contiguous ranges (exposed for tests).
  static std::vector<uint32_t> AssignVertices(size_t num_vertices,
                                              size_t num_shards);

 private:
  /// True when this spec/params/options combination shards at all;
  /// false means the sequential fallback runs.
  bool UsesShards(size_t* num_shards) const;
  StatusOr<ShardedIngestResult> SequentialIngest(
      InteractionStream& stream) const;
  StatusOr<ShardedIngestResult> ParallelIngest(InteractionStream& stream,
                                               size_t num_shards) const;

  DatasetStats stats_;
  ShardedSpec spec_;
  ParallelParams params_;
  IngestOptions options_;
};

}  // namespace tinprov

#endif  // TINPROV_PARALLEL_SHARDED_INGEST_H_
