#include "parallel/sharded_replay.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/scheduler.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"
#include "util/stopwatch.h"

#if !defined(TINPROV_NO_THREADS)
#include <condition_variable>
#include <deque>
#include <mutex>
#endif

namespace tinprov {

namespace {

/// The deterministic single-vertex exchange: interleaves v's disjoint
/// shard slices into one label-sorted list by repeated min-head
/// selection (shard counts are small; slices are disjoint, so ties are
/// impossible). Shared by ReplayPrefix's phase 2 and QueryPrefix so the
/// two cannot drift apart. `cursor` is caller-provided scratch of at
/// least trackers.size() elements.
void InterleaveVertexSlices(
    const std::vector<std::unique_ptr<SparseProportionalBase>>& trackers,
    VertexId v, std::vector<ProvPair>* out, std::vector<size_t>* cursor) {
  const size_t shards = trackers.size();
  size_t total_len = 0;
  for (size_t s = 0; s < shards; ++s) {
    (*cursor)[s] = 0;
    total_len += trackers[s]->EntriesOf(v).size();
  }
  out->reserve(total_len);
  for (size_t picked = 0; picked < total_len; ++picked) {
    size_t best = shards;
    VertexId best_origin = kInvalidVertex;
    for (size_t s = 0; s < shards; ++s) {
      const SparseVector& list = trackers[s]->EntriesOf(v);
      if ((*cursor)[s] < list.size() &&
          (best == shards || list[(*cursor)[s]].origin < best_origin)) {
        best = s;
        best_origin = list[(*cursor)[s]].origin;
      }
    }
    out->push_back(trackers[best]->EntriesOf(v)[(*cursor)[best]]);
    ++(*cursor)[best];
  }
}

}  // namespace

Buffer ShardedReplayResult::Provenance(VertexId v) const {
  Buffer buffer;
  buffer.total = totals[v];
  buffer.entries = entries[v];
  return buffer;
}

ShardedReplayEngine::ShardedReplayEngine(const Tin& tin, ShardedSpec spec,
                                         ParallelParams params)
    : tin_(&tin), stats_(tin.Stats()), spec_(std::move(spec)),
      params_(params) {}

ShardedReplayEngine::ShardedReplayEngine(const DatasetStats& stats,
                                         ShardedSpec spec,
                                         ParallelParams params)
    : tin_(nullptr), stats_(stats), spec_(std::move(spec)), params_(params) {}

size_t ShardedReplayEngine::ResolvedThreads() const {
  return params_.num_threads == 0 ? HardwareThreads() : params_.num_threads;
}

std::vector<GroupId> ShardedReplayEngine::AssignLabels(const Tin& tin,
                                                       ShardStrategy strategy,
                                                       size_t label_count,
                                                       size_t num_shards) {
  switch (strategy) {
    case ShardStrategy::kRoundRobin:
      return RoundRobinGroups(label_count, num_shards);
    case ShardStrategy::kHash:
      return HashGroups(label_count, num_shards);
    case ShardStrategy::kContiguous:
      return ContiguousGroups(label_count, num_shards);
    case ShardStrategy::kActivity:
      // LPT over interaction activity only makes sense when labels ARE
      // vertices; group-id label spaces fall back to round-robin.
      if (label_count == tin.num_vertices()) {
        return ActivityGroups(tin, num_shards);
      }
      return RoundRobinGroups(label_count, num_shards);
  }
  return RoundRobinGroups(label_count, num_shards);
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::Replay() const {
  if (tin_ == nullptr) {
    return Status::FailedPrecondition(
        "engine was built without a materialized log — use ReplayStream");
  }
  return ReplayPrefix(tin_->num_interactions());
}

StatusOr<std::unique_ptr<Tracker>> ShardedReplayEngine::MakeSequentialTracker()
    const {
  if (!spec_.sequential) {
    return Status::FailedPrecondition(
        "sharded spec has no sequential tracker factory");
  }
  std::unique_ptr<Tracker> tracker = spec_.sequential();
  if (tracker == nullptr) {
    return Status::Internal("sequential tracker factory returned null");
  }
  return tracker;
}

StatusOr<std::unique_ptr<Tracker>> ShardedReplayEngine::SequentialTracker(
    size_t prefix) const {
  auto tracker = MakeSequentialTracker();
  if (!tracker.ok()) return tracker.status();
  MaterializedStream stream(*tin_, prefix);
  const Status status = (*tracker)->ProcessStream(stream);
  if (!status.ok()) {
    return Status(status.code(),
                  "sequential replay: " + status.message());
  }
  return tracker;
}

namespace {

/// Drains `tracker` into a materialized result — the sequential halves
/// of both the prefix and the streaming paths end here.
ShardedReplayResult MaterializeTracker(Tracker& tracker, size_t num_vertices,
                                       size_t interactions_replayed,
                                       double replay_seconds) {
  ShardedReplayResult result;
  result.num_vertices = num_vertices;
  result.interactions_replayed = interactions_replayed;
  result.replay_seconds = replay_seconds;
  result.totals.resize(num_vertices);
  result.entries.resize(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    Buffer buffer = tracker.Provenance(v);
    result.totals[v] = buffer.total;
    result.num_entries += buffer.entries.size();
    result.entries[v] = std::move(buffer.entries);
  }
  result.total_generated = tracker.total_generated();
  return result;
}

}  // namespace

StatusOr<ShardedReplayResult> ShardedReplayEngine::SequentialReplay(
    size_t prefix) const {
  Stopwatch watch;
  auto replayed = SequentialTracker(prefix);
  if (!replayed.ok()) return replayed.status();
  const double replay_seconds = watch.ElapsedSeconds();
  return MaterializeTracker(**replayed, tin_->num_vertices(), prefix,
                            replay_seconds);
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::SequentialStreamReplay(
    InteractionStream& stream) const {
  auto tracker = MakeSequentialTracker();
  if (!tracker.ok()) return tracker.status();
  Stopwatch watch;
  StreamIngestor ingestor(tracker->get());
  const Status status = ingestor.IngestAll(stream);
  if (!status.ok()) {
    return Status(status.code(),
                  "sequential stream replay: " + status.message());
  }
  return MaterializeTracker(**tracker, stats_.num_vertices,
                            ingestor.stats().interactions,
                            watch.ElapsedSeconds());
}

bool ShardedReplayEngine::UsesShards(size_t* num_shards) const {
  const size_t threads = ResolvedThreads();
  size_t shards = params_.num_shards == 0 ? threads : params_.num_shards;
  shards = std::min(shards, spec_.label_count);
  *num_shards = shards;
  return spec_.decomposable && spec_.make_shard != nullptr && shards > 1;
}

void ShardedReplayEngine::PartitionLabels(ShardRun* run,
                                          size_t num_shards) const {
  const size_t label_count = spec_.label_count;
  // Deterministic label partition, independent of threading. Only
  // kActivity needs a log (to measure activity); in the Tin-free
  // streaming form it falls back to round-robin while the other
  // strategies apply unchanged.
  std::vector<GroupId> assignment;
  if (tin_ != nullptr) {
    assignment =
        AssignLabels(*tin_, params_.strategy, label_count, num_shards);
  } else {
    switch (params_.strategy) {
      case ShardStrategy::kHash:
        assignment = HashGroups(label_count, num_shards);
        break;
      case ShardStrategy::kContiguous:
        assignment = ContiguousGroups(label_count, num_shards);
        break;
      case ShardStrategy::kRoundRobin:
      case ShardStrategy::kActivity:
        assignment = RoundRobinGroups(label_count, num_shards);
        break;
    }
  }
  run->masks.assign(num_shards, std::vector<uint8_t>(label_count, 0));
  run->labels_per_shard.assign(num_shards, 0);
  for (size_t label = 0; label < label_count; ++label) {
    const GroupId shard = assignment[label];
    run->masks[shard][label] = 1;
    ++run->labels_per_shard[shard];
  }
}

void ShardedReplayEngine::ReserveShard(SparseProportionalBase* tracker,
                                       size_t expected_interactions,
                                       size_t num_shards) {
  if (expected_interactions == 0) return;  // unknown length: grow on demand
  const size_t hint = std::min(expected_interactions,
                               (size_t{8} << 20) / sizeof(ProvPair)) /
                          num_shards +
                      16;
  tracker->ReserveEntries(hint);
}

StatusOr<ShardedReplayEngine::ShardRun> ShardedReplayEngine::RunShards(
    size_t prefix, size_t num_shards) const {
  const size_t threads = ResolvedThreads();
  const size_t label_count = spec_.label_count;
  ShardRun run;
  run.num_shards = num_shards;
  run.num_threads = std::min(threads, num_shards);
  PartitionLabels(&run, num_shards);

  // Phase 1: every shard replays the full prefix over its label slice.
  run.trackers.resize(num_shards);
  run.seconds.assign(num_shards, 0.0);
  std::vector<Status> statuses(num_shards, Status::Ok());
  const auto& log = tin_->interactions();
  WorkStealingScheduler scheduler(threads);
  scheduler.ParallelFor(num_shards, [&](size_t s) {
    obs::TraceSpan span("replay.shard", "parallel");
    TINPROV_SCOPED_COUNTER_NS("parallel.shard_busy_ns");
    Stopwatch watch;
    std::unique_ptr<SparseProportionalBase> tracker = spec_.make_shard();
    if (tracker == nullptr) {
      statuses[s] = Status::Internal("shard tracker factory returned null");
      return;
    }
    tracker->RestrictLabels(run.masks[s].data(), label_count);
    ReserveShard(tracker.get(), prefix, num_shards);
    for (size_t i = 0; i < prefix; ++i) {
      const Status status = tracker->Process(log[i]);
      if (!status.ok()) {
        statuses[s] = Status(status.code(),
                             "shard " + std::to_string(s) +
                                 " replay at interaction " +
                                 std::to_string(i) + ": " + status.message());
        return;
      }
    }
    run.trackers[s] = std::move(tracker);
    run.seconds[s] = watch.ElapsedSeconds();
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  // Replicated global state must agree bit-for-bit across shards, or
  // the spec lied about being label-linear; total_generated is the
  // cheapest complete witness (it accumulates every deficit in order).
  for (size_t s = 1; s < num_shards; ++s) {
    if (run.trackers[s]->total_generated() !=
        run.trackers[0]->total_generated()) {
      return Status::Internal(
          "shard " + std::to_string(s) +
          " diverged from shard 0 — tracker is not label-decomposable");
    }
  }
  return run;
}

StatusOr<ShardedReplayEngine::ShardRun> ShardedReplayEngine::RunShardsStream(
    InteractionStream& stream, size_t num_shards,
    size_t* interactions) const {
  const size_t label_count = spec_.label_count;
  ShardRun run;
  run.num_shards = num_shards;
  const size_t num_workers = std::min(ResolvedThreads(), num_shards);
  run.num_threads = num_workers;
  PartitionLabels(&run, num_shards);

  // Shard trackers are built up front on the caller (construction is
  // O(|V|), not worth parallelizing) and pre-sized from whatever length
  // the stream advertises.
  run.trackers.resize(num_shards);
  run.seconds.assign(num_shards, 0.0);
  const DatasetStats advertised = stream.Stats();
  for (size_t s = 0; s < num_shards; ++s) {
    run.trackers[s] = spec_.make_shard();
    if (run.trackers[s] == nullptr) {
      return Status::Internal("shard tracker factory returned null");
    }
    run.trackers[s]->RestrictLabels(run.masks[s].data(), label_count);
    ReserveShard(run.trackers[s].get(), advertised.num_interactions,
                 num_shards);
  }

  const size_t chunk_capacity = std::max<size_t>(1, params_.stream_chunk);

  // Applies one chunk to one shard. Only the owning worker ever touches
  // a shard's tracker or seconds slot, so no synchronization is needed
  // beyond the queue hand-off.
  const auto feed = [&run](size_t s,
                           const std::vector<Interaction>& chunk) -> Status {
    Stopwatch watch;
    for (const Interaction& interaction : chunk) {
      const Status status = run.trackers[s]->Process(interaction);
      if (!status.ok()) {
        return Status(status.code(), "shard " + std::to_string(s) +
                                         " stream replay: " +
                                         status.message());
      }
    }
    run.seconds[s] += watch.ElapsedSeconds();
    TINPROV_COUNTER_ADD("parallel.shard_busy_ns", watch.ElapsedNanos());
    return Status::Ok();
  };

  // The producer (calling thread) is the only one that touches the
  // stream; it also enforces the time-order contract the trackers rely
  // on, exactly as StreamIngestor does.
  Timestamp watermark = std::numeric_limits<Timestamp>::lowest();
  size_t pulled_total = 0;
  const auto pull_chunk = [&](std::vector<Interaction>* chunk) -> Status {
    chunk->clear();
    Interaction interaction;
    while (chunk->size() < chunk_capacity && stream.Next(&interaction)) {
      if (interaction.t < watermark) {
        return Status::InvalidArgument(
            "stream interaction " +
            std::to_string(pulled_total + chunk->size()) +
            " has timestamp below the watermark — wrap the source in a "
            "SortingStream");
      }
      watermark = interaction.t;
      chunk->push_back(interaction);
    }
    pulled_total += chunk->size();
    return Status::Ok();
  };

#if defined(TINPROV_NO_THREADS)
  const bool inline_path = true;
#else
  const bool inline_path = num_workers <= 1;
#endif
  if (inline_path) {
    // Single worker: no queue, just alternate pull and broadcast. Same
    // per-shard op sequence as the threaded path, so same results.
    std::vector<Interaction> chunk;
    for (;;) {
      Status status = pull_chunk(&chunk);
      if (!status.ok()) return status;
      if (chunk.empty()) break;
      for (size_t s = 0; s < num_shards; ++s) {
        status = feed(s, chunk);
        if (!status.ok()) return status;
      }
      if (chunk.size() < chunk_capacity) break;
    }
  }
#if !defined(TINPROV_NO_THREADS)
  else {
    // Bounded broadcast queue: the producer appends shared chunks, each
    // worker consumes every chunk in order for the shards it owns
    // (shard s belongs to worker s % num_workers), and fully consumed
    // chunks are popped. The queue holds at most stream_queue_chunks
    // chunks and each worker can pin one popped chunk it is still
    // processing, so live buffering never exceeds
    // (stream_queue_chunks + num_workers) * stream_chunk interactions.
    const size_t max_chunks = std::max<size_t>(1, params_.stream_queue_chunks);
    std::mutex mu;
    std::condition_variable producer_cv, consumer_cv;
    std::deque<std::shared_ptr<const std::vector<Interaction>>> chunks;
    size_t base = 0;  // global index of chunks.front()
    std::vector<size_t> cursor(num_workers, 0);
    bool done = false;
    bool abort = false;
    std::vector<Status> worker_status(num_workers, Status::Ok());

    const auto worker_main = [&](size_t w) {
      obs::TraceSpan worker_span("replay.worker", "parallel");
      for (;;) {
        std::shared_ptr<const std::vector<Interaction>> chunk;
        {
          std::unique_lock<std::mutex> lock(mu);
          {
            // Queue-wait time: the stream is the bottleneck when this
            // dwarfs parallel.shard_busy_ns.
            TINPROV_SCOPED_COUNTER_NS("parallel.worker_idle_ns");
            consumer_cv.wait(lock, [&] {
              return abort || done || cursor[w] < base + chunks.size();
            });
          }
          if (abort) return;
          if (cursor[w] == base + chunks.size()) return;  // done and drained
          chunk = chunks[cursor[w] - base];
          ++cursor[w];
        }
        producer_cv.notify_one();
        Status status = Status::Ok();
        for (size_t s = w; s < num_shards && status.ok(); s += num_workers) {
          status = feed(s, *chunk);
        }
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          worker_status[w] = std::move(status);
          abort = true;
          producer_cv.notify_all();
          consumer_cv.notify_all();
          return;
        }
      }
    };
    std::vector<std::function<void()>> worker_tasks;
    worker_tasks.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      worker_tasks.emplace_back([&worker_main, w] { worker_main(w); });
    }
    ResidentPool workers(std::move(worker_tasks));

    Status producer_status = Status::Ok();
    std::vector<Interaction> scratch;
    for (;;) {
      const Status status = pull_chunk(&scratch);
      if (!status.ok()) {
        producer_status = status;
        break;
      }
      if (scratch.empty()) break;
      const bool exhausted = scratch.size() < chunk_capacity;
      auto chunk = std::make_shared<const std::vector<Interaction>>(
          std::move(scratch));
      {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          while (!chunks.empty() &&
                 *std::min_element(cursor.begin(), cursor.end()) > base) {
            chunks.pop_front();
            ++base;
          }
          if (abort || chunks.size() < max_chunks) break;
          producer_cv.wait(lock);
        }
        if (abort) break;
        chunks.push_back(std::move(chunk));
        TINPROV_COUNTER_ADD("stream.chunks", 1);
        TINPROV_GAUGE_SET("stream.queue_depth", chunks.size());
        TINPROV_GAUGE_MAX("stream.queue_depth_peak", chunks.size());
      }
      consumer_cv.notify_all();
      if (exhausted) break;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    consumer_cv.notify_all();
    workers.Join();
    if (!producer_status.ok()) return producer_status;
    for (const Status& status : worker_status) {
      if (!status.ok()) return status;
    }
  }
#endif

  // Same label-linearity witness as the materialized path.
  for (size_t s = 1; s < num_shards; ++s) {
    if (run.trackers[s]->total_generated() !=
        run.trackers[0]->total_generated()) {
      return Status::Internal(
          "shard " + std::to_string(s) +
          " diverged from shard 0 — tracker is not label-decomposable");
    }
  }
  *interactions = pulled_total;
  return run;
}

ShardedReplayResult ShardedReplayEngine::AssembleResult(
    const ShardRun& run, size_t interactions_replayed,
    double replay_seconds) const {
  const auto& trackers = run.trackers;
  const size_t shards = run.num_shards;
  const size_t threads = ResolvedThreads();
  const size_t n = stats_.num_vertices;
  ShardedReplayResult result;
  result.num_vertices = n;
  result.interactions_replayed = interactions_replayed;
  result.replay_seconds = replay_seconds;
  result.used_parallel_path = true;
  result.num_shards = shards;
  result.num_threads = run.num_threads;
  result.totals.resize(n);
  result.entries.resize(n);
  result.total_generated = trackers[0]->total_generated();
  size_t pool_bytes = 0;
  for (size_t s = 0; s < shards; ++s) {
    result.num_entries += trackers[s]->num_entries();
    ShardInfo info;
    info.labels = run.labels_per_shard[s];
    info.entries = trackers[s]->num_entries();
    info.seconds = run.seconds[s];
    info.pool_bytes = trackers[s]->PoolBytesReserved();
    pool_bytes += info.pool_bytes;
    result.shards.push_back(info);
  }
  TINPROV_COUNTER_ADD("parallel.replays", 1);
  TINPROV_COUNTER_ADD("parallel.shards_run", shards);
  TINPROV_GAUGE_SET("memory.shard_pool_bytes", pool_bytes);

  // Phase 2 (exchange): interleave the shards' disjoint label slices
  // back into full per-vertex lists. Pure data movement ordered by
  // label id — deterministic and free of floating-point arithmetic —
  // parallelized over vertex blocks on the work-stealing scheduler
  // (blocks vary wildly in list volume, which is exactly the skew
  // stealing exists for).
  obs::TraceSpan exchange_span("replay.exchange", "parallel");
  TINPROV_SCOPED_LATENCY_NS("parallel.exchange_ns");
  constexpr size_t kBlock = 1024;
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  WorkStealingScheduler scheduler(threads);
  scheduler.ParallelFor(num_blocks, [&](size_t block) {
    std::vector<size_t> cursor(shards);
    const VertexId begin = static_cast<VertexId>(block * kBlock);
    const VertexId end =
        static_cast<VertexId>(std::min(n, (block + 1) * kBlock));
    for (VertexId v = begin; v < end; ++v) {
      result.totals[v] = trackers[0]->BufferTotal(v);
      InterleaveVertexSlices(trackers, v, &result.entries[v], &cursor);
    }
  });
  return result;
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::ReplayPrefix(
    size_t prefix) const {
  if (tin_ == nullptr) {
    return Status::FailedPrecondition(
        "engine was built without a materialized log — use ReplayStream");
  }
  prefix = std::min(prefix, tin_->num_interactions());
  size_t shards = 0;
  if (!UsesShards(&shards)) {
    return SequentialReplay(prefix);
  }
  Stopwatch watch;
  auto executed = RunShards(prefix, shards);
  if (!executed.ok()) return executed.status();
  return AssembleResult(*executed, prefix, watch.ElapsedSeconds());
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::ReplayStream(
    InteractionStream& stream) const {
  size_t shards = 0;
  if (!UsesShards(&shards)) {
    return SequentialStreamReplay(stream);
  }
  Stopwatch watch;
  size_t interactions = 0;
  auto executed = RunShardsStream(stream, shards, &interactions);
  if (!executed.ok()) return executed.status();
  return AssembleResult(*executed, interactions, watch.ElapsedSeconds());
}

StatusOr<Buffer> ShardedReplayEngine::QueryPrefix(VertexId v,
                                                  size_t prefix) const {
  if (tin_ == nullptr) {
    return Status::FailedPrecondition(
        "engine was built without a materialized log — use ReplayStream");
  }
  if (v >= tin_->num_vertices()) {
    return Status::InvalidArgument("query vertex " + std::to_string(v) +
                                   " out of range");
  }
  prefix = std::min(prefix, tin_->num_interactions());
  size_t shards = 0;
  if (!UsesShards(&shards)) {
    auto replayed = SequentialTracker(prefix);
    if (!replayed.ok()) return replayed.status();
    return (*replayed)->Provenance(v);
  }
  auto executed = RunShards(prefix, shards);
  if (!executed.ok()) return executed.status();

  // Single-vertex exchange: the same interleave as ReplayPrefix's
  // phase 2, restricted to v — per-query cost stays O(|list(v)|).
  Buffer buffer;
  buffer.total = executed->trackers[0]->BufferTotal(v);
  std::vector<size_t> cursor(shards);
  InterleaveVertexSlices(executed->trackers, v, &buffer.entries, &cursor);
  return buffer;
}

}  // namespace tinprov
