#include "parallel/sharded_replay.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <utility>

#include "util/stopwatch.h"

#if !defined(TINPROV_NO_THREADS)
#include <thread>
#endif

namespace tinprov {

namespace {

size_t HardwareThreads() {
#if defined(TINPROV_NO_THREADS)
  return 1;
#else
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
#endif
}

/// Runs `task(index)` for every index in [0, count) on up to
/// `num_threads` workers. Indices are claimed from a shared atomic
/// counter, so a slow task never blocks the remaining ones behind a
/// fixed pre-assignment (shard-granularity work stealing). The calling
/// thread is worker 0. `task` must not throw.
template <typename Task>
void RunSelfScheduled(size_t count, size_t num_threads, const Task& task) {
  if (count == 0) return;
  std::atomic<size_t> next{0};
  const auto worker = [&next, count, &task] {
    for (;;) {
      const size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      task(index);
    }
  };
#if !defined(TINPROV_NO_THREADS)
  const size_t spawned = std::min(num_threads, count) - 1;
  std::vector<std::thread> threads;
  threads.reserve(spawned);
  for (size_t t = 0; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& thread : threads) thread.join();
#else
  (void)num_threads;
  worker();
#endif
}

/// The deterministic single-vertex exchange: interleaves v's disjoint
/// shard slices into one label-sorted list by repeated min-head
/// selection (shard counts are small; slices are disjoint, so ties are
/// impossible). Shared by ReplayPrefix's phase 2 and QueryPrefix so the
/// two cannot drift apart. `cursor` is caller-provided scratch of at
/// least trackers.size() elements.
void InterleaveVertexSlices(
    const std::vector<std::unique_ptr<SparseProportionalBase>>& trackers,
    VertexId v, std::vector<ProvPair>* out, std::vector<size_t>* cursor) {
  const size_t shards = trackers.size();
  size_t total_len = 0;
  for (size_t s = 0; s < shards; ++s) {
    (*cursor)[s] = 0;
    total_len += trackers[s]->EntriesOf(v).size();
  }
  out->reserve(total_len);
  for (size_t picked = 0; picked < total_len; ++picked) {
    size_t best = shards;
    VertexId best_origin = kInvalidVertex;
    for (size_t s = 0; s < shards; ++s) {
      const SparseVector& list = trackers[s]->EntriesOf(v);
      if ((*cursor)[s] < list.size() &&
          (best == shards || list[(*cursor)[s]].origin < best_origin)) {
        best = s;
        best_origin = list[(*cursor)[s]].origin;
      }
    }
    out->push_back(trackers[best]->EntriesOf(v)[(*cursor)[best]]);
    ++(*cursor)[best];
  }
}

}  // namespace

Buffer ShardedReplayResult::Provenance(VertexId v) const {
  Buffer buffer;
  buffer.total = totals[v];
  buffer.entries = entries[v];
  return buffer;
}

ShardedReplayEngine::ShardedReplayEngine(const Tin& tin, ShardedSpec spec,
                                         ParallelParams params)
    : tin_(&tin), spec_(std::move(spec)), params_(params) {}

size_t ShardedReplayEngine::ResolvedThreads() const {
  return params_.num_threads == 0 ? HardwareThreads() : params_.num_threads;
}

std::vector<GroupId> ShardedReplayEngine::AssignLabels(const Tin& tin,
                                                       ShardStrategy strategy,
                                                       size_t label_count,
                                                       size_t num_shards) {
  switch (strategy) {
    case ShardStrategy::kRoundRobin:
      return RoundRobinGroups(label_count, num_shards);
    case ShardStrategy::kHash:
      return HashGroups(label_count, num_shards);
    case ShardStrategy::kContiguous:
      return ContiguousGroups(label_count, num_shards);
    case ShardStrategy::kActivity:
      // LPT over interaction activity only makes sense when labels ARE
      // vertices; group-id label spaces fall back to round-robin.
      if (label_count == tin.num_vertices()) {
        return ActivityGroups(tin, num_shards);
      }
      return RoundRobinGroups(label_count, num_shards);
  }
  return RoundRobinGroups(label_count, num_shards);
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::Replay() const {
  return ReplayPrefix(tin_->num_interactions());
}

StatusOr<std::unique_ptr<Tracker>> ShardedReplayEngine::SequentialTracker(
    size_t prefix) const {
  if (!spec_.sequential) {
    return Status::FailedPrecondition(
        "sharded spec has no sequential tracker factory");
  }
  std::unique_ptr<Tracker> tracker = spec_.sequential();
  if (tracker == nullptr) {
    return Status::Internal("sequential tracker factory returned null");
  }
  tracker->ReserveHint(*tin_);
  const auto& log = tin_->interactions();
  for (size_t i = 0; i < prefix; ++i) {
    const Status status = tracker->Process(log[i]);
    if (!status.ok()) {
      return Status(status.code(), "sequential replay at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
  }
  return tracker;
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::SequentialReplay(
    size_t prefix) const {
  Stopwatch watch;
  auto replayed = SequentialTracker(prefix);
  if (!replayed.ok()) return replayed.status();
  const double replay_seconds = watch.ElapsedSeconds();
  std::unique_ptr<Tracker> tracker = *std::move(replayed);
  const size_t n = tin_->num_vertices();
  ShardedReplayResult result;
  result.num_vertices = n;
  result.interactions_replayed = prefix;
  result.replay_seconds = replay_seconds;
  result.totals.resize(n);
  result.entries.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    Buffer buffer = tracker->Provenance(v);
    result.totals[v] = buffer.total;
    result.num_entries += buffer.entries.size();
    result.entries[v] = std::move(buffer.entries);
  }
  result.total_generated = tracker->total_generated();
  return result;
}

bool ShardedReplayEngine::UsesShards(size_t* num_shards) const {
  const size_t threads = ResolvedThreads();
  size_t shards = params_.num_shards == 0 ? threads : params_.num_shards;
  shards = std::min(shards, spec_.label_count);
  *num_shards = shards;
  return spec_.decomposable && spec_.make_shard != nullptr && shards > 1;
}

StatusOr<ShardedReplayEngine::ShardRun> ShardedReplayEngine::RunShards(
    size_t prefix, size_t num_shards) const {
  const size_t threads = ResolvedThreads();
  const size_t label_count = spec_.label_count;
  ShardRun run;
  run.num_shards = num_shards;
  run.num_threads = std::min(threads, num_shards);

  // Phase 0: deterministic label partition, independent of threading.
  const std::vector<GroupId> assignment =
      AssignLabels(*tin_, params_.strategy, label_count, num_shards);
  run.masks.assign(num_shards, std::vector<uint8_t>(label_count, 0));
  run.labels_per_shard.assign(num_shards, 0);
  for (size_t label = 0; label < label_count; ++label) {
    const GroupId shard = assignment[label];
    run.masks[shard][label] = 1;
    ++run.labels_per_shard[shard];
  }

  // Phase 1: every shard replays the full prefix over its label slice.
  run.trackers.resize(num_shards);
  run.seconds.assign(num_shards, 0.0);
  std::vector<Status> statuses(num_shards, Status::Ok());
  const auto& log = tin_->interactions();
  const size_t hint =
      std::min(prefix, (size_t{8} << 20) / sizeof(ProvPair)) / num_shards +
      16;
  RunSelfScheduled(num_shards, threads, [&](size_t s) {
    Stopwatch watch;
    std::unique_ptr<SparseProportionalBase> tracker = spec_.make_shard();
    if (tracker == nullptr) {
      statuses[s] = Status::Internal("shard tracker factory returned null");
      return;
    }
    tracker->RestrictLabels(run.masks[s].data(), label_count);
    tracker->ReserveEntries(hint);
    for (size_t i = 0; i < prefix; ++i) {
      const Status status = tracker->Process(log[i]);
      if (!status.ok()) {
        statuses[s] = Status(status.code(),
                             "shard " + std::to_string(s) +
                                 " replay at interaction " +
                                 std::to_string(i) + ": " + status.message());
        return;
      }
    }
    run.trackers[s] = std::move(tracker);
    run.seconds[s] = watch.ElapsedSeconds();
  });
  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  // Replicated global state must agree bit-for-bit across shards, or
  // the spec lied about being label-linear; total_generated is the
  // cheapest complete witness (it accumulates every deficit in order).
  for (size_t s = 1; s < num_shards; ++s) {
    if (run.trackers[s]->total_generated() !=
        run.trackers[0]->total_generated()) {
      return Status::Internal(
          "shard " + std::to_string(s) +
          " diverged from shard 0 — tracker is not label-decomposable");
    }
  }
  return run;
}

StatusOr<ShardedReplayResult> ShardedReplayEngine::ReplayPrefix(
    size_t prefix) const {
  prefix = std::min(prefix, tin_->num_interactions());
  size_t shards = 0;
  if (!UsesShards(&shards)) {
    return SequentialReplay(prefix);
  }
  Stopwatch watch;
  auto executed = RunShards(prefix, shards);
  if (!executed.ok()) return executed.status();
  const double replay_seconds = watch.ElapsedSeconds();
  ShardRun& run = *executed;
  const auto& trackers = run.trackers;
  const size_t threads = ResolvedThreads();

  const size_t n = tin_->num_vertices();
  ShardedReplayResult result;
  result.num_vertices = n;
  result.interactions_replayed = prefix;
  result.replay_seconds = replay_seconds;
  result.used_parallel_path = true;
  result.num_shards = shards;
  result.num_threads = std::min(threads, shards);
  result.totals.resize(n);
  result.entries.resize(n);
  result.total_generated = trackers[0]->total_generated();
  for (size_t s = 0; s < shards; ++s) {
    result.num_entries += trackers[s]->num_entries();
    ShardInfo info;
    info.labels = run.labels_per_shard[s];
    info.entries = trackers[s]->num_entries();
    info.seconds = run.seconds[s];
    info.pool_bytes = trackers[s]->PoolBytesReserved();
    result.shards.push_back(info);
  }

  // Phase 2 (exchange): interleave the shards' disjoint label slices
  // back into full per-vertex lists. Pure data movement ordered by
  // label id — deterministic and free of floating-point arithmetic —
  // parallelized over vertex blocks on the same worker pool.
  constexpr size_t kBlock = 1024;
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  RunSelfScheduled(num_blocks, threads, [&](size_t block) {
    std::vector<size_t> cursor(shards);
    const VertexId begin = static_cast<VertexId>(block * kBlock);
    const VertexId end =
        static_cast<VertexId>(std::min(n, (block + 1) * kBlock));
    for (VertexId v = begin; v < end; ++v) {
      result.totals[v] = trackers[0]->BufferTotal(v);
      InterleaveVertexSlices(trackers, v, &result.entries[v], &cursor);
    }
  });
  return result;
}

StatusOr<Buffer> ShardedReplayEngine::QueryPrefix(VertexId v,
                                                  size_t prefix) const {
  if (v >= tin_->num_vertices()) {
    return Status::InvalidArgument("query vertex " + std::to_string(v) +
                                   " out of range");
  }
  prefix = std::min(prefix, tin_->num_interactions());
  size_t shards = 0;
  if (!UsesShards(&shards)) {
    auto replayed = SequentialTracker(prefix);
    if (!replayed.ok()) return replayed.status();
    return (*replayed)->Provenance(v);
  }
  auto executed = RunShards(prefix, shards);
  if (!executed.ok()) return executed.status();

  // Single-vertex exchange: the same interleave as ReplayPrefix's
  // phase 2, restricted to v — per-query cost stays O(|list(v)|).
  Buffer buffer;
  buffer.total = executed->trackers[0]->BufferTotal(v);
  std::vector<size_t> cursor(shards);
  InterleaveVertexSlices(executed->trackers, v, &buffer.entries, &cursor);
  return buffer;
}

}  // namespace tinprov
