// Parallel sharded replay of the pro-rata provenance trackers.
//
// The pro-rata update is linear in generation labels: a transfer moves
// the same fraction of every label's share, and that fraction depends
// only on per-vertex balances, which evolve independently of which
// labels are attributed. So the label space can be partitioned into
// shards, each shard can replay the FULL interaction log on its own
// tracker restricted (via SparseProportionalBase::RestrictLabels) to
// the labels it owns, and the per-vertex lists of different shards stay
// disjoint by construction. Three consequences:
//   - balances, deficits and total_generated are computed by the
//     identical floating-point op sequence in every shard, so they are
//     bit-identical to a sequential replay;
//   - each owned label's quantity undergoes exactly the op sequence the
//     sequential replay applies to it, so shard lists are bit-identical
//     to the owned-label slices of the sequential lists;
//   - the exchange phase that merges cross-shard flow back into full
//     per-vertex lists is a pure interleave by label — no arithmetic —
//     and therefore deterministic regardless of thread timing.
// Work per shard is (stream scan) + (list work / #shards): the scan is
// the cheap scalar part, the list work is the superlinear cost paper
// Figure 6 plots, which is what actually parallelizes.
//
// Trackers whose behaviour is NOT label-linear (the order-based
// policies; BudgetTracker, whose shrink inspects whole lists) run on a
// sequential fallback path inside the same engine, so callers get one
// API and bit-identical results either way. WindowedTracker IS
// decomposable here — unlike influence-cone slicing, every shard sees
// every interaction, so its global reset counter advances identically.
//
// Shards are claimed by a small self-scheduling worker pool (each
// worker steals the next unclaimed shard index), so uneven shards —
// e.g. an activity-skewed label partition — keep all threads busy.
// Each shard tracker owns its own arena-backed pool; no state is
// shared between workers until the join.
//
// Two input modes share the engine: the materialized mode above (every
// shard re-scans the immutable log) and a streaming mode (ReplayStream)
// where a single pass of an InteractionStream is broadcast to the
// shards chunk by chunk through a bounded queue — same math, same
// bit-identical results, but the log is never materialized and
// buffering stays constant.
#ifndef TINPROV_PARALLEL_SHARDED_REPLAY_H_
#define TINPROV_PARALLEL_SHARDED_REPLAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/buffer.h"
#include "core/tin.h"
#include "core/types.h"
#include "policies/proportional_base.h"
#include "policies/tracker.h"
#include "scalable/grouped.h"
#include "util/status.h"

namespace tinprov {

class InteractionStream;  // stream/interaction_stream.h

/// How the generation-label space is partitioned into shards. These are
/// exactly the GroupedTracker assignment strategies (scalable/grouped.h)
/// applied to labels; kActivity balances per-shard list work via LPT
/// when labels are vertices and falls back to round-robin otherwise.
enum class ShardStrategy {
  kRoundRobin,
  kHash,
  kContiguous,
  kActivity,
};

struct ParallelParams {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). With
  /// TINPROV_PARALLEL=OFF the shards all run inline on the caller.
  size_t num_threads = 0;
  /// Label shards; 0 = one per thread. More shards than threads is
  /// valid (and useful: the pool self-balances); shard counts are
  /// clamped to the label-space size.
  size_t num_shards = 0;
  ShardStrategy strategy = ShardStrategy::kActivity;
  /// Streaming replay (ReplayStream) only: interactions per broadcast
  /// chunk, and the bound on undrained chunks the producer queue may
  /// hold. Each worker can additionally pin one in-flight chunk it is
  /// processing after the queue popped it, so total pipeline buffering
  /// is bounded by (stream_queue_chunks + workers) * stream_chunk
  /// interactions — a constant, independent of stream length.
  size_t stream_chunk = 4096;
  size_t stream_queue_chunks = 8;
};

/// Builds a fresh, identically configured pro-rata tracker; the engine
/// applies the per-shard label restriction itself.
using ShardTrackerFactory =
    std::function<std::unique_ptr<SparseProportionalBase>()>;

/// What the engine needs to know about a tracker configuration. Build
/// one by hand, or by name via TrackerRegistry::Sharded().
struct ShardedSpec {
  /// True when the tracker is label-linear (see file comment); false
  /// routes every replay through the sequential fallback.
  bool decomposable = false;
  /// Size of the generation-label id space: num_vertices for the
  /// vertex-labelled trackers, num_groups for GroupedTracker.
  size_t label_count = 0;
  /// Shard construction; required when decomposable.
  ShardTrackerFactory make_shard;
  /// Fallback (and reference) construction; always required.
  TrackerFactory sequential;
};

/// Per-shard accounting for bench output.
struct ShardInfo {
  size_t labels = 0;        // labels owned
  size_t entries = 0;       // tuples held at the end of the replay
  double seconds = 0.0;     // replay wall time on its worker
  size_t pool_bytes = 0;    // arena bytes its tracker reserved
};

/// Materialized outcome of a (possibly prefix-bounded) replay.
struct ShardedReplayResult {
  size_t num_vertices = 0;
  size_t interactions_replayed = 0;  // log prefix length (logical cost)
  /// Wall time of the replay itself, excluding the exchange phase and
  /// result materialization. This is the number comparable to a
  /// sequential tracker's Process() loop: a sequential tracker is
  /// queryable the moment the loop ends, and so are the shard trackers
  /// (via a per-vertex interleave) the moment the replay ends.
  double replay_seconds = 0.0;
  std::vector<double> totals;        // per-vertex balances
  /// Per-vertex provenance lists, label-sorted — bit-identical to what
  /// the sequential tracker's Provenance() would list.
  std::vector<std::vector<ProvPair>> entries;
  double total_generated = 0.0;
  size_t num_entries = 0;
  /// False when the sequential fallback ran (non-decomposable spec or a
  /// single shard).
  bool used_parallel_path = false;
  size_t num_shards = 1;
  size_t num_threads = 1;
  std::vector<ShardInfo> shards;

  double BufferTotal(VertexId v) const { return totals[v]; }
  Buffer Provenance(VertexId v) const;
};

class ShardedReplayEngine {
 public:
  /// `tin` must outlive the engine.
  ShardedReplayEngine(const Tin& tin, ShardedSpec spec,
                      ParallelParams params = {});

  /// Tin-free streaming form: the engine knows only the dataset shape.
  /// ReplayStream is the sole replay entry point — the materialized
  /// ones below need a log to (re-)scan and return FailedPrecondition —
  /// and the kActivity strategy falls back to round-robin, since
  /// activity balancing needs a log to measure.
  ShardedReplayEngine(const DatasetStats& stats, ShardedSpec spec,
                      ParallelParams params = {});

  /// Replays the whole log.
  StatusOr<ShardedReplayResult> Replay() const;

  /// Single-pass streaming replay: drains `stream` once, broadcasting
  /// fixed-size chunks to every shard through a bounded queue (the
  /// calling thread is the producer; shard workers consume each chunk
  /// in order). Every shard still sees every interaction, so the result
  /// is bit-identical to Replay() over the materialized equivalent —
  /// but the log is never materialized and pipeline buffering stays
  /// bounded by (stream_queue_chunks + workers) chunks. Enforces
  /// non-decreasing timestamps like StreamIngestor. Non-decomposable
  /// specs (or a single shard) drain the stream through the sequential
  /// tracker instead, same result.
  StatusOr<ShardedReplayResult> ReplayStream(InteractionStream& stream) const;

  /// Replays the first min(prefix, log length) interactions — the
  /// historical-prefix shape shared with the lazy engine.
  StatusOr<ShardedReplayResult> ReplayPrefix(size_t prefix) const;

  /// Single-vertex variant for per-query callers (the lazy engine):
  /// replays the prefix exactly like ReplayPrefix but exchanges only
  /// `v`'s shard slices, so the materialization cost is O(|list(v)|)
  /// instead of O(total entries). Bit-identical to
  /// ReplayPrefix(prefix)->Provenance(v).
  StatusOr<Buffer> QueryPrefix(VertexId v, size_t prefix) const;

  /// Threads the engine will actually use.
  size_t ResolvedThreads() const;

  /// label -> shard assignment for `strategy` (exposed for tests).
  static std::vector<GroupId> AssignLabels(const Tin& tin,
                                           ShardStrategy strategy,
                                           size_t label_count,
                                           size_t num_shards);

 private:
  // One executed parallel phase: the shard trackers plus the label
  // masks they borrow (declared first so they outlive the trackers).
  struct ShardRun {
    std::vector<std::vector<uint8_t>> masks;
    std::vector<std::unique_ptr<SparseProportionalBase>> trackers;
    std::vector<size_t> labels_per_shard;
    std::vector<double> seconds;
    size_t num_shards = 0;
    size_t num_threads = 0;
  };

  /// True when this spec/params combination shards at all; false means
  /// callers should take their sequential path.
  bool UsesShards(size_t* num_shards) const;
  /// Label partition + masks for `num_shards` (phase 0), shared by the
  /// materialized and streaming paths.
  void PartitionLabels(ShardRun* run, size_t num_shards) const;
  /// Per-shard entry pre-sizing from an expected interaction count
  /// (0 = unknown, no reservation).
  static void ReserveShard(SparseProportionalBase* tracker,
                           size_t expected_interactions, size_t num_shards);
  StatusOr<ShardRun> RunShards(size_t prefix, size_t num_shards) const;
  StatusOr<ShardRun> RunShardsStream(InteractionStream& stream,
                                     size_t num_shards,
                                     size_t* interactions) const;
  /// Phase 2 (exchange) + result bookkeeping, shared by ReplayPrefix
  /// and ReplayStream.
  ShardedReplayResult AssembleResult(const ShardRun& run,
                                     size_t interactions_replayed,
                                     double replay_seconds) const;
  StatusOr<ShardedReplayResult> SequentialReplay(size_t prefix) const;
  StatusOr<ShardedReplayResult> SequentialStreamReplay(
      InteractionStream& stream) const;
  StatusOr<std::unique_ptr<Tracker>> SequentialTracker(size_t prefix) const;
  StatusOr<std::unique_ptr<Tracker>> MakeSequentialTracker() const;

  const Tin* tin_;  // null in the streaming-only form
  DatasetStats stats_;
  ShardedSpec spec_;
  ParallelParams params_;
};

}  // namespace tinprov

#endif  // TINPROV_PARALLEL_SHARDED_REPLAY_H_
