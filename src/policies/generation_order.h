// Generation-order selection (paper Section 4.2): each vertex's buffer
// is a binary heap of 3-field (origin, birth, quantity) tuples keyed on
// the generation timestamp. LRB ("least recently born") spends the
// oldest-born quantity first; MRB the newest. Birth timestamps survive
// transfers unchanged — only generation creates a new birth.
#ifndef TINPROV_POLICIES_GENERATION_ORDER_H_
#define TINPROV_POLICIES_GENERATION_ORDER_H_

#include <utility>
#include <vector>

#include "core/buffer_io.h"
#include "obs/metrics.h"
#include "policies/tracker.h"

namespace tinprov {

template <typename BirthOrder>
class GenerationOrderTracker : public Tracker {
 public:
  explicit GenerationOrderTracker(size_t num_vertices)
      : Tracker(num_vertices),
        buffers_(num_vertices),
        totals_(num_vertices, 0.0) {}

  Status Process(const Interaction& interaction) override {
    auto deficit = CheckAndComputeDeficit(interaction, totals_);
    if (!deficit.ok()) return deficit.status();
    if (*deficit > 0.0) {
      Push(interaction.src,
           {interaction.src, interaction.t, *deficit});
      totals_[interaction.src] += *deficit;
    }

    if (interaction.src == interaction.dst) {
      // A heap is order-insensitive to remove-and-reinsert of the same
      // tuples, so a self-loop leaves the buffer unchanged.
      return Status::Ok();
    }

    scratch_.clear();
    Consume(interaction.src, interaction.quantity, &scratch_);
    totals_[interaction.src] -= interaction.quantity;
    for (const ProvTriple& fragment : scratch_) {
      Push(interaction.dst, fragment);
    }
    totals_[interaction.dst] += interaction.quantity;
    return Status::Ok();
  }

  double BufferTotal(VertexId v) const override { return totals_[v]; }

  Buffer Provenance(VertexId v) const override {
    Buffer result;
    result.total = totals_[v];
    // Drain a copy of the heap so entries come out in consumption order.
    BinaryHeap<ProvTriple, BirthOrder> copy = buffers_[v];
    result.entries.reserve(copy.size());
    while (!copy.empty()) {
      const ProvTriple entry = copy.Pop();
      result.entries.push_back({entry.origin, entry.quantity});
    }
    return result;
  }

  size_t MemoryUsage() const override {
    return num_entries_ * sizeof(ProvTriple) +
           totals_.capacity() * sizeof(double);
  }

  size_t MemoryBytes() const override {
    // Heap capacities, not live tuples: what the allocator is actually
    // holding for this tracker. O(|V|), sampled per batch.
    size_t bytes =
        totals_.capacity() * sizeof(double) +
        buffers_.capacity() * sizeof(BinaryHeap<ProvTriple, BirthOrder>) +
        scratch_.capacity() * sizeof(ProvTriple);
    for (const BinaryHeap<ProvTriple, BirthOrder>& buffer : buffers_) {
      bytes += buffer.capacity() * sizeof(ProvTriple);
    }
    return bytes;
  }

  void PublishMetrics() const override {
    TINPROV_GAUGE_SET("tracker.entries", num_entries());
  }

  size_t num_entries() const { return num_entries_; }

 protected:
  void SaveStateBody(ByteWriter* writer) const override {
    writer->AppendSpan(totals_.data(), totals_.size());
    // Heaps are serialized in array layout, not drain order: a restored
    // heap then pops equal-birth entries exactly as the original would,
    // keeping resumed replays bit-exact.
    for (const BinaryHeap<ProvTriple, BirthOrder>& buffer : buffers_) {
      AppendEntryVector(writer, buffer.Items());
    }
  }

  Status RestoreStateBody(ByteReader* reader) override {
    Status status = reader->ReadSpan(totals_.data(), totals_.size());
    if (!status.ok()) return status;
    num_entries_ = 0;
    std::vector<ProvTriple> items;
    for (BinaryHeap<ProvTriple, BirthOrder>& buffer : buffers_) {
      status = ReadEntryVector(reader, &items);
      if (!status.ok()) return status;
      num_entries_ += items.size();
      buffer.AssignItems(std::move(items));
      // ReadEntryVector clear()s the moved-from vector before refilling.
    }
    return Status::Ok();
  }

 private:
  void Push(VertexId v, const ProvTriple& entry) {
    buffers_[v].Push(entry);
    ++num_entries_;
  }

  void Consume(VertexId v, double amount, std::vector<ProvTriple>* moved) {
    BinaryHeap<ProvTriple, BirthOrder>& buffer = buffers_[v];
    double remaining = amount;
    while (remaining > 0.0 && !buffer.empty()) {
      ProvTriple& top = buffer.MutableTop();
      if (top.quantity <= remaining) {
        remaining -= top.quantity;
        moved->push_back(buffer.Pop());
        --num_entries_;
      } else {
        // Partial consumption: shrink in place (birth key unchanged, so
        // the heap invariant holds) and emit the split fragment.
        top.quantity -= remaining;
        moved->push_back({top.origin, top.birth, remaining});
        remaining = 0.0;
      }
    }
  }

  std::vector<BinaryHeap<ProvTriple, BirthOrder>> buffers_;
  std::vector<double> totals_;
  size_t num_entries_ = 0;
  std::vector<ProvTriple> scratch_;
};

/// Least recently born: transfers propagate the oldest quantity first.
using LrbTracker = GenerationOrderTracker<EarlierBirthFirst>;

/// Most recently born: transfers propagate the newest quantity first.
using MrbTracker = GenerationOrderTracker<LaterBirthFirst>;

}  // namespace tinprov

#endif  // TINPROV_POLICIES_GENERATION_ORDER_H_
