// The no-provenance baseline: scalar balances only. Measures the
// irreducible cost of replaying the interaction stream, against which
// every provenance policy's overhead is reported (paper Table 7's first
// column).
#ifndef TINPROV_POLICIES_NO_PROVENANCE_H_
#define TINPROV_POLICIES_NO_PROVENANCE_H_

#include <vector>

#include "policies/tracker.h"

namespace tinprov {

class NoProvenanceTracker : public Tracker {
 public:
  explicit NoProvenanceTracker(size_t num_vertices)
      : Tracker(num_vertices), balance_(num_vertices, 0.0) {}

  Status Process(const Interaction& interaction) override {
    auto deficit = CheckAndComputeDeficit(interaction, balance_);
    if (!deficit.ok()) return deficit.status();
    balance_[interaction.src] += *deficit;
    balance_[interaction.src] -= interaction.quantity;
    balance_[interaction.dst] += interaction.quantity;
    return Status::Ok();
  }

  double BufferTotal(VertexId v) const override { return balance_[v]; }

  /// No breakdown is known — only the total.
  Buffer Provenance(VertexId v) const override {
    Buffer buffer;
    buffer.total = balance_[v];
    return buffer;
  }

  size_t MemoryUsage() const override {
    return balance_.capacity() * sizeof(double);
  }

 protected:
  void SaveStateBody(ByteWriter* writer) const override {
    writer->AppendSpan(balance_.data(), balance_.size());
  }

  Status RestoreStateBody(ByteReader* reader) override {
    return reader->ReadSpan(balance_.data(), balance_.size());
  }

 private:
  std::vector<double> balance_;
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_NO_PROVENANCE_H_
