#include "policies/proportional_base.h"

#include <algorithm>
#include <cstring>
#include <typeinfo>

#include "core/buffer_io.h"
#include "obs/metrics.h"
#include "util/simd.h"

namespace tinprov {

static_assert(sizeof(ProvPair) == 16 && alignof(ProvPair) == 8,
              "the sparse merge kernels assume the 16-byte "
              "{origin, pad, quantity} ProvPair layout");

void MergeScaled(SparseVector* dst, const SparseVector& src,
                 double fraction) {
  if (fraction == 0.0 || src.empty()) return;
  if (dst->empty()) {
    dst->reserve(src.size());
    for (const ProvPair& entry : src) {
      dst->push_back({entry.origin, entry.quantity * fraction});
    }
    return;
  }

  // Pass 1: count src origins missing from dst.
  size_t extra = 0;
  {
    size_t i = 0;
    size_t j = 0;
    while (j < src.size()) {
      if (i == dst->size() || src[j].origin < (*dst)[i].origin) {
        ++extra;
        ++j;
      } else if ((*dst)[i].origin < src[j].origin) {
        ++i;
      } else {
        ++i;
        ++j;
      }
    }
  }

  // Pass 2: merge backwards in place so no temporary list is needed.
  const size_t old_size = dst->size();
  dst->resize(old_size + extra);
  size_t i = old_size;      // one past the last unmerged dst entry
  size_t j = src.size();    // one past the last unmerged src entry
  size_t k = dst->size();   // one past the next write slot
  while (j > 0) {
    if (i > 0 && (*dst)[i - 1].origin == src[j - 1].origin) {
      (*dst)[--k] = {src[j - 1].origin,
                     (*dst)[i - 1].quantity + src[j - 1].quantity * fraction};
      --i;
      --j;
    } else if (i > 0 && (*dst)[i - 1].origin > src[j - 1].origin) {
      (*dst)[--k] = (*dst)[--i];
    } else {
      (*dst)[--k] = {src[j - 1].origin, src[j - 1].quantity * fraction};
      --j;
    }
  }
  // Remaining dst entries (i of them) are already in their final slots.
}

void MergeScaledInto(SparseVector* out, const SparseVector& a,
                     const SparseVector& b, double fraction) {
  out->ResizeUninitialized(a.size() + b.size());
  const size_t merged = simd::GallopMergeScaled(
      out->data(), a.data(), a.size(), b.data(), b.size(), fraction);
  out->ResizeUninitialized(merged);
}

Status SparseProportionalBase::Process(const Interaction& interaction) {
  auto deficit = CheckAndComputeDeficit(interaction, totals_);
  if (!deficit.ok()) return deficit.status();
  TINPROV_COUNTER_ADD("tracker.interactions", 1);
  SparseVector& src_buffer = buffers_[interaction.src];
  if (*deficit > 0.0) {
    OnGenerated(interaction.src, *deficit);
    if (AttributeGeneration(interaction.src)) {
      const ProvPair entry{GenerationLabel(interaction.src), *deficit};
      // The label filter (sharded replay) diverts non-owned labels into
      // alpha *after* the subclass hooks, so per-shard hook state (e.g.
      // Selective's tracked_generated) still evolves exactly as the
      // sequential tracker's does.
      if (label_mask_ == nullptr || (entry.origin < label_mask_size_ &&
                                     label_mask_[entry.origin] != 0)) {
        // Insert the newly generated share at its sorted position.
        auto it = std::lower_bound(src_buffer.begin(), src_buffer.end(),
                                   entry.origin,
                                   [](const ProvPair& p, VertexId origin) {
                                     return p.origin < origin;
                                   });
        if (it != src_buffer.end() && it->origin == entry.origin) {
          it->quantity += entry.quantity;
        } else {
          if (src_buffer.empty()) ++num_nonempty_;
          src_buffer.insert(it, entry);
          ++num_entries_;
        }
        attributed_generated_ += *deficit;
      }
    }
    totals_[interaction.src] += *deficit;
  }

  if (interaction.quantity == 0.0 ||
      interaction.src == interaction.dst) {
    // Nothing moves, or a pro-rata transfer to oneself leaves the
    // breakdown unchanged; either way the interaction still counts for
    // the post-interaction hooks (window positions advance).
    AfterInteraction(interaction);
    return Status::Ok();
  }

  const double fraction =
      std::min(1.0, interaction.quantity / totals_[interaction.src]);
  SparseVector& dst_buffer = buffers_[interaction.dst];
  const size_t dst_before = dst_buffer.size();
  const bool dst_was_empty = dst_buffer.empty();
  if (fraction >= 1.0) {
    // Whole-buffer move: into an empty destination it is a pointer swap;
    // otherwise merge at full strength, then drop the source. Either way
    // the tuples only change owner, so num_entries_ is debited for the
    // source and re-credited by the final destination delta. Any alpha
    // residue moves implicitly with the balance.
    num_entries_ -= src_buffer.size();
    if (!src_buffer.empty()) --num_nonempty_;
    if (dst_buffer.empty()) {
      dst_buffer.swap(src_buffer);
    } else if (!src_buffer.empty()) {
      MergeScaledInto(&scratch_, dst_buffer, src_buffer, 1.0);
      dst_buffer.swap(scratch_);
      src_buffer.clear();
    }
  } else if (!src_buffer.empty()) {
    MergeScaledInto(&scratch_, dst_buffer, src_buffer, fraction);
    dst_buffer.swap(scratch_);
    simd::ScalePairsInPlace(src_buffer.data(), 1.0 - fraction,
                            src_buffer.size());
  }
  if (dst_was_empty && !dst_buffer.empty()) ++num_nonempty_;
  num_entries_ += dst_buffer.size() - dst_before;
  totals_[interaction.src] -= interaction.quantity;
  totals_[interaction.dst] += interaction.quantity;
  TINPROV_HISTOGRAM_OBSERVE("tracker.list_len", dst_buffer.size());
  AfterInteraction(interaction);
  return Status::Ok();
}

Status SparseProportionalBase::ProcessVertexSharded(
    const Interaction& interaction, bool own_src, bool own_dst,
    SparseVector* outgoing, const ProvPair* incoming, size_t incoming_len) {
  if (own_src && own_dst) return Process(interaction);

  // Mirrors Process() step for step — any change there needs its twin
  // here, and the sharded-ingest equivalence tests in
  // tests/test_parallel.cc pin the two together bit-for-bit. List work
  // runs only on owned vertices; everything scalar is replicated.
  auto deficit = CheckAndComputeDeficit(interaction, totals_);
  if (!deficit.ok()) return deficit.status();
  TINPROV_COUNTER_ADD("tracker.interactions", 1);
  if (*deficit > 0.0) {
    OnGenerated(interaction.src, *deficit);
    if (AttributeGeneration(interaction.src)) {
      if (own_src) {
        SparseVector& src_buffer = buffers_[interaction.src];
        const ProvPair entry{GenerationLabel(interaction.src), *deficit};
        auto it = std::lower_bound(src_buffer.begin(), src_buffer.end(),
                                   entry.origin,
                                   [](const ProvPair& p, VertexId origin) {
                                     return p.origin < origin;
                                   });
        if (it != src_buffer.end() && it->origin == entry.origin) {
          it->quantity += entry.quantity;
        } else {
          if (src_buffer.empty()) ++num_nonempty_;
          src_buffer.insert(it, entry);
          ++num_entries_;
        }
      }
      // Replicated even when the insert was another shard's: alpha and
      // the attributed total must agree across shards bit-for-bit.
      attributed_generated_ += *deficit;
    }
    totals_[interaction.src] += *deficit;
  }

  if (interaction.quantity == 0.0 || interaction.src == interaction.dst) {
    AfterInteraction(interaction);
    return Status::Ok();
  }

  const double fraction =
      std::min(1.0, interaction.quantity / totals_[interaction.src]);
  if (own_src) {
    // Source side of a cross-shard transfer: export the moved share
    // (pre-scaled — the receiver merges at factor 1.0, and x * 1.0 is
    // exact, so the split rounds exactly like Process()'s fused merge)
    // and apply the source-keeps-(1 - f) update.
    SparseVector& src_buffer = buffers_[interaction.src];
    outgoing->clear();
    if (fraction >= 1.0) {
      outgoing->ResizeUninitialized(src_buffer.size());
      std::memcpy(static_cast<void*>(outgoing->data()), src_buffer.data(),
                  src_buffer.size() * sizeof(ProvPair));
      num_entries_ -= src_buffer.size();
      if (!src_buffer.empty()) --num_nonempty_;
      src_buffer.clear();
    } else if (!src_buffer.empty()) {
      outgoing->ResizeUninitialized(src_buffer.size());
      simd::ScaleCopyPairs(outgoing->data(), src_buffer.data(), fraction,
                           src_buffer.size());
      simd::ScalePairsInPlace(src_buffer.data(), 1.0 - fraction,
                              src_buffer.size());
    }
  } else if (own_dst) {
    SparseVector& dst_buffer = buffers_[interaction.dst];
    const size_t dst_before = dst_buffer.size();
    const bool dst_was_empty = dst_buffer.empty();
    if (incoming_len > 0) {
      scratch_.ResizeUninitialized(dst_buffer.size() + incoming_len);
      const size_t merged = simd::GallopMergeScaled(
          scratch_.data(), dst_buffer.data(), dst_buffer.size(), incoming,
          incoming_len, 1.0);
      scratch_.ResizeUninitialized(merged);
      dst_buffer.swap(scratch_);
    }
    if (dst_was_empty && !dst_buffer.empty()) ++num_nonempty_;
    num_entries_ += dst_buffer.size() - dst_before;
    TINPROV_HISTOGRAM_OBSERVE("tracker.list_len", dst_buffer.size());
  }
  totals_[interaction.src] -= interaction.quantity;
  totals_[interaction.dst] += interaction.quantity;
  AfterInteraction(interaction);
  return Status::Ok();
}

Status SparseProportionalBase::AdoptVertexShards(
    const std::vector<std::unique_ptr<SparseProportionalBase>>& shards,
    const std::vector<uint32_t>& owner) {
  if (shards.empty()) {
    return Status::InvalidArgument("no shards to adopt");
  }
  if (owner.size() != totals_.size()) {
    return Status::InvalidArgument("owner map covers " +
                                   std::to_string(owner.size()) + " of " +
                                   std::to_string(totals_.size()) +
                                   " vertices");
  }
  if (num_entries_ != 0 || total_generated_ != 0.0) {
    return Status::FailedPrecondition(
        "adopting tracker must be freshly constructed");
  }
  for (const auto& shard : shards) {
    if (shard == nullptr || typeid(*shard) != typeid(*this) ||
        shard->totals_.size() != totals_.size()) {
      return Status::InvalidArgument(
          "shard tracker missing or of a different type/shape");
    }
  }
  // The replicated scalars are the divergence witness: the vertex-
  // sharded ingest replays them identically in every shard, so any
  // mismatch means the tracker is not vertex-decomposable.
  for (size_t s = 1; s < shards.size(); ++s) {
    if (shards[s]->total_generated_ != shards[0]->total_generated_ ||
        shards[s]->attributed_generated_ != shards[0]->attributed_generated_) {
      return Status::Internal("shard " + std::to_string(s) +
                              " replicated state diverged from shard 0");
    }
  }
  for (size_t v = 0; v < totals_.size(); ++v) {
    if (owner[v] >= shards.size()) {
      return Status::InvalidArgument("owner map names shard " +
                                     std::to_string(owner[v]) + " of " +
                                     std::to_string(shards.size()));
    }
    const SparseProportionalBase& from = *shards[owner[v]];
    totals_[v] = from.totals_[v];
    const SparseVector& list = from.buffers_[v];
    buffers_[v].assign(list.data(), list.data() + list.size());
    num_entries_ += list.size();
    if (!list.empty()) ++num_nonempty_;
  }
  total_generated_ = shards[0]->total_generated_;
  attributed_generated_ = shards[0]->attributed_generated_;
  // Aux state (window position, selective stats, ...) is replicated
  // too; round-trip shard 0's through the snapshot hooks so every
  // subclass adopts it without a dedicated virtual.
  std::vector<uint8_t> aux;
  ByteWriter writer(&aux);
  shards[0]->SaveAuxState(&writer);
  ByteReader reader(aux.data(), aux.size());
  Status status = RestoreAuxState(&reader);
  if (!status.ok()) return status;
  if (reader.remaining() != 0) {
    return Status::Internal("aux state adoption left trailing bytes");
  }
  return Status::Ok();
}

Buffer SparseProportionalBase::Provenance(VertexId v) const {
  Buffer result;
  result.total = totals_[v];
  const SparseVector& buffer = buffers_[v];
  result.entries.assign(buffer.begin(), buffer.end());
  return result;
}

size_t SparseProportionalBase::MemoryUsage() const {
  return num_entries_ * sizeof(ProvPair) +
         totals_.capacity() * sizeof(double) + AuxiliaryBytes();
}

size_t SparseProportionalBase::MemoryBytes() const {
  // Real reservations, not stored tuples: the pool holds every list's
  // backing storage (including scratch_ and freed blocks awaiting
  // reuse), so pool bytes + the per-vertex arrays is the allocator-level
  // footprint the logical MemoryUsage() deliberately excludes.
  return pool_.bytes_reserved() + totals_.capacity() * sizeof(double) +
         buffers_.capacity() * sizeof(SparseVector) + AuxiliaryBytes();
}

void SparseProportionalBase::PublishMetrics() const {
  TINPROV_GAUGE_SET("memory.pool_bytes", PoolBytesReserved());
  TINPROV_GAUGE_SET("tracker.alpha_residue", AlphaResidue());
  TINPROV_GAUGE_SET("tracker.entries", num_entries());
}

void SparseProportionalBase::ReserveEntries(size_t count) {
  pool_.Reserve(count * sizeof(ProvPair));
}

void SparseProportionalBase::ReserveHint(const DatasetStats& stats) {
  // Every interaction adds at most one brand-new tuple (merges only
  // copy existing origins between lists), so standing tuples are
  // bounded by the stream length; a soft cap keeps a mis-scaled hint
  // from pinning memory, since the arena grows on demand anyway. An
  // unknown stream length (0) reserves nothing — open-ended streams
  // grow the arena on demand.
  constexpr size_t kMaxHintEntries = (size_t{8} << 20) / sizeof(ProvPair);
  ReserveEntries(std::min(stats.num_interactions, kMaxHintEntries));
}

void SparseProportionalBase::SaveStateBody(ByteWriter* writer) const {
  writer->AppendSpan(totals_.data(), totals_.size());
  writer->AppendSpan(&attributed_generated_, 1);
  for (const SparseVector& buffer : buffers_) {
    AppendEntryVector(writer, buffer);
  }
  SaveAuxState(writer);
}

Status SparseProportionalBase::RestoreStateBody(ByteReader* reader) {
  Status status = reader->ReadSpan(totals_.data(), totals_.size());
  if (!status.ok()) return status;
  status = reader->ReadSpan(&attributed_generated_, 1);
  if (!status.ok()) return status;
  num_entries_ = 0;
  num_nonempty_ = 0;
  for (SparseVector& buffer : buffers_) {
    status = ReadEntryVector(reader, &buffer);
    if (!status.ok()) return status;
    num_entries_ += buffer.size();
    if (!buffer.empty()) ++num_nonempty_;
  }
  return RestoreAuxState(reader);
}

void SparseProportionalBase::ClearAllEntries() {
  // clear() keeps each vector's capacity: lists refill to a similar
  // length after a reset, and logical memory is tracked by num_entries_.
  for (SparseVector& buffer : buffers_) buffer.clear();
  num_entries_ = 0;
  num_nonempty_ = 0;
  attributed_generated_ = 0.0;
}

}  // namespace tinprov
