// The sparse pro-rata replay kernel shared by the exact proportional
// policy (Section 4.3) and the scalable/ layer (Sections 5.2-5.3).
//
// SparseProportionalBase implements the full Process() loop — deficit
// generation, sorted insert, and the merge transfer — with three
// customisation points: how generated quantity is labelled (grouped
// tracking), whether it is attributed at all (selective tracking), and
// a post-interaction hook (window resets, budget shrinking). With the
// default hooks it is exactly the paper's proportional policy.
//
// Performance architecture: every tracker owns a NodePool (util/pool.h)
// that backs all of its provenance lists and a reusable merge scratch,
// so the per-interaction transfer is a single gallop-merge pass
// (util/simd.h) with no allocator traffic after warm-up. ReserveHint()
// pre-sizes the pool from dataset stats.
//
// Subclasses may under-attribute: a vertex's entry sum is <= its
// buffered total, and the difference is the unattributed residue the
// paper calls alpha. Balances themselves are always exact — scalable
// tracking trades provenance detail for memory, never conservation of
// flow.
#ifndef TINPROV_POLICIES_PROPORTIONAL_BASE_H_
#define TINPROV_POLICIES_PROPORTIONAL_BASE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "policies/tracker.h"
#include "util/pool.h"

namespace tinprov {

/// Origin-sorted provenance list, storage-backed by its tracker's pool
/// (heap-backed when default-constructed, e.g. in tests).
using SparseVector = PooledVec<ProvPair>;

/// dst += fraction * src, merging by origin; both vectors stay sorted.
/// Reference two-pass in-place implementation, kept as the semantic
/// spec for the merge (tests compare the gallop kernel against it) and
/// as the pre-PR baseline that bench_micro's BM_SparseMergeReference
/// measures. The replay loop itself uses MergeScaledInto.
void MergeScaled(SparseVector* dst, const SparseVector& src, double fraction);

/// out = a + fraction * b (merged by origin, sorted). `out` is resized
/// to the merged length; its previous contents are discarded. out must
/// be distinct from both inputs. This is the production merge: one
/// forward gallop-merge pass into pooled scratch storage.
void MergeScaledInto(SparseVector* out, const SparseVector& a,
                     const SparseVector& b, double fraction);

class SparseProportionalBase : public Tracker {
 public:
  Status Process(const Interaction& interaction) final;
  double BufferTotal(VertexId v) const override { return totals_[v]; }
  Buffer Provenance(VertexId v) const override;
  size_t MemoryUsage() const override;
  size_t MemoryBytes() const override;
  void PublishMetrics() const override;
  using Tracker::ReserveHint;  // keep the Tin convenience form visible
  void ReserveHint(const DatasetStats& stats) override;

  /// Provenance tuples currently stored across all vertices.
  size_t num_entries() const { return num_entries_; }

  /// Vertices whose provenance list is non-empty, maintained
  /// incrementally so Figure 6's average-list-length probe is O(1).
  size_t num_nonempty() const { return num_nonempty_; }

  /// Restricts attribution to generation labels with mask[label] != 0;
  /// everything else joins the alpha residue exactly as if
  /// AttributeGeneration had declined it. `mask` (of `size` labels) is
  /// borrowed and must outlive the tracker; nullptr lifts the
  /// restriction. This is the parallel sharded-replay hook
  /// (src/parallel/sharded_replay.h): the pro-rata transfer is linear
  /// per label, so a shard that owns a label subset replays the full
  /// log and reproduces exactly that subset of every list, bit-for-bit.
  void RestrictLabels(const uint8_t* mask, size_t size) {
    label_mask_ = mask;
    label_mask_size_ = size;
  }

  /// Read-only view of v's provenance list — the deterministic exchange
  /// phase of sharded replay interleaves these across shards.
  const SparseVector& EntriesOf(VertexId v) const { return buffers_[v]; }

  /// Pre-sizes the pool for about `count` standing tuples.
  void ReserveEntries(size_t count);

  /// Bytes the backing pool obtained from the system allocator —
  /// allocator-level footprint, distinct from the logical MemoryUsage().
  size_t PoolBytesReserved() const { return pool_.bytes_reserved(); }

  // --- Vertex-sharded ingest hooks (src/parallel/sharded_ingest.h) ---
  //
  // The pro-rata transfer is also linear per *list*: each interaction
  // reads src's list, writes dst's list, and touches nothing else, so a
  // shard owning a subset of the vertices can maintain exactly its
  // lists — provided it still sees every interaction. Balances,
  // deficits, and the attribution accounting are therefore REPLICATED:
  // every shard replays them for the full stream (they are O(1) scalar
  // work per interaction, the Amdahl floor the label-sharded replay
  // already pays), which keeps `fraction` locally computable, makes
  // total_generated/attributed bit-identical in every shard (the
  // divergence witness), and leaves only the transferred pair list to
  // exchange between shards.

  /// One interaction as seen by a shard that owns `own_src`/`own_dst`
  /// of its endpoints. Owning both is exactly Process(); owning neither
  /// replays the replicated bookkeeping only. Owning just the source
  /// additionally writes the transferred share — already scaled by
  /// `fraction`, so the receiver merges it at factor 1.0, which is
  /// bit-exact — into `*outgoing` (cleared first; required non-null
  /// when quantity > 0 and src != dst). Owning just the destination
  /// merges `incoming[0..incoming_len)`, the source shard's outgoing
  /// list for this same interaction, into dst's list.
  Status ProcessVertexSharded(const Interaction& interaction, bool own_src,
                              bool own_dst, SparseVector* outgoing,
                              const ProvPair* incoming, size_t incoming_len);

  /// Merges vertex-sharded ingest results into this freshly
  /// constructed tracker: per-vertex lists and balances come from each
  /// vertex's owning shard (`owner[v]` indexes `shards`), replicated
  /// state from shard 0 after verifying the shards agree bit-for-bit.
  /// All trackers must share this tracker's dynamic type and
  /// configuration. On success this tracker is bit-identical to a
  /// sequential ingest of the same stream — snapshots, further
  /// Process() calls, and queries cannot tell the difference.
  Status AdoptVertexShards(
      const std::vector<std::unique_ptr<SparseProportionalBase>>& shards,
      const std::vector<uint32_t>& owner);

  /// The paper's alpha: generated quantity whose provenance is NOT
  /// recorded in any list (declined attribution, masked labels, window
  /// resets, budget shrinks). Maintained incrementally — the standing
  /// attributed quantity is credited at insert time and debited when
  /// tuples are dropped; pro-rata transfers only move tuples between
  /// lists, so they leave it unchanged. Zero for the exact policy.
  double AlphaResidue() const {
    return total_generated() - attributed_generated_;
  }

 protected:
  explicit SparseProportionalBase(size_t num_vertices)
      : Tracker(num_vertices),
        buffers_(num_vertices, SparseVector(&pool_)),
        totals_(num_vertices, 0.0),
        scratch_(&pool_) {}

  /// Label recorded for quantity generated at `src`. The default keeps
  /// the vertex itself; GroupedTracker maps it to a group id. Labels
  /// form their own id space — lists stay sorted by label, and the
  /// merge merges by label exactly as it merges by origin.
  virtual VertexId GenerationLabel(VertexId src) const { return src; }

  /// Whether generation at `src` is attributed at all. When false the
  /// deficit still raises the balance but joins the alpha residue.
  virtual bool AttributeGeneration(VertexId /*src*/) const { return true; }

  /// Called once per deficit-generating interaction with the generated
  /// quantity, before the attribution filter is consulted.
  virtual void OnGenerated(VertexId /*src*/, double /*quantity*/) {}

  /// Called after every successfully applied interaction.
  virtual void AfterInteraction(const Interaction& /*interaction*/) {}

  /// Drops every stored tuple, leaving balances intact (the window
  /// reset): all attributed quantity collapses into alpha. O(|V|).
  void ClearAllEntries();

  /// Standing bytes of subclass-owned per-vertex state (group maps,
  /// tracked-set masks, shrink counters), added into MemoryUsage().
  virtual size_t AuxiliaryBytes() const { return 0; }

  /// Snapshot framing for the shared buffers/totals lives here; the
  /// scalable subclasses append their own mutable state (window
  /// position, shrink counters, ...) through these hooks. Configuration
  /// (window size, tracked set, group map) is a constructor concern and
  /// is deliberately not serialized.
  void SaveStateBody(ByteWriter* writer) const final;
  Status RestoreStateBody(ByteReader* reader) final;
  virtual void SaveAuxState(ByteWriter* /*writer*/) const {}
  virtual Status RestoreAuxState(ByteReader* /*reader*/) {
    return Status::Ok();
  }

  /// Debits AlphaResidue()'s attributed side when a subclass drops
  /// stored tuples without a full reset (budget shrinking).
  void NoteAttributedDropped(double quantity) {
    attributed_generated_ -= quantity;
  }

  // Declaration order is a destruction contract: buffers_ and scratch_
  // return their storage to pool_, so the pool must be destroyed last
  // (i.e. declared first).
  NodePool pool_;
  std::vector<SparseVector> buffers_;
  std::vector<double> totals_;
  SparseVector scratch_;
  size_t num_entries_ = 0;
  size_t num_nonempty_ = 0;
  /// Standing attributed quantity: every deficit that reached a list,
  /// minus everything dropped since. See AlphaResidue().
  double attributed_generated_ = 0.0;

 private:
  const uint8_t* label_mask_ = nullptr;
  size_t label_mask_size_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_PROPORTIONAL_BASE_H_
