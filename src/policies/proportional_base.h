// The sparse pro-rata replay kernel shared by the exact proportional
// policy (Section 4.3) and the scalable/ layer (Sections 5.2-5.3).
//
// SparseProportionalBase implements the full Process() loop — deficit
// generation, sorted insert, and the MergeScaled transfer — with three
// customisation points: how generated quantity is labelled (grouped
// tracking), whether it is attributed at all (selective tracking), and
// a post-interaction hook (window resets, budget shrinking). With the
// default hooks it is exactly the paper's proportional policy.
//
// Subclasses may under-attribute: a vertex's entry sum is <= its
// buffered total, and the difference is the unattributed residue the
// paper calls alpha. Balances themselves are always exact — scalable
// tracking trades provenance detail for memory, never conservation of
// flow.
#ifndef TINPROV_POLICIES_PROPORTIONAL_BASE_H_
#define TINPROV_POLICIES_PROPORTIONAL_BASE_H_

#include <vector>

#include "policies/tracker.h"

namespace tinprov {

/// Origin-sorted provenance list.
using SparseVector = std::vector<ProvPair>;

/// dst += fraction * src, merging by origin; both vectors stay sorted.
/// In-place, allocation-free when dst has spare capacity for the new
/// origins. This is the hot kernel whose cost grows with list length
/// (the superlinear curve of paper Figure 6).
void MergeScaled(SparseVector* dst, const SparseVector& src, double fraction);

class SparseProportionalBase : public Tracker {
 public:
  Status Process(const Interaction& interaction) final;
  double BufferTotal(VertexId v) const override { return totals_[v]; }
  Buffer Provenance(VertexId v) const override;
  size_t MemoryUsage() const override;

  /// Provenance tuples currently stored across all vertices.
  size_t num_entries() const { return num_entries_; }

 protected:
  explicit SparseProportionalBase(size_t num_vertices)
      : Tracker(num_vertices),
        buffers_(num_vertices),
        totals_(num_vertices, 0.0) {}

  /// Label recorded for quantity generated at `src`. The default keeps
  /// the vertex itself; GroupedTracker maps it to a group id. Labels
  /// form their own id space — lists stay sorted by label, and
  /// MergeScaled merges by label exactly as it merges by origin.
  virtual VertexId GenerationLabel(VertexId src) const { return src; }

  /// Whether generation at `src` is attributed at all. When false the
  /// deficit still raises the balance but joins the alpha residue.
  virtual bool AttributeGeneration(VertexId /*src*/) const { return true; }

  /// Called once per deficit-generating interaction with the generated
  /// quantity, before the attribution filter is consulted.
  virtual void OnGenerated(VertexId /*src*/, double /*quantity*/) {}

  /// Called after every successfully applied interaction.
  virtual void AfterInteraction(const Interaction& /*interaction*/) {}

  /// Drops every stored tuple, leaving balances intact (the window
  /// reset): all attributed quantity collapses into alpha. O(|V|).
  void ClearAllEntries();

  /// Standing bytes of subclass-owned per-vertex state (group maps,
  /// tracked-set masks, shrink counters), added into MemoryUsage().
  virtual size_t AuxiliaryBytes() const { return 0; }

  /// Snapshot framing for the shared buffers/totals lives here; the
  /// scalable subclasses append their own mutable state (window
  /// position, shrink counters, ...) through these hooks. Configuration
  /// (window size, tracked set, group map) is a constructor concern and
  /// is deliberately not serialized.
  void SaveStateBody(ByteWriter* writer) const final;
  Status RestoreStateBody(ByteReader* reader) final;
  virtual void SaveAuxState(ByteWriter* /*writer*/) const {}
  virtual Status RestoreAuxState(ByteReader* /*reader*/) {
    return Status::Ok();
  }

  std::vector<SparseVector> buffers_;
  std::vector<double> totals_;
  size_t num_entries_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_PROPORTIONAL_BASE_H_
