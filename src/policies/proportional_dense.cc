#include "policies/proportional_dense.h"

#include <algorithm>

#include "util/simd.h"

namespace tinprov {

std::vector<double>& ProportionalDenseTracker::EnsureBuffer(VertexId v) {
  std::vector<double>& buffer = buffers_[v];
  if (buffer.empty()) {
    buffer.assign(num_vertices_, 0.0);
    ++num_allocated_;
  }
  return buffer;
}

Status ProportionalDenseTracker::Process(const Interaction& interaction) {
  auto deficit = CheckAndComputeDeficit(interaction, totals_);
  if (!deficit.ok()) return deficit.status();
  if (*deficit > 0.0) {
    EnsureBuffer(interaction.src)[interaction.src] += *deficit;
    totals_[interaction.src] += *deficit;
  }

  if (interaction.quantity == 0.0 ||
      interaction.src == interaction.dst) {
    return Status::Ok();
  }

  const double fraction =
      std::min(1.0, interaction.quantity / totals_[interaction.src]);
  std::vector<double>& src_buffer = EnsureBuffer(interaction.src);
  std::vector<double>& dst_buffer = EnsureBuffer(interaction.dst);
  simd::TransferFraction(dst_buffer.data(), src_buffer.data(), fraction,
                         num_vertices_);
  totals_[interaction.src] -= interaction.quantity;
  totals_[interaction.dst] += interaction.quantity;
  return Status::Ok();
}

Buffer ProportionalDenseTracker::Provenance(VertexId v) const {
  Buffer result;
  result.total = totals_[v];
  const std::vector<double>& buffer = buffers_[v];
  for (size_t origin = 0; origin < buffer.size(); ++origin) {
    if (buffer[origin] > 0.0) {
      result.entries.push_back(
          {static_cast<VertexId>(origin), buffer[origin]});
    }
  }
  return result;
}

size_t ProportionalDenseTracker::MemoryUsage() const {
  return num_allocated_ * num_vertices_ * sizeof(double) +
         totals_.capacity() * sizeof(double);
}

void ProportionalDenseTracker::SaveStateBody(ByteWriter* writer) const {
  writer->AppendSpan(totals_.data(), totals_.size());
  // Lazily allocated rows keep their lazy shape across a snapshot: only
  // touched vertices cost |V| doubles, mirroring MemoryUsage().
  for (const std::vector<double>& buffer : buffers_) {
    writer->Append<uint8_t>(buffer.empty() ? 0 : 1);
    if (!buffer.empty()) writer->AppendSpan(buffer.data(), buffer.size());
  }
}

Status ProportionalDenseTracker::RestoreStateBody(ByteReader* reader) {
  Status status = reader->ReadSpan(totals_.data(), totals_.size());
  if (!status.ok()) return status;
  num_allocated_ = 0;
  for (std::vector<double>& buffer : buffers_) {
    uint8_t allocated = 0;
    status = reader->Read(&allocated);
    if (!status.ok()) return status;
    if (allocated == 0) {
      buffer.clear();
      buffer.shrink_to_fit();
      continue;
    }
    buffer.resize(num_vertices_);
    status = reader->ReadSpan(buffer.data(), buffer.size());
    if (!status.ok()) return status;
    ++num_allocated_;
  }
  return Status::Ok();
}

}  // namespace tinprov
