// Proportional selection, dense representation (paper Section 4.3):
// each vertex holds a |V|-length vector indexed by origin, so transfers
// are branch-free vector kernels (util/simd.h) with no allocation or
// merge logic. Worst-case memory is |V|^2 doubles — feasible only on
// the small-vertex-set networks, which is exactly the "-" pattern of
// paper Tables 7-8; MeasurePolicy gates on DenseMemoryBound().
#ifndef TINPROV_POLICIES_PROPORTIONAL_DENSE_H_
#define TINPROV_POLICIES_PROPORTIONAL_DENSE_H_

#include <vector>

#include "policies/tracker.h"

namespace tinprov {

/// Worst-case bytes of dense proportional state over `num_vertices`.
inline size_t DenseMemoryBound(size_t num_vertices) {
  return num_vertices * num_vertices * sizeof(double);
}

class ProportionalDenseTracker : public Tracker {
 public:
  explicit ProportionalDenseTracker(size_t num_vertices)
      : Tracker(num_vertices),
        buffers_(num_vertices),
        totals_(num_vertices, 0.0) {}

  Status Process(const Interaction& interaction) override;
  double BufferTotal(VertexId v) const override { return totals_[v]; }

  /// Non-zero origins in ascending order — directly comparable with
  /// ProportionalSparseTracker::Provenance().
  Buffer Provenance(VertexId v) const override;

  size_t MemoryUsage() const override;

 protected:
  void SaveStateBody(ByteWriter* writer) const override;
  Status RestoreStateBody(ByteReader* reader) override;

 private:
  /// Vectors are allocated on a vertex's first credit, so actual memory
  /// is (#touched vertices) * |V| * 8 rather than the worst case.
  std::vector<double>& EnsureBuffer(VertexId v);

  std::vector<std::vector<double>> buffers_;
  std::vector<double> totals_;
  size_t num_allocated_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_PROPORTIONAL_DENSE_H_
