#include "policies/proportional_sparse.h"

namespace tinprov {

double ProportionalSparseTracker::AverageListLength() const {
  // Figure 6 samples this inside the replay loop, so it must not scan
  // the |V| buffers per probe; both counts are maintained incrementally
  // by the base class.
  const size_t nonempty = num_nonempty();
  return nonempty == 0 ? 0.0
                       : static_cast<double>(num_entries()) /
                             static_cast<double>(nonempty);
}

}  // namespace tinprov
