#include "policies/proportional_sparse.h"

namespace tinprov {

double ProportionalSparseTracker::AverageListLength() const {
  size_t nonempty = 0;
  size_t entries = 0;
  for (const SparseVector& buffer : buffers_) {
    if (!buffer.empty()) {
      ++nonempty;
      entries += buffer.size();
    }
  }
  return nonempty == 0
             ? 0.0
             : static_cast<double>(entries) / static_cast<double>(nonempty);
}

}  // namespace tinprov
