// Proportional selection, sparse representation (paper Section 4.3):
// each vertex holds a per-origin breakdown as a list of (origin,
// quantity) pairs sorted by origin. A transfer of fraction f moves f of
// every origin's share — implemented as a sorted-merge of the source
// list, scaled by f, into the destination list.
#ifndef TINPROV_POLICIES_PROPORTIONAL_SPARSE_H_
#define TINPROV_POLICIES_PROPORTIONAL_SPARSE_H_

#include <vector>

#include "policies/tracker.h"

namespace tinprov {

/// Origin-sorted provenance list.
using SparseVector = std::vector<ProvPair>;

/// dst += fraction * src, merging by origin; both vectors stay sorted.
/// In-place, allocation-free when dst has spare capacity for the new
/// origins. This is the hot kernel whose cost grows with list length
/// (the superlinear curve of paper Figure 6).
void MergeScaled(SparseVector* dst, const SparseVector& src, double fraction);

class ProportionalSparseTracker : public Tracker {
 public:
  explicit ProportionalSparseTracker(size_t num_vertices)
      : Tracker(num_vertices),
        buffers_(num_vertices),
        totals_(num_vertices, 0.0) {}

  Status Process(const Interaction& interaction) override;
  double BufferTotal(VertexId v) const override { return totals_[v]; }
  Buffer Provenance(VertexId v) const override;
  size_t MemoryUsage() const override;

  /// Mean provenance-list length over vertices with a non-empty buffer
  /// (the quantity paper Figure 6 tracks).
  double AverageListLength() const;

  size_t num_entries() const { return num_entries_; }

 private:
  std::vector<SparseVector> buffers_;
  std::vector<double> totals_;
  size_t num_entries_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_PROPORTIONAL_SPARSE_H_
