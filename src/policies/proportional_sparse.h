// Proportional selection, sparse representation (paper Section 4.3):
// each vertex holds a per-origin breakdown as a list of (origin,
// quantity) pairs sorted by origin. A transfer of fraction f moves f of
// every origin's share — implemented as a sorted-merge of the source
// list, scaled by f, into the destination list.
//
// The replay loop itself lives in SparseProportionalBase (shared with
// the scalable/ layer); with the default hooks it is exactly this
// policy, so all that remains here is the Figure 6 instrumentation.
#ifndef TINPROV_POLICIES_PROPORTIONAL_SPARSE_H_
#define TINPROV_POLICIES_PROPORTIONAL_SPARSE_H_

#include "policies/proportional_base.h"

namespace tinprov {

class ProportionalSparseTracker : public SparseProportionalBase {
 public:
  explicit ProportionalSparseTracker(size_t num_vertices)
      : SparseProportionalBase(num_vertices) {}

  /// Mean provenance-list length over vertices with a non-empty buffer
  /// (the quantity paper Figure 6 tracks). O(1): computed from counts
  /// the replay loop maintains, so harnesses may probe it per sample.
  double AverageListLength() const;
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_PROPORTIONAL_SPARSE_H_
