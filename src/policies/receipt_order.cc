#include "policies/receipt_order.h"

#include "core/buffer_io.h"
#include "obs/metrics.h"

namespace tinprov {

ReceiptOrderTracker::ReceiptOrderTracker(size_t num_vertices, bool lifo)
    : Tracker(num_vertices),
      lifo_(lifo),
      buffers_(num_vertices),
      totals_(num_vertices, 0.0) {}

Status ReceiptOrderTracker::Process(const Interaction& interaction) {
  auto deficit = CheckAndComputeDeficit(interaction, totals_);
  if (!deficit.ok()) return deficit.status();
  if (*deficit > 0.0) {
    Deposit(interaction.src, {interaction.src, *deficit});
    totals_[interaction.src] += *deficit;
  }

  // Self-loops still go through consume/deposit: under FIFO the sent
  // quantity genuinely rotates from the buffer's front to its back.
  scratch_.clear();
  Consume(interaction.src, interaction.quantity, &scratch_);
  totals_[interaction.src] -= interaction.quantity;
  for (const ProvPair& fragment : scratch_) {
    Deposit(interaction.dst, fragment);
  }
  totals_[interaction.dst] += interaction.quantity;
  return Status::Ok();
}

void ReceiptOrderTracker::Consume(VertexId v, double amount,
                                  std::vector<ProvPair>* moved) {
  RingDeque<ProvPair>& buffer = buffers_[v];
  double remaining = amount;
  while (remaining > 0.0 && !buffer.empty()) {
    ProvPair& entry = lifo_ ? buffer.Back() : buffer.Front();
    if (entry.quantity <= remaining) {
      remaining -= entry.quantity;
      moved->push_back(entry);
      if (lifo_) {
        buffer.PopBack();
      } else {
        buffer.PopFront();
      }
      --num_entries_;
    } else {
      // Split: the consumed fragment leaves, the remainder stays put.
      entry.quantity -= remaining;
      moved->push_back({entry.origin, remaining});
      remaining = 0.0;
    }
  }
  // Float drift can leave a vanishing remainder against an empty buffer;
  // it was already accounted in totals_, so nothing further to move.
}

void ReceiptOrderTracker::Deposit(VertexId v, const ProvPair& entry) {
  RingDeque<ProvPair>& buffer = buffers_[v];
  // Coalesce with the newest entry when the origin matches: receipt
  // order within one origin is indistinguishable, and merging keeps the
  // tuple count (and Table 8 memory) from inflating.
  if (!buffer.empty() && buffer.Back().origin == entry.origin) {
    buffer.Back().quantity += entry.quantity;
    return;
  }
  buffer.PushBack(entry);
  ++num_entries_;
}

Buffer ReceiptOrderTracker::Provenance(VertexId v) const {
  Buffer result;
  result.total = totals_[v];
  const RingDeque<ProvPair>& buffer = buffers_[v];
  result.entries.reserve(buffer.size());
  // Oldest first, i.e. FIFO consumption order.
  for (size_t i = 0; i < buffer.size(); ++i) {
    result.entries.push_back(buffer.At(i));
  }
  return result;
}

size_t ReceiptOrderTracker::MemoryUsage() const {
  return num_entries_ * sizeof(ProvPair) +
         totals_.capacity() * sizeof(double);
}

size_t ReceiptOrderTracker::MemoryBytes() const {
  // Ring capacities, not live tuples: what the allocator is actually
  // holding for this tracker. O(|V|), sampled per batch.
  size_t bytes = totals_.capacity() * sizeof(double) +
                 buffers_.capacity() * sizeof(RingDeque<ProvPair>) +
                 scratch_.capacity() * sizeof(ProvPair);
  for (const RingDeque<ProvPair>& buffer : buffers_) {
    bytes += buffer.capacity() * sizeof(ProvPair);
  }
  return bytes;
}

void ReceiptOrderTracker::PublishMetrics() const {
  TINPROV_GAUGE_SET("tracker.entries", num_entries());
}

void ReceiptOrderTracker::SaveStateBody(ByteWriter* writer) const {
  writer->AppendSpan(totals_.data(), totals_.size());
  // Deques are stored in logical (oldest-first) order; the ring's head
  // offset is an implementation detail that need not survive a restore.
  for (const RingDeque<ProvPair>& buffer : buffers_) {
    writer->Append<uint64_t>(buffer.size());
    for (size_t i = 0; i < buffer.size(); ++i) {
      AppendEntry(writer, buffer.At(i));
    }
  }
}

Status ReceiptOrderTracker::RestoreStateBody(ByteReader* reader) {
  Status status = reader->ReadSpan(totals_.data(), totals_.size());
  if (!status.ok()) return status;
  num_entries_ = 0;
  for (RingDeque<ProvPair>& buffer : buffers_) {
    buffer.clear();
    uint64_t count = 0;
    status = reader->Read(&count);
    if (!status.ok()) return status;
    for (uint64_t i = 0; i < count; ++i) {
      ProvPair entry;
      status = ReadEntry(reader, &entry);
      if (!status.ok()) return status;
      buffer.PushBack(entry);
    }
    num_entries_ += buffer.size();
  }
  return Status::Ok();
}

}  // namespace tinprov
