// Receipt-order selection (paper Section 4.1): each vertex's buffer is a
// deque of 2-field (origin, quantity) tuples in arrival order. LIFO
// spends the most recently received quantity first; FIFO the least.
// Newly generated quantity counts as received at generation time, so
// LIFO spends it first and FIFO last.
#ifndef TINPROV_POLICIES_RECEIPT_ORDER_H_
#define TINPROV_POLICIES_RECEIPT_ORDER_H_

#include <vector>

#include "policies/tracker.h"

namespace tinprov {

class ReceiptOrderTracker : public Tracker {
 public:
  ReceiptOrderTracker(size_t num_vertices, bool lifo);

  Status Process(const Interaction& interaction) override;
  double BufferTotal(VertexId v) const override { return totals_[v]; }
  Buffer Provenance(VertexId v) const override;
  size_t MemoryUsage() const override;
  size_t MemoryBytes() const override;
  void PublishMetrics() const override;

  /// Tuples currently stored across all buffers.
  size_t num_entries() const { return num_entries_; }

 protected:
  void SaveStateBody(ByteWriter* writer) const override;
  Status RestoreStateBody(ByteReader* reader) override;

 private:
  // Takes up to `amount` from `v`'s buffer, appending the removed
  // fragments to `moved` in consumption order.
  void Consume(VertexId v, double amount, std::vector<ProvPair>* moved);
  void Deposit(VertexId v, const ProvPair& entry);

  const bool lifo_;
  std::vector<RingDeque<ProvPair>> buffers_;
  std::vector<double> totals_;
  size_t num_entries_ = 0;
  std::vector<ProvPair> scratch_;  // reused per interaction
};

class LifoTracker : public ReceiptOrderTracker {
 public:
  explicit LifoTracker(size_t num_vertices)
      : ReceiptOrderTracker(num_vertices, /*lifo=*/true) {}
};

class FifoTracker : public ReceiptOrderTracker {
 public:
  explicit FifoTracker(size_t num_vertices)
      : ReceiptOrderTracker(num_vertices, /*lifo=*/false) {}
};

}  // namespace tinprov

#endif  // TINPROV_POLICIES_RECEIPT_ORDER_H_
