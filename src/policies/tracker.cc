#include "policies/tracker.h"

#include <cmath>

#include "policies/generation_order.h"
#include "policies/no_provenance.h"
#include "policies/proportional_dense.h"
#include "policies/proportional_sparse.h"
#include "policies/receipt_order.h"
#include "stream/interaction_stream.h"
#include "util/strings.h"

namespace tinprov {

std::string_view PolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNoProvenance:
      return "NoProv";
    case PolicyKind::kLifo:
      return "LIFO";
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kLrb:
      return "LRB";
    case PolicyKind::kMrb:
      return "MRB";
    case PolicyKind::kProportionalSparse:
      return "Prop-sparse";
    case PolicyKind::kProportionalDense:
      return "Prop-dense";
  }
  return "?";
}

StatusOr<PolicyKind> PolicyKindFromName(std::string_view name) {
  const std::string lower = AsciiLower(name);
  for (const PolicyKind kind : AllPolicies()) {
    if (lower == AsciiLower(PolicyName(kind))) return kind;
  }
  return Status::InvalidArgument("unknown policy name: \"" +
                                 std::string(name) + "\"");
}

void Tracker::SaveState(std::vector<uint8_t>* out) const {
  ByteWriter writer(out);
  writer.Append<uint64_t>(num_vertices_);
  writer.Append<double>(total_generated_);
  SaveStateBody(&writer);
}

Status Tracker::RestoreState(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  uint64_t num_vertices = 0;
  Status status = reader.Read(&num_vertices);
  if (!status.ok()) return status;
  if (num_vertices != num_vertices_) {
    return Status::InvalidArgument(
        "snapshot taken over " + std::to_string(num_vertices) +
        " vertices, tracker has " + std::to_string(num_vertices_));
  }
  status = reader.Read(&total_generated_);
  if (!status.ok()) return status;
  status = RestoreStateBody(&reader);
  if (!status.ok()) return status;
  if (reader.remaining() != 0) {
    return Status::InvalidArgument(
        "snapshot has " + std::to_string(reader.remaining()) +
        " trailing bytes — policy mismatch?");
  }
  return Status::Ok();
}

Status Tracker::ProcessStream(InteractionStream& stream) {
  ReserveHint(stream.Stats());
  Interaction interaction;
  size_t index = 0;
  while (stream.Next(&interaction)) {
    const Status status = Process(interaction);
    if (!status.ok()) {
      return Status(status.code(), "stream interaction " +
                                       std::to_string(index) + ": " +
                                       status.message());
    }
    ++index;
  }
  return Status::Ok();
}

Status Tracker::ProcessAll(const Tin& tin) {
  MaterializedStream stream(tin);
  return ProcessStream(stream);
}

StatusOr<double> Tracker::CheckAndComputeDeficit(
    const Interaction& interaction, const std::vector<double>& totals) {
  if (interaction.src >= num_vertices_ ||
      interaction.dst >= num_vertices_) {
    return Status::InvalidArgument("interaction references vertex beyond " +
                                   std::to_string(num_vertices_));
  }
  if (!std::isfinite(interaction.quantity) || interaction.quantity < 0.0) {
    return Status::InvalidArgument("interaction quantity must be finite and "
                                   "non-negative");
  }
  const double deficit = interaction.quantity - totals[interaction.src];
  if (deficit <= 0.0) return 0.0;
  total_generated_ += deficit;
  return deficit;
}

std::unique_ptr<Tracker> CreateTracker(PolicyKind kind, size_t num_vertices) {
  switch (kind) {
    case PolicyKind::kNoProvenance:
      return std::make_unique<NoProvenanceTracker>(num_vertices);
    case PolicyKind::kLifo:
      return std::make_unique<LifoTracker>(num_vertices);
    case PolicyKind::kFifo:
      return std::make_unique<FifoTracker>(num_vertices);
    case PolicyKind::kLrb:
      return std::make_unique<LrbTracker>(num_vertices);
    case PolicyKind::kMrb:
      return std::make_unique<MrbTracker>(num_vertices);
    case PolicyKind::kProportionalSparse:
      return std::make_unique<ProportionalSparseTracker>(num_vertices);
    case PolicyKind::kProportionalDense:
      return std::make_unique<ProportionalDenseTracker>(num_vertices);
  }
  return nullptr;
}

std::vector<PolicyKind> AllPolicies() {
  return {PolicyKind::kNoProvenance,       PolicyKind::kLifo,
          PolicyKind::kFifo,               PolicyKind::kLrb,
          PolicyKind::kMrb,                PolicyKind::kProportionalSparse,
          PolicyKind::kProportionalDense};
}

}  // namespace tinprov
