// The common interface of every selection-policy tracker and the factory
// that the benches and future lazy/scalable layers build on.
//
// A tracker replays a TIN interaction-by-interaction and maintains, per
// vertex, the provenance of its buffered quantity under one of the
// paper's selection policies (Sections 4.1-4.3). All trackers share the
// generation rule: if an interaction sends more than the source holds,
// the deficit is newly generated at the source at the interaction's
// timestamp, so total buffered quantity always equals total generated
// quantity (conservation of flow).
#ifndef TINPROV_POLICIES_TRACKER_H_
#define TINPROV_POLICIES_TRACKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "core/buffer.h"
#include "core/tin.h"
#include "core/types.h"
#include "util/serialize.h"
#include "util/status.h"

namespace tinprov {

class InteractionStream;  // stream/interaction_stream.h

enum class PolicyKind {
  kNoProvenance,        // scalar balances only — the runtime baseline
  kLifo,                // receipt order, last-received spent first
  kFifo,                // receipt order, first-received spent first
  kLrb,                 // generation order, least recently born first
  kMrb,                 // generation order, most recently born first
  kProportionalSparse,  // pro-rata, per-origin sorted lists
  kProportionalDense,   // pro-rata, |V|-length vectors (memory-gated)
};

/// Short display name as used in the paper's table headers.
std::string_view PolicyName(PolicyKind kind);

/// Parses a PolicyName() display name back to its kind,
/// case-insensitively. Unknown names yield InvalidArgument — factory
/// callers get a proper Status, never a crash. Scalable tracker names
/// ("Windowed", "Budget", ...) are not policies; TrackerRegistry in
/// analytics/registry.h resolves those.
StatusOr<PolicyKind> PolicyKindFromName(std::string_view name);

class Tracker {
 public:
  explicit Tracker(size_t num_vertices) : num_vertices_(num_vertices) {}
  virtual ~Tracker() = default;

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  /// Applies one interaction. Interactions must be fed in time order
  /// (ProcessStream/ProcessAll guarantee this; manual callers are on
  /// their own).
  virtual Status Process(const Interaction& interaction) = 0;

  /// The primary entry point: pulls `stream` dry, applying every
  /// interaction in arrival order. Calls ReserveHint(stream.Stats())
  /// first so standing allocations are sized once instead of grown
  /// in-loop. The stream must be in time order (stream/ingest.h's
  /// StreamIngestor enforces that and adds watermark/stat tracking).
  Status ProcessStream(InteractionStream& stream);

  /// Replays a materialized log: a thin MaterializedStream wrapper
  /// around ProcessStream, kept for callers that hold a Tin anyway.
  Status ProcessAll(const Tin& tin);

  /// Capacity hint: the tracker is about to replay a dataset of this
  /// shape and may pre-size its allocations. Purely an optimization —
  /// never affects results — and safe to skip, to call more than once,
  /// or to call with num_interactions == 0 (unknown stream length). The
  /// default does nothing.
  virtual void ReserveHint(const DatasetStats& stats) { (void)stats; }

  /// Materialized-log form, routed through the stats overload.
  void ReserveHint(const Tin& tin) { ReserveHint(tin.Stats()); }

  /// Buffered quantity at `v`.
  virtual double BufferTotal(VertexId v) const = 0;

  /// Snapshot of `v`'s provenance breakdown.
  virtual Buffer Provenance(VertexId v) const = 0;

  /// Logical bytes of standing provenance state (paper Table 8): stored
  /// tuples plus the per-vertex balance array, excluding allocator and
  /// container-header overhead so representations stay comparable. Must
  /// be O(1): measurement harnesses sample it inside the replay loop.
  virtual size_t MemoryUsage() const = 0;

  /// Allocator-level footprint: bytes of backing storage the tracker has
  /// actually reserved — pools, arenas, container capacities — as
  /// opposed to MemoryUsage()'s logical tuple accounting. The default
  /// reports the logical bytes (a floor every representation satisfies);
  /// trackers that over-allocate (pooled lists, ring deques, heaps)
  /// override it so the ingest/serve memory gauges see real
  /// reservations, whatever the policy. May be O(num_vertices): callers
  /// sample it once per batch, never per interaction.
  virtual size_t MemoryBytes() const { return MemoryUsage(); }

  /// Publishes representation-specific obs/ gauges (pool bytes, alpha
  /// residue, standing entry count). StreamIngestor calls this once per
  /// applied batch — it replaces the ingestor's old
  /// dynamic_cast<SparseProportionalBase*> probe, which silently skipped
  /// every non-pro-rata tracker. The default publishes nothing.
  virtual void PublishMetrics() const {}

  /// Serializes the tracker's complete mutable replay state, appending
  /// to `out`. The format is policy-private (util/serialize.h framing);
  /// its only contract is that RestoreState() on a tracker constructed
  /// with an identical configuration — same policy, same parameters,
  /// same vertex count — resumes replay bit-exactly where the snapshot
  /// was taken. The lazy/ time-travel index builds on this.
  void SaveState(std::vector<uint8_t>* out) const;

  /// Restores state produced by SaveState(). Returns InvalidArgument on
  /// truncated, oversized, or mismatched-vertex-count input; the tracker
  /// state is unspecified after a failed restore.
  Status RestoreState(const uint8_t* data, size_t size);
  Status RestoreState(const std::vector<uint8_t>& bytes) {
    return RestoreState(bytes.data(), bytes.size());
  }

  size_t num_vertices() const { return num_vertices_; }

  /// Total quantity generated so far across all vertices; equals the sum
  /// of all buffer totals under conservation of flow.
  double total_generated() const { return total_generated_; }

 protected:
  /// Policy-specific halves of SaveState()/RestoreState(). The base
  /// class frames them with the vertex count and total_generated_, and
  /// rejects snapshots with trailing bytes after the body.
  virtual void SaveStateBody(ByteWriter* writer) const = 0;
  virtual Status RestoreStateBody(ByteReader* reader) = 0;

  /// Shared validity check + deficit computation. Validates the
  /// interaction against num_vertices_ before touching `totals` (so
  /// out-of-range ids never index it), then returns the quantity that
  /// must be newly generated at the source (0 if the buffer covers the
  /// send), accumulating total_generated_.
  StatusOr<double> CheckAndComputeDeficit(const Interaction& interaction,
                                          const std::vector<double>& totals);

  size_t num_vertices_;
  double total_generated_ = 0.0;
};

/// Builds a tracker for `kind` over `num_vertices` vertices.
std::unique_ptr<Tracker> CreateTracker(PolicyKind kind, size_t num_vertices);

/// Builds a fresh, identically configured tracker on every call. The
/// lazy/ layer constructs one tracker per query (replay-on-demand) and
/// one per snapshot restore (time travel), so configuration capture —
/// policy, scalable parameters, selection preprocessing — lives in the
/// closure, not in the engine.
using TrackerFactory = std::function<std::unique_ptr<Tracker>()>;

/// All policies in the paper's Table 7/8 column order.
std::vector<PolicyKind> AllPolicies();

}  // namespace tinprov

#endif  // TINPROV_POLICIES_TRACKER_H_
