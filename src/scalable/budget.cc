#include "scalable/budget.h"

#include <algorithm>

#include "obs/metrics.h"

namespace tinprov {

namespace {

size_t NormalizedCapacity(const BudgetConfig& config) {
  return config.capacity == 0 ? 1 : config.capacity;
}

size_t KeepCount(const BudgetConfig& config) {
  const size_t capacity = NormalizedCapacity(config);
  const double fraction =
      config.keep_fraction > 0.0 && config.keep_fraction <= 1.0
          ? config.keep_fraction
          : 1.0;
  const size_t keep =
      static_cast<size_t>(static_cast<double>(capacity) * fraction);
  return std::min(capacity, std::max<size_t>(1, keep));
}

}  // namespace

BudgetTracker::BudgetTracker(size_t num_vertices,
                             const BudgetConfig& config)
    : SparseProportionalBase(num_vertices),
      config_(config),
      keep_(KeepCount(config)),
      shrink_counts_(num_vertices, 0) {
  config_.capacity = NormalizedCapacity(config);
}

void BudgetTracker::MaybeShrink(VertexId v) {
  SparseVector& buffer = buffers_[v];
  if (buffer.size() <= config_.capacity) return;
  // Keep the keep_ largest shares; the dropped tuples' quantity remains
  // in the balance as unattributed alpha. Partition-then-sort keeps the
  // list origin-sorted for the next MergeScaled.
  std::nth_element(buffer.begin(),
                   buffer.begin() + static_cast<ptrdiff_t>(keep_),
                   buffer.end(),
                   [](const ProvPair& a, const ProvPair& b) {
                     return a.quantity > b.quantity;
                   });
  num_entries_ -= buffer.size() - keep_;
  // The dropped tuples' quantity leaves the attributed side of the
  // alpha accounting the moment it leaves the list.
  double dropped = 0.0;
  for (size_t i = keep_; i < buffer.size(); ++i) {
    dropped += buffer[i].quantity;
  }
  NoteAttributedDropped(dropped);
  // keep_ >= 1, so a shrink never empties a list and the base class's
  // num_nonempty_ count stays valid without an adjustment here.
  buffer.resize(keep_);
  std::sort(buffer.begin(), buffer.end(),
            [](const ProvPair& a, const ProvPair& b) {
              return a.origin < b.origin;
            });
  ++shrink_counts_[v];
  ++total_shrinks_;
  TINPROV_COUNTER_ADD("tracker.shrinks", 1);
}

void BudgetTracker::SaveAuxState(ByteWriter* writer) const {
  writer->AppendSpan(shrink_counts_.data(), shrink_counts_.size());
  writer->Append<uint64_t>(total_shrinks_);
}

Status BudgetTracker::RestoreAuxState(ByteReader* reader) {
  Status status =
      reader->ReadSpan(shrink_counts_.data(), shrink_counts_.size());
  if (!status.ok()) return status;
  uint64_t total_shrinks = 0;
  status = reader->Read(&total_shrinks);
  if (!status.ok()) return status;
  total_shrinks_ = static_cast<size_t>(total_shrinks);
  return Status::Ok();
}

ShrinkStats BudgetTracker::ComputeShrinkStats() const {
  size_t shrunk_vertices = 0;
  uint64_t shrinks = 0;
  for (const uint32_t count : shrink_counts_) {
    if (count > 0) {
      ++shrunk_vertices;
      shrinks += count;
    }
  }
  ShrinkStats stats;
  if (shrunk_vertices > 0) {
    stats.avg_shrinks = static_cast<double>(shrinks) /
                        static_cast<double>(shrunk_vertices);
  }
  if (!shrink_counts_.empty()) {
    stats.pct_vertices = 100.0 * static_cast<double>(shrunk_vertices) /
                         static_cast<double>(shrink_counts_.size());
  }
  return stats;
}

}  // namespace tinprov
