// Budget-based provenance (paper Section 5.3.2, Fig. 8 / Table 9):
// exact proportional tracking under a per-vertex tuple budget C. When a
// vertex's list grows beyond C it is shrunk to its keep_fraction * C
// largest shares; the dropped tuples' quantity stays in the balance as
// unattributed alpha. Memory is hard-bounded by C * |V| tuples at the
// price of occasionally losing the smallest provenance shares.
#ifndef TINPROV_SCALABLE_BUDGET_H_
#define TINPROV_SCALABLE_BUDGET_H_

#include <cstdint>
#include <vector>

#include "policies/proportional_base.h"

namespace tinprov {

struct BudgetConfig {
  /// Max provenance tuples a vertex may hold (the paper's C). 0 is
  /// treated as 1.
  size_t capacity = 256;
  /// Fraction of C a shrink keeps; clamped into (0, 1]. Keeping less
  /// than C leaves headroom so a vertex is not re-shrunk on every
  /// subsequent merge.
  double keep_fraction = 0.7;
};

/// Shrink bookkeeping across a run (paper Table 9).
struct ShrinkStats {
  /// Mean shrink count over the vertices shrunk at least once (0 when
  /// none was).
  double avg_shrinks = 0.0;
  /// Percentage of all vertices shrunk at least once.
  double pct_vertices = 0.0;
};

class BudgetTracker : public SparseProportionalBase {
 public:
  BudgetTracker(size_t num_vertices, const BudgetConfig& config);

  const BudgetConfig& config() const { return config_; }

  /// Tuples a shrink keeps: clamp(capacity * keep_fraction, 1, capacity).
  size_t keep_count() const { return keep_; }

  size_t total_shrinks() const { return total_shrinks_; }
  size_t ShrinkCount(VertexId v) const { return shrink_counts_[v]; }

  ShrinkStats ComputeShrinkStats() const;

 protected:
  void AfterInteraction(const Interaction& interaction) override {
    MaybeShrink(interaction.src);
    if (interaction.dst != interaction.src) MaybeShrink(interaction.dst);
  }

  size_t AuxiliaryBytes() const override {
    return shrink_counts_.capacity() * sizeof(uint32_t);
  }

  // Shrink counters are replay state (ShrinkStats must survive a
  // snapshot boundary); capacity/keep_fraction are configuration.
  void SaveAuxState(ByteWriter* writer) const override;
  Status RestoreAuxState(ByteReader* reader) override;

 private:
  void MaybeShrink(VertexId v);

  BudgetConfig config_;
  size_t keep_;
  std::vector<uint32_t> shrink_counts_;
  size_t total_shrinks_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_SCALABLE_BUDGET_H_
