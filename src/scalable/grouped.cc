#include "scalable/grouped.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>

namespace tinprov {

namespace {

size_t ClampGroups(size_t num_groups) {
  return num_groups == 0 ? 1 : num_groups;
}

// splitmix64 finaliser: a full-avalanche mix so consecutive ids spread
// uniformly over the groups.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<GroupId> RoundRobinGroups(size_t num_vertices,
                                      size_t num_groups) {
  const size_t k = ClampGroups(num_groups);
  std::vector<GroupId> groups(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    groups[v] = static_cast<GroupId>(v % k);
  }
  return groups;
}

std::vector<GroupId> HashGroups(size_t num_vertices, size_t num_groups) {
  const size_t k = ClampGroups(num_groups);
  std::vector<GroupId> groups(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    groups[v] = static_cast<GroupId>(MixId(v) % k);
  }
  return groups;
}

std::vector<GroupId> ContiguousGroups(size_t num_vertices,
                                      size_t num_groups) {
  const size_t k = ClampGroups(num_groups);
  std::vector<GroupId> groups(num_vertices);
  for (size_t v = 0; v < num_vertices; ++v) {
    groups[v] = static_cast<GroupId>(static_cast<uint64_t>(v) * k /
                                     num_vertices);
  }
  return groups;
}

std::vector<GroupId> ActivityGroups(const Tin& tin, size_t num_groups) {
  const size_t k = ClampGroups(num_groups);
  const size_t n = tin.num_vertices();
  std::vector<uint64_t> activity(n, 0);
  for (const Interaction& interaction : tin.interactions()) {
    if (interaction.src < n) ++activity[interaction.src];
    if (interaction.dst < n) ++activity[interaction.dst];
  }

  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&activity](VertexId a, VertexId b) {
              if (activity[a] != activity[b]) {
                return activity[a] > activity[b];
              }
              return a < b;
            });

  // Min-heap of (load, group): each active vertex joins the lightest
  // group. Inactive vertices carry no load, so LPT would pile them onto
  // one group — spread them round-robin instead.
  using Slot = std::pair<uint64_t, GroupId>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (size_t g = 0; g < k; ++g) heap.push({0, static_cast<GroupId>(g)});
  std::vector<GroupId> groups(n, 0);
  size_t inactive_rank = 0;
  for (const VertexId v : order) {
    if (activity[v] == 0) {
      groups[v] = static_cast<GroupId>(inactive_rank++ % k);
      continue;
    }
    const Slot slot = heap.top();
    heap.pop();
    groups[v] = slot.second;
    heap.push({slot.first + activity[v], slot.second});
  }
  return groups;
}

GroupedTracker::GroupedTracker(size_t num_vertices,
                               std::vector<GroupId> groups,
                               size_t num_groups)
    : SparseProportionalBase(num_vertices),
      groups_(std::move(groups)),
      num_groups_(ClampGroups(num_groups)) {
  assert(groups_.size() == num_vertices);
  for (const GroupId g : groups_) {
    assert(g < num_groups_);
    (void)g;
  }
}

}  // namespace tinprov
