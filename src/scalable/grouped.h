// Grouped provenance tracking (paper Section 5.2, Fig. 5): vertices are
// partitioned into k groups and generated quantity is attributed to the
// source's *group* instead of the source itself. List lengths are
// bounded by k, so cost scales like selective tracking at equal k while
// every vertex's generation stays (coarsely) attributed.
#ifndef TINPROV_SCALABLE_GROUPED_H_
#define TINPROV_SCALABLE_GROUPED_H_

#include <cstdint>
#include <vector>

#include "core/tin.h"
#include "policies/proportional_base.h"

namespace tinprov {

/// Group id within a GroupedTracker; occupies the origin field of the
/// tracker's provenance tuples.
using GroupId = uint32_t;

/// v -> v mod k: perfectly balanced group sizes (within one vertex).
std::vector<GroupId> RoundRobinGroups(size_t num_vertices,
                                      size_t num_groups);

/// Deterministic mixing hash of the id modulo k — round-robin's balance
/// in expectation without its id-locality (neighbouring ids land in
/// unrelated groups).
std::vector<GroupId> HashGroups(size_t num_vertices, size_t num_groups);

/// Equal-width contiguous id ranges: group ids are non-decreasing in v,
/// preserving any locality the vertex numbering carries.
std::vector<GroupId> ContiguousGroups(size_t num_vertices,
                                      size_t num_groups);

/// Balances total interaction activity (appearances as src or dst)
/// instead of vertex counts: vertices join groups in decreasing
/// activity order, each taking the currently least-loaded group (the
/// LPT heuristic, so max load <= min load + the heaviest vertex).
/// Inactive vertices are spread round-robin.
std::vector<GroupId> ActivityGroups(const Tin& tin, size_t num_groups);

class GroupedTracker : public SparseProportionalBase {
 public:
  /// `groups` must assign every vertex a group id < num_groups (use one
  /// of the assignment strategies above).
  GroupedTracker(size_t num_vertices, std::vector<GroupId> groups,
                 size_t num_groups);

  size_t num_groups() const { return num_groups_; }
  GroupId GroupOf(VertexId v) const { return groups_[v]; }

 protected:
  // Snapshot/restore needs no override here: the group map is pure
  // configuration, so the base class's buffers/totals framing already
  // captures the full mutable state.
  VertexId GenerationLabel(VertexId src) const override {
    return groups_[src];
  }

  size_t AuxiliaryBytes() const override {
    return groups_.capacity() * sizeof(GroupId);
  }

 private:
  std::vector<GroupId> groups_;
  size_t num_groups_;
};

}  // namespace tinprov

#endif  // TINPROV_SCALABLE_GROUPED_H_
