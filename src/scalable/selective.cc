#include "scalable/selective.h"

#include <algorithm>

namespace tinprov {

SelectiveTracker::SelectiveTracker(size_t num_vertices,
                                   const std::vector<VertexId>& tracked)
    : SparseProportionalBase(num_vertices), tracked_(num_vertices, 0) {
  for (const VertexId v : tracked) {
    if (v < num_vertices && tracked_[v] == 0) {
      tracked_[v] = 1;
      ++num_tracked_;
    }
  }
}

std::vector<VertexId> TopGeneratingVertices(const Tin& tin, size_t k) {
  const size_t n = tin.num_vertices();
  std::vector<double> balance(n, 0.0);
  std::vector<double> generated(n, 0.0);
  for (const Interaction& interaction : tin.interactions()) {
    if (interaction.src >= n || interaction.dst >= n) continue;
    const double deficit = interaction.quantity - balance[interaction.src];
    if (deficit > 0.0) {
      generated[interaction.src] += deficit;
      balance[interaction.src] = 0.0;
    } else {
      balance[interaction.src] -= interaction.quantity;
    }
    balance[interaction.dst] += interaction.quantity;
  }

  std::vector<VertexId> generators;
  for (VertexId v = 0; v < n; ++v) {
    if (generated[v] > 0.0) generators.push_back(v);
  }
  std::sort(generators.begin(), generators.end(),
            [&generated](VertexId a, VertexId b) {
              if (generated[a] != generated[b]) {
                return generated[a] > generated[b];
              }
              return a < b;
            });
  if (generators.size() > k) generators.resize(k);
  return generators;
}

}  // namespace tinprov
