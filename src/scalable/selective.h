// Selective provenance tracking (paper Section 5.2, Fig. 5): balances
// are maintained for every vertex, but provenance is attributed only to
// a caller-chosen subset of origins. Quantity generated elsewhere joins
// the unattributed alpha residue, so list lengths — and with them the
// merge cost — scale with the tracked subset, not with |V|.
#ifndef TINPROV_SCALABLE_SELECTIVE_H_
#define TINPROV_SCALABLE_SELECTIVE_H_

#include <cstdint>
#include <vector>

#include "core/tin.h"
#include "policies/proportional_base.h"

namespace tinprov {

class SelectiveTracker : public SparseProportionalBase {
 public:
  /// Tracks the origins listed in `tracked`. Duplicate ids and ids
  /// beyond num_vertices are ignored.
  SelectiveTracker(size_t num_vertices, const std::vector<VertexId>& tracked);

  bool IsTracked(VertexId v) const {
    return v < tracked_.size() && tracked_[v] != 0;
  }

  /// Distinct in-range vertices in the tracked set.
  size_t num_tracked() const { return num_tracked_; }

  /// Quantity generated so far at tracked vertices. Conservation of
  /// flow on the tracked subset: this equals the sum of every vertex's
  /// entry sum.
  double tracked_generated() const { return tracked_generated_; }

 protected:
  bool AttributeGeneration(VertexId src) const override {
    return tracked_[src] != 0;
  }

  void OnGenerated(VertexId src, double quantity) override {
    if (tracked_[src] != 0) tracked_generated_ += quantity;
  }

  size_t AuxiliaryBytes() const override {
    return tracked_.capacity() * sizeof(uint8_t);
  }

  // tracked_generated_ is replay state; the tracked set itself is
  // configuration and must match between snapshot and restore.
  void SaveAuxState(ByteWriter* writer) const override {
    writer->Append<double>(tracked_generated_);
  }

  Status RestoreAuxState(ByteReader* reader) override {
    return reader->Read(&tracked_generated_);
  }

 private:
  std::vector<uint8_t> tracked_;
  size_t num_tracked_ = 0;
  double tracked_generated_ = 0.0;
};

/// The k vertices that generate the most quantity over `tin`, in
/// decreasing generated order (ties broken by lower id). Vertices that
/// generate nothing are never returned, so the result may be shorter
/// than k. Runs a no-provenance replay — the paper's selection step,
/// excluded from measured tracking cost.
std::vector<VertexId> TopGeneratingVertices(const Tin& tin, size_t k);

}  // namespace tinprov

#endif  // TINPROV_SCALABLE_SELECTIVE_H_
