// Windowed provenance (paper Section 5.3.1, Fig. 7): exact proportional
// tracking whose provenance lists are reset every W interactions —
// buffered quantity stays, its breakdown collapses into the
// unattributed alpha residue. A smaller W bounds memory harder but pays
// the O(|V|)-sweep reset more often; Fig. 7 sweeps that trade-off.
#ifndef TINPROV_SCALABLE_WINDOWED_H_
#define TINPROV_SCALABLE_WINDOWED_H_

#include "obs/metrics.h"
#include "policies/proportional_base.h"

namespace tinprov {

class WindowedTracker : public SparseProportionalBase {
 public:
  /// A window of 0 is treated as 1 (reset after every interaction).
  WindowedTracker(size_t num_vertices, size_t window)
      : SparseProportionalBase(num_vertices),
        window_(window == 0 ? 1 : window) {}

  size_t window() const { return window_; }

  /// Resets performed so far (the last column of the Fig. 7 tables):
  /// floor(processed interactions / W).
  size_t reset_count() const { return reset_count_; }

 protected:
  void AfterInteraction(const Interaction& /*interaction*/) override {
    if (++since_reset_ >= window_) {
      ClearAllEntries();
      since_reset_ = 0;
      ++reset_count_;
      TINPROV_COUNTER_ADD("tracker.window_resets", 1);
    }
  }

  // The window phase is replay state: a restored tracker must reset at
  // the same global interaction counts as the original. The window size
  // itself is configuration and stays with the constructor.
  void SaveAuxState(ByteWriter* writer) const override {
    writer->Append<uint64_t>(since_reset_);
    writer->Append<uint64_t>(reset_count_);
  }

  Status RestoreAuxState(ByteReader* reader) override {
    uint64_t since_reset = 0;
    uint64_t reset_count = 0;
    Status status = reader->Read(&since_reset);
    if (!status.ok()) return status;
    status = reader->Read(&reset_count);
    if (!status.ok()) return status;
    since_reset_ = static_cast<size_t>(since_reset);
    reset_count_ = static_cast<size_t>(reset_count);
    return Status::Ok();
  }

 private:
  size_t window_;
  size_t since_reset_ = 0;
  size_t reset_count_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_SCALABLE_WINDOWED_H_
