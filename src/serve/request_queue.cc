#include "serve/request_queue.h"

#include <utility>

#include "obs/metrics.h"

namespace tinprov {

namespace {

std::future<QueryResult> ReadyFuture(QueryResult result) {
  std::promise<QueryResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

}  // namespace

#if defined(TINPROV_NO_THREADS)

QueryWorkerPool::QueryWorkerPool(QueryExecutor executor,
                                 size_t /*num_threads*/)
    : executor_(std::move(executor)) {}

QueryWorkerPool::~QueryWorkerPool() = default;

std::future<QueryResult> QueryWorkerPool::Submit(QueryRequest request) {
  TINPROV_COUNTER_ADD("serve.queries_submitted", 1);
  return ReadyFuture(executor_(request));
}

size_t QueryWorkerPool::num_threads() const { return 0; }

#else  // !TINPROV_NO_THREADS

QueryWorkerPool::QueryWorkerPool(QueryExecutor executor, size_t num_threads)
    : executor_(std::move(executor)) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryWorkerPool::~QueryWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  // Workers only exit once the queue is empty, so every submitted
  // promise has been fulfilled by now.
}

std::future<QueryResult> QueryWorkerPool::Submit(QueryRequest request) {
  TINPROV_COUNTER_ADD("serve.queries_submitted", 1);
  if (threads_.empty()) {
    return ReadyFuture(executor_(request));
  }
  Item item;
  item.request = request;
  std::future<QueryResult> future = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(item));
    TINPROV_GAUGE_SET("serve.queue_depth", queue_.size());
    TINPROV_GAUGE_MAX("serve.queue_peak_depth", queue_.size());
  }
  cv_.notify_one();
  return future;
}

size_t QueryWorkerPool::num_threads() const { return threads_.size(); }

void QueryWorkerPool::WorkerLoop() {
  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      item = std::move(queue_.front());
      queue_.pop_front();
      TINPROV_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    TINPROV_HISTOGRAM_OBSERVE("serve.queue_wait_ns",
                              item.enqueued.ElapsedNanos());
    item.promise.set_value(executor_(item.request));
  }
}

#endif  // TINPROV_NO_THREADS

}  // namespace tinprov
