// The query-side plumbing of the serve layer: the request/result
// vocabulary and an MPMC request queue with a worker pool.
//
// Any number of client threads Submit() queries; worker threads pop
// them in FIFO order and resolve each through the executor the pool was
// built with (ProvenanceService::Execute — reads only epoch-pinned
// immutable state, so workers never contend with the ingest writer).
// Results come back through std::future, so callers choose between
// blocking (get) and fire-many-then-collect batching. With zero worker
// threads — or in a TINPROV_NO_THREADS build — Submit() resolves the
// query inline on the calling thread and returns a ready future, which
// keeps the API identical across build modes.
#ifndef TINPROV_SERVE_REQUEST_QUEUE_H_
#define TINPROV_SERVE_REQUEST_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <utility>
#include <vector>

#include "core/buffer.h"
#include "core/types.h"
#include "util/status.h"
#include "util/stopwatch.h"

#if !defined(TINPROV_NO_THREADS)
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#endif

namespace tinprov {

/// Identity of one published epoch: which consistent state a query was
/// answered from.
struct EpochInfo {
  /// Publish sequence number; 0 is the initial (pre-ingest) state.
  uint64_t seq = 0;
  /// Interactions applied since the service started (handoff-relative:
  /// a service seeded from a TimeTravelIndex counts from the handoff).
  size_t prefix = 0;
  /// The state is complete through this timestamp.
  Timestamp watermark = std::numeric_limits<Timestamp>::lowest();
};

enum class QueryKind {
  kProvenance,    // Provenance(v) at the latest epoch
  kProvenanceAt,  // Provenance(v, t) — historical, time-travel routed
  kTopOrigins,    // top-k origins of v's buffer by quantity
};

struct QueryRequest {
  QueryKind kind = QueryKind::kProvenance;
  VertexId v = 0;
  Timestamp t = 0;  // kProvenanceAt only
  size_t k = 0;     // kTopOrigins only
};

struct QueryResult {
  Status status;
  Buffer buffer;
  /// The epoch the answer is consistent with. For kProvenanceAt this is
  /// still the epoch the query was *resolved against* (its log/snapshot
  /// view); the buffer itself reflects time `t`.
  EpochInfo epoch;
  /// Process-unique id ProvenanceService::Execute stamped on the query
  /// (correlates with the slow-query log); 0 for answers that bypassed
  /// Execute (the direct reader methods).
  uint64_t query_id = 0;
  /// Log interactions delta-replayed to build the answer; 0 on the
  /// epoch fast paths (latest epoch, ring hit, handoff index).
  size_t replayed_interactions = 0;
};

/// Resolves one request; must be safe to call from any thread.
using QueryExecutor = std::function<QueryResult(const QueryRequest&)>;

class QueryWorkerPool {
 public:
  /// Spawns `num_threads` workers over an MPMC queue. 0 means inline
  /// execution (no queue, no threads); TINPROV_NO_THREADS builds are
  /// always inline regardless of the requested count.
  QueryWorkerPool(QueryExecutor executor, size_t num_threads);

  /// Drains the queue (workers finish every submitted request), then
  /// joins the workers.
  ~QueryWorkerPool();

  QueryWorkerPool(const QueryWorkerPool&) = delete;
  QueryWorkerPool& operator=(const QueryWorkerPool&) = delete;

  /// Enqueues a request; the future resolves when a worker has executed
  /// it. Thread-safe. Inline pools execute before returning.
  std::future<QueryResult> Submit(QueryRequest request);

  size_t num_threads() const;

 private:
  QueryExecutor executor_;

#if !defined(TINPROV_NO_THREADS)
  struct Item {
    QueryRequest request;
    std::promise<QueryResult> promise;
    Stopwatch enqueued;  // queue-wait accounting (serve.queue_wait_ns)
  };

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
#endif
};

}  // namespace tinprov

#endif  // TINPROV_SERVE_REQUEST_QUEUE_H_
