#include "serve/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tinprov {

namespace {

/// Fixed log-chunk capacity. Chunks are reserved once and never
/// reallocate, so a published view's chunk pointers stay valid while
/// the writer fills later slots of the newest chunk.
constexpr size_t kChunkCapacity = 4096;

bool TopOriginOrder(const ProvPair& a, const ProvPair& b) {
  if (a.quantity != b.quantity) return a.quantity > b.quantity;
  return a.origin < b.origin;
}

}  // namespace

/// The immutable state one atomic publish makes visible. Readers pin a
/// view with atomic_load and may then use everything it references for
/// as long as they hold the shared_ptr; the writer never mutates a
/// published view, it builds a successor and swaps the pointer.
struct ProvenanceService::EpochView {
  struct Epoch {
    EpochInfo info;
    std::shared_ptr<const Tracker> tracker;  // restored, read-only
    std::shared_ptr<const std::vector<uint8_t>> state;
  };

  struct Snapshot {
    size_t prefix = 0;
    std::shared_ptr<const std::vector<uint8_t>> state;
  };

  /// Recent epochs, oldest first; back() is the newest and always
  /// present (epoch 0 is published before any reader exists).
  std::vector<std::shared_ptr<const Epoch>> ring;

  /// Chunked log: entries [0, ring.back()->info.prefix) are valid —
  /// written before this view's release-store. Empty when history
  /// retention is off.
  std::vector<std::shared_ptr<std::vector<Interaction>>> chunks;

  /// Every published epoch's byte image, ascending by prefix, for
  /// nearest-snapshot + delta-replay historical queries. Starts with
  /// the prefix-0 initial/handoff state. Empty when retention is off.
  std::vector<Snapshot> snapshots;

  const Epoch& Latest() const { return *ring.back(); }

  const Interaction& LogAt(size_t i) const {
    return chunks[i / kChunkCapacity]->data()[i % kChunkCapacity];
  }

  /// Count of logged interactions with timestamp <= t, searching only
  /// the published prefix.
  size_t UpperBound(Timestamp t) const {
    size_t lo = 0;
    size_t hi = Latest().info.prefix;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (LogAt(mid).t <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

/// Tee stream the writer wraps its source in: every pulled interaction
/// is appended to the service's chunked log before the ingestor sees
/// it, so the published log prefix always covers the applied prefix.
class ProvenanceService::LogSink : public InteractionStream {
 public:
  LogSink(ProvenanceService* service, InteractionStream* inner)
      : service_(service), inner_(inner) {}

  bool Next(Interaction* out) override {
    if (!inner_->Next(out)) return false;
    service_->AppendLog(*out);
    return true;
  }

  DatasetStats Stats() const override { return inner_->Stats(); }

 private:
  ProvenanceService* service_;
  InteractionStream* inner_;
};

StatusOr<std::unique_ptr<ProvenanceService>> ProvenanceService::Create(
    const TrackerSpec& spec, const DatasetStats& stats, ServeOptions options) {
  return CreateWithHistory(spec, stats, nullptr, options);
}

StatusOr<std::unique_ptr<ProvenanceService>>
ProvenanceService::CreateWithHistory(
    const TrackerSpec& spec, const DatasetStats& stats,
    std::shared_ptr<const TimeTravelIndex> history, ServeOptions options) {
  auto factory = TrackerRegistry::Global().Factory(spec, stats);
  if (!factory.ok()) return factory.status();
  std::vector<uint8_t> handoff;
  const std::vector<uint8_t>* handoff_state = nullptr;
  if (history != nullptr) {
    if (!history->finalized()) {
      return Status::FailedPrecondition(
          "serve handoff needs a finalized time-travel index");
    }
    if (history->num_vertices() != stats.num_vertices) {
      return Status::InvalidArgument(
          "handoff index has " + std::to_string(history->num_vertices()) +
          " vertices, service expects " + std::to_string(stats.num_vertices));
    }
    const Status status = history->SaveFinalState(&handoff);
    if (!status.ok()) return status;
    handoff_state = &handoff;
  }
  std::unique_ptr<ProvenanceService> service(new ProvenanceService(
      *std::move(factory), stats, options, std::move(history)));
  const Status status = service->Init(handoff_state);
  if (!status.ok()) return status;
  return service;
}

ProvenanceService::ProvenanceService(
    TrackerFactory factory, const DatasetStats& stats,
    const ServeOptions& options, std::shared_ptr<const TimeTravelIndex> history)
    : factory_(std::move(factory)),
      stats_(stats),
      options_(options),
      history_(std::move(history)),
      history_watermark_(history_ != nullptr
                             ? history_->watermark()
                             : std::numeric_limits<Timestamp>::lowest()) {
  if (options_.epoch_interval == 0) options_.epoch_interval = 1;
  if (options_.ring_size == 0) options_.ring_size = 1;
  if (options_.ingest_batch == 0) options_.ingest_batch = 1;
  pool_ = std::make_unique<QueryWorkerPool>(
      [this](const QueryRequest& request) { return Execute(request); },
      options_.num_query_threads);
}

ProvenanceService::~ProvenanceService() {
  // Workers execute through `this`; stop them before anything else.
  pool_.reset();
#if !defined(TINPROV_NO_THREADS)
  if (writer_.joinable()) writer_.join();
#endif
}

Status ProvenanceService::Init(const std::vector<uint8_t>* handoff_state) {
  live_tracker_ = factory_();
  if (live_tracker_ == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  auto state = std::make_shared<std::vector<uint8_t>>();
  if (handoff_state != nullptr) {
    *state = *handoff_state;
    const Status status = live_tracker_->RestoreState(*state);
    if (!status.ok()) {
      return Status(status.code(),
                    "restoring handoff state into the live tracker (is the "
                    "spec configured like the index's trackers?): " +
                        status.message());
    }
  } else {
    live_tracker_->SaveState(state.get());
  }
  live_tracker_->ReserveHint({stats_.num_vertices, stats_.num_interactions});

  // Epoch 0: the pre-ingest state, published before any reader or the
  // writer exists, so latest_ is never null and plain stores suffice.
  auto epoch = std::make_shared<EpochView::Epoch>();
  epoch->info.seq = next_seq_++;
  epoch->info.prefix = 0;
  epoch->info.watermark = history_watermark_;
  std::unique_ptr<Tracker> restored = factory_();
  if (restored == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  const Status status = restored->RestoreState(*state);
  if (!status.ok()) {
    return Status(status.code(),
                  "restoring epoch 0 state: " + status.message());
  }
  epoch->tracker = std::move(restored);
  epoch->state = state;

  auto view = std::make_shared<EpochView>();
  view->ring.push_back(std::move(epoch));
  if (options_.retain_history) {
    view->snapshots.push_back({0, state});
    snapshot_bytes_ += state->size();
  }
  latest_ = std::move(view);
  return Status::Ok();
}

void ProvenanceService::AppendLog(const Interaction& interaction) {
  if (!options_.retain_history) return;
  if (chunks_.empty() || chunks_.back()->size() == kChunkCapacity) {
    auto chunk = std::make_shared<std::vector<Interaction>>();
    chunk->reserve(kChunkCapacity);
    chunks_.push_back(std::move(chunk));
  }
  chunks_.back()->push_back(interaction);
  ++log_size_;
}

Status ProvenanceService::PublishEpoch(size_t prefix, Timestamp watermark) {
  TINPROV_SCOPED_LATENCY_NS("serve.snapshot_publish_ns");
  obs::TraceSpan span("serve.publish_epoch", "serve");

  auto state = std::make_shared<std::vector<uint8_t>>();
  live_tracker_->SaveState(state.get());
  std::unique_ptr<Tracker> restored = factory_();
  if (restored == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  Status status = restored->RestoreState(*state);
  if (!status.ok()) {
    return Status(status.code(), "restoring epoch " +
                                     std::to_string(next_seq_) + " state: " +
                                     status.message());
  }

  auto epoch = std::make_shared<EpochView::Epoch>();
  epoch->info.seq = next_seq_++;
  epoch->info.prefix = prefix;
  epoch->info.watermark = watermark;
  epoch->tracker = std::move(restored);
  epoch->state = state;

  // Build the successor view from the current one. The writer is the
  // only publisher, so a plain copy of the previous view's members is
  // race-free; readers keep pinning the old view until the store below.
  const std::shared_ptr<const EpochView> prev = PinView();
  auto view = std::make_shared<EpochView>();
  view->ring = prev->ring;
  view->ring.push_back(std::move(epoch));
  while (view->ring.size() > options_.ring_size) {
    view->ring.erase(view->ring.begin());
  }
  view->chunks = chunks_;
  view->snapshots = prev->snapshots;
  if (options_.retain_history) {
    view->snapshots.push_back({prefix, state});
    snapshot_bytes_ += state->size();
  }
  std::atomic_store_explicit(&latest_,
                             std::shared_ptr<const EpochView>(std::move(view)),
                             std::memory_order_release);

  TINPROV_COUNTER_ADD("serve.epochs_published", 1);
  TINPROV_HISTOGRAM_OBSERVE("serve.epoch_age_ns",
                            since_publish_.ElapsedNanos());
  since_publish_.Restart();
  TINPROV_GAUGE_SET("serve.epoch_seq", next_seq_ - 1);
  TINPROV_GAUGE_SET("serve.epoch_prefix", prefix);
  TINPROV_GAUGE_SET("memory.serve_log_bytes", log_size_ * sizeof(Interaction));
  TINPROV_GAUGE_SET("memory.serve_snapshot_bytes", snapshot_bytes_);
  TINPROV_GAUGE_SET("memory.serve_epoch_state_bytes", state->size());
  return Status::Ok();
}

Status ProvenanceService::RunIngest() {
  obs::TraceSpan span("serve.ingest", "serve");
  LogSink sink(this, stream_.get());
  IngestOptions ingest_options;
  ingest_options.batch_size = std::min(options_.ingest_batch,
                                       options_.epoch_interval);
  ingest_options.initial_watermark = history_watermark_;
  StreamIngestor ingestor(live_tracker_.get(), ingest_options);

  size_t last_published = 0;
  bool done = false;
  while (!done) {
    Status status = ingestor.IngestBatch(sink, &done);
    if (!status.ok()) {
      final_ingest_stats_ = ingestor.stats();
      return status;
    }
    const IngestStats& stats = ingestor.stats();
    if (stats.interactions - last_published >= options_.epoch_interval) {
      last_published = stats.interactions;
      status = PublishEpoch(stats.interactions,
                            std::max(stats.watermark, history_watermark_));
      if (!status.ok()) {
        final_ingest_stats_ = stats;
        return status;
      }
    }
  }
  final_ingest_stats_ = ingestor.stats();
  if (final_ingest_stats_.interactions != last_published) {
    // Final epoch: every applied interaction visible to readers.
    const Status status = PublishEpoch(
        final_ingest_stats_.interactions,
        std::max(final_ingest_stats_.watermark, history_watermark_));
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status ProvenanceService::Start(std::unique_ptr<InteractionStream> stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("null ingest stream");
  }
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("service already started");
  }
  stream_ = std::move(stream);
  since_publish_.Restart();
#if defined(TINPROV_NO_THREADS)
  ingest_status_ = RunIngest();
  ingest_done_.store(true, std::memory_order_release);
#else
  writer_ = std::thread([this] {
    ingest_status_ = RunIngest();
    ingest_done_.store(true, std::memory_order_release);
  });
#endif
  return Status::Ok();
}

Status ProvenanceService::WaitIngest() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service not started");
  }
#if !defined(TINPROV_NO_THREADS)
  if (writer_.joinable()) writer_.join();
#endif
  ingest_joined_ = true;
  return ingest_status_;
}

EpochInfo ProvenanceService::LatestEpoch() const {
  return PinView()->Latest().info;
}

QueryResult ProvenanceService::Provenance(VertexId v) const {
  TINPROV_SCOPED_LATENCY_NS("serve.query_ns");
  TINPROV_COUNTER_ADD("serve.queries", 1);
  QueryResult result;
  const std::shared_ptr<const EpochView> view = PinView();
  const EpochView::Epoch& epoch = view->Latest();
  result.epoch = epoch.info;
  if (v >= stats_.num_vertices) {
    result.status = Status::InvalidArgument("query vertex " +
                                            std::to_string(v) +
                                            " out of range");
    return result;
  }
  result.buffer = epoch.tracker->Provenance(v);
  return result;
}

QueryResult ProvenanceService::TopOrigins(VertexId v, size_t k) const {
  QueryResult result = Provenance(v);
  if (!result.status.ok()) return result;
  std::vector<ProvPair>& entries = result.buffer.entries;
  if (k < entries.size()) {
    std::partial_sort(entries.begin(), entries.begin() + k, entries.end(),
                      TopOriginOrder);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), TopOriginOrder);
  }
  return result;
}

QueryResult ProvenanceService::Provenance(VertexId v, Timestamp t) const {
  TINPROV_SCOPED_LATENCY_NS("serve.query_ns");
  TINPROV_COUNTER_ADD("serve.queries", 1);
  return ProvenanceAt(v, t);
}

QueryResult ProvenanceService::ProvenanceAt(VertexId v, Timestamp t) const {
  QueryResult result;
  const std::shared_ptr<const EpochView> view = PinView();
  const EpochView::Epoch& latest = view->Latest();
  result.epoch = latest.info;
  if (v >= stats_.num_vertices) {
    result.status = Status::InvalidArgument("query vertex " +
                                            std::to_string(v) +
                                            " out of range");
    return result;
  }

  // Pre-handoff times belong to the time-travel index: its log covers
  // everything strictly before the handoff watermark (the live log
  // continues at or after it).
  if (history_ != nullptr && t < history_watermark_) {
    TINPROV_COUNTER_ADD("serve.history_queries", 1);
    auto buffer = history_->Provenance(v, t);
    if (!buffer.ok()) {
      result.status = buffer.status();
      return result;
    }
    result.buffer = *std::move(buffer);
    return result;
  }

  // Live side. t at or past the epoch watermark resolves to the full
  // published prefix, i.e. the latest epoch itself — the fast path.
  const size_t target =
      options_.retain_history
          ? view->UpperBound(t)
          : (t >= latest.info.watermark ? latest.info.prefix
                                        : latest.info.prefix + 1);
  if (target == latest.info.prefix) {
    result.buffer = latest.tracker->Provenance(v);
    return result;
  }

  // Exact-prefix hit in the ring: some recent epoch is the wanted state.
  for (const std::shared_ptr<const EpochView::Epoch>& epoch : view->ring) {
    if (epoch->info.prefix == target) {
      result.buffer = epoch->tracker->Provenance(v);
      result.epoch = epoch->info;
      return result;
    }
  }

  if (!options_.retain_history) {
    result.status = Status::FailedPrecondition(
        "historical query at t=" + std::to_string(t) +
        " needs history retention (ServeOptions::retain_history) or a "
        "handoff TimeTravelIndex");
    return result;
  }

  // Nearest retained snapshot at or before the target, then delta
  // replay of the pinned log — the TimeTravelIndex recipe, online.
  // snapshots[0] (prefix 0, initial/handoff state) always exists, so
  // the search cannot come up empty.
  TINPROV_COUNTER_ADD("serve.historical_replays", 1);
  TINPROV_SCOPED_LATENCY_NS("serve.historical_replay_ns");
  const auto it = std::upper_bound(
      view->snapshots.begin(), view->snapshots.end(), target,
      [](size_t p, const EpochView::Snapshot& s) { return p < s.prefix; });
  const EpochView::Snapshot& snapshot = *(it - 1);
  std::unique_ptr<Tracker> tracker = factory_();
  if (tracker == nullptr) {
    result.status = Status::Internal("tracker factory returned null");
    return result;
  }
  Status status = tracker->RestoreState(*snapshot.state);
  if (!status.ok()) {
    result.status = Status(status.code(), "restoring snapshot at prefix " +
                                              std::to_string(snapshot.prefix) +
                                              ": " + status.message());
    return result;
  }
  for (size_t i = snapshot.prefix; i < target; ++i) {
    status = tracker->Process(view->LogAt(i));
    if (!status.ok()) {
      result.status = Status(status.code(), "delta replay at interaction " +
                                                std::to_string(i) + ": " +
                                                status.message());
      return result;
    }
  }
  TINPROV_HISTOGRAM_OBSERVE("serve.delta_interactions",
                            target - snapshot.prefix);
  result.buffer = tracker->Provenance(v);
  return result;
}

QueryResult ProvenanceService::Execute(const QueryRequest& request) const {
  switch (request.kind) {
    case QueryKind::kProvenance:
      return Provenance(request.v);
    case QueryKind::kProvenanceAt:
      return Provenance(request.v, request.t);
    case QueryKind::kTopOrigins:
      return TopOrigins(request.v, request.k);
  }
  QueryResult result;
  result.status = Status::InvalidArgument("unknown query kind");
  return result;
}

std::future<QueryResult> ProvenanceService::Submit(QueryRequest request) {
  return pool_->Submit(request);
}

}  // namespace tinprov
