#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>

#include "obs/health.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "parallel/scheduler.h"
#include "parallel/sharded_ingest.h"
#include "util/cpu.h"

namespace tinprov {

namespace {

/// Fixed log-chunk capacity. Chunks are reserved once and never
/// reallocate, so a published view's chunk pointers stay valid while
/// the writer fills later slots of the newest chunk.
constexpr size_t kChunkCapacity = 4096;

bool TopOriginOrder(const ProvPair& a, const ProvPair& b) {
  if (a.quantity != b.quantity) return a.quantity > b.quantity;
  return a.origin < b.origin;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kProvenance:
      return "provenance";
    case QueryKind::kProvenanceAt:
      return "provenance_at";
    case QueryKind::kTopOrigins:
      return "top_origins";
  }
  return "unknown";
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

/// The immutable state one atomic publish makes visible. Readers pin a
/// view with atomic_load and may then use everything it references for
/// as long as they hold the shared_ptr; the writer never mutates a
/// published view, it builds a successor and swaps the pointer.
struct ProvenanceService::EpochView {
  struct Epoch {
    EpochInfo info;
    std::shared_ptr<const Tracker> tracker;  // restored, read-only
    std::shared_ptr<const std::vector<uint8_t>> state;
  };

  struct Snapshot {
    size_t prefix = 0;
    std::shared_ptr<const std::vector<uint8_t>> state;
  };

  /// Recent epochs, oldest first; back() is the newest and always
  /// present (epoch 0 is published before any reader exists).
  std::vector<std::shared_ptr<const Epoch>> ring;

  /// Chunked log: entries [0, ring.back()->info.prefix) are valid —
  /// written before this view's release-store. Empty when history
  /// retention is off.
  std::vector<std::shared_ptr<std::vector<Interaction>>> chunks;

  /// Every published epoch's byte image, ascending by prefix, for
  /// nearest-snapshot + delta-replay historical queries. Starts with
  /// the prefix-0 initial/handoff state. Empty when retention is off.
  std::vector<Snapshot> snapshots;

  const Epoch& Latest() const { return *ring.back(); }

  const Interaction& LogAt(size_t i) const {
    return chunks[i / kChunkCapacity]->data()[i % kChunkCapacity];
  }

  /// Count of logged interactions with timestamp <= t, searching only
  /// the published prefix.
  size_t UpperBound(Timestamp t) const {
    size_t lo = 0;
    size_t hi = Latest().info.prefix;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (LogAt(mid).t <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

/// Tee stream the writer wraps its source in: every pulled interaction
/// is appended to the service's chunked log before the ingestor sees
/// it, so the published log prefix always covers the applied prefix.
class ProvenanceService::LogSink : public InteractionStream {
 public:
  LogSink(ProvenanceService* service, InteractionStream* inner)
      : service_(service), inner_(inner) {}

  bool Next(Interaction* out) override {
    if (!inner_->Next(out)) return false;
    service_->AppendLog(*out);
    return true;
  }

  DatasetStats Stats() const override { return inner_->Stats(); }

 private:
  ProvenanceService* service_;
  InteractionStream* inner_;
};

StatusOr<std::unique_ptr<ProvenanceService>> ProvenanceService::Create(
    const TrackerSpec& spec, const DatasetStats& stats, ServeOptions options) {
  return CreateWithHistory(spec, stats, nullptr, options);
}

StatusOr<std::unique_ptr<ProvenanceService>>
ProvenanceService::CreateWithHistory(
    const TrackerSpec& spec, const DatasetStats& stats,
    std::shared_ptr<const TimeTravelIndex> history, ServeOptions options) {
  auto factory = TrackerRegistry::Global().Factory(spec, stats);
  if (!factory.ok()) return factory.status();
  std::vector<uint8_t> handoff;
  const std::vector<uint8_t>* handoff_state = nullptr;

  // Durability: recover whatever the directory holds, seed the service
  // from it (state + history index), and open the log for appending at
  // the recovered position.
  std::unique_ptr<storage::DurableLog> durable;
  uint64_t durable_base = 0;
  if (options.durability.Enabled()) {
    storage::Env* env = options.durability.env != nullptr
                            ? options.durability.env
                            : storage::Env::Posix();
    storage::RecoveredState recovered;
    if (options.durability.recover) {
      storage::RecoveryManager manager(env, options.durability.dir);
      auto result = manager.Recover(*factory);
      if (!result.ok()) return result.status();
      recovered = *std::move(result);
    }
    if (recovered.prefix > 0) {
      if (history != nullptr) {
        return Status::InvalidArgument(
            "pass one source of pre-ingest history: the durability "
            "directory already holds " +
            std::to_string(recovered.prefix) +
            " recovered interactions, drop the handoff index (or the "
            "recovered state, with DurabilityOptions::recover = false)");
      }
      auto index = storage::BuildRecoveredIndex(
          recovered, stats.num_vertices, *factory,
          options.durability.history_snapshot_interval);
      if (!index.ok()) return index.status();
      history = *std::move(index);
      // The recovered SaveState bytes are the handoff — bit-identical
      // to the index's SaveFinalState by the resume contract, without
      // re-restoring a snapshot.
      handoff = std::move(recovered.state);
      handoff_state = &handoff;
    }
    auto log = storage::DurableLog::Open(env, options.durability.dir,
                                         recovered.prefix, recovered.next_seq,
                                         options.durability.log);
    if (!log.ok()) return log.status();
    durable = *std::move(log);
    durable_base = recovered.prefix;
  }

  if (history != nullptr && handoff_state == nullptr) {
    if (!history->finalized()) {
      return Status::FailedPrecondition(
          "serve handoff needs a finalized time-travel index");
    }
    if (history->num_vertices() != stats.num_vertices) {
      return Status::InvalidArgument(
          "handoff index has " + std::to_string(history->num_vertices()) +
          " vertices, service expects " + std::to_string(stats.num_vertices));
    }
    const Status status = history->SaveFinalState(&handoff);
    if (!status.ok()) return status;
    handoff_state = &handoff;
  }
  std::unique_ptr<ProvenanceService> service(new ProvenanceService(
      *std::move(factory), spec, stats, options, std::move(history)));
  service->durable_ = std::move(durable);
  service->durable_base_ = durable_base;
  const Status status = service->Init(handoff_state);
  if (!status.ok()) return status;
  return service;
}

ProvenanceService::ProvenanceService(
    TrackerFactory factory, TrackerSpec spec, const DatasetStats& stats,
    const ServeOptions& options, std::shared_ptr<const TimeTravelIndex> history)
    : factory_(std::move(factory)),
      tracker_spec_(std::move(spec)),
      stats_(stats),
      options_(options),
      history_(std::move(history)),
      history_watermark_(history_ != nullptr
                             ? history_->watermark()
                             : std::numeric_limits<Timestamp>::lowest()),
      resume_watermark_(history_watermark_) {
  if (options_.epoch_interval == 0) options_.epoch_interval = 1;
  if (options_.ring_size == 0) options_.ring_size = 1;
  if (options_.ingest_batch == 0) options_.ingest_batch = 1;
  pool_ = std::make_unique<QueryWorkerPool>(
      [this](const QueryRequest& request) { return Execute(request); },
      options_.num_query_threads);
}

ProvenanceService::~ProvenanceService() {
  // The ops plane reads `this` from its accept thread; take it down
  // before the state it snapshots goes away.
  DisableOpsServer();
  // Workers execute through `this`; stop them before anything else.
  pool_.reset();
#if !defined(TINPROV_NO_THREADS)
  if (writer_.joinable()) writer_.join();
#endif
}

Status ProvenanceService::Init(const std::vector<uint8_t>* handoff_state) {
  live_tracker_ = factory_();
  if (live_tracker_ == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  auto state = std::make_shared<std::vector<uint8_t>>();
  if (handoff_state != nullptr) {
    *state = *handoff_state;
    const Status status = live_tracker_->RestoreState(*state);
    if (!status.ok()) {
      return Status(status.code(),
                    "restoring handoff state into the live tracker (is the "
                    "spec configured like the index's trackers?): " +
                        status.message());
    }
  } else {
    live_tracker_->SaveState(state.get());
  }
  live_tracker_->ReserveHint({stats_.num_vertices, stats_.num_interactions});

  // Epoch 0: the pre-ingest state, published before any reader or the
  // writer exists, so latest_ is never null and plain stores suffice.
  auto epoch = std::make_shared<EpochView::Epoch>();
  epoch->info.seq = next_seq_++;
  epoch->info.prefix = 0;
  epoch->info.watermark = history_watermark_;
  std::unique_ptr<Tracker> restored = factory_();
  if (restored == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  const Status status = restored->RestoreState(*state);
  if (!status.ok()) {
    return Status(status.code(),
                  "restoring epoch 0 state: " + status.message());
  }
  epoch->tracker = std::move(restored);
  epoch->state = state;

  auto view = std::make_shared<EpochView>();
  view->ring.push_back(std::move(epoch));
  if (options_.retain_history) {
    view->snapshots.push_back({0, state});
    snapshot_bytes_ += state->size();
  }
  latest_ = std::move(view);
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  return Status::Ok();
}

void ProvenanceService::AppendLog(const Interaction& interaction) {
  if (!options_.retain_history) return;
  if (chunks_.empty() || chunks_.back()->size() == kChunkCapacity) {
    auto chunk = std::make_shared<std::vector<Interaction>>();
    chunk->reserve(kChunkCapacity);
    chunks_.push_back(std::move(chunk));
  }
  chunks_.back()->push_back(interaction);
  ++log_size_;
}

Status ProvenanceService::PublishEpoch(size_t prefix, Timestamp watermark) {
  TINPROV_SCOPED_LATENCY_NS("serve.snapshot_publish_ns");
  obs::TraceSpan span("serve.publish_epoch", "serve");

  auto state = std::make_shared<std::vector<uint8_t>>();
  live_tracker_->SaveState(state.get());
  std::unique_ptr<Tracker> restored = factory_();
  if (restored == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  Status status = restored->RestoreState(*state);
  if (!status.ok()) {
    return Status(status.code(), "restoring epoch " +
                                     std::to_string(next_seq_) + " state: " +
                                     status.message());
  }

  auto epoch = std::make_shared<EpochView::Epoch>();
  epoch->info.seq = next_seq_++;
  epoch->info.prefix = prefix;
  epoch->info.watermark = watermark;
  epoch->tracker = std::move(restored);
  epoch->state = state;

  // Build the successor view from the current one. The writer is the
  // only publisher, so a plain copy of the previous view's members is
  // race-free; readers keep pinning the old view until the store below.
  const std::shared_ptr<const EpochView> prev = PinView();
  auto view = std::make_shared<EpochView>();
  view->ring = prev->ring;
  view->ring.push_back(std::move(epoch));
  while (view->ring.size() > options_.ring_size) {
    view->ring.erase(view->ring.begin());
  }
  view->chunks = chunks_;
  view->snapshots = prev->snapshots;
  if (options_.retain_history) {
    view->snapshots.push_back({prefix, state});
    snapshot_bytes_ += state->size();
  }
  std::atomic_store_explicit(&latest_,
                             std::shared_ptr<const EpochView>(std::move(view)),
                             std::memory_order_release);

  TINPROV_COUNTER_ADD("serve.epochs_published", 1);
  TINPROV_HISTOGRAM_OBSERVE("serve.epoch_age_ns",
                            since_publish_.ElapsedNanos());
  since_publish_.Restart();
  last_publish_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  TINPROV_GAUGE_SET("serve.epoch_seq", next_seq_ - 1);
  TINPROV_GAUGE_SET("serve.epoch_prefix", prefix);
  TINPROV_GAUGE_SET("memory.serve_log_bytes", log_size_ * sizeof(Interaction));
  TINPROV_GAUGE_SET("memory.serve_snapshot_bytes", snapshot_bytes_);
  TINPROV_GAUGE_SET("memory.serve_epoch_state_bytes", state->size());

  // Epoch published → snapshot persisted (at its global log position).
  // WriteSnapshot syncs the segment log first, so a snapshot on disk is
  // always backed by a durable log at least as long. Under kFailStop an
  // error surfaces as the ingest status; under kDegrade the log
  // absorbed it and flipped the storage.durability health check.
  if (durable_ != nullptr) {
    const Status durable_status =
        durable_->WriteSnapshot(durable_base_ + prefix, watermark, *state);
    if (!durable_status.ok()) return durable_status;
  }
  return Status::Ok();
}

namespace {

/// BatchSink adapter: applied micro-batches flow into the durable log.
class DurableBatchSink : public BatchSink {
 public:
  explicit DurableBatchSink(storage::DurableLog* log) : log_(log) {}

  Status OnBatch(const Interaction* batch, size_t count) override {
    return log_->Append(batch, count);
  }

 private:
  storage::DurableLog* log_;
};

}  // namespace

Status ProvenanceService::RunIngest() {
  obs::TraceSpan span("serve.ingest", "serve");
  LogSink sink(this, stream_.get());
  DurableBatchSink durable_sink(durable_.get());
  IngestOptions ingest_options;
  ingest_options.batch_size = std::min(options_.ingest_batch,
                                       options_.epoch_interval);
  ingest_options.initial_watermark = resume_watermark_;
  if (durable_ != nullptr) ingest_options.sink = &durable_sink;
  StreamIngestor ingestor(live_tracker_.get(), ingest_options);

  size_t last_published = 0;
  bool done = false;
  while (!done) {
    Status status = ingestor.IngestBatch(sink, &done);
    if (!status.ok()) {
      final_ingest_stats_ = ingestor.stats();
      return status;
    }
    const IngestStats& stats = ingestor.stats();
    if (stats.interactions - last_published >= options_.epoch_interval) {
      last_published = stats.interactions;
      status = PublishEpoch(prefix_base_ + stats.interactions,
                            std::max(stats.watermark, resume_watermark_));
      if (!status.ok()) {
        final_ingest_stats_ = stats;
        return status;
      }
    }
  }
  final_ingest_stats_ = ingestor.stats();
  if (final_ingest_stats_.interactions != last_published) {
    // Final epoch: every applied interaction visible to readers.
    const Status status = PublishEpoch(
        prefix_base_ + final_ingest_stats_.interactions,
        std::max(final_ingest_stats_.watermark, resume_watermark_));
    if (!status.ok()) return status;
  }
  if (durable_ != nullptr) {
    // Clean drain: footer + fsync, so the next recovery reads a sealed
    // segment instead of trusting-then-truncating an open tail.
    const Status status = durable_->Seal();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status ProvenanceService::Catchup(std::unique_ptr<InteractionStream> stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("null catchup stream");
  }
  if (started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("catchup must run before Start()");
  }
  if (caught_up_) {
    return Status::FailedPrecondition("service already caught up");
  }
  if (durable_ != nullptr) {
    return Status::FailedPrecondition(
        "catchup bypasses the durable log — run it with durability off and "
        "seed the directory separately");
  }
  if (history_ != nullptr) {
    return Status::FailedPrecondition(
        "catchup starts from empty state; a handoff index already carries "
        "the history");
  }
  obs::TraceSpan span("serve.catchup", "serve");

  auto sharded = TrackerRegistry::Global().Sharded(tracker_spec_, stats_);
  if (!sharded.ok()) return sharded.status();
  IngestOptions ingest_options;
  ingest_options.batch_size =
      std::min(options_.ingest_batch, options_.epoch_interval);
  ShardedIngestEngine engine(stats_, *std::move(sharded), options_.catchup,
                             ingest_options);
  // The tee keeps the retained log covering the catchup range, so
  // historical delta replays work across it; the engine's producer runs
  // on this thread, which owns the writer-side state until Start().
  LogSink sink(this, stream.get());
  auto result = engine.IngestStream(sink);
  if (!result.ok()) return result.status();

  live_tracker_ = std::move(result->tracker);
  catchup_stats_ = result->stats;
  caught_up_ = true;
  prefix_base_ = catchup_stats_.interactions;
  resume_watermark_ = std::max(resume_watermark_, catchup_stats_.watermark);
  TINPROV_COUNTER_ADD("serve.catchup_interactions",
                      catchup_stats_.interactions);
  TINPROV_GAUGE_SET("serve.catchup_shards", result->num_shards);
  // Readers see the caught-up state the moment this returns.
  return PublishEpoch(prefix_base_,
                      std::max(catchup_stats_.watermark, history_watermark_));
}

Status ProvenanceService::Start(std::unique_ptr<InteractionStream> stream) {
  if (stream == nullptr) {
    return Status::InvalidArgument("null ingest stream");
  }
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("service already started");
  }
  stream_ = std::move(stream);
  since_publish_.Restart();
#if defined(TINPROV_NO_THREADS)
  ingest_status_ = RunIngest();
  ingest_done_.store(true, std::memory_order_release);
#else
  writer_ = std::thread([this] {
    ingest_status_ = RunIngest();
    ingest_done_.store(true, std::memory_order_release);
  });
#endif
  return Status::Ok();
}

Status ProvenanceService::WaitIngest() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service not started");
  }
#if !defined(TINPROV_NO_THREADS)
  if (writer_.joinable()) writer_.join();
#endif
  ingest_joined_ = true;
  return ingest_status_;
}

EpochInfo ProvenanceService::LatestEpoch() const {
  return PinView()->Latest().info;
}

QueryResult ProvenanceService::Provenance(VertexId v) const {
  TINPROV_SCOPED_LATENCY_NS("serve.query_ns");
  TINPROV_COUNTER_ADD("serve.queries", 1);
  QueryResult result;
  const std::shared_ptr<const EpochView> view = PinView();
  const EpochView::Epoch& epoch = view->Latest();
  result.epoch = epoch.info;
  if (v >= stats_.num_vertices) {
    result.status = Status::InvalidArgument("query vertex " +
                                            std::to_string(v) +
                                            " out of range");
    return result;
  }
  result.buffer = epoch.tracker->Provenance(v);
  return result;
}

QueryResult ProvenanceService::TopOrigins(VertexId v, size_t k) const {
  QueryResult result = Provenance(v);
  if (!result.status.ok()) return result;
  std::vector<ProvPair>& entries = result.buffer.entries;
  if (k < entries.size()) {
    std::partial_sort(entries.begin(), entries.begin() + k, entries.end(),
                      TopOriginOrder);
    entries.resize(k);
  } else {
    std::sort(entries.begin(), entries.end(), TopOriginOrder);
  }
  return result;
}

QueryResult ProvenanceService::Provenance(VertexId v, Timestamp t) const {
  TINPROV_SCOPED_LATENCY_NS("serve.query_ns");
  TINPROV_COUNTER_ADD("serve.queries", 1);
  return ProvenanceAt(v, t);
}

QueryResult ProvenanceService::ProvenanceAt(VertexId v, Timestamp t) const {
  QueryResult result;
  const std::shared_ptr<const EpochView> view = PinView();
  const EpochView::Epoch& latest = view->Latest();
  result.epoch = latest.info;
  if (v >= stats_.num_vertices) {
    result.status = Status::InvalidArgument("query vertex " +
                                            std::to_string(v) +
                                            " out of range");
    return result;
  }

  // Pre-handoff times belong to the time-travel index: its log covers
  // everything strictly before the handoff watermark (the live log
  // continues at or after it).
  if (history_ != nullptr && t < history_watermark_) {
    TINPROV_COUNTER_ADD("serve.history_queries", 1);
    auto buffer = history_->Provenance(v, t);
    if (!buffer.ok()) {
      result.status = buffer.status();
      return result;
    }
    result.buffer = *std::move(buffer);
    return result;
  }

  // Live side. t at or past the epoch watermark resolves to the full
  // published prefix, i.e. the latest epoch itself — the fast path.
  const size_t target =
      options_.retain_history
          ? view->UpperBound(t)
          : (t >= latest.info.watermark ? latest.info.prefix
                                        : latest.info.prefix + 1);
  if (target == latest.info.prefix) {
    result.buffer = latest.tracker->Provenance(v);
    return result;
  }

  // Exact-prefix hit in the ring: some recent epoch is the wanted state.
  for (const std::shared_ptr<const EpochView::Epoch>& epoch : view->ring) {
    if (epoch->info.prefix == target) {
      result.buffer = epoch->tracker->Provenance(v);
      result.epoch = epoch->info;
      return result;
    }
  }

  if (!options_.retain_history) {
    result.status = Status::FailedPrecondition(
        "historical query at t=" + std::to_string(t) +
        " needs history retention (ServeOptions::retain_history) or a "
        "handoff TimeTravelIndex");
    return result;
  }

  // Nearest retained snapshot at or before the target, then delta
  // replay of the pinned log — the TimeTravelIndex recipe, online.
  // snapshots[0] (prefix 0, initial/handoff state) always exists, so
  // the search cannot come up empty.
  TINPROV_COUNTER_ADD("serve.historical_replays", 1);
  TINPROV_SCOPED_LATENCY_NS("serve.historical_replay_ns");
  const auto it = std::upper_bound(
      view->snapshots.begin(), view->snapshots.end(), target,
      [](size_t p, const EpochView::Snapshot& s) { return p < s.prefix; });
  const EpochView::Snapshot& snapshot = *(it - 1);
  std::unique_ptr<Tracker> tracker = factory_();
  if (tracker == nullptr) {
    result.status = Status::Internal("tracker factory returned null");
    return result;
  }
  Status status = tracker->RestoreState(*snapshot.state);
  if (!status.ok()) {
    result.status = Status(status.code(), "restoring snapshot at prefix " +
                                              std::to_string(snapshot.prefix) +
                                              ": " + status.message());
    return result;
  }
  for (size_t i = snapshot.prefix; i < target; ++i) {
    status = tracker->Process(view->LogAt(i));
    if (!status.ok()) {
      result.status = Status(status.code(), "delta replay at interaction " +
                                                std::to_string(i) + ": " +
                                                status.message());
      return result;
    }
  }
  TINPROV_HISTOGRAM_OBSERVE("serve.delta_interactions",
                            target - snapshot.prefix);
  result.replayed_interactions = target - snapshot.prefix;
  result.buffer = tracker->Provenance(v);
  return result;
}

QueryResult ProvenanceService::Dispatch(const QueryRequest& request) const {
  switch (request.kind) {
    case QueryKind::kProvenance:
      return Provenance(request.v);
    case QueryKind::kProvenanceAt:
      return Provenance(request.v, request.t);
    case QueryKind::kTopOrigins:
      return TopOrigins(request.v, request.k);
  }
  QueryResult result;
  result.status = Status::InvalidArgument("unknown query kind");
  return result;
}

QueryResult ProvenanceService::Execute(const QueryRequest& request) const {
  obs::SlowQueryLog& log = obs::SlowQueryLog::Global();
  const uint64_t id = log.NextQueryId();
  const Stopwatch watch;
  QueryResult result = Dispatch(request);
  result.query_id = id;
  const int64_t latency_ns = watch.ElapsedNanos();
  if (options_.slow_query_ns > 0 && latency_ns >= options_.slow_query_ns) {
    obs::SlowQueryRecord record;
    record.query_id = id;
    record.kind = QueryKindName(request.kind);
    record.vertex = request.v;
    record.latency_ns = latency_ns;
    record.replayed_interactions = result.replayed_interactions;
    record.epoch_seq = result.epoch.seq;
    record.epoch_prefix = result.epoch.prefix;
    log.Record(record);
    TINPROV_COUNTER_ADD("serve.slow_queries", 1);
  }
  return result;
}

std::future<QueryResult> ProvenanceService::Submit(QueryRequest request) {
  return pool_->Submit(request);
}

double ProvenanceService::EpochAgeSeconds() const {
  const int64_t last = last_publish_ns_.load(std::memory_order_relaxed);
  if (last == 0) return 0.0;  // Init hasn't published epoch 0 yet
  return static_cast<double>(SteadyNowNs() - last) / 1e9;
}

std::string ProvenanceService::StatuszJson() const {
  // The epoch block is read the way a query reads it — one pinned view —
  // so the page is consistent with what any concurrent reader sees.
  const std::shared_ptr<const EpochView> view = PinView();
  const EpochInfo epoch = view->Latest().info;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::SlowQueryLog& slow = obs::SlowQueryLog::Global();

  std::string out = "{\"service\":{\"uptime_s\":";
  out += JsonDouble(uptime_.ElapsedSeconds());
  out += ",\"num_vertices\":" + std::to_string(stats_.num_vertices);
  out += ",\"query_threads\":" + std::to_string(pool_->num_threads());
  out += "},\"epoch\":{\"seq\":" + std::to_string(epoch.seq);
  out += ",\"prefix\":" + std::to_string(epoch.prefix);
  out += ",\"watermark\":" + JsonDouble(epoch.watermark);
  out += ",\"age_s\":" + JsonDouble(EpochAgeSeconds());
  out += "},\"ingest\":{\"done\":";
  out += IngestDone() ? "true" : "false";
  out += ",\"watermark\":" +
         JsonDouble(registry.GetGauge("ingest.watermark")->Value());
  out += ",\"watermark_lag\":" +
         JsonDouble(registry.GetGauge("ingest.watermark_lag")->Value());
  out += ",\"interactions\":" +
         std::to_string(registry.GetCounter("ingest.interactions")->Value());
  out += ",\"interactions_per_s\":" +
         JsonDouble(ops_recorder_ != nullptr
                        ? ops_recorder_->Rate("ingest.interactions")
                        : 0.0);
  out += "},\"queries\":{\"executed\":" +
         std::to_string(registry.GetCounter("serve.queries")->Value());
  out += ",\"submitted\":" +
         std::to_string(registry.GetCounter("serve.queries_submitted")->Value());
  out += ",\"per_s\":" + JsonDouble(ops_recorder_ != nullptr
                                        ? ops_recorder_->Rate("serve.queries")
                                        : 0.0);
  out += ",\"slow_recorded\":" + std::to_string(slow.recorded());
  // The runtime block: which kernel table this process dispatches to
  // (fixed at startup; see util/cpu.h) and the scheduler's shape.
  out += "},\"runtime\":{\"simd\":\"";
  out += cpu::SimdLevelName(cpu::ActiveSimdLevel());
  out += "\",\"simd_detected\":\"";
  out += cpu::SimdLevelName(cpu::DetectSimdLevel());
  out += "\",\"avx512\":";
  out += cpu::DetectAvx512() ? "true" : "false";
  out += ",\"num_threads\":" + std::to_string(HardwareThreads());
  out += ",\"parallel_tasks\":" +
         std::to_string(registry.GetCounter("parallel.tasks")->Value());
  out += ",\"parallel_steals\":" +
         std::to_string(registry.GetCounter("parallel.steals")->Value());
  out += "},\"memory\":{\"total_bytes\":" + JsonDouble(registry.MemoryBytes());
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (name.rfind("memory.", 0) != 0) continue;
    out += ",\"" + name + "\":" + JsonDouble(value);
  }
  out += "},\"storage\":{\"enabled\":";
  out += durable_ != nullptr ? "true" : "false";
  if (durable_ != nullptr) {
    // prefix/degraded come straight from DurableLog's atomics (safe
    // from this ops thread, and truthful even when TINPROV_METRICS=OFF
    // compiles the gauge mirrors away); the counters are registry-only
    // best-effort stats.
    out += ",\"durable_prefix\":" +
           std::to_string(durable_->prefix());
    out += ",\"degraded\":";
    out += durable_->degraded() ? "true" : "false";
    out += ",\"segments_sealed\":" +
           std::to_string(
               registry.GetCounter("storage.segments_sealed")->Value());
    out += ",\"snapshots_written\":" +
           std::to_string(
               registry.GetCounter("storage.snapshots_written")->Value());
    out += ",\"bytes_written\":" +
           std::to_string(registry.GetCounter("storage.bytes_written")->Value());
    out += ",\"recovered_interactions\":" +
           JsonDouble(
               registry.GetGauge("storage.recovered_interactions")->Value());
  }
  out += "},\"recorder\":{\"samples\":" +
         std::to_string(ops_recorder_ != nullptr ? ops_recorder_->num_samples()
                                                 : 0);
  out += ",\"window_s\":" +
         JsonDouble(ops_recorder_ != nullptr ? ops_recorder_->WindowSeconds()
                                             : 0.0);
  out += "}}";
  return out;
}

StatusOr<uint16_t> ProvenanceService::EnableOpsServer(uint16_t port) {
#if defined(TINPROV_NO_THREADS)
  (void)port;
  return Status::FailedPrecondition(
      "ops server needs threads (built with TINPROV_PARALLEL=OFF)");
#else
  if (ops_server_ != nullptr) {
    return Status::FailedPrecondition("ops server already enabled");
  }

  obs::RecorderOptions recorder_options;
  recorder_options.interval_ms = options_.ops_recorder_interval_ms;
  recorder_options.capacity = options_.ops_recorder_capacity;
  auto recorder = std::make_unique<obs::Recorder>(recorder_options);
  Status status = recorder->Start();
  if (!status.ok()) return status;

  // The health catalogue, thresholds from ServeOptions. Checks run on
  // the ops server's accept thread; everything they touch is either a
  // registry gauge or an atomic on `this` (torn down in
  // DisableOpsServer before `this` dies).
  obs::HealthRegistry& health = obs::HealthRegistry::Global();
  health.Register("serve.epoch_age", [this] {
    obs::HealthResult result;
    result.value = EpochAgeSeconds();
    result.healthy =
        IngestDone() || result.value <= options_.health_max_epoch_age_s;
    result.message =
        "epoch age " + std::to_string(result.value) + "s (limit " +
        std::to_string(options_.health_max_epoch_age_s) +
        (IngestDone() ? "s, ingest done)" : "s while ingesting)");
    return result;
  });
  health.Register("serve.queue_depth",
                  obs::GaugeAtMostCheck("serve.queue_depth",
                                        options_.health_max_queue_depth));
  RegisterIngestHealthChecks(health, options_.health_max_watermark_lag);
  health.Register("trace.drops", [] {
    obs::HealthResult result;
    result.value = static_cast<double>(obs::TraceSink::Global().dropped_events());
    result.healthy = result.value == 0.0;
    result.message = "trace ring dropped " +
                     std::to_string(static_cast<size_t>(result.value)) +
                     " events";
    return result;
  });
  health.Register("tracker.alpha_residue",
                  obs::GaugeAtMostCheck("tracker.alpha_residue",
                                        options_.health_max_alpha_residue));
  health_checks_ = {"serve.epoch_age", "serve.queue_depth",
                    "ingest.watermark_lag", "trace.drops",
                    "tracker.alpha_residue"};
  if (durable_ != nullptr) {
    // storage.durability: healthy while the log has not degraded to
    // memory. Reads DurableLog::degraded() (an atomic latched by the
    // ingest thread) directly rather than the gauge mirror, so the
    // check works in TINPROV_METRICS=OFF builds too; `durable_`
    // outlives the check (unregistered in DisableOpsServer).
    storage::DurableLog* log = durable_.get();
    health.Register("storage.durability", [log] {
      obs::HealthResult result;
      result.value = log->degraded() ? 1.0 : 0.0;
      result.healthy = !log->degraded();
      result.message =
          log->degraded()
              ? "log degraded to memory-only after a storage failure"
              : "appending at prefix " + std::to_string(log->prefix());
      return result;
    });
    // storage.segment_corrupt: any checksum-mismatched record seen by
    // recovery means bit rot on this disk — surface it even though
    // recovery itself carried on.
    health.Register("storage.segment_corrupt", [] {
      obs::HealthResult result;
      result.value = static_cast<double>(obs::MetricsRegistry::Global()
                                             .GetCounter(
                                                 "storage.segment_corrupt")
                                             ->Value());
      result.healthy = result.value == 0.0;
      result.message =
          "recovery saw " +
          std::to_string(static_cast<uint64_t>(result.value)) +
          " corrupt segment record(s)";
      return result;
    });
    const uint64_t min_free = options_.durability.min_free_disk_bytes;
    storage::Env* env = durable_->env();
    const std::string dir = durable_->dir();
    health.Register("storage.disk_headroom", [env, dir, min_free] {
      obs::HealthResult result;
      auto free_bytes = env->FreeDiskBytes(dir);
      result.value =
          free_bytes.ok() ? static_cast<double>(*free_bytes) : 0.0;
      result.healthy = free_bytes.ok() && *free_bytes >= min_free;
      result.message =
          free_bytes.ok()
              ? std::to_string(*free_bytes) + " bytes free (floor " +
                    std::to_string(min_free) + ")"
              : "statvfs failed: " + std::string(free_bytes.status().message());
      return result;
    });
    health_checks_.push_back("storage.durability");
    health_checks_.push_back("storage.segment_corrupt");
    health_checks_.push_back("storage.disk_headroom");
  }

  auto server = std::make_unique<obs::OpsServer>();
  server->SetHandler("/statusz", [this](std::string_view) {
    obs::HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson();
    return response;
  });
  status = server->Start(port);
  if (!status.ok()) {
    recorder->Stop();
    for (const std::string& name : health_checks_) health.Unregister(name);
    health_checks_.clear();
    return status;
  }
  ops_recorder_ = std::move(recorder);
  ops_server_ = std::move(server);
  return ops_server_->port();
#endif
}

void ProvenanceService::DisableOpsServer() {
  // Accept thread first: its handlers read `this` and the recorder.
  if (ops_server_ != nullptr) ops_server_->Stop();
  if (ops_recorder_ != nullptr) ops_recorder_->Stop();
  for (const std::string& name : health_checks_) {
    obs::HealthRegistry::Global().Unregister(name);
  }
  health_checks_.clear();
  ops_server_.reset();
  ops_recorder_.reset();
}

}  // namespace tinprov
