// ProvenanceService: snapshot-isolated provenance queries over a live
// ingest — the serve-while-ingesting layer.
//
// Every earlier layer assumes one thread owns the tracker; this one
// splits the work. A single writer thread drives a StreamIngestor over
// the live tracker and, every epoch_interval interactions, publishes an
// *epoch*: the tracker's SaveState byte image restored into a fresh
// read-only tracker, plus the watermark/prefix it is consistent with.
// Reader threads answer Provenance(v), Provenance(v, t), and top-k
// origin queries against published epochs only — they never touch the
// live tracker and never take the writer's lock.
//
// Concurrency model (RCU-style epoch pinning):
//   - The service holds one std::shared_ptr<const EpochView>, published
//     with std::atomic_store (release) and pinned by readers with
//     std::atomic_load (acquire). An EpochView is immutable after
//     publication; pinning it keeps every state it references — the
//     ring of recent epoch trackers, the log chunks, the snapshot byte
//     images — alive for the duration of the query, however far the
//     writer advances meanwhile.
//   - The log is chunked and append-only: fixed-capacity chunks whose
//     backing arrays never move, so a published view's chunk pointers
//     stay valid while the writer fills later slots. Readers only read
//     entries below their pinned view's prefix, all written before the
//     view's release-store — no torn reads, no locks, TSan-clean.
//   - Writer-side state (live tracker, chunk list, snapshot list) is
//     touched only by the writer thread.
//
// Consistency guarantees:
//   - Provenance(v) / TopOrigins(v, k) answer from the newest published
//     epoch: a consistent prefix of the stream, bit-identical to a
//     stop-the-world query at that epoch's watermark. Staleness is
//     bounded by epoch_interval interactions (plus one in-flight
//     batch); the answer's EpochInfo says exactly which watermark it
//     reflects.
//   - Provenance(v, t) is exact for any t at or below the pinned
//     epoch's watermark: resolved from a ring epoch when one matches,
//     otherwise nearest retained snapshot + delta replay of the pinned
//     log (the TimeTravelIndex recipe, online). For t beyond the
//     watermark the answer is the epoch state — complete through the
//     watermark, with EpochInfo reporting the gap.
//   - A service seeded from a finalized TimeTravelIndex answers
//     t < the handoff watermark from the index and later times from its
//     own log; the live tracker starts from the index's final state, so
//     the two regimes meet bit-exactly at the boundary.
#ifndef TINPROV_SERVE_SERVICE_H_
#define TINPROV_SERVE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "analytics/registry.h"
#include "core/buffer.h"
#include "core/tin.h"
#include "core/types.h"
#include "lazy/time_travel.h"
#include "parallel/sharded_replay.h"
#include "serve/request_queue.h"
#include "storage/durable_log.h"
#include "storage/recovery.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"
#include "util/status.h"
#include "util/stopwatch.h"

#if !defined(TINPROV_NO_THREADS)
#include <thread>
#endif

namespace tinprov {

namespace obs {
class OpsServer;
class Recorder;
}  // namespace obs

/// Durability wiring for a service (ServeOptions::durability). With a
/// non-empty dir the service recovers whatever the directory holds on
/// construction (newest valid snapshot + checksummed log replay,
/// truncating at the first torn or corrupt record), seeds its live
/// tracker and a TimeTravelIndex from the recovered state, then keeps
/// the directory current: every applied micro-batch lands in the
/// segment log, every published epoch's byte image becomes a snapshot.
/// A restart therefore resumes bit-identically to a clean replay of
/// the recovered prefix.
struct DurabilityOptions {
  /// Storage directory (created if missing). Empty = in-memory only —
  /// the pre-durability behavior, and the default.
  std::string dir;
  /// Filesystem boundary; null = storage::Env::Posix(). Tests pass a
  /// FaultInjectingEnv here to crash the pipeline at exact I/O ops.
  storage::Env* env = nullptr;
  /// Segment rotation / per-batch fsync / fail-stop-vs-degrade policy.
  storage::DurableLogOptions log;
  /// Recover existing state on construction. Off opens the directory
  /// for appending only (a deliberate restart-from-scratch keeps old
  /// segments dead weight — prefer a fresh dir).
  bool recover = true;
  /// Snapshot interval of the TimeTravelIndex built over the recovered
  /// log (pre-crash historical queries).
  size_t history_snapshot_interval = 4096;
  /// storage.disk_headroom health check trips below this many free
  /// bytes on dir's filesystem.
  uint64_t min_free_disk_bytes = 64ull << 20;

  bool Enabled() const { return !dir.empty(); }
};

struct ServeOptions {
  /// Interactions between epoch publishes. Lower = fresher reads,
  /// higher publish cost (one SaveState/RestoreState round per epoch).
  size_t epoch_interval = 4096;
  /// Recent epochs kept pinned by new views (older epochs survive only
  /// while an in-flight reader still pins them). The ring gives
  /// historical queries an exact-prefix fast path and bounds how much
  /// restored-tracker state the service itself keeps alive.
  size_t ring_size = 4;
  /// StreamIngestor micro-batch size for the writer.
  size_t ingest_batch = 1024;
  /// Retain the ingested log (chunked) and every epoch's byte image so
  /// Provenance(v, t) can delta-replay to arbitrary past times. With
  /// retention off, standing memory stops growing with the stream and
  /// historical queries resolve only from the ring (or the handoff
  /// index); anything older returns FailedPrecondition.
  bool retain_history = true;
  /// Worker threads for the Submit() queue. 0 = inline execution; the
  /// direct query methods never use the pool either way.
  size_t num_query_threads = 0;

  /// Shard/thread layout for Catchup()'s vertex-sharded bulk ingest
  /// (parallel/sharded_ingest.h). Defaults shard one-per-hardware-
  /// thread; the spec decides whether sharding is sound, so a
  /// non-decomposable tracker silently takes the sequential path.
  ParallelParams catchup;

  // --- Ops plane (EnableOpsServer / the slow-query log) ------------------

  /// Execute()/Submit() queries slower than this land in the
  /// process-wide SlowQueryLog (/tracez?slow=1 on the ops server).
  /// 0 disables recording; ids are stamped either way.
  int64_t slow_query_ns = 1'000'000;  // 1 ms

  /// /healthz thresholds, wired when EnableOpsServer runs. Age applies
  /// only while ingest is live (a drained service is never stale);
  /// infinite limits report their value but never trip.
  double health_max_epoch_age_s = 60.0;
  double health_max_queue_depth = 65536.0;
  double health_max_watermark_lag = std::numeric_limits<double>::infinity();
  double health_max_alpha_residue = std::numeric_limits<double>::infinity();

  /// EnableOpsServer's metrics recorder: sampling period and ring bound
  /// (the ring always holds the most recent capacity*interval window).
  int64_t ops_recorder_interval_ms = 250;
  size_t ops_recorder_capacity = 512;

  // --- Durability (storage/ layer) ---------------------------------------

  /// Off (empty dir) by default. See DurabilityOptions.
  DurabilityOptions durability;
};

class ProvenanceService {
 public:
  /// A service for `spec` over a dataset of shape `stats`, starting
  /// from empty state. The spec must be TrackerMode::kStreaming — the
  /// service only ever sees a stream.
  static StatusOr<std::unique_ptr<ProvenanceService>> Create(
      const TrackerSpec& spec, const DatasetStats& stats,
      ServeOptions options = {});

  /// As Create(), but seeded from a finalized TimeTravelIndex: the live
  /// tracker restores the index's final state (SaveFinalState) and
  /// Provenance(v, t) routes times below the handoff watermark through
  /// the index. The factory `spec` must build trackers configured
  /// identically to the index's own, or the restore fails.
  static StatusOr<std::unique_ptr<ProvenanceService>> CreateWithHistory(
      const TrackerSpec& spec, const DatasetStats& stats,
      std::shared_ptr<const TimeTravelIndex> history,
      ServeOptions options = {});

  /// Stops ingest (joins the writer) and the worker pool.
  ~ProvenanceService();

  ProvenanceService(const ProvenanceService&) = delete;
  ProvenanceService& operator=(const ProvenanceService&) = delete;

  // --- Writer side -------------------------------------------------------

  /// Bulk-loads historical data before serving begins: drains `stream`
  /// (owned) through the vertex-sharded parallel ingest engine on the
  /// calling thread, installs the resulting tracker — bit-identical to
  /// a sequential ingest of the same stream — as the live tracker, and
  /// publishes it as an epoch. Start() then continues with the live
  /// tail from the catchup watermark. Must run before Start(), at most
  /// once, from empty state (no handoff index) and with durability off
  /// (the catchup batches would bypass the durable log). With history
  /// retention on, the catchup interactions land in the retained log,
  /// so Provenance(v, t) works across the catchup range exactly as if
  /// the writer had ingested it.
  Status Catchup(std::unique_ptr<InteractionStream> stream);

  /// Catchup accounting (parallel or fallback path). Valid after a
  /// successful Catchup().
  const IngestStats& catchup_stats() const { return catchup_stats_; }

  /// Starts the writer thread ingesting `stream` (owned). One ingest per
  /// service. In TINPROV_NO_THREADS builds the whole ingest runs
  /// synchronously inside Start(), publishing epochs along the way.
  Status Start(std::unique_ptr<InteractionStream> stream);

  /// Blocks until the writer has drained its stream; returns the ingest
  /// status. Idempotent. After an OK return, the final epoch (every
  /// interaction applied) is published and ingest_stats() is valid.
  Status WaitIngest();

  /// True once the writer has finished (successfully or not) — readers
  /// can poll this without blocking.
  bool IngestDone() const {
    return ingest_done_.load(std::memory_order_acquire);
  }

  /// Final ingest accounting. Valid only after WaitIngest().
  const IngestStats& ingest_stats() const { return final_ingest_stats_; }

  // --- Reader side (thread-safe, wait-free vs the writer) ----------------

  /// Provenance of `v` at the newest published epoch.
  QueryResult Provenance(VertexId v) const;

  /// Provenance of `v` at historical time `t` — see the consistency
  /// notes above for how t relates to the handoff index, the retained
  /// log, and the epoch watermark.
  QueryResult Provenance(VertexId v, Timestamp t) const;

  /// The k origins contributing the most quantity to v's buffer at the
  /// newest epoch, sorted by quantity descending (origin id ascending
  /// on ties, so results are deterministic). buffer.total remains the
  /// full buffered quantity.
  QueryResult TopOrigins(VertexId v, size_t k) const;

  /// Executes any request — the QueryWorkerPool executor.
  QueryResult Execute(const QueryRequest& request) const;

  /// Queues a request on the worker pool (inline when the pool has no
  /// threads). Thread-safe.
  std::future<QueryResult> Submit(QueryRequest request);

  /// Identity of the newest published epoch.
  EpochInfo LatestEpoch() const;

  size_t num_query_threads() const { return pool_->num_threads(); }
  size_t num_vertices() const { return stats_.num_vertices; }

  // --- Ops plane ---------------------------------------------------------

  /// Starts the embedded ops endpoint on 127.0.0.1:`port` (0 picks an
  /// ephemeral port; the bound port is returned). Wires the whole
  /// plane: the service-aware /statusz page, a metrics Recorder
  /// sampling at ops_recorder_interval_ms, and the health checks
  /// (serve.epoch_age, serve.queue_depth, ingest.watermark_lag,
  /// trace.drops, tracker.alpha_residue) against the ServeOptions
  /// thresholds. One ops server per service; FailedPrecondition when
  /// already enabled or built without threads.
  StatusOr<uint16_t> EnableOpsServer(uint16_t port);

  /// Stops the endpoint and recorder and unregisters the service's
  /// health checks. Idempotent; the destructor calls it.
  void DisableOpsServer();

  /// The recorder EnableOpsServer started (time-series export), or
  /// null while the ops plane is down.
  const obs::Recorder* ops_recorder() const { return ops_recorder_.get(); }

  /// The /statusz document: uptime, the newest epoch exactly as a
  /// pinned reader sees it, ingest progress and windowed rates, query
  /// accounting, and every memory.* gauge. Valid with or without the
  /// ops server running (the handler calls this).
  std::string StatuszJson() const;

  /// Seconds since the newest epoch was published (any thread).
  double EpochAgeSeconds() const;

 private:
  struct EpochView;  // service.cc: the immutable published state

  ProvenanceService(TrackerFactory factory, TrackerSpec spec,
                    const DatasetStats& stats, const ServeOptions& options,
                    std::shared_ptr<const TimeTravelIndex> history);

  /// Builds and publishes epoch 0 (initial or handoff state).
  Status Init(const std::vector<uint8_t>* handoff_state);

  /// Writer body: drains stream_, publishing epochs along the way.
  Status RunIngest();

  /// Writer (via LogSink): appends one pulled interaction to the
  /// chunked log. No-op when history retention is off.
  void AppendLog(const Interaction& interaction);

  /// Writer: publishes the current live-tracker state as a new epoch.
  Status PublishEpoch(size_t prefix, Timestamp watermark);

  /// Reader: pins the newest view.
  std::shared_ptr<const EpochView> PinView() const {
    return std::atomic_load_explicit(&latest_, std::memory_order_acquire);
  }

  QueryResult ProvenanceAt(VertexId v, Timestamp t) const;

  /// The kind switch Execute() wraps with id/latency/slow-log bookkeeping.
  QueryResult Dispatch(const QueryRequest& request) const;

  TrackerFactory factory_;
  TrackerSpec tracker_spec_;  // for Catchup()'s ShardedSpec lookup
  DatasetStats stats_;
  ServeOptions options_;
  std::shared_ptr<const TimeTravelIndex> history_;
  Timestamp history_watermark_;  // meaningful iff history_ != nullptr
  /// Watermark the live ingest must resume at or above: the handoff
  /// watermark, raised by Catchup() to the catchup watermark.
  Timestamp resume_watermark_;

  // Writer-owned after Start() (and during Init).
  std::unique_ptr<Tracker> live_tracker_;
  std::unique_ptr<InteractionStream> stream_;
  /// Durable log, or null when ServeOptions::durability is off. Written
  /// by the writer thread; other threads observe it through the
  /// storage.* gauges only.
  std::unique_ptr<storage::DurableLog> durable_;
  /// Recovered global prefix — the durable log position local epoch
  /// prefixes are offset by (snapshot files carry global positions).
  uint64_t durable_base_ = 0;
  class LogSink;  // service.cc: tee stream appending into the chunked log
  std::vector<std::shared_ptr<std::vector<Interaction>>> chunks_;
  size_t log_size_ = 0;
  /// Interactions applied before the writer's own ingest begins —
  /// Catchup()'s count. Epoch prefixes offset by it so they keep
  /// indexing the full retained log.
  size_t prefix_base_ = 0;
  size_t snapshot_bytes_ = 0;  // running total of retained byte images
  uint64_t next_seq_ = 0;
  Stopwatch since_publish_;  // serve.epoch_age_ns at publish time

  // Shared: the RCU-published view; writer stores, readers load.
  std::shared_ptr<const EpochView> latest_;

  std::atomic<bool> started_{false};
  std::atomic<bool> ingest_done_{false};
  bool ingest_joined_ = false;
  bool caught_up_ = false;
  Status ingest_status_;
  IngestStats final_ingest_stats_;
  IngestStats catchup_stats_;
#if !defined(TINPROV_NO_THREADS)
  std::thread writer_;
#endif
  std::unique_ptr<QueryWorkerPool> pool_;

  // Ops plane (EnableOpsServer). last_publish_ns_ mirrors
  // since_publish_ in a form any thread may read (the health check and
  // /statusz run on the ops server's accept thread).
  Stopwatch uptime_;  // never restarted; reads are race-free
  std::atomic<int64_t> last_publish_ns_{0};
  std::unique_ptr<obs::OpsServer> ops_server_;
  std::unique_ptr<obs::Recorder> ops_recorder_;
  std::vector<std::string> health_checks_;  // names registered, for teardown
};

}  // namespace tinprov

#endif  // TINPROV_SERVE_SERVICE_H_
