#include "storage/durable_log.h"

#include <utility>

#include "obs/metrics.h"
#include "storage/log_format.h"

namespace tinprov::storage {

DurableLog::DurableLog(Env* env, std::string dir, uint64_t start_prefix,
                       uint64_t start_seq, DurableLogOptions options)
    : env_(env),
      dir_(std::move(dir)),
      options_(options),
      snapshots_(env, dir_),
      prefix_(start_prefix),
      next_seq_(start_seq) {}

StatusOr<std::unique_ptr<DurableLog>> DurableLog::Open(
    Env* env, const std::string& dir, uint64_t start_prefix,
    uint64_t start_seq, DurableLogOptions options) {
  if (options.rotate_bytes == 0) options.rotate_bytes = 1;
  Status status = env->CreateDir(dir);
  if (!status.ok()) return status;
  std::unique_ptr<DurableLog> log(
      new DurableLog(env, dir, start_prefix, start_seq, options));
  status = log->snapshots_.SweepTempFiles();
  if (!status.ok()) return status;
  TINPROV_GAUGE_SET("storage.degraded", 0);
  TINPROV_GAUGE_SET("storage.durable_prefix", start_prefix);
  return log;
}

DurableLog::~DurableLog() { (void)Seal(); }

Status DurableLog::OnFailure(Status status) {
  TINPROV_COUNTER_ADD("storage.failures", 1);
  if (options_.failure_policy == FailurePolicy::kFailStop) return status;
  // Degrade: latch, drop the writer (its fd may be poisoned), and keep
  // the pipeline alive. The health check, not a crash, reports this.
  degraded_ = true;
  active_.reset();
  TINPROV_GAUGE_SET("storage.degraded", 1);
  return Status::Ok();
}

Status DurableLog::EnsureSegment() {
  if (active_ != nullptr) return Status::Ok();
  auto writer = SegmentWriter::Open(
      env_, JoinPath(dir_, SegmentFileName(next_seq_)), prefix_);
  if (!writer.ok()) return writer.status();
  ++next_seq_;
  active_ = *std::move(writer);
  return Status::Ok();
}

Status DurableLog::Append(const Interaction* batch, size_t count) {
  if (count == 0) return Status::Ok();
  // A fresh segment must open BEFORE the global count advances: its
  // base_prefix is the number of interactions already logged, which is
  // what recovery's continuity check compares against.
  Status status = degraded_ ? Status::Ok() : EnsureSegment();
  if (status.ok() && !degraded_) status = active_->Append(batch, count);
  if (status.ok() && !degraded_ && options_.sync_each_append) {
    status = active_->Sync();
  }
  // The global count advances even while degraded or failing: it tracks
  // what the pipeline applied, so snapshots written after recovery from
  // degradation (next restart) line up with the in-memory state.
  prefix_ += count;
  TINPROV_GAUGE_SET("storage.durable_prefix", prefix_);
  if (degraded_) return Status::Ok();
  if (!status.ok()) return OnFailure(status);
  if (active_->bytes_written() >= options_.rotate_bytes) {
    status = active_->Seal();
    active_.reset();
    if (!status.ok()) return OnFailure(status);
  }
  return Status::Ok();
}

Status DurableLog::Sync() {
  if (degraded_ || active_ == nullptr) return Status::Ok();
  const Status status = active_->Sync();
  if (!status.ok()) return OnFailure(status);
  return Status::Ok();
}

Status DurableLog::WriteSnapshot(uint64_t prefix, Timestamp watermark,
                                 const std::vector<uint8_t>& state) {
  if (degraded_) return Status::Ok();
  // Log first: a snapshot at prefix P is only usable when the log's
  // trusted length reaches P, so P's bytes must hit the disk before the
  // snapshot becomes visible.
  Status status = Sync();
  if (!status.ok() || degraded_) return status;
  status = snapshots_.Write(prefix, watermark, state);
  if (!status.ok()) return OnFailure(status);
  return Status::Ok();
}

Status DurableLog::Seal() {
  if (degraded_ || active_ == nullptr) return Status::Ok();
  const Status status = active_->Seal();
  active_.reset();
  if (!status.ok()) return OnFailure(status);
  return Status::Ok();
}

}  // namespace tinprov::storage
