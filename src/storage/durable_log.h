// DurableLog: the write side of durability — rotating checksummed
// segments plus the snapshot store, behind one failure policy.
//
// The serve layer appends every applied micro-batch here and persists
// each published epoch's byte image as a snapshot; RecoveryManager
// (storage/recovery.h) reads the same directory back after a crash.
// Rotation seals the active segment (footer zone map + fsync) past
// rotate_bytes, so long ingests shard into bounded files recovery can
// scan and zone-map away independently.
//
// Failure policy — what a storage error does to the pipeline:
//   kFailStop  The error propagates; the ingest loop stops. Nothing is
//              acknowledged that is not durable. The default.
//   kDegrade   The log latches degraded(), stops touching the disk, and
//              reports Ok: ingest and serving continue from memory, the
//              storage.degraded gauge flips, and /healthz (via the
//              storage.durability check) reports unhealthy instead of
//              the writer crashing. Durability resumes only with a
//              restart.
#ifndef TINPROV_STORAGE_DURABLE_LOG_H_
#define TINPROV_STORAGE_DURABLE_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "storage/env.h"
#include "storage/segment.h"
#include "storage/snapshot_store.h"
#include "util/status.h"

namespace tinprov::storage {

enum class FailurePolicy {
  kFailStop,
  kDegrade,
};

struct DurableLogOptions {
  /// Seal the active segment and open the next once it holds at least
  /// this many bytes (checked after each append, so one oversized batch
  /// still lands in a single segment).
  uint64_t rotate_bytes = 4ull << 20;
  /// fsync after every appended batch. Off trades the tail of the log
  /// (everything since the last rotation or snapshot) for throughput —
  /// recovery still stops cleanly at the torn tail either way.
  bool sync_each_append = true;
  FailurePolicy failure_policy = FailurePolicy::kFailStop;
};

class DurableLog {
 public:
  /// Opens the log rooted at `dir` (created if missing), resuming the
  /// global interaction count at `start_prefix` and numbering new
  /// segments from `start_seq` — both come from RecoveryManager (0/0
  /// for a fresh directory). Sweeps stale snapshot temp files.
  static StatusOr<std::unique_ptr<DurableLog>> Open(
      Env* env, const std::string& dir, uint64_t start_prefix,
      uint64_t start_seq, DurableLogOptions options = {});

  /// Best-effort Seal() — a clean shutdown should call Seal() itself
  /// and look at the status.
  ~DurableLog();

  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Appends one applied micro-batch as a single record, rotating
  /// afterwards when the active segment is full. Under kDegrade a
  /// storage failure returns Ok and latches degraded().
  Status Append(const Interaction* batch, size_t count);

  /// Makes every appended batch durable.
  Status Sync();

  /// Persists `state` as the snapshot at global interaction index
  /// `prefix`, syncing the log first so a snapshot never claims a
  /// prefix the log cannot back. Subject to the failure policy.
  Status WriteSnapshot(uint64_t prefix, Timestamp watermark,
                       const std::vector<uint8_t>& state);

  /// Seals the active segment (footer + fsync + close). The next
  /// append opens a new segment. Idempotent.
  Status Seal();

  /// Interactions appended over this log's lifetime plus start_prefix —
  /// the global index the next append receives. Durable up to the last
  /// Sync/rotation; the torn tail past that is what recovery truncates.
  /// Safe to read from any thread (statusz reads it off the ops
  /// thread while the ingest thread appends).
  uint64_t prefix() const {
    return prefix_.load(std::memory_order_relaxed);
  }

  /// True once a storage failure was swallowed under kDegrade: the disk
  /// is no longer being written and recovery will see state no newer
  /// than the failure point. Safe to read from any thread — /healthz
  /// and /statusz poll it while the ingest thread owns the log.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  SnapshotStore& snapshots() { return snapshots_; }
  const std::string& dir() const { return dir_; }
  Env* env() const { return env_; }

 private:
  DurableLog(Env* env, std::string dir, uint64_t start_prefix,
             uint64_t start_seq, DurableLogOptions options);

  /// Routes a storage error through the failure policy: kFailStop
  /// passes it along, kDegrade latches degraded() and absorbs it.
  Status OnFailure(Status status);

  /// Ensures an active segment writer exists.
  Status EnsureSegment();

  Env* env_;
  std::string dir_;
  DurableLogOptions options_;
  SnapshotStore snapshots_;
  std::unique_ptr<SegmentWriter> active_;
  // Atomics, not just gauges: the ops-plane surfaces (health checks,
  // /statusz) read these directly so they stay truthful even in
  // TINPROV_METRICS=OFF builds where the gauge mirrors compile away.
  std::atomic<uint64_t> prefix_;
  uint64_t next_seq_;
  std::atomic<bool> degraded_{false};
};

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_DURABLE_LOG_H_
