#include "storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tinprov::storage {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string message = op + " " + path + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(message);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(message);
  }
  return Status::Unavailable(message);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const uint8_t* data, size_t n) override {
    if (fd_ < 0) return Status::FailedPrecondition("append to closed file");
    while (n > 0) {
      const ssize_t written = ::write(fd_, data, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_, errno);
      }
      data += written;
      n -= static_cast<size_t>(written);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("sync of closed file");
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_, errno);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_, errno);
    return Status::Ok();
  }

 private:
  std::string path_;
  int fd_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, uint8_t* out,
              size_t* bytes_read) const override {
    *bytes_read = 0;
    while (*bytes_read < n) {
      const ssize_t got =
          ::pread(fd_, out + *bytes_read, n - *bytes_read,
                  static_cast<off_t>(offset + *bytes_read));
      if (got < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread", path_, errno);
      }
      if (got == 0) break;  // end of file: short read, not an error
      *bytes_read += static_cast<size_t>(got);
    }
    return Status::Ok();
  }

  StatusOr<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat", path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(path, fd));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path, errno);
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixRandomAccessFile>(path, fd));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat", path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", dir, errno);
    std::vector<std::string> names;
    while (const struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", dir, errno);
    }
    return Status::Ok();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path, errno);
    return Status::Ok();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to, errno);
    }
    return Status::Ok();
  }

  StatusOr<uint64_t> FreeDiskBytes(const std::string& path) override {
    struct statvfs fs;
    if (::statvfs(path.c_str(), &fs) != 0) {
      return ErrnoStatus("statvfs", path, errno);
    }
    return static_cast<uint64_t>(fs.f_bavail) *
           static_cast<uint64_t>(fs.f_frsize);
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();  // leaked like the registries
  return env;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  if (dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

}  // namespace tinprov::storage
