// Env: the storage layer's operating-system boundary.
//
// Everything in src/storage/ reaches the filesystem through this
// interface, never through raw POSIX calls, for one reason: crash
// recovery is only trustworthy if every failure mode the kernel can
// produce — failed writes, short writes, torn tails, bit rot, missing
// fsync — can be produced on demand in a unit test. Env::Posix() is the
// real implementation; storage/fault_env.h wraps any Env and injects
// those failures at exact operation counts, so the recovery tests run
// the same code the production path runs.
//
// Error vocabulary: NotFound for missing paths, Unavailable for I/O
// failures (the degradation policy's trigger), InvalidArgument for
// caller mistakes. Short reads at end of file are not errors — Read
// reports the byte count and the caller decides.
#ifndef TINPROV_STORAGE_ENV_H_
#define TINPROV_STORAGE_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace tinprov::storage {

/// Sequential append-only sink. Append buffers in the OS; Sync makes
/// everything appended so far durable (flush + fsync). Close without
/// Sync is allowed — durability is then whatever the OS got around to,
/// exactly the window crash recovery must tolerate.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const uint8_t* data, size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Positional reader. Thread-compatible: concurrent Read calls on one
/// instance are safe (pread semantics), mutation is the caller's lock.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset` into `out`; `*bytes_read` < n
  /// signals end of file, not an error.
  virtual Status Read(uint64_t offset, size_t n, uint8_t* out,
                      size_t* bytes_read) const = 0;

  virtual StatusOr<uint64_t> Size() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX implementation (never destroyed).
  static Env* Posix();

  /// Creates or truncates `path` for appending.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  /// Plain entries of `dir` (no dot entries), unsorted.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// mkdir -p semantics for one level: Ok when `dir` already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Atomic replace (POSIX rename): the visibility primitive the
  /// snapshot store's write-temp-then-rename protocol builds on.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Free bytes on the filesystem holding `path` — the disk-headroom
  /// health check's input. Implementations without a notion of disk
  /// space may report a large constant.
  virtual StatusOr<uint64_t> FreeDiskBytes(const std::string& path) = 0;
};

/// `dir` + "/" + `name` without doubling separators.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_ENV_H_
