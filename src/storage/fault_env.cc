#include "storage/fault_env.h"

#include <utility>

namespace tinprov::storage {

std::string_view FaultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone:
      return "none";
    case FaultMode::kFailWrite:
      return "fail-write";
    case FaultMode::kShortWrite:
      return "short-write";
    case FaultMode::kTornWrite:
      return "torn-write";
    case FaultMode::kCorruptWrite:
      return "corrupt-write";
    case FaultMode::kFailSync:
      return "fail-sync";
    case FaultMode::kFailRead:
      return "fail-read";
    case FaultMode::kCorruptRead:
      return "corrupt-read";
  }
  return "unknown";
}

std::vector<FaultMode> AllFaultModes() {
  return {FaultMode::kFailWrite,    FaultMode::kShortWrite,
          FaultMode::kTornWrite,    FaultMode::kCorruptWrite,
          FaultMode::kFailSync,     FaultMode::kFailRead,
          FaultMode::kCorruptRead};
}

void FaultInjectingEnv::Arm(const FaultPlan& plan) {
  mode_.store(plan.mode, std::memory_order_relaxed);
  trigger_op_.store(plan.trigger_op, std::memory_order_relaxed);
  permanent_.store(plan.permanent, std::memory_order_relaxed);
  tripped_.store(false, std::memory_order_relaxed);
  ops_.store(0, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
}

FaultMode FaultInjectingEnv::NextOp() {
  const FaultMode mode = mode_.load(std::memory_order_relaxed);
  const uint64_t op = ops_.fetch_add(1, std::memory_order_relaxed);
  if (mode == FaultMode::kNone) return FaultMode::kNone;
  // Torn writes latch: once the "crash" happened, nothing later lands.
  // Later ops count as faults too, so FaultWritableFile can tell the
  // first torn op (persist a prefix) from the rest (drop entirely).
  if (mode == FaultMode::kTornWrite &&
      tripped_.load(std::memory_order_relaxed)) {
    faults_.fetch_add(1, std::memory_order_relaxed);
    return mode;
  }
  if (op < trigger_op_.load(std::memory_order_relaxed)) return FaultMode::kNone;
  if (op > trigger_op_.load(std::memory_order_relaxed) &&
      !permanent_.load(std::memory_order_relaxed) &&
      mode != FaultMode::kTornWrite) {
    return FaultMode::kNone;
  }
  if (mode == FaultMode::kTornWrite) {
    tripped_.store(true, std::memory_order_relaxed);
  }
  faults_.fetch_add(1, std::memory_order_relaxed);
  return mode;
}

namespace {

void FlipOneBit(uint8_t* data, size_t n) {
  if (n == 0) return;
  // Deterministic target: the middle byte's low bit. Checksums do not
  // care which bit; determinism keeps test failures reproducible.
  data[n / 2] ^= 0x01;
}

}  // namespace

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(const uint8_t* data, size_t n) override {
    switch (env_->NextOp()) {
      case FaultMode::kFailWrite:
        return Status::Unavailable("injected write failure");
      case FaultMode::kShortWrite: {
        const size_t kept = n / 2;
        if (kept > 0) {
          const Status status = base_->Append(data, kept);
          if (!status.ok()) return status;
        }
        return Status::Unavailable("injected short write (" +
                                   std::to_string(kept) + " of " +
                                   std::to_string(n) + " bytes persisted)");
      }
      case FaultMode::kTornWrite: {
        // First torn op persists a prefix; later ops vanish entirely.
        // Success is reported either way — the "process" does not know
        // it is dead yet.
        if (env_->faults_injected() == 1 && n > 0) {
          const Status status = base_->Append(data, n / 2);
          if (!status.ok()) return status;
        }
        return Status::Ok();
      }
      case FaultMode::kCorruptWrite: {
        std::vector<uint8_t> copy(data, data + n);
        FlipOneBit(copy.data(), copy.size());
        return base_->Append(copy.data(), copy.size());
      }
      default:
        return base_->Append(data, n);
    }
  }

  Status Sync() override {
    switch (env_->NextOp()) {
      case FaultMode::kFailSync:
        return Status::Unavailable("injected sync failure");
      case FaultMode::kTornWrite:
        return Status::Ok();  // the crashed process never synced
      default:
        return base_->Sync();
    }
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectingEnv* env,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, uint8_t* out,
              size_t* bytes_read) const override {
    switch (env_->NextOp()) {
      case FaultMode::kFailRead:
        *bytes_read = 0;
        return Status::Unavailable("injected read failure");
      case FaultMode::kCorruptRead: {
        const Status status = base_->Read(offset, n, out, bytes_read);
        if (status.ok()) FlipOneBit(out, *bytes_read);
        return status;
      }
      default:
        return base_->Read(offset, n, out, bytes_read);
    }
  }

  StatusOr<uint64_t> Size() const override { return base_->Size(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<RandomAccessFile> base_;
};

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, *std::move(base)));
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectingEnv::NewRandomAccessFile(const std::string& path) {
  auto base = base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultRandomAccessFile>(this, *std::move(base)));
}

}  // namespace tinprov::storage
