// FaultInjectingEnv: deterministic disk failure on demand.
//
// Wraps any Env and injects one failure mode at an exact I/O operation
// count, so every recovery test states precisely which byte of which
// write went wrong and replays it forever. The operation counter spans
// every file the env ever opened (Append, Sync, and Read each count
// one op), which is what makes "kill the ingest at operation N" a
// meaningful, repeatable point in a multi-file write schedule.
//
// Modes model the real failure taxonomy:
//   kFailWrite    Append fails cleanly, nothing reaches the base file —
//                 a full disk or pulled device the writer observes.
//   kShortWrite   Append persists a prefix then fails — ENOSPC halfway
//                 through a record; the writer observes the error, the
//                 file keeps the torn tail.
//   kTornWrite    Append persists a prefix and *reports success*; every
//                 later Append/Sync is silently dropped. This is
//                 kill -9 / power loss as the file sees it: the process
//                 believed its writes landed, the disk disagrees.
//   kCorruptWrite Append persists all bytes with one bit flipped and
//                 reports success — silent media corruption under the
//                 checksums.
//   kFailSync     Sync fails; appended bytes stay in the page cache.
//   kFailRead     Read fails (recovery-path I/O error).
//   kCorruptRead  Read succeeds with one bit flipped (bit rot noticed
//                 only at recovery time).
//
// One-shot by default (`permanent` repeats the fault on every later
// op — the disk stayed broken). Thread-safe: counters are atomic.
#ifndef TINPROV_STORAGE_FAULT_ENV_H_
#define TINPROV_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace tinprov::storage {

enum class FaultMode {
  kNone,
  kFailWrite,
  kShortWrite,
  kTornWrite,
  kCorruptWrite,
  kFailSync,
  kFailRead,
  kCorruptRead,
};

/// Display name ("torn-write", ...) for test matrices and logs.
std::string_view FaultModeName(FaultMode mode);

/// Every injectable mode, for fault-matrix loops.
std::vector<FaultMode> AllFaultModes();

struct FaultPlan {
  FaultMode mode = FaultMode::kNone;
  /// The 0-based index of the counted operation the fault fires on.
  uint64_t trigger_op = 0;
  /// Repeat the fault on every operation at or after trigger_op (a disk
  /// that stays broken). kTornWrite is always permanent — a crashed
  /// process never writes again.
  bool permanent = false;
};

class FaultInjectingEnv : public Env {
 public:
  /// Borrows `base` (typically Env::Posix()), which must outlive this.
  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  /// Installs `plan` and resets the operation counter, so trigger_op
  /// counts from this call.
  void Arm(const FaultPlan& plan);

  /// Back to transparent pass-through (counter keeps running).
  void Disarm() { Arm({}); }

  /// Counted operations (Append/Sync/Read) since the last Arm.
  uint64_t op_count() const { return ops_.load(std::memory_order_relaxed); }

  /// Faults fired since the last Arm.
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  StatusOr<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  StatusOr<uint64_t> FreeDiskBytes(const std::string& path) override {
    return base_->FreeDiskBytes(path);
  }

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  /// Returns the mode to inject for this operation (kNone = proceed),
  /// advancing the shared counter.
  FaultMode NextOp();

  Env* base_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> faults_{0};
  // Plan fields are written by Arm (test setup, single-threaded) and
  // read by I/O threads; atomics keep the env TSan-clean without a lock
  // on the per-op fast path.
  std::atomic<FaultMode> mode_{FaultMode::kNone};
  std::atomic<uint64_t> trigger_op_{0};
  std::atomic<bool> permanent_{false};
  std::atomic<bool> tripped_{false};  // torn-write latched?
};

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_FAULT_ENV_H_
