#include "storage/log_format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tinprov::storage {

namespace {

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".tin";
constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".snap";

bool ParseCounterName(const std::string& name, const char* prefix,
                      const char* suffix, uint64_t* value) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return false;
  uint64_t parsed = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = parsed;
  return true;
}

}  // namespace

std::string SegmentFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%010llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seq), kSegmentSuffix);
  return buf;
}

std::string SnapshotFileName(uint64_t prefix) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%017llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(prefix), kSnapshotSuffix);
  return buf;
}

bool ParseSegmentFileName(const std::string& name, uint64_t* seq) {
  return ParseCounterName(name, kSegmentPrefix, kSegmentSuffix, seq);
}

bool ParseSnapshotFileName(const std::string& name, uint64_t* prefix) {
  return ParseCounterName(name, kSnapshotPrefix, kSnapshotSuffix, prefix);
}

}  // namespace tinprov::storage
