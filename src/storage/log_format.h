// On-disk layout of the durable interaction log.
//
// A segment file is a fixed header followed by checksummed records:
//
//   header  := magic(u32) version(u32) base_prefix(u64)
//   record  := masked_crc(u32) payload_len(u32) type(u8) payload
//   segment := header record* [footer-record]
//
// masked_crc covers the type byte and the payload (Crc32cMask'd so
// embedded CRCs never collide with zeroed disk blocks). Integers and
// doubles are written field-wise through util/serialize.h in host
// little-endian layout — the same convention as tracker snapshots.
//
// Two record types exist:
//   kInteractionsRecord  payload = count(u32) then count x
//                        (src u32, dst u32, t f64, quantity f64) —
//                        one ingested micro-batch.
//   kFooterRecord        payload = the SegmentZoneMap below. Written
//                        once by Seal(); its presence marks a segment
//                        cleanly finished. A segment without one is the
//                        active tail (or a crash artifact) and its
//                        record chain is trusted only up to the first
//                        checksum break.
//
// Recovery contract: a reader scans records in order and stops at the
// first incomplete or checksum-mismatched record. Everything before the
// stop is exactly what the writer acknowledged; everything after is
// torn tail or bit rot and is truncated, never interpreted.
#ifndef TINPROV_STORAGE_LOG_FORMAT_H_
#define TINPROV_STORAGE_LOG_FORMAT_H_

#include <cstdint>
#include <limits>
#include <string>

#include "core/types.h"

namespace tinprov::storage {

inline constexpr uint32_t kSegmentMagic = 0x54494e53;  // "TINS"
inline constexpr uint32_t kSnapshotMagic = 0x54494e50;  // "TINP"
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr uint8_t kInteractionsRecord = 1;
inline constexpr uint8_t kFooterRecord = 2;

/// header: magic + version + base_prefix.
inline constexpr size_t kSegmentHeaderBytes = 4 + 4 + 8;
/// record prelude: masked crc + payload length + type.
inline constexpr size_t kRecordHeaderBytes = 4 + 4 + 1;
/// One interaction on the wire: src + dst + t + quantity.
inline constexpr size_t kInteractionWireBytes = 4 + 4 + 8 + 8;

/// Per-segment vertex/time bounds — the zone map that lets a reader
/// (influence cones, prefix replay, time travel) skip whole segments
/// whose [min_t, max_t] or vertex range cannot intersect its query.
struct SegmentZoneMap {
  uint64_t num_records = 0;       // data records, excluding the footer
  uint64_t num_interactions = 0;
  VertexId min_vertex = std::numeric_limits<VertexId>::max();
  VertexId max_vertex = 0;
  Timestamp min_t = std::numeric_limits<Timestamp>::infinity();
  Timestamp max_t = -std::numeric_limits<Timestamp>::infinity();
  uint64_t base_prefix = 0;  // global index of this segment's first entry

  void Observe(const Interaction& interaction) {
    ++num_interactions;
    min_vertex = interaction.src < min_vertex ? interaction.src : min_vertex;
    min_vertex = interaction.dst < min_vertex ? interaction.dst : min_vertex;
    max_vertex = interaction.src > max_vertex ? interaction.src : max_vertex;
    max_vertex = interaction.dst > max_vertex ? interaction.dst : max_vertex;
    min_t = interaction.t < min_t ? interaction.t : min_t;
    max_t = interaction.t > max_t ? interaction.t : max_t;
  }

  bool OverlapsTime(Timestamp lo, Timestamp hi) const {
    return num_interactions > 0 && min_t <= hi && lo <= max_t;
  }

  bool ContainsVertex(VertexId v) const {
    return num_interactions > 0 && min_vertex <= v && v <= max_vertex;
  }
};

/// seg-0000000042.tin / snap-00000000000001024.snap style names, fixed
/// width so lexicographic directory order equals numeric order.
std::string SegmentFileName(uint64_t seq);
std::string SnapshotFileName(uint64_t prefix);

/// Parses the counter out of a storage file name; returns false for
/// foreign files (editors, temp files), which the scanners skip.
bool ParseSegmentFileName(const std::string& name, uint64_t* seq);
bool ParseSnapshotFileName(const std::string& name, uint64_t* prefix);

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_LOG_FORMAT_H_
