#include "storage/recovery.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "storage/log_format.h"
#include "storage/segment.h"
#include "storage/snapshot_store.h"

namespace tinprov::storage {

Status ReadLog(Env* env, const std::string& dir, ReadLogResult* out) {
  *out = ReadLogResult();
  if (!env->FileExists(dir)) return Status::Ok();
  auto names = env->ListDir(dir);
  if (!names.ok()) return names.status();

  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (!ParseSegmentFileName(name, &seq)) continue;
    segments.push_back({seq, name});
    out->next_seq = std::max(out->next_seq, seq + 1);
  }
  std::sort(segments.begin(), segments.end());

  bool broken = false;
  for (const auto& [seq, name] : segments) {
    if (broken) {
      ++out->segments_dropped;
      continue;
    }
    SegmentReadResult segment;
    const Status status = ReadSegment(env, JoinPath(dir, name), &segment);
    if (!status.ok()) return status;
    ++out->segments_scanned;

    // Continuity: a segment extends the trusted log only from exactly
    // its end. After a truncated tail, only a writer that recovered to
    // that same prefix (and so opened its segment there) lines up.
    if (segment.base_prefix != out->interactions.size()) {
      if (segment.end == SegmentEnd::kTorn && segment.interactions.empty() &&
          !segment.sealed) {
        // A header-less or header-only file (crash during segment
        // creation) carries no data and no position claim worth
        // honouring; count the tear and keep scanning.
        ++out->torn_tails;
        continue;
      }
      broken = true;
      ++out->segments_dropped;
      ++out->corrupt_records;
      TINPROV_COUNTER_ADD("storage.segment_corrupt", 1);
      continue;
    }

    out->interactions.insert(out->interactions.end(),
                             segment.interactions.begin(),
                             segment.interactions.end());
    if (segment.end == SegmentEnd::kTorn) {
      ++out->torn_tails;
      TINPROV_COUNTER_ADD("storage.segment_torn", 1);
    } else if (segment.end == SegmentEnd::kCorrupt) {
      ++out->corrupt_records;
      TINPROV_COUNTER_ADD("storage.segment_corrupt", 1);
    }
  }
  return Status::Ok();
}

RecoveryManager::RecoveryManager(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

StatusOr<RecoveredState> RecoveryManager::Recover(
    const TrackerFactory& factory) const {
  TINPROV_SCOPED_LATENCY_NS("storage.recovery_ns");
  RecoveredState out;

  ReadLogResult log;
  Status status = ReadLog(env_, dir_, &log);
  if (!status.ok()) return status;
  out.log = std::move(log.interactions);
  out.prefix = out.log.size();
  out.torn_tails = log.torn_tails;
  out.corrupt_records = log.corrupt_records;
  out.segments_dropped = log.segments_dropped;
  out.next_seq = log.next_seq;

  LoadedSnapshot snapshot;
  if (env_->FileExists(dir_)) {
    SnapshotStore store(env_, dir_);
    auto loaded = store.LoadNewestValid(out.prefix);
    if (!loaded.ok()) return loaded.status();
    snapshot = *std::move(loaded);
  }
  out.snapshot_prefix = snapshot.prefix;
  out.snapshots_skipped = snapshot.corrupt_skipped;

  std::unique_ptr<Tracker> tracker = factory();
  if (tracker == nullptr) {
    return Status::Internal("tracker factory returned null");
  }
  if (snapshot.prefix > 0) {
    status = tracker->RestoreState(snapshot.state);
    if (!status.ok()) {
      return Status(status.code(),
                    "restoring the checksummed snapshot at prefix " +
                        std::to_string(snapshot.prefix) +
                        " (is the recovery spec configured like the "
                        "writer's?): " +
                        status.message());
    }
    out.watermark = snapshot.watermark;
  }
  for (uint64_t i = snapshot.prefix; i < out.prefix; ++i) {
    status = tracker->Process(out.log[static_cast<size_t>(i)]);
    if (!status.ok()) {
      return Status(status.code(), "recovery replay at interaction " +
                                       std::to_string(i) + ": " +
                                       status.message());
    }
  }
  out.replayed = out.prefix - snapshot.prefix;
  if (!out.log.empty()) out.watermark = out.log.back().t;
  tracker->SaveState(&out.state);

  TINPROV_COUNTER_ADD("storage.recoveries", 1);
  TINPROV_GAUGE_SET("storage.recovered_interactions", out.prefix);
  TINPROV_GAUGE_SET("storage.recovery_replayed", out.replayed);
  return out;
}

StatusOr<std::shared_ptr<const TimeTravelIndex>> BuildRecoveredIndex(
    const RecoveredState& recovered, size_t num_vertices,
    const TrackerFactory& factory, size_t snapshot_interval) {
  if (recovered.log.empty()) {
    return std::shared_ptr<const TimeTravelIndex>();
  }
  auto index =
      TimeTravelIndex::NewStreaming(num_vertices, factory, snapshot_interval);
  if (!index.ok()) return index.status();
  for (const Interaction& interaction : recovered.log) {
    const Status status = (*index)->Observe(interaction);
    if (!status.ok()) return status;
  }
  const Status status = (*index)->Finalize();
  if (!status.ok()) return status;
  return std::shared_ptr<const TimeTravelIndex>(std::move(*index));
}

}  // namespace tinprov::storage
