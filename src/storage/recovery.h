// RecoveryManager: turns a crash-interrupted storage directory back
// into a running tracker, bit-identical to a clean replay of whatever
// prefix the disk actually kept.
//
// The contract, end to end:
//   1. Segments are scanned in sequence order, every record
//      re-checksummed. The trusted log is the longest prefix of
//      interactions backed by intact records; the first torn tail or
//      checksum mismatch ends it. A later segment extends the trusted
//      log only if its base_prefix equals the trusted length exactly —
//      which is precisely what a post-recovery writer produces, so a
//      torn segment followed by a resumed one reads as one continuous
//      log, while bytes the crashed process never durably wrote are
//      truncated, never interpreted.
//   2. The newest snapshot whose prefix fits inside the trusted log is
//      restored (corrupt snapshots are skipped — they cost replay time,
//      not correctness; a snapshot claiming a prefix the log cannot
//      back is ignored the same way).
//   3. The log tail past the snapshot is replayed through the tracker.
// The result equals Tracker::Process over trusted[0, prefix) on a fresh
// tracker — the SaveState/RestoreState bit-exact-resume contract makes
// the snapshot shortcut invisible. The crash test (test_storage /
// scripts/crash_smoke.sh) holds this equality under every
// FaultInjectingEnv mode and under kill -9.
#ifndef TINPROV_STORAGE_RECOVERY_H_
#define TINPROV_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "lazy/time_travel.h"
#include "policies/tracker.h"
#include "storage/env.h"
#include "util/status.h"

namespace tinprov::storage {

/// The trusted contents of a storage directory's segment files.
struct ReadLogResult {
  /// Interactions backed by intact checksummed records, global order.
  std::vector<Interaction> interactions;
  size_t segments_scanned = 0;
  /// Segments (or segment suffixes) past the first break — data the
  /// writer may have produced but the trusted prefix cannot reach.
  size_t segments_dropped = 0;
  size_t torn_tails = 0;       // incomplete trailing records (crash)
  size_t corrupt_records = 0;  // checksum mismatches (bit rot)
  /// One past the highest segment sequence number present — where a new
  /// writer must continue so file names never collide.
  uint64_t next_seq = 0;
};

/// Scans every segment under `dir`. I/O errors fail the call; torn and
/// corrupt data never do — they bound the trusted prefix.
Status ReadLog(Env* env, const std::string& dir, ReadLogResult* out);

struct RecoveredState {
  /// The trusted log, [0, prefix).
  std::vector<Interaction> log;
  uint64_t prefix = 0;
  /// Timestamp of the last trusted interaction; the recovered state is
  /// complete up to and including it.
  Timestamp watermark = std::numeric_limits<Timestamp>::lowest();
  /// Tracker SaveState bytes at `prefix` — hand to RestoreState (or
  /// serve's handoff) to resume bit-exactly.
  std::vector<uint8_t> state;
  uint64_t snapshot_prefix = 0;  // where replay started
  uint64_t replayed = 0;         // delta length, prefix - snapshot_prefix
  size_t snapshots_skipped = 0;  // corrupt snapshots passed over
  size_t torn_tails = 0;
  size_t corrupt_records = 0;
  size_t segments_dropped = 0;
  uint64_t next_seq = 0;  // DurableLog::Open's start_seq
};

class RecoveryManager {
 public:
  /// `env` is borrowed. A missing `dir` recovers to the empty state.
  RecoveryManager(Env* env, std::string dir);

  /// Full recovery for a tracker built by `factory`: trusted log scan,
  /// newest usable snapshot restore, delta replay, final SaveState.
  /// Snapshot-restore or replay failures are real errors (config
  /// mismatch between the factory and the writer) and propagate.
  StatusOr<RecoveredState> Recover(const TrackerFactory& factory) const;

 private:
  Env* env_;
  std::string dir_;
};

/// Builds a finalized TimeTravelIndex over the recovered log, so a
/// restarted service answers pre-crash historical queries exactly as
/// the crashed one would have. Returns null when the log is empty (no
/// history to index — serve then starts fresh).
StatusOr<std::shared_ptr<const TimeTravelIndex>> BuildRecoveredIndex(
    const RecoveredState& recovered, size_t num_vertices,
    const TrackerFactory& factory, size_t snapshot_interval);

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_RECOVERY_H_
