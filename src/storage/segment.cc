#include "storage/segment.h"

#include <utility>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/serialize.h"

namespace tinprov::storage {

namespace {

void EncodeZoneMap(ByteWriter* writer, const SegmentZoneMap& map) {
  writer->Append<uint64_t>(map.num_records);
  writer->Append<uint64_t>(map.num_interactions);
  writer->Append<VertexId>(map.min_vertex);
  writer->Append<VertexId>(map.max_vertex);
  writer->Append<Timestamp>(map.min_t);
  writer->Append<Timestamp>(map.max_t);
  writer->Append<uint64_t>(map.base_prefix);
}

Status DecodeZoneMap(ByteReader* reader, SegmentZoneMap* map) {
  Status status = reader->Read(&map->num_records);
  if (!status.ok()) return status;
  status = reader->Read(&map->num_interactions);
  if (!status.ok()) return status;
  status = reader->Read(&map->min_vertex);
  if (!status.ok()) return status;
  status = reader->Read(&map->max_vertex);
  if (!status.ok()) return status;
  status = reader->Read(&map->min_t);
  if (!status.ok()) return status;
  status = reader->Read(&map->max_t);
  if (!status.ok()) return status;
  return reader->Read(&map->base_prefix);
}

}  // namespace

SegmentWriter::SegmentWriter(std::string path,
                             std::unique_ptr<WritableFile> file,
                             uint64_t base_prefix)
    : path_(std::move(path)), file_(std::move(file)) {
  zone_map_.base_prefix = base_prefix;
}

StatusOr<std::unique_ptr<SegmentWriter>> SegmentWriter::Open(
    Env* env, const std::string& path, uint64_t base_prefix) {
  auto file = env->NewWritableFile(path);
  if (!file.ok()) return file.status();
  std::unique_ptr<SegmentWriter> writer(
      new SegmentWriter(path, *std::move(file), base_prefix));
  std::vector<uint8_t> header;
  ByteWriter encoder(&header);
  encoder.Append<uint32_t>(kSegmentMagic);
  encoder.Append<uint32_t>(kFormatVersion);
  encoder.Append<uint64_t>(base_prefix);
  const Status status = writer->file_->Append(header.data(), header.size());
  if (!status.ok()) return status;
  writer->bytes_written_ = header.size();
  return writer;
}

Status SegmentWriter::AppendRecord(uint8_t type,
                                   const std::vector<uint8_t>& payload) {
  scratch_.clear();
  ByteWriter encoder(&scratch_);
  // CRC covers type + payload; the length field is implicitly protected
  // because a wrong length lands the reader on bytes that cannot
  // checksum to the stored value.
  uint32_t crc = Crc32cExtend(0, &type, 1);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  encoder.Append<uint32_t>(Crc32cMask(crc));
  encoder.Append<uint32_t>(static_cast<uint32_t>(payload.size()));
  encoder.Append<uint8_t>(type);
  scratch_.insert(scratch_.end(), payload.begin(), payload.end());
  const Status status = file_->Append(scratch_.data(), scratch_.size());
  if (!status.ok()) return status;
  bytes_written_ += scratch_.size();
  return Status::Ok();
}

Status SegmentWriter::Append(const Interaction* batch, size_t count) {
  if (sealed_) return Status::FailedPrecondition("segment already sealed");
  std::vector<uint8_t> payload;
  payload.reserve(4 + count * kInteractionWireBytes);
  ByteWriter encoder(&payload);
  encoder.Append<uint32_t>(static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) {
    // Field-wise like every snapshot writer: the wire image is a pure
    // function of the logical values, never of struct padding.
    encoder.Append<VertexId>(batch[i].src);
    encoder.Append<VertexId>(batch[i].dst);
    encoder.Append<Timestamp>(batch[i].t);
    encoder.Append<double>(batch[i].quantity);
  }
  const Status status = AppendRecord(kInteractionsRecord, payload);
  if (!status.ok()) return status;
  ++zone_map_.num_records;
  for (size_t i = 0; i < count; ++i) zone_map_.Observe(batch[i]);
  TINPROV_COUNTER_ADD("storage.records_appended", 1);
  TINPROV_COUNTER_ADD("storage.interactions_appended", count);
  TINPROV_COUNTER_ADD("storage.bytes_written",
                      kRecordHeaderBytes + payload.size());
  return Status::Ok();
}

Status SegmentWriter::Sync() {
  TINPROV_SCOPED_LATENCY_NS("storage.sync_ns");
  return file_->Sync();
}

Status SegmentWriter::Seal() {
  if (sealed_) return Status::Ok();
  std::vector<uint8_t> payload;
  ByteWriter encoder(&payload);
  EncodeZoneMap(&encoder, zone_map_);
  Status status = AppendRecord(kFooterRecord, payload);
  if (!status.ok()) return status;
  status = file_->Sync();
  if (!status.ok()) return status;
  status = file_->Close();
  if (!status.ok()) return status;
  sealed_ = true;
  TINPROV_COUNTER_ADD("storage.segments_sealed", 1);
  return Status::Ok();
}

Status ReadSegment(Env* env, const std::string& path,
                   SegmentReadResult* result) {
  *result = SegmentReadResult();
  auto file = env->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto size = (*file)->Size();
  if (!size.ok()) return size.status();

  // Segments are rotation-bounded (a few MB), so one slurp is simpler
  // and faster than record-at-a-time positional reads.
  std::vector<uint8_t> bytes(static_cast<size_t>(*size));
  size_t read = 0;
  if (!bytes.empty()) {
    const Status status = (*file)->Read(0, bytes.size(), bytes.data(), &read);
    if (!status.ok()) return status;
    bytes.resize(read);
  }

  ByteReader reader(bytes.data(), bytes.size());
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!reader.Read(&magic).ok() || !reader.Read(&version).ok() ||
      !reader.Read(&result->base_prefix).ok()) {
    result->end = SegmentEnd::kTorn;  // not even a full header landed
    return Status::Ok();
  }
  if (magic != kSegmentMagic || version != kFormatVersion) {
    result->end = SegmentEnd::kCorrupt;
    return Status::Ok();
  }
  result->zone_map.base_prefix = result->base_prefix;
  result->valid_bytes = kSegmentHeaderBytes;

  while (reader.remaining() > 0) {
    if (reader.remaining() < kRecordHeaderBytes) {
      result->end = SegmentEnd::kTorn;
      return Status::Ok();
    }
    uint32_t masked_crc = 0;
    uint32_t payload_len = 0;
    uint8_t type = 0;
    (void)reader.Read(&masked_crc);
    (void)reader.Read(&payload_len);
    (void)reader.Read(&type);
    if (payload_len > reader.remaining()) {
      // Length runs past the file: a torn tail (or a corrupted length,
      // indistinguishable without the bytes it promises). Either way
      // the trusted prefix ends here.
      result->end = SegmentEnd::kTorn;
      return Status::Ok();
    }
    std::vector<uint8_t> payload(payload_len);
    (void)reader.ReadSpan(payload.data(), payload.size());
    uint32_t crc = Crc32cExtend(0, &type, 1);
    crc = Crc32cExtend(crc, payload.data(), payload.size());
    if (Crc32cMask(crc) != masked_crc) {
      result->end = SegmentEnd::kCorrupt;
      return Status::Ok();
    }

    ByteReader body(payload.data(), payload.size());
    if (type == kInteractionsRecord) {
      uint32_t count = 0;
      if (!body.Read(&count).ok() ||
          count > body.remaining() / kInteractionWireBytes) {
        result->end = SegmentEnd::kCorrupt;  // checksummed but malformed
        return Status::Ok();
      }
      for (uint32_t i = 0; i < count; ++i) {
        Interaction interaction;
        (void)body.Read(&interaction.src);
        (void)body.Read(&interaction.dst);
        (void)body.Read(&interaction.t);
        (void)body.Read(&interaction.quantity);
        result->interactions.push_back(interaction);
        result->zone_map.Observe(interaction);
      }
      ++result->zone_map.num_records;
      result->valid_bytes += kRecordHeaderBytes + payload.size();
    } else if (type == kFooterRecord) {
      SegmentZoneMap footer;
      if (!DecodeZoneMap(&body, &footer).ok() || body.remaining() != 0 ||
          footer.base_prefix != result->base_prefix ||
          footer.num_interactions != result->interactions.size()) {
        result->end = SegmentEnd::kCorrupt;
        return Status::Ok();
      }
      result->sealed = true;
      result->zone_map = footer;
      result->valid_bytes += kRecordHeaderBytes + payload.size();
      // Trailing bytes after a footer mean the file was appended to
      // after sealing — nothing a correct writer produces.
      if (reader.remaining() > 0) result->end = SegmentEnd::kCorrupt;
      return Status::Ok();
    } else {
      result->end = SegmentEnd::kCorrupt;  // unknown record type
      return Status::Ok();
    }
  }
  return Status::Ok();
}

}  // namespace tinprov::storage
