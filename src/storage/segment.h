// SegmentWriter / segment reading: one checksummed append-only log file.
//
// The writer turns ingested micro-batches into records (storage/
// log_format.h) and maintains the running zone map; Seal() persists the
// zone map as the footer record and makes the file durable. The reader
// is recovery's workhorse: it trusts nothing, re-checksums every
// record, and reports exactly how far the file can be believed and why
// it stopped (clean end, torn tail, or corruption) — the caller decides
// what that means for the log as a whole.
#ifndef TINPROV_STORAGE_SEGMENT_H_
#define TINPROV_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "storage/env.h"
#include "storage/log_format.h"
#include "util/status.h"

namespace tinprov::storage {

class SegmentWriter {
 public:
  /// Creates `path` and writes the header. `base_prefix` is the global
  /// interaction index of the first entry this segment will hold.
  static StatusOr<std::unique_ptr<SegmentWriter>> Open(Env* env,
                                                       const std::string& path,
                                                       uint64_t base_prefix);

  /// Appends one batch as a single record. Batches are never split
  /// across segments, so a record is the atomicity unit recovery sees.
  Status Append(const Interaction* batch, size_t count);

  /// Makes everything appended so far durable.
  Status Sync();

  /// Writes the footer (zone map), syncs, and closes. The writer is
  /// unusable afterwards. Idempotent on success.
  Status Seal();

  const SegmentZoneMap& zone_map() const { return zone_map_; }
  uint64_t bytes_written() const { return bytes_written_; }
  bool sealed() const { return sealed_; }
  const std::string& path() const { return path_; }

 private:
  SegmentWriter(std::string path, std::unique_ptr<WritableFile> file,
                uint64_t base_prefix);

  Status AppendRecord(uint8_t type, const std::vector<uint8_t>& payload);

  std::string path_;
  std::unique_ptr<WritableFile> file_;
  SegmentZoneMap zone_map_;
  std::vector<uint8_t> scratch_;  // reused record-encoding buffer
  uint64_t bytes_written_ = 0;
  bool sealed_ = false;
};

/// Why a segment scan stopped.
enum class SegmentEnd {
  kClean,      // footer found (sealed) or file ended exactly on a record
  kTorn,       // trailing record incomplete — the classic torn tail
  kCorrupt,    // a complete record failed its checksum (bit rot), or
               // the header/footer did
};

struct SegmentReadResult {
  /// Every interaction from records that checksummed clean, in order.
  std::vector<Interaction> interactions;
  uint64_t base_prefix = 0;
  SegmentEnd end = SegmentEnd::kClean;
  bool sealed = false;  // intact footer present
  /// Footer zone map when sealed; recomputed from the data otherwise.
  SegmentZoneMap zone_map;
  /// Bytes of the file covered by trusted records (header included).
  uint64_t valid_bytes = 0;
};

/// Scans `path`, validating every checksum. I/O errors and an unreadable
/// header fail the call; torn tails and corrupt records do NOT — they
/// end the trusted prefix and are reported in `result->end`, because a
/// half-written file is an expected crash artifact, not a bug.
Status ReadSegment(Env* env, const std::string& path,
                   SegmentReadResult* result);

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_SEGMENT_H_
