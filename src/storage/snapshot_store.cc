#include "storage/snapshot_store.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "storage/log_format.h"
#include "util/crc32c.h"
#include "util/serialize.h"

namespace tinprov::storage {

namespace {

constexpr char kTempPrefix[] = "tmp-";

}  // namespace

SnapshotStore::SnapshotStore(Env* env, std::string dir)
    : env_(env), dir_(std::move(dir)) {}

Status SnapshotStore::Write(uint64_t prefix, Timestamp watermark,
                            const std::vector<uint8_t>& state) {
  TINPROV_SCOPED_LATENCY_NS("storage.snapshot_write_ns");
  const std::string name = SnapshotFileName(prefix);
  const std::string temp_path = JoinPath(dir_, kTempPrefix + name);
  const std::string final_path = JoinPath(dir_, name);

  std::vector<uint8_t> bytes;
  bytes.reserve(state.size() + 64);
  ByteWriter writer(&bytes);
  writer.Append<uint32_t>(kSnapshotMagic);
  writer.Append<uint32_t>(kFormatVersion);
  writer.Append<uint64_t>(prefix);
  writer.Append<Timestamp>(watermark);
  writer.Append<uint64_t>(static_cast<uint64_t>(state.size()));
  bytes.insert(bytes.end(), state.begin(), state.end());
  writer.Append<uint32_t>(Crc32cMask(Crc32c(bytes.data(), bytes.size())));

  auto file = env_->NewWritableFile(temp_path);
  if (!file.ok()) return file.status();
  Status status = (*file)->Append(bytes.data(), bytes.size());
  if (status.ok()) status = (*file)->Sync();
  if (status.ok()) status = (*file)->Close();
  if (!status.ok()) {
    // Best-effort cleanup; the temp sweep catches what this misses.
    (void)env_->DeleteFile(temp_path);
    return status;
  }
  status = env_->RenameFile(temp_path, final_path);
  if (!status.ok()) return status;
  TINPROV_COUNTER_ADD("storage.snapshots_written", 1);
  TINPROV_COUNTER_ADD("storage.bytes_written", bytes.size());
  TINPROV_GAUGE_SET("storage.snapshot_bytes", bytes.size());
  return Status::Ok();
}

StatusOr<std::vector<SnapshotMeta>> SnapshotStore::List() const {
  auto names = env_->ListDir(dir_);
  if (!names.ok()) return names.status();
  std::vector<SnapshotMeta> metas;
  for (const std::string& name : *names) {
    uint64_t prefix = 0;
    if (!ParseSnapshotFileName(name, &prefix)) continue;
    metas.push_back({prefix, name});
  }
  std::sort(metas.begin(), metas.end(),
            [](const SnapshotMeta& a, const SnapshotMeta& b) {
              return a.prefix < b.prefix;
            });
  return metas;
}

Status SnapshotStore::Load(const SnapshotMeta& meta,
                           LoadedSnapshot* out) const {
  auto file = env_->NewRandomAccessFile(JoinPath(dir_, meta.name));
  if (!file.ok()) return file.status();
  auto size = (*file)->Size();
  if (!size.ok()) return size.status();
  std::vector<uint8_t> bytes(static_cast<size_t>(*size));
  size_t read = 0;
  if (!bytes.empty()) {
    const Status status = (*file)->Read(0, bytes.size(), bytes.data(), &read);
    if (!status.ok()) return status;
  }
  if (read != bytes.size() || bytes.size() < 4) {
    return Status::InvalidArgument("snapshot " + meta.name + " truncated");
  }

  // Validate the trailing CRC over everything before it first; only
  // then believe any field.
  ByteReader trailer(bytes.data() + bytes.size() - 4, 4);
  uint32_t masked_crc = 0;
  (void)trailer.Read(&masked_crc);
  if (Crc32cMask(Crc32c(bytes.data(), bytes.size() - 4)) != masked_crc) {
    return Status::InvalidArgument("snapshot " + meta.name +
                                   " failed its checksum");
  }

  ByteReader reader(bytes.data(), bytes.size() - 4);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t prefix = 0;
  Timestamp watermark = 0;
  uint64_t state_len = 0;
  Status status = reader.Read(&magic);
  if (status.ok()) status = reader.Read(&version);
  if (status.ok()) status = reader.Read(&prefix);
  if (status.ok()) status = reader.Read(&watermark);
  if (status.ok()) status = reader.Read(&state_len);
  if (!status.ok()) return status;
  if (magic != kSnapshotMagic || version != kFormatVersion) {
    return Status::InvalidArgument("snapshot " + meta.name +
                                   " has a foreign header");
  }
  if (prefix != meta.prefix || state_len != reader.remaining()) {
    return Status::InvalidArgument("snapshot " + meta.name +
                                   " frame disagrees with its contents");
  }
  out->prefix = prefix;
  out->watermark = watermark;
  out->state.resize(static_cast<size_t>(state_len));
  return reader.ReadSpan(out->state.data(), out->state.size());
}

StatusOr<LoadedSnapshot> SnapshotStore::LoadNewestValid(
    uint64_t max_prefix) const {
  auto metas = List();
  if (!metas.ok()) return metas.status();
  LoadedSnapshot out;
  for (auto it = metas->rbegin(); it != metas->rend(); ++it) {
    if (it->prefix > max_prefix) continue;
    LoadedSnapshot candidate;
    const Status status = Load(*it, &candidate);
    if (status.ok()) {
      candidate.corrupt_skipped = out.corrupt_skipped;
      return candidate;
    }
    // Unavailable is an env/IO failure worth surfacing; InvalidArgument
    // is a corrupt file worth skipping.
    if (status.code() == StatusCode::kUnavailable) return status;
    ++out.corrupt_skipped;
    TINPROV_COUNTER_ADD("storage.snapshot_corrupt", 1);
  }
  // Nothing valid: the empty prefix-0 snapshot (restore from scratch).
  return out;
}

Status SnapshotStore::SweepTempFiles() {
  auto names = env_->ListDir(dir_);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    if (name.rfind(kTempPrefix, 0) == 0) {
      const Status status = env_->DeleteFile(JoinPath(dir_, name));
      if (!status.ok() && status.code() != StatusCode::kNotFound) {
        return status;
      }
    }
  }
  return Status::Ok();
}

}  // namespace tinprov::storage
