// SnapshotStore: durable tracker snapshots, cut at epoch watermarks.
//
// A snapshot file is the padding-free Tracker::SaveState byte image
// (util/serialize.h / core/buffer_io.h format — the same bytes the
// serve layer publishes as an epoch) framed with its log position and a
// trailing CRC32C:
//
//   snap := magic(u32) version(u32) prefix(u64) watermark(f64)
//           state_len(u64) state masked_crc(u32)
//
// Visibility is atomic: the store writes to a temp name, fsyncs, then
// renames into place, so a crash mid-snapshot leaves at worst a stray
// temp file (swept on open) and never a half-visible snapshot. Loading
// walks snapshots newest-first and falls back past any that fail their
// checksum — a corrupt snapshot costs recovery time (longer delta
// replay), never correctness.
#ifndef TINPROV_STORAGE_SNAPSHOT_STORE_H_
#define TINPROV_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/types.h"
#include "storage/env.h"
#include "util/status.h"

namespace tinprov::storage {

struct SnapshotMeta {
  uint64_t prefix = 0;
  std::string name;  // file name within the store's directory
};

struct LoadedSnapshot {
  uint64_t prefix = 0;
  Timestamp watermark = std::numeric_limits<Timestamp>::lowest();
  std::vector<uint8_t> state;
  /// Snapshots skipped because they failed validation (bit rot, torn
  /// rename window) before this one loaded.
  size_t corrupt_skipped = 0;
};

class SnapshotStore {
 public:
  /// `dir` must exist; `env` is borrowed and must outlive the store.
  SnapshotStore(Env* env, std::string dir);

  /// Persists `state` as the snapshot at `prefix` (atomic rename).
  Status Write(uint64_t prefix, Timestamp watermark,
               const std::vector<uint8_t>& state);

  /// Every snapshot file present, ascending by prefix. Unparseable
  /// names are ignored; validity is only established by Load.
  StatusOr<std::vector<SnapshotMeta>> List() const;

  /// Newest snapshot with prefix <= max_prefix that passes validation,
  /// falling back to older ones past corruption. When none qualifies
  /// the result is the empty prefix-0 snapshot — "recover from the
  /// beginning", which is always safe.
  StatusOr<LoadedSnapshot> LoadNewestValid(uint64_t max_prefix) const;

  /// Loads and validates one specific snapshot.
  Status Load(const SnapshotMeta& meta, LoadedSnapshot* out) const;

  /// Deletes crash-window temp files. Called by DurableLog::Open.
  Status SweepTempFiles();

  const std::string& dir() const { return dir_; }

 private:
  Env* env_;
  std::string dir_;
};

}  // namespace tinprov::storage

#endif  // TINPROV_STORAGE_SNAPSHOT_STORE_H_
