#include "stream/ingest.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stopwatch.h"

namespace tinprov {

StreamIngestor::StreamIngestor(Tracker* tracker, IngestOptions options)
    : tracker_(tracker),
      options_(options),
      pull_watermark_(options.initial_watermark) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  batch_.reserve(options_.batch_size);
}

Status StreamIngestor::IngestBatch(InteractionStream& stream, bool* done) {
  obs::TraceSpan span("ingest.batch", "ingest");
  TINPROV_SCOPED_LATENCY_NS("ingest.batch_ns");
  Stopwatch watch;
  if (!reserved_) {
    reserved_ = true;
    if (options_.reserve_from_stats) tracker_->ReserveHint(stream.Stats());
  }

  batch_.clear();
  Interaction interaction;
  while (batch_.size() < options_.batch_size && stream.Next(&interaction)) {
    if (options_.enforce_time_order && interaction.t < pull_watermark_) {
      return Status::InvalidArgument(
          "stream batch " + std::to_string(stats_.batches) + " interaction " +
          std::to_string(stats_.interactions + batch_.size()) +
          " has timestamp " + std::to_string(interaction.t) +
          " below the watermark " + std::to_string(pull_watermark_) +
          " — wrap the source in a SortingStream");
    }
    // The pull-side watermark advances immediately so the order check
    // also covers disorder *within* this batch; the published
    // stats_.watermark only moves once the batch has been applied, so
    // it never claims state that a failed Process() left unbuilt.
    pull_watermark_ = std::max(pull_watermark_, interaction.t);
    batch_.push_back(interaction);
  }
  *done = batch_.size() < options_.batch_size;
  if (batch_.empty()) {
    stats_.seconds += watch.ElapsedSeconds();
    return Status::Ok();
  }

  stats_.peak_batch = std::max(stats_.peak_batch, batch_.size());
  for (size_t i = 0; i < batch_.size(); ++i) {
    const Status status = tracker_->Process(batch_[i]);
    if (!status.ok()) {
      return Status(status.code(),
                    "ingest at interaction " +
                        std::to_string(stats_.interactions + i) + ": " +
                        status.message());
    }
  }
  if (options_.sink != nullptr) {
    // After the apply loop: the sink persists only what the tracker's
    // state already reflects, so recovered state is always a replay of
    // a durable prefix, never of an un-applied write-ahead.
    const Status status = options_.sink->OnBatch(batch_.data(), batch_.size());
    if (!status.ok()) {
      return Status(status.code(),
                    "batch sink at batch " + std::to_string(stats_.batches) +
                        " (interaction " + std::to_string(stats_.interactions) +
                        "): " + status.message());
    }
  }
  stats_.interactions += batch_.size();
  ++stats_.batches;
  stats_.watermark = std::max(stats_.watermark, batch_.back().t);
  stats_.tracker_peak_memory =
      std::max(stats_.tracker_peak_memory, tracker_->MemoryUsage());
  stats_.seconds += watch.ElapsedSeconds();
  TINPROV_COUNTER_ADD("ingest.interactions", batch_.size());
  TINPROV_COUNTER_ADD("ingest.batches", 1);
  TINPROV_GAUGE_SET("ingest.watermark", stats_.watermark);
  // Pull-side minus published watermark: how far ahead the order check
  // has read past the state the tracker has actually built.
  TINPROV_GAUGE_SET("ingest.watermark_lag", pull_watermark_ - stats_.watermark);
  TINPROV_GAUGE_MAX("ingest.peak_batch", stats_.peak_batch);
  TINPROV_GAUGE_SET("memory.ingest_tracker_bytes", tracker_->MemoryUsage());
  TINPROV_GAUGE_MAX("memory.ingest_tracker_peak_bytes",
                    stats_.tracker_peak_memory);
  // Allocator-level footprint and representation-specific gauges come
  // from the tracker itself (virtual hooks), so every policy reports —
  // the old dynamic_cast probe covered only the pro-rata family.
  TINPROV_GAUGE_SET("memory.ingest_tracker_reserved_bytes",
                    tracker_->MemoryBytes());
  tracker_->PublishMetrics();
  return Status::Ok();
}

Status StreamIngestor::IngestAll(InteractionStream& stream) {
  bool done = false;
  while (!done) {
    const Status status = IngestBatch(stream, &done);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void RegisterIngestHealthChecks(obs::HealthRegistry& registry,
                                double max_watermark_lag) {
  registry.Register(
      "ingest.watermark_lag",
      obs::GaugeAtMostCheck("ingest.watermark_lag", max_watermark_lag));
}

}  // namespace tinprov
