// StreamIngestor: drives any Tracker from an InteractionStream.
//
// This is the engine's front door for data that is not (and never will
// be) a materialized Tin. The ingestor pulls micro-batches from the
// stream, applies them to the tracker, and maintains what a serving
// pipeline needs to observe about its ingestion: a watermark (the
// timestamp up to which the tracker's state is complete), batch/
// interaction counters, the peak number of interactions ever buffered
// (the pipeline's own memory footprint — bounded by the batch size, so
// independent of stream length), and the tracker's sampled memory peak.
// Before the first batch it pre-sizes the tracker's arenas through the
// Tin-free ReserveHint(DatasetStats) path using whatever shape the
// stream advertises.
//
// Trackers require time order; the ingestor enforces it (non-decreasing
// timestamps) and rejects violations with InvalidArgument instead of
// silently corrupting provenance — wrap disordered sources in a
// SortingStream first.
#ifndef TINPROV_STREAM_INGEST_H_
#define TINPROV_STREAM_INGEST_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "core/types.h"
#include "obs/health.h"
#include "policies/tracker.h"
#include "stream/interaction_stream.h"
#include "util/status.h"

namespace tinprov {

/// Receives every micro-batch after the tracker has applied it — the
/// durability hook: the serve layer points this at its DurableLog so
/// the on-disk log contains exactly the interactions the tracker's
/// state reflects. A sink error stops the ingest (the storage layer's
/// degrade-to-memory policy absorbs errors before they reach here when
/// configured to).
class BatchSink {
 public:
  virtual ~BatchSink() = default;

  virtual Status OnBatch(const Interaction* batch, size_t count) = 0;
};

struct IngestOptions {
  /// Interactions pulled and applied per micro-batch. The batch buffer
  /// is the only stream-side allocation, so this bounds pipeline memory.
  size_t batch_size = 4096;
  /// Reject interactions whose timestamp is below the watermark.
  bool enforce_time_order = true;
  /// Call Tracker::ReserveHint(stream.Stats()) before the first batch.
  bool reserve_from_stats = true;
  /// Starting watermark for the order check: interactions below this
  /// timestamp are rejected from the first pull. The serve layer sets it
  /// when a tracker is seeded from a historical snapshot (state complete
  /// up to the handoff watermark), so a stream rewound past the handoff
  /// cannot double-apply history.
  Timestamp initial_watermark = std::numeric_limits<Timestamp>::lowest();
  /// Called with each batch once the tracker has applied it (borrowed;
  /// null = no sink). See BatchSink.
  BatchSink* sink = nullptr;
};

struct IngestStats {
  size_t interactions = 0;
  size_t batches = 0;
  /// Max interactions buffered at any instant — never exceeds
  /// IngestOptions::batch_size, regardless of stream length.
  size_t peak_batch = 0;
  /// Timestamp of the last applied interaction; the tracker's state is
  /// complete up to (and including) this time.
  Timestamp watermark = std::numeric_limits<Timestamp>::lowest();
  /// Peak Tracker::MemoryUsage(), sampled once per batch.
  size_t tracker_peak_memory = 0;
  /// Wall time spent inside Ingest calls (pull + apply).
  double seconds = 0.0;
};

class StreamIngestor {
 public:
  /// `tracker` is borrowed and must outlive the ingestor.
  explicit StreamIngestor(Tracker* tracker, IngestOptions options = {});

  /// Pulls at most one micro-batch from `stream` and applies it.
  /// `*done` is set when the stream is exhausted (an empty final pull
  /// counts as done, not as a batch). Feeding a new stream mid-ingest
  /// is allowed — the watermark spans them, so streams must be fed in
  /// global time order.
  Status IngestBatch(InteractionStream& stream, bool* done);

  /// Drains `stream` batch by batch.
  Status IngestAll(InteractionStream& stream);

  const IngestStats& stats() const { return stats_; }
  Tracker* tracker() const { return tracker_; }

 private:
  Tracker* tracker_;
  IngestOptions options_;
  IngestStats stats_;
  std::vector<Interaction> batch_;
  // Order enforcement tracks pulls; stats_.watermark tracks applies.
  Timestamp pull_watermark_ = std::numeric_limits<Timestamp>::lowest();
  bool reserved_ = false;
};

/// Registers the ingest-side health checks with `registry` (the ops
/// plane calls this from ProvenanceService::EnableOpsServer):
///   ingest.watermark_lag  healthy while the pull-side watermark leads
///                         the applied watermark by at most
///                         `max_watermark_lag` (stream-time units; an
///                         infinite limit reports the value but never
///                         trips).
/// The checks read the ingest gauges StreamIngestor publishes, so they
/// are valid for whichever ingestor is (or was last) running; callers
/// unregister by name when the pipeline shuts down.
void RegisterIngestHealthChecks(obs::HealthRegistry& registry,
                                double max_watermark_lag);

}  // namespace tinprov

#endif  // TINPROV_STREAM_INGEST_H_
