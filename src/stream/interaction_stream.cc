#include "stream/interaction_stream.h"

#include <algorithm>

namespace tinprov {

StatusOr<GeneratorStream> GeneratorStream::Create(
    const GeneratorConfig& config) {
  auto emitter = InteractionEmitter::Create(config);
  if (!emitter.ok()) return emitter.status();
  return GeneratorStream(*std::move(emitter));
}

bool SortingStream::Next(Interaction* out) {
  // Keep the reorder buffer at window_ + 1 pending elements: any input
  // element displaced by at most window_ positions is still in the heap
  // when its turn comes, so it is emitted in correct time order.
  Interaction pulled;
  while (!inner_done_ && heap_.size() <= window_) {
    if (inner_->Next(&pulled)) {
      heap_.push_back({pulled, next_arrival_++});
      std::push_heap(heap_.begin(), heap_.end(), Later);
    } else {
      inner_done_ = true;
    }
  }
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  *out = heap_.back().interaction;
  heap_.pop_back();
  return true;
}

}  // namespace tinprov
