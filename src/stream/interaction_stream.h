// Pull-based interaction streams: the engine's ingestion contract.
//
// Every layer used to assume a fully materialized Tin — an assumption
// that caps dataset size at RAM and is backwards for the paper's
// setting, where interactions *arrive* in time order. InteractionStream
// inverts that: a consumer (Tracker::ProcessStream, StreamIngestor, the
// streaming engines) pulls interactions one at a time and never learns
// whether they come from a materialized log (MaterializedStream), a
// plain vector (VectorStream), a synthetic source that emits them on
// the fly without ever holding the log (GeneratorStream), or a
// bounded-reorder repair buffer over near-in-order input
// (SortingStream). Streams are single-pass: construct a fresh one to
// read again. Results are bit-identical between the materialized and
// streaming paths because consumers see the identical interaction
// sequence either way (tests/test_stream.cc holds the proof).
#ifndef TINPROV_STREAM_INTERACTION_STREAM_H_
#define TINPROV_STREAM_INTERACTION_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/tin.h"
#include "core/types.h"
#include "datagen/generator.h"
#include "util/status.h"

namespace tinprov {

class InteractionStream {
 public:
  virtual ~InteractionStream() = default;

  /// Pulls the next interaction into `*out`. Returns false at end of
  /// stream (then `*out` is untouched and every further call returns
  /// false). Well-formed streams emit in non-decreasing timestamp
  /// order; StreamIngestor enforces that, raw ProcessStream trusts it.
  virtual bool Next(Interaction* out) = 0;

  /// What the stream knows about its shape up front, for ReserveHint
  /// pre-sizing. num_interactions == 0 means unknown length; the value
  /// is a hint and may differ from what Next() actually yields.
  virtual DatasetStats Stats() const = 0;
};

/// A (prefix of a) materialized log as a stream — the bridge that turns
/// every Tin consumer into a stream consumer. Borrows `tin`.
class MaterializedStream : public InteractionStream {
 public:
  explicit MaterializedStream(const Tin& tin)
      : MaterializedStream(tin, tin.num_interactions()) {}

  /// Streams only the first min(prefix, log length) interactions — the
  /// historical-prefix shape shared with the lazy engines.
  MaterializedStream(const Tin& tin, size_t prefix)
      : tin_(&tin),
        limit_(prefix < tin.num_interactions() ? prefix
                                               : tin.num_interactions()) {}

  bool Next(Interaction* out) override {
    if (cursor_ >= limit_) return false;
    *out = tin_->interactions()[cursor_++];
    return true;
  }

  DatasetStats Stats() const override {
    return {tin_->num_vertices(), limit_};
  }

 private:
  const Tin* tin_;
  size_t limit_;
  size_t cursor_ = 0;
};

/// A plain interaction vector as a stream, in the order given (no
/// sorting — that is SortingStream's job, or the caller's). Mostly a
/// test and adapter convenience.
class VectorStream : public InteractionStream {
 public:
  VectorStream(size_t num_vertices, std::vector<Interaction> interactions)
      : num_vertices_(num_vertices), interactions_(std::move(interactions)) {}

  bool Next(Interaction* out) override {
    if (cursor_ >= interactions_.size()) return false;
    *out = interactions_[cursor_++];
    return true;
  }

  DatasetStats Stats() const override {
    return {num_vertices_, interactions_.size()};
  }

 private:
  size_t num_vertices_;
  std::vector<Interaction> interactions_;
  size_t cursor_ = 0;
};

/// Streams a synthetic dataset straight from the seeded generator,
/// emitting each interaction as it is drawn — the whole log is never
/// materialized, so peak pipeline memory is independent of
/// num_interactions (bench_stream asserts this). Emits the exact
/// sequence datagen::Generate(config) would put into a Tin: the
/// generator draws timestamps in non-decreasing order, so no sort is
/// needed and the streaming and materialized paths stay bit-identical.
class GeneratorStream : public InteractionStream {
 public:
  /// An exhausted stream — the empty state StatusOr needs. Create() is
  /// the real entry point.
  GeneratorStream() = default;

  /// Fails on the same configs Generate() rejects.
  static StatusOr<GeneratorStream> Create(const GeneratorConfig& config);

  bool Next(Interaction* out) override {
    if (emitter_.Done()) return false;
    *out = emitter_.Next();
    return true;
  }

  DatasetStats Stats() const override {
    return {emitter_.config().num_vertices,
            emitter_.config().num_interactions};
  }

 private:
  explicit GeneratorStream(InteractionEmitter emitter)
      : emitter_(std::move(emitter)) {}

  InteractionEmitter emitter_;
};

/// Repairs near-in-order input with a bounded reorder buffer: a min-heap
/// of up to `window + 1` pending interactions ordered by (timestamp,
/// arrival), so any element that arrives at most `window` positions
/// after one it should precede is emitted in correct time order. The
/// arrival tie-break makes equal timestamps keep their input order (the
/// same stability Tin's sort guarantees). A window that is too small
/// for the input's disorder degrades gracefully: the output is the
/// best-effort reordering, not an error — feed it to StreamIngestor,
/// whose watermark check catches the residual disorder. window == 0
/// passes the inner stream through unchanged. Owns `inner`.
class SortingStream : public InteractionStream {
 public:
  SortingStream(std::unique_ptr<InteractionStream> inner, size_t window)
      : inner_(std::move(inner)), window_(window) {}

  bool Next(Interaction* out) override;

  DatasetStats Stats() const override { return inner_->Stats(); }

 private:
  struct Pending {
    Interaction interaction;
    uint64_t arrival = 0;
  };

  // Min-heap comparator via std::push_heap/pop_heap (max-heap idiom, so
  // the comparison is inverted): earliest (t, arrival) on top.
  static bool Later(const Pending& a, const Pending& b) {
    if (a.interaction.t != b.interaction.t) {
      return a.interaction.t > b.interaction.t;
    }
    return a.arrival > b.arrival;
  }

  std::unique_ptr<InteractionStream> inner_;
  size_t window_;
  std::vector<Pending> heap_;
  uint64_t next_arrival_ = 0;
  bool inner_done_ = false;
};

}  // namespace tinprov

#endif  // TINPROV_STREAM_INTERACTION_STREAM_H_
