// Bump-pointer arena for the sparse pro-rata hot path.
//
// The per-interaction merge loop allocates and frees provenance-list
// storage at a rate that makes malloc the dominant non-arithmetic cost
// (see bench_micro's BM_SparseMerge trajectory). An Arena trades
// individual frees for O(1) pointer-bump allocation out of large
// chunks; the free-list NodePool in util/pool.h recycles list storage
// on top of it. One arena is owned per tracker (and therefore per
// replay shard), so no locking is needed anywhere in this file.
#ifndef TINPROV_UTIL_ARENA_H_
#define TINPROV_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tinprov {

class Arena {
 public:
  /// Every block returned by Allocate() is aligned this much — enough
  /// for the 16-byte provenance tuples and the AVX2 kernels' unaligned
  /// loads to stay within one cache pair.
  static constexpr size_t kAlignment = 16;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of kAlignment-aligned storage that lives until the
  /// arena is destroyed. bytes == 0 yields a unique valid pointer.
  void* Allocate(size_t bytes) {
    bytes = RoundUp(bytes);
    if (bytes > free_) NewChunk(bytes);
    uint8_t* block = ptr_;
    ptr_ += bytes;
    free_ -= bytes;
    used_ += bytes;
    return block;
  }

  /// Capacity hint: makes sure at least `bytes` are available without a
  /// further chunk allocation. Call once up front (e.g. from dataset
  /// stats) so the replay loop itself never asks the system allocator.
  void Reserve(size_t bytes) {
    bytes = RoundUp(bytes);
    if (bytes > free_) NewChunk(bytes);
  }

  /// Bytes handed out so far (recycled blocks are counted once by the
  /// arena; the pool layered on top re-counts reuse).
  size_t bytes_used() const { return used_; }

  /// Bytes obtained from the system allocator across all chunks.
  size_t bytes_reserved() const { return reserved_; }

 private:
  // Chunks double up to a cap so a mis-sized Reserve() hint cannot make
  // growth quadratic, while tiny trackers stay tiny.
  static constexpr size_t kMinChunkBytes = size_t{1} << 16;   // 64 KiB
  static constexpr size_t kMaxChunkBytes = size_t{8} << 20;   // 8 MiB

  static size_t RoundUp(size_t bytes) {
    return (bytes + (kAlignment - 1)) & ~(kAlignment - 1);
  }

  void NewChunk(size_t min_bytes) {
    size_t chunk_bytes = chunks_.empty() ? kMinChunkBytes : next_chunk_bytes_;
    if (chunk_bytes < min_bytes) chunk_bytes = RoundUp(min_bytes);
    chunks_.emplace_back(new uint8_t[chunk_bytes]);
    ptr_ = chunks_.back().get();
    // operator new[] returns at least alignof(max_align_t) >= 16 on the
    // supported platforms; RoundUp keeps every subsequent block aligned.
    free_ = chunk_bytes;
    reserved_ += chunk_bytes;
    if (next_chunk_bytes_ < kMaxChunkBytes) next_chunk_bytes_ *= 2;
  }

  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  uint8_t* ptr_ = nullptr;
  size_t free_ = 0;
  size_t used_ = 0;
  size_t reserved_ = 0;
  size_t next_chunk_bytes_ = kMinChunkBytes;
};

}  // namespace tinprov

#endif  // TINPROV_UTIL_ARENA_H_
