#include "util/cpu.h"

#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace tinprov::cpu {

namespace {

SimdLevel ProbeSimdLevel() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  // __builtin_cpu_supports folds in the OSXSAVE/XCR0 check for AVX
  // state, so a kernel that disabled AVX context switching reports
  // false here even when CPUID alone would say yes.
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
#if defined(__x86_64__) || defined(_M_X64)
  // SSE2 is architectural on x86-64 even if the builtin is unavailable.
  return SimdLevel::kSse2;
#else
  return SimdLevel::kScalar;
#endif
#else
  return SimdLevel::kScalar;
#endif
}

bool ProbeAvx512() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(_M_X64) || defined(__i386__))
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

SimdLevel ResolveActiveLevel() {
  const SimdLevel detected = DetectSimdLevel();
  const char* env = std::getenv("TINPROV_SIMD");
  if (env == nullptr || env[0] == '\0') return detected;
  const std::optional<SimdLevel> requested = ParseSimdLevel(env);
  if (!requested.has_value()) {
    std::fprintf(stderr,
                 "tinprov: ignoring unknown TINPROV_SIMD=%s "
                 "(want scalar|sse2|avx2)\n",
                 env);
    return detected;
  }
  if (*requested > detected) {
    std::fprintf(stderr,
                 "tinprov: TINPROV_SIMD=%s exceeds host support; "
                 "clamping to %s\n",
                 env, SimdLevelName(detected));
    return detected;
  }
  return *requested;
}

}  // namespace

SimdLevel DetectSimdLevel() {
  static const SimdLevel level = ProbeSimdLevel();
  return level;
}

bool DetectAvx512() {
  static const bool has = ProbeAvx512();
  return has;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ResolveActiveLevel();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<SimdLevel> ParseSimdLevel(std::string_view name) {
  const std::string lower = AsciiLower(name);
  if (lower == "scalar") return SimdLevel::kScalar;
  if (lower == "sse2") return SimdLevel::kSse2;
  if (lower == "avx2") return SimdLevel::kAvx2;
  return std::nullopt;
}

}  // namespace tinprov::cpu
