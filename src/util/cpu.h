// Host CPU feature detection for the runtime SIMD dispatch in
// util/simd.h. One binary ships scalar, SSE2, and AVX2 variants of the
// hot kernels (compiled in per-ISA translation units); this header
// answers "which may we run here?" once at startup.
//
// `TINPROV_SIMD=scalar|sse2|avx2` overrides the choice for testing —
// the dispatch-equivalence suite runs the full ctest suite at every
// level — but never upward past what the CPU supports: requesting avx2
// on a non-AVX2 host clamps (with a stderr warning) instead of
// faulting, so the same CI leg is valid on any runner.
#ifndef TINPROV_UTIL_CPU_H_
#define TINPROV_UTIL_CPU_H_

#include <optional>
#include <string_view>

namespace tinprov::cpu {

/// Instruction-set tiers the kernel dispatch table is compiled for,
/// ordered so "at most X" comparisons work. AVX-512 hosts run the AVX2
/// table (no 512-bit variants yet; see DetectAvx512 for reporting).
enum class SimdLevel { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Highest level this CPU supports, probed once via CPUID (cached).
/// SSE2 is architectural on x86-64; non-x86 targets report kScalar.
SimdLevel DetectSimdLevel();

/// True when the host additionally supports AVX-512F. Reporting only —
/// surfaces in /statusz so a future 512-bit table knows its audience.
bool DetectAvx512();

/// The level the dispatch table actually uses: DetectSimdLevel()
/// clamped down by a TINPROV_SIMD override if one is set. Resolved on
/// first call and cached for the process lifetime — the kernel tables
/// in util/simd.h latch it, so flipping the env var later has no
/// effect.
SimdLevel ActiveSimdLevel();

/// "scalar", "sse2", or "avx2".
const char* SimdLevelName(SimdLevel level);

/// Parses a TINPROV_SIMD value (case-insensitive); nullopt when the
/// string names no known level.
std::optional<SimdLevel> ParseSimdLevel(std::string_view name);

}  // namespace tinprov::cpu

#endif  // TINPROV_UTIL_CPU_H_
