#include "util/crc32c.h"

#include <array>

namespace tinprov {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC of byte b followed by k zero bytes — the slice-by-8
  // construction (process 8 input bytes per iteration, one XOR each).
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      const uint32_t prev = tables.t[k - 1][b];
      tables.t[k][b] = (prev >> 8) ^ tables.t[0][prev & 0xff];
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n) {
  const Tables& tb = GetTables();
  crc = ~crc;
  while (n >= 8) {
    // Byte-wise loads keep the kernel endian- and alignment-agnostic;
    // the table lookups dominate either way.
    const uint32_t lo = crc ^ (uint32_t{data[0]} | uint32_t{data[1]} << 8 |
                               uint32_t{data[2]} << 16 | uint32_t{data[3]} << 24);
    const uint32_t hi = uint32_t{data[4]} | uint32_t{data[5]} << 8 |
                        uint32_t{data[6]} << 16 | uint32_t{data[7]} << 24;
    crc = tb.t[7][lo & 0xff] ^ tb.t[6][(lo >> 8) & 0xff] ^
          tb.t[5][(lo >> 16) & 0xff] ^ tb.t[4][lo >> 24] ^
          tb.t[3][hi & 0xff] ^ tb.t[2][(hi >> 8) & 0xff] ^
          tb.t[1][(hi >> 16) & 0xff] ^ tb.t[0][hi >> 24];
    data += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *data++) & 0xff];
  }
  return ~crc;
}

}  // namespace tinprov
