// CRC32C (Castagnoli) — the storage layer's corruption detector.
//
// Every on-disk record and footer in src/storage/ carries a CRC32C of
// its payload so recovery can distinguish "clean end of log" from "torn
// or corrupted bytes" without trusting lengths it just read. Software
// slice-by-8 implementation: no SSE4.2 dependency, so checksums are
// identical on every host a segment might migrate to (~1-2 GB/s, far
// above the segment writer's append rate).
#ifndef TINPROV_UTIL_CRC32C_H_
#define TINPROV_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace tinprov {

/// CRC32C of `data[0, n)` continuing from `crc` (pass 0 to start).
/// Extend(Extend(0, a), b) == Extend(0, a+b) for concatenated spans.
uint32_t Crc32cExtend(uint32_t crc, const uint8_t* data, size_t n);

inline uint32_t Crc32c(const uint8_t* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masked form for values stored alongside the data they cover, so a
/// file that embeds CRCs of CRCs (snapshot trailers over record CRCs)
/// never checksums to zero by construction. Same recipe as leveldb.
inline uint32_t Crc32cMask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t Crc32cUnmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace tinprov

#endif  // TINPROV_UTIL_CRC32C_H_
