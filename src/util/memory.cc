#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace tinprov {

namespace {

// Reads a "VmRSS:  1234 kB"-style field from /proc/self/status.
size_t ReadProcStatusKb(const char* field) {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + field_len, " %llu", &value) == 1) {
        kb = static_cast<size_t>(value);
      }
      break;
    }
  }
  std::fclose(file);
  return kb;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::string FormatBytes(size_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= (size_t{1} << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1fGB", b / static_cast<double>(size_t{1} << 30));
  } else if (bytes >= (size_t{1} << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMB", b / static_cast<double>(size_t{1} << 20));
  } else if (bytes >= (size_t{1} << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKB", b / static_cast<double>(size_t{1} << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return std::string(buf);
}

size_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:") * 1024; }

size_t PeakRssBytes() { return ReadProcStatusKb("VmHWM:") * 1024; }

}  // namespace tinprov
