// Memory accounting: byte formatting plus process-level RSS probes.
//
// Logical provenance memory (what paper Table 8 reports) is computed by
// each tracker's MemoryUsage(); the RSS probes here exist for sanity
// checks and for harnesses that want a whole-process view.
#ifndef TINPROV_UTIL_MEMORY_H_
#define TINPROV_UTIL_MEMORY_H_

#include <cstddef>
#include <string>

namespace tinprov {

/// Formats a byte count with binary units: "512B", "1.5KB", "2.3MB", "1.1GB".
std::string FormatBytes(size_t bytes);

/// Current resident set size of this process in bytes; 0 if unavailable
/// (non-Linux platforms).
size_t CurrentRssBytes();

/// Peak resident set size (VmHWM) of this process in bytes; 0 if
/// unavailable.
size_t PeakRssBytes();

}  // namespace tinprov

#endif  // TINPROV_UTIL_MEMORY_H_
