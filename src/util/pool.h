// Free-list pool and the pool-backed vector that stores provenance
// lists.
//
// NodePool carves size-class blocks out of an Arena (util/arena.h) and
// recycles freed blocks through per-class free lists, so the sparse
// merge loop's constant grow/shrink/swap churn never reaches malloc
// after warm-up. PooledVec<T> is the minimal contiguous container the
// trackers need on top of it: trivially-copyable elements, geometric
// growth, raw-pointer iterators, and — crucially for the merge kernel —
// an uninitialized resize, so scratch space costs zero writes before
// the kernel fills it.
//
// Neither class is thread-safe; each tracker (and each replay shard)
// owns its own pool.
#ifndef TINPROV_UTIL_POOL_H_
#define TINPROV_UTIL_POOL_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>

#include "util/arena.h"

namespace tinprov {

/// Size-class free-list allocator over an Arena. Blocks are rounded up
/// to the next power of two (minimum 16 bytes) so a freed block can
/// serve any later request of its class.
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* Allocate(size_t bytes) {
    const size_t cls = ClassIndex(bytes);
    if (free_lists_[cls] != nullptr) {
      FreeNode* node = free_lists_[cls];
      free_lists_[cls] = node->next;
      return node;
    }
    return arena_.Allocate(ClassBytes(cls));
  }

  void Deallocate(void* block, size_t bytes) {
    if (block == nullptr) return;
    const size_t cls = ClassIndex(bytes);
    FreeNode* node = static_cast<FreeNode*>(block);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  /// Pre-sizes the backing arena (see Arena::Reserve).
  void Reserve(size_t bytes) { arena_.Reserve(bytes); }

  size_t bytes_reserved() const { return arena_.bytes_reserved(); }
  size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  // 2^4 .. 2^47 byte classes; class 0 holds everything <= 16 bytes so a
  // block always fits a FreeNode when it returns.
  static constexpr size_t kMinClassLog2 = 4;
  static constexpr size_t kNumClasses = 44;

  static size_t ClassIndex(size_t bytes) {
    size_t cls = 0;
    size_t size = size_t{1} << kMinClassLog2;
    while (size < bytes) {
      size <<= 1;
      ++cls;
    }
    assert(cls < kNumClasses);
    return cls;
  }

  static size_t ClassBytes(size_t cls) {
    return size_t{1} << (kMinClassLog2 + cls);
  }

  Arena arena_;
  FreeNode* free_lists_[kNumClasses] = {};
};

/// Contiguous vector of trivially copyable elements whose storage comes
/// from a NodePool (or, with a null pool, from the global heap, so
/// default-constructed instances — tests, ad-hoc lists — keep working).
/// The subset of std::vector's interface the trackers use is provided
/// with identical semantics; ResizeUninitialized is the extra operation
/// that makes the merge scratch free of redundant writes.
template <typename T>
class PooledVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "PooledVec elements must be trivially copyable");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  PooledVec() = default;
  explicit PooledVec(NodePool* pool) : pool_(pool) {}

  PooledVec(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }

  PooledVec(const PooledVec& other) : pool_(other.pool_) {
    assign(other.begin(), other.end());
  }

  PooledVec& operator=(const PooledVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  PooledVec(PooledVec&& other) noexcept
      : data_(other.data_),
        size_(other.size_),
        capacity_(other.capacity_),
        pool_(other.pool_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  PooledVec& operator=(PooledVec&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      pool_ = other.pool_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.capacity_ = 0;
    }
    return *this;
  }

  ~PooledVec() { Release(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  T& back() {
    assert(size_ > 0);
    return data_[size_ - 1];
  }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  /// Grows or shrinks to exactly n elements; new elements are
  /// value-initialized (std::vector::resize semantics).
  void resize(size_t n) {
    if (n > size_) {
      reserve(n);
      std::memset(static_cast<void*>(data_ + size_), 0,
                  (n - size_) * sizeof(T));
    }
    size_ = n;
  }

  /// Grows or shrinks to exactly n elements leaving new elements
  /// unwritten. The caller must write an element before reading it —
  /// this is the merge-scratch fast path.
  void ResizeUninitialized(size_t n) {
    if (n > capacity_) Grow(n);
    size_ = n;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Inserts before `pos` (a pointer into this vector), shifting the
  /// tail; returns the position of the inserted element.
  T* insert(T* pos, const T& value) {
    const size_t offset = static_cast<size_t>(pos - data_);
    assert(offset <= size_);
    if (size_ == capacity_) Grow(size_ + 1);
    pos = data_ + offset;
    std::memmove(static_cast<void*>(pos + 1), pos,
                 (size_ - offset) * sizeof(T));
    *pos = value;
    ++size_;
    return pos;
  }

  void assign(const T* first, const T* last) {
    const size_t n = static_cast<size_t>(last - first);
    ResizeUninitialized(n);
    if (n > 0) std::memcpy(data_, first, n * sizeof(T));
  }

  /// O(1) storage exchange. The pool pointer travels with the storage,
  /// so vectors backed by different pools may swap safely; each block
  /// still returns to the pool it came from.
  void swap(PooledVec& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
    std::swap(pool_, other.pool_);
  }

 private:
  void Grow(size_t min_capacity) {
    size_t next = capacity_ == 0 ? kInitialCapacity : capacity_ * 2;
    if (next < min_capacity) next = min_capacity;
    T* grown = static_cast<T*>(AllocateBytes(next * sizeof(T)));
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
    Release();
    data_ = grown;
    capacity_ = next;
  }

  void* AllocateBytes(size_t bytes) {
    if (pool_ != nullptr) return pool_->Allocate(bytes);
    return ::operator new(bytes);
  }

  void Release() {
    if (data_ == nullptr) return;
    if (pool_ != nullptr) {
      pool_->Deallocate(data_, capacity_ * sizeof(T));
    } else {
      ::operator delete(data_);
    }
    data_ = nullptr;
  }

  static constexpr size_t kInitialCapacity = 4;

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
  NodePool* pool_ = nullptr;
};

template <typename T>
void swap(PooledVec<T>& a, PooledVec<T>& b) noexcept {
  a.swap(b);
}

}  // namespace tinprov

#endif  // TINPROV_UTIL_POOL_H_
