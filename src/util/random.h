// Deterministic, seedable random primitives for data generation and
// benchmarks. Everything here is reproducible across platforms: no
// libc rand(), no std::random_device, no distribution objects whose
// output differs between standard library implementations.
#ifndef TINPROV_UTIL_RANDOM_H_
#define TINPROV_UTIL_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace tinprov {

/// xoshiro256** seeded via splitmix64. Fast, high-quality, and tiny —
/// the generators sit inside per-interaction loops.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (uint64_t& word : state_) {
      // splitmix64 step: decorrelates consecutive seeds.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
#if defined(__SIZEOF_INT128__)
    // Lemire's nearly-divisionless method with rejection.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
#else
    // Portable unbiased fallback for compilers without 128-bit integers.
    const uint64_t threshold = -bound % bound;
    uint64_t x = Next();
    while (x < threshold) x = Next();
    return x % bound;
#endif
  }

  /// Standard normal via Box–Muller.
  double NextGaussian() {
    // Avoid log(0) by nudging u1 away from zero.
    const double u1 = NextDouble() + 1e-300;
    const double u2 = NextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Zipf(n, s) sampler over ranks [0, n) via rejection-inversion
/// (Hörmann & Derflinger 1996). Initialization and expected sampling cost
/// are both O(1), so it scales to the multi-million-vertex presets.
/// Supports any skew s > 0, including s == 1 (harmonic).
class ZipfDistribution {
 public:
  ZipfDistribution(uint64_t n, double skew) : n_(n), s_(skew) {
    assert(n > 0);
    assert(skew > 0.0);
    h_x1_ = HIntegral(1.5) - 1.0;
    h_n_ = HIntegral(static_cast<double>(n) + 0.5);
    // Shortcut acceptance width around the left edge of each integer cell.
    threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
  }

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t operator()(Rng& rng) {
    for (;;) {
      // u uniform in [h_x1_, h_n_]; both bounds are finite for s > 0.
      const double u = h_x1_ + rng.NextDouble() * (h_n_ - h_x1_);
      const double x = HIntegralInverse(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= threshold_ || u >= HIntegral(k + 0.5) - H(k)) {
        return static_cast<uint64_t>(k) - 1;
      }
    }
  }

 private:
  // h(x) = x^-s, the unnormalized Zipf density.
  double H(double x) const { return std::pow(x, -s_); }

  // Antiderivative of h; log for the s == 1 singularity.
  double HIntegral(double x) const {
    if (s_ == 1.0) return std::log(x);
    const double one_minus_s = 1.0 - s_;
    return std::pow(x, one_minus_s) / one_minus_s;
  }

  double HIntegralInverse(double u) const {
    if (s_ == 1.0) return std::exp(u);
    const double one_minus_s = 1.0 - s_;
    return std::pow(u * one_minus_s, 1.0 / one_minus_s);
  }

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

}  // namespace tinprov

#endif  // TINPROV_UTIL_RANDOM_H_
