// Flat binary serialization for tracker snapshots.
//
// The time-travel index checkpoints tracker state every N interactions
// and restores it on historical queries, so the format optimizes for
// write/restore speed over portability: little-endian host layout,
// memcpy of trivially copyable values (padded tuple types go through
// the field-wise helpers in core/buffer_io.h instead). Snapshots live
// and die inside one process; they are not an interchange format.
#ifndef TINPROV_UTIL_SERIALIZE_H_
#define TINPROV_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace tinprov {

/// Appends trivially copyable values to a caller-owned byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Append(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter handles trivially copyable types only");
    const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
    out_->insert(out_->end(), bytes, bytes + sizeof(T));
  }

  /// Raw span of `count` values with no length prefix — for arrays whose
  /// length is fixed by the tracker's configuration (e.g. per-vertex
  /// balances of a known vertex count).
  template <typename T>
  void AppendSpan(const T* values, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteWriter handles trivially copyable types only");
    const auto* bytes = reinterpret_cast<const uint8_t*>(values);
    out_->insert(out_->end(), bytes, bytes + count * sizeof(T));
  }

 private:
  std::vector<uint8_t>* out_;
};

/// Bounds-checked reader over a byte span produced by ByteWriter. Every
/// accessor returns InvalidArgument instead of reading past the end, so
/// truncated or mismatched snapshots fail loudly.
class ByteReader {
 public:
  /// A null `data` reads as empty whatever `size` claims, so callers
  /// handing over a buffer they never filled get InvalidArgument from
  /// the first Read instead of a null dereference.
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(data == nullptr ? 0 : size) {}

  size_t remaining() const { return size_ - pos_; }

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader handles trivially copyable types only");
    return ReadSpan(out, 1);
  }

  template <typename T>
  Status ReadSpan(T* out, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteReader handles trivially copyable types only");
    if (count > remaining() / sizeof(T)) {
      return Status::InvalidArgument(
          "snapshot truncated: need " + std::to_string(count * sizeof(T)) +
          " bytes, have " + std::to_string(remaining()));
    }
    std::memcpy(out, data_ + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return Status::Ok();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace tinprov

#endif  // TINPROV_UTIL_SERIALIZE_H_
