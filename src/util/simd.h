// Dense-vector kernels for the proportional tracker's |V|-length
// buffers, plus the sparse gallop-merge kernel behind the pro-rata
// transfer (the repo's hottest loop).
//
// Every kernel here is runtime-dispatched: the bodies are compiled as
// scalar, SSE2, and AVX2 variants in per-ISA translation units (see
// util/simd_kernels.inc and util/simd_dispatch.h), the right table is
// picked once per process via CPUID (`TINPROV_SIMD=scalar|sse2|avx2`
// overrides it for testing), and each wrapper below latches the table
// in a function-local static — steady state is one indirect call, and
// a single portable binary runs the AVX2 lanes wherever the host
// supports them. TINPROV_NATIVE is no longer what turns vector lanes
// on; it only lets the compiler additionally vectorize *non-kernel*
// code with -march=native.
//
// Bit-exactness contract: parallel sharded replay and sharded ingest
// (src/parallel/) must reproduce sequential results bit-for-bit, and a
// shard sees a subset of each list. Every per-element value here is
// therefore produced by an arithmetic expression that does not depend
// on its neighbours — single multiplies in the vector lanes, and the
// one fused-looking accumulate (a + b * f) kept as an unfused mul+add
// at every level (the per-ISA TUs build with -ffp-contract=off) — so
// the scalar/vector split, and the dispatch level itself, can differ
// between runs without changing results. Sum() is the documented
// exception: a reduction reassociates per lane width and is never used
// where tracker state depends on it. All functions tolerate n == 0 and
// require dst/src to be non-overlapping unless noted.
#ifndef TINPROV_UTIL_SIMD_H_
#define TINPROV_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "util/simd_dispatch.h"

namespace tinprov::simd {

/// dst[i] += src[i].
inline void Add(double* dst, const double* src, size_t n) {
  static const KernelTable& k = ActiveKernels();
  k.add(dst, src, n);
}

/// dst[i] *= factor.
inline void Scale(double* dst, double factor, size_t n) {
  static const KernelTable& k = ActiveKernels();
  k.scale(dst, factor, n);
}

/// Moves a fraction of src into dst, elementwise:
///   dst[i] += fraction * src[i];  src[i] *= (1 - fraction).
/// This is the inner loop of a proportional transfer between two dense
/// provenance vectors. src is mutated; dst and src must not alias.
inline void TransferFraction(double* dst, double* src, double fraction,
                             size_t n) {
  static const KernelTable& k = ActiveKernels();
  k.transfer_fraction(dst, src, fraction, n);
}

/// Returns sum(src[0..n)). The one kernel whose result may differ by
/// rounding between dispatch levels (lane accumulators reassociate);
/// used for reports and sanity checks, never for tracker state.
inline double Sum(const double* src, size_t n) {
  static const KernelTable& k = ActiveKernels();
  return k.sum(src, n);
}

// ---------------------------------------------------------------------
// Sparse (origin, quantity)-pair kernels. `Pair` is any standard-layout
// struct with a 32-bit integral `origin` followed by a double `quantity`
// (tinprov's ProvPair; duck-typed here so util/ stays below core/).
// Types matching the exact 16-byte {origin, pad, quantity} layout are
// reinterpreted into the dispatch table's PairLane and take the
// runtime-selected lanes; anything else falls back to the inline
// scalar templates below.

namespace internal {

template <typename Pair>
inline constexpr bool kHasSimdPairLayout =
    sizeof(Pair) == 16 && alignof(Pair) == 8;

/// First index in [1, n] at which p[index].origin >= key, found by
/// exponential probing then binary search. Preconditions: n >= 1 and
/// p[0].origin < key, so the result is the length of the maximal run of
/// entries strictly below `key`. Cost is O(log run) — cheap for the
/// interleaved case (run == 1 answers on the first probe) and the whole
/// point for skewed merges, where runs are long.
template <typename Pair>
inline size_t GallopRun(const Pair* p, size_t n, uint32_t key) {
  size_t hi = 1;
  while (hi < n && p[hi].origin < key) hi <<= 1;
  size_t lo = hi >> 1;  // p[lo].origin < key
  if (hi > n) hi = n;
  // Invariant: p[lo].origin < key, and hi == n or p[hi].origin >= key.
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (p[mid].origin < key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace internal

/// out[i] = {in[i].origin, in[i].quantity * factor} for i in [0, n).
/// Origins (and their padding bytes) are copied bit-exactly; out and in
/// must not overlap.
template <typename Pair>
inline void ScaleCopyPairs(Pair* out, const Pair* in, double factor,
                           size_t n) {
  if constexpr (internal::kHasSimdPairLayout<Pair>) {
    static const KernelTable& k = ActiveKernels();
    k.scale_copy_pairs(reinterpret_cast<PairLane*>(out),
                       reinterpret_cast<const PairLane*>(in), factor, n);
  } else {
    for (size_t i = 0; i < n; ++i) {
      out[i].origin = in[i].origin;
      out[i].quantity = in[i].quantity * factor;
    }
  }
}

/// p[i].quantity *= factor in place — the "source keeps (1 - f)" pass
/// of a pro-rata transfer.
template <typename Pair>
inline void ScalePairsInPlace(Pair* p, double factor, size_t n) {
  if constexpr (internal::kHasSimdPairLayout<Pair>) {
    static const KernelTable& k = ActiveKernels();
    k.scale_pairs_in_place(reinterpret_cast<PairLane*>(p), factor, n);
  } else {
    for (size_t i = 0; i < n; ++i) p[i].quantity *= factor;
  }
}

/// Two-pointer gallop merge of origin-sorted pair lists:
///   out = a  +  factor * b      (merging by origin)
/// writing the merged, origin-sorted list to `out` (capacity at least
/// na + nb, overlapping neither input) and returning its length.
/// Disjoint runs are detected by galloping and moved with the SIMD
/// copy kernels; equal origins accumulate in a single unfused scalar
/// expression, a[i].quantity + b[j].quantity * factor — the exact
/// arithmetic the paper's Section 4.3 transfer specifies. The whole
/// merge dispatches once, so the per-ISA inner loops pay no indirect
/// calls.
template <typename Pair>
inline size_t GallopMergeScaled(Pair* out, const Pair* a, size_t na,
                                const Pair* b, size_t nb, double factor) {
  if constexpr (internal::kHasSimdPairLayout<Pair>) {
    static const KernelTable& k = ActiveKernels();
    return k.gallop_merge_scaled(reinterpret_cast<PairLane*>(out),
                                 reinterpret_cast<const PairLane*>(a), na,
                                 reinterpret_cast<const PairLane*>(b), nb,
                                 factor);
  }
  size_t i = 0;
  size_t j = 0;
  size_t k = 0;
  while (i < na && j < nb) {
    const uint32_t ka = a[i].origin;
    const uint32_t kb = b[j].origin;
    if (ka == kb) {
      out[k].origin = ka;
      out[k].quantity = a[i].quantity + b[j].quantity * factor;
      ++i;
      ++j;
      ++k;
    } else if (ka < kb) {
      // Inline the first element — interleaved lists mostly produce
      // runs of one — and gallop only once a run proves longer.
      out[k++] = a[i++];
      if (i < na && a[i].origin < kb) {
        const size_t run = internal::GallopRun(a + i, na - i, kb);
        std::memcpy(static_cast<void*>(out + k), a + i, run * sizeof(Pair));
        i += run;
        k += run;
      }
    } else {
      out[k].origin = b[j].origin;
      out[k].quantity = b[j].quantity * factor;
      ++k;
      ++j;
      if (j < nb && b[j].origin < ka) {
        const size_t run = internal::GallopRun(b + j, nb - j, ka);
        ScaleCopyPairs(out + k, b + j, factor, run);
        j += run;
        k += run;
      }
    }
  }
  if (i < na) {
    std::memcpy(static_cast<void*>(out + k), a + i, (na - i) * sizeof(Pair));
    k += na - i;
  }
  if (j < nb) {
    ScaleCopyPairs(out + k, b + j, factor, nb - j);
    k += nb - j;
  }
  return k;
}

}  // namespace tinprov::simd

#endif  // TINPROV_UTIL_SIMD_H_
