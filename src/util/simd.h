// Dense-vector kernels for the proportional tracker's |V|-length buffers.
//
// The scalar loops below are written so the compiler can auto-vectorize
// them at -O2/-O3; an explicit AVX2 path is provided when the translation
// unit is compiled with -mavx2 (the build does not force it, keeping the
// binaries portable). All functions tolerate n == 0 and require dst/src
// to be non-overlapping unless noted.
#ifndef TINPROV_UTIL_SIMD_H_
#define TINPROV_UTIL_SIMD_H_

#include <cstddef>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tinprov::simd {

/// dst[i] += src[i].
inline void Add(double* dst, const double* src, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(dst + i);
    const __m256d s = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, s));
  }
#endif
  for (; i < n; ++i) dst[i] += src[i];
}

/// dst[i] *= factor.
inline void Scale(double* dst, double factor, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  const __m256d f = _mm256_set1_pd(factor);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(dst + i), f));
  }
#endif
  for (; i < n; ++i) dst[i] *= factor;
}

/// Moves a fraction of src into dst, elementwise:
///   dst[i] += fraction * src[i];  src[i] *= (1 - fraction).
/// This is the inner loop of a proportional transfer between two dense
/// provenance vectors. src is mutated; dst and src must not alias.
inline void TransferFraction(double* dst, double* src, double fraction,
                             size_t n) {
  const double keep = 1.0 - fraction;
  size_t i = 0;
#if defined(__AVX2__)
  const __m256d f = _mm256_set1_pd(fraction);
  const __m256d k = _mm256_set1_pd(keep);
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d d = _mm256_loadu_pd(dst + i);
    _mm256_storeu_pd(dst + i, _mm256_fmadd_pd(f, s, d));
    _mm256_storeu_pd(src + i, _mm256_mul_pd(s, k));
  }
#endif
  for (; i < n; ++i) {
    dst[i] += fraction * src[i];
    src[i] *= keep;
  }
}

/// Returns sum(src[0..n)).
inline double Sum(const double* src, size_t n) {
  double total = 0.0;
  size_t i = 0;
#if defined(__AVX2__)
  __m256d acc = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(src + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
#endif
  for (; i < n; ++i) total += src[i];
  return total;
}

}  // namespace tinprov::simd

#endif  // TINPROV_UTIL_SIMD_H_
