// Dense-vector kernels for the proportional tracker's |V|-length
// buffers, plus the sparse gallop-merge kernel behind the pro-rata
// transfer (the repo's hottest loop).
//
// The scalar loops below are written so the compiler can auto-vectorize
// them at -O2/-O3; explicit AVX2 paths are provided when the translation
// unit is compiled with AVX2 enabled (configure with -DTINPROV_NATIVE=ON
// to opt in; the default build stays portable). All functions tolerate
// n == 0 and require dst/src to be non-overlapping unless noted.
//
// Bit-exactness contract: parallel sharded replay (src/parallel/) must
// reproduce sequential results bit-for-bit, and a shard sees a subset
// of each list. Every per-element value here is therefore produced by
// an arithmetic expression that does not depend on its neighbours —
// single multiplies in the vector lanes, and the one fused-looking
// accumulate (a + b * f) kept in exactly one scalar expression — so the
// scalar/vector split can differ between runs without changing results.
#ifndef TINPROV_UTIL_SIMD_H_
#define TINPROV_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace tinprov::simd {

/// dst[i] += src[i].
inline void Add(double* dst, const double* src, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_loadu_pd(dst + i);
    const __m256d s = _mm256_loadu_pd(src + i);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(d, s));
  }
#endif
  for (; i < n; ++i) dst[i] += src[i];
}

/// dst[i] *= factor.
inline void Scale(double* dst, double factor, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  const __m256d f = _mm256_set1_pd(factor);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_mul_pd(_mm256_loadu_pd(dst + i), f));
  }
#endif
  for (; i < n; ++i) dst[i] *= factor;
}

/// Moves a fraction of src into dst, elementwise:
///   dst[i] += fraction * src[i];  src[i] *= (1 - fraction).
/// This is the inner loop of a proportional transfer between two dense
/// provenance vectors. src is mutated; dst and src must not alias.
inline void TransferFraction(double* dst, double* src, double fraction,
                             size_t n) {
  const double keep = 1.0 - fraction;
  size_t i = 0;
#if defined(__AVX2__)
  const __m256d f = _mm256_set1_pd(fraction);
  const __m256d k = _mm256_set1_pd(keep);
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(src + i);
    const __m256d d = _mm256_loadu_pd(dst + i);
    _mm256_storeu_pd(dst + i, _mm256_fmadd_pd(f, s, d));
    _mm256_storeu_pd(src + i, _mm256_mul_pd(s, k));
  }
#endif
  for (; i < n; ++i) {
    dst[i] += fraction * src[i];
    src[i] *= keep;
  }
}

/// Returns sum(src[0..n)).
inline double Sum(const double* src, size_t n) {
  double total = 0.0;
  size_t i = 0;
#if defined(__AVX2__)
  __m256d acc = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(src + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
#endif
  for (; i < n; ++i) total += src[i];
  return total;
}

// ---------------------------------------------------------------------
// Sparse (origin, quantity)-pair kernels. `Pair` is any standard-layout
// struct with a 32-bit integral `origin` followed by a double `quantity`
// (tinprov's ProvPair; duck-typed here so util/ stays below core/). The
// AVX2 lanes additionally require the exact 16-byte {origin, pad,
// quantity} layout and engage only when it holds.

namespace internal {

template <typename Pair>
inline constexpr bool kHasSimdPairLayout =
    sizeof(Pair) == 16 && alignof(Pair) == 8;

}  // namespace internal

/// out[i] = {in[i].origin, in[i].quantity * factor} for i in [0, n).
/// Origins (and their padding bytes, on the AVX2 path) are copied
/// bit-exactly; out and in must not overlap.
template <typename Pair>
inline void ScaleCopyPairs(Pair* out, const Pair* in, double factor,
                           size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  if constexpr (internal::kHasSimdPairLayout<Pair>) {
    // Memory as doubles: [hdr0, q0, hdr1, q1]. Multiply everything,
    // then blend the scaled quantity lanes (1, 3) over the original
    // header lanes (0, 2) so origin bits are never touched by
    // arithmetic. Multiplying the header lane interpreted as a double
    // is dead computation whose result is discarded by the blend.
    const __m256d f = _mm256_set1_pd(factor);
    for (; i + 2 <= n; i += 2) {
      const __m256d v =
          _mm256_loadu_pd(reinterpret_cast<const double*>(in + i));
      const __m256d scaled = _mm256_mul_pd(v, f);
      _mm256_storeu_pd(reinterpret_cast<double*>(out + i),
                       _mm256_blend_pd(v, scaled, 0b1010));
    }
  }
#endif
  for (; i < n; ++i) {
    out[i].origin = in[i].origin;
    out[i].quantity = in[i].quantity * factor;
  }
}

/// p[i].quantity *= factor in place — the "source keeps (1 - f)" pass
/// of a pro-rata transfer.
template <typename Pair>
inline void ScalePairsInPlace(Pair* p, double factor, size_t n) {
  size_t i = 0;
#if defined(__AVX2__)
  if constexpr (internal::kHasSimdPairLayout<Pair>) {
    const __m256d f = _mm256_set1_pd(factor);
    for (; i + 2 <= n; i += 2) {
      double* mem = reinterpret_cast<double*>(p + i);
      const __m256d v = _mm256_loadu_pd(mem);
      _mm256_storeu_pd(mem, _mm256_blend_pd(v, _mm256_mul_pd(v, f), 0b1010));
    }
  }
#endif
  for (; i < n; ++i) p[i].quantity *= factor;
}

namespace internal {

/// First index in [1, n] at which p[index].origin >= key, found by
/// exponential probing then binary search. Preconditions: n >= 1 and
/// p[0].origin < key, so the result is the length of the maximal run of
/// entries strictly below `key`. Cost is O(log run) — cheap for the
/// interleaved case (run == 1 answers on the first probe) and the whole
/// point for skewed merges, where runs are long.
template <typename Pair>
inline size_t GallopRun(const Pair* p, size_t n, uint32_t key) {
  size_t hi = 1;
  while (hi < n && p[hi].origin < key) hi <<= 1;
  size_t lo = hi >> 1;  // p[lo].origin < key
  if (hi > n) hi = n;
  // Invariant: p[lo].origin < key, and hi == n or p[hi].origin >= key.
  while (lo + 1 < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (p[mid].origin < key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace internal

/// Two-pointer gallop merge of origin-sorted pair lists:
///   out = a  +  factor * b      (merging by origin)
/// writing the merged, origin-sorted list to `out` (capacity at least
/// na + nb, overlapping neither input) and returning its length.
/// Disjoint runs are detected by galloping and moved with the SIMD
/// copy kernels; equal origins accumulate in a single scalar
/// expression, a[i].quantity + b[j].quantity * factor — the exact
/// arithmetic the paper's Section 4.3 transfer specifies.
template <typename Pair>
inline size_t GallopMergeScaled(Pair* out, const Pair* a, size_t na,
                                const Pair* b, size_t nb, double factor) {
  size_t i = 0;
  size_t j = 0;
  size_t k = 0;
  while (i < na && j < nb) {
    const uint32_t ka = a[i].origin;
    const uint32_t kb = b[j].origin;
    if (ka == kb) {
      out[k].origin = ka;
      out[k].quantity = a[i].quantity + b[j].quantity * factor;
      ++i;
      ++j;
      ++k;
    } else if (ka < kb) {
      // Inline the first element — interleaved lists mostly produce
      // runs of one — and gallop only once a run proves longer.
      out[k++] = a[i++];
      if (i < na && a[i].origin < kb) {
        const size_t run = internal::GallopRun(a + i, na - i, kb);
        std::memcpy(static_cast<void*>(out + k), a + i, run * sizeof(Pair));
        i += run;
        k += run;
      }
    } else {
      out[k].origin = b[j].origin;
      out[k].quantity = b[j].quantity * factor;
      ++k;
      ++j;
      if (j < nb && b[j].origin < ka) {
        const size_t run = internal::GallopRun(b + j, nb - j, ka);
        ScaleCopyPairs(out + k, b + j, factor, run);
        j += run;
        k += run;
      }
    }
  }
  if (i < na) {
    std::memcpy(static_cast<void*>(out + k), a + i, (na - i) * sizeof(Pair));
    k += na - i;
  }
  if (j < nb) {
    ScaleCopyPairs(out + k, b + j, factor, nb - j);
    k += nb - j;
  }
  return k;
}

}  // namespace tinprov::simd

#endif  // TINPROV_UTIL_SIMD_H_
