// AVX2 dispatch level. CMake compiles this TU with -mavx2 -mfma
// -ffp-contract=off and defines TINPROV_SIMD_USE_AVX2 when the flags
// are accepted. -mfma is requested for parity with TINPROV_NATIVE
// builds, but the kernels deliberately never use fused ops — see the
// bit-exactness contract in util/simd_dispatch.h.
#define TINPROV_SIMD_IMPL_NAMESPACE avx2_impl
#define TINPROV_SIMD_TABLE_NAME "avx2"
#include "util/simd_kernels.inc"
