#include "util/simd_dispatch.h"

#include "util/cpu.h"

namespace tinprov::simd {

// Defined by the per-ISA TUs (simd_scalar.cc / simd_sse2.cc /
// simd_avx2.cc), each an expansion of util/simd_kernels.inc.
namespace scalar_impl {
extern const KernelTable kTable;
}
namespace sse2_impl {
extern const KernelTable kTable;
}
namespace avx2_impl {
extern const KernelTable kTable;
}

const KernelTable& KernelsFor(cpu::SimdLevel level) {
  switch (level) {
    case cpu::SimdLevel::kScalar:
      return scalar_impl::kTable;
    case cpu::SimdLevel::kSse2:
      return sse2_impl::kTable;
    case cpu::SimdLevel::kAvx2:
      return avx2_impl::kTable;
  }
  return scalar_impl::kTable;
}

const KernelTable& ActiveKernels() {
  static const KernelTable& table = KernelsFor(cpu::ActiveSimdLevel());
  return table;
}

}  // namespace tinprov::simd
