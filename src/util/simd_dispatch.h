// Runtime-dispatched kernel table behind util/simd.h.
//
// The same kernel bodies (util/simd_kernels.inc) are compiled three
// times — simd_scalar.cc, simd_sse2.cc (-msse2), simd_avx2.cc
// (-mavx2 -mfma) — and each TU exports one KernelTable of plain
// function pointers. KernelsFor() hands out any table (tests compare
// levels in-process); ActiveKernels() resolves the table for this host
// once (CPUID + TINPROV_SIMD override, see util/cpu.h) and the inline
// wrappers in util/simd.h latch it in function-local statics, so the
// steady-state cost of dispatch is a single indirect call.
//
// Bit-exactness across levels is part of the contract: every table
// entry except `sum` must produce bit-identical outputs for identical
// inputs at every level. The per-ISA TUs are compiled with
// -ffp-contract=off and use separate mul+add (never FMA) so the scalar
// expression a + b * factor means the same thing in every lane width.
// `sum` is the one exception — a reduction reassociates per lane width
// — and is never used where tracker state (and thus the sequential ==
// sharded bit-identity proof) depends on it.
#ifndef TINPROV_UTIL_SIMD_DISPATCH_H_
#define TINPROV_UTIL_SIMD_DISPATCH_H_

#include <cstddef>
#include <cstdint>

#include "util/cpu.h"

namespace tinprov::simd {

/// The 16-byte sparse-pair layout the pair kernels operate on. Callers
/// (util/simd.h templates) reinterpret their own Pair type into this
/// when the layout matches; the padding lane is copied bit-exactly by
/// every level, never computed with.
struct PairLane {
  uint32_t origin;
  uint32_t pad;
  double quantity;
};
static_assert(sizeof(PairLane) == 16 && alignof(PairLane) == 8,
              "PairLane must match the ProvPair wire layout");

/// One per-ISA set of kernel entry points. Semantics documented on the
/// public wrappers in util/simd.h.
struct KernelTable {
  const char* name;
  void (*add)(double* dst, const double* src, size_t n);
  void (*scale)(double* dst, double factor, size_t n);
  void (*transfer_fraction)(double* dst, double* src, double fraction,
                            size_t n);
  double (*sum)(const double* src, size_t n);
  void (*scale_copy_pairs)(PairLane* out, const PairLane* in, double factor,
                           size_t n);
  void (*scale_pairs_in_place)(PairLane* p, double factor, size_t n);
  size_t (*gallop_merge_scaled)(PairLane* out, const PairLane* a, size_t na,
                                const PairLane* b, size_t nb, double factor);
};

/// The table compiled for `level`. Always valid to *call* regardless of
/// host support when the build lacked the ISA flags (the TU degrades to
/// scalar code); only ActiveKernels() guarantees the lanes are both
/// compiled and executable on this CPU. Tests and benches use this to
/// compare levels side by side in one process.
const KernelTable& KernelsFor(cpu::SimdLevel level);

/// The table for cpu::ActiveSimdLevel(), resolved once per process.
const KernelTable& ActiveKernels();

}  // namespace tinprov::simd

#endif  // TINPROV_UTIL_SIMD_DISPATCH_H_
