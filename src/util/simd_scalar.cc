// Scalar dispatch level. Compiled with the project's baseline flags
// plus -ffp-contract=off (see src/CMakeLists.txt) — the loops may still
// auto-vectorize to whatever the global -march allows, which is fine:
// without contraction every level computes bit-identical results.
#define TINPROV_SIMD_IMPL_NAMESPACE scalar_impl
#define TINPROV_SIMD_TABLE_NAME "scalar"
#include "util/simd_kernels.inc"
