// SSE2 dispatch level. CMake compiles this TU with -msse2
// -ffp-contract=off and defines TINPROV_SIMD_USE_SSE2 when the flag is
// accepted; on toolchains where it is not, this degrades to the scalar
// bodies and KernelsFor(kSse2) simply aliases that code.
#define TINPROV_SIMD_IMPL_NAMESPACE sse2_impl
#define TINPROV_SIMD_TABLE_NAME "sse2"
#include "util/simd_kernels.inc"
