// Minimal Status / StatusOr error-handling vocabulary for tinprov.
//
// Benchmarks and library code return Status for operations that can fail
// (bad interactions, infeasible configurations) and StatusOr<T> for
// fallible factories (dataset generation, index construction).
#ifndef TINPROV_UTIL_STATUS_H_
#define TINPROV_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace tinprov {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kResourceExhausted = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnavailable = 6,  // transient I/O failure — the storage layer's lane
};

/// Returns the canonical name of a status code ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// Either a value of type T or a non-OK Status. Accessors assert on misuse:
/// callers must check ok() before dereferencing.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : status_(), value_(value), has_value_(true) {}
  StatusOr(T&& value)
      : status_(), value_(std::move(value)), has_value_(true) {}
  StatusOr(Status status) : status_(std::move(status)), has_value_(false) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  StatusOr(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(has_value_);
    return value_;
  }
  T& value() & {
    assert(has_value_);
    return value_;
  }
  T&& value() && {
    assert(has_value_);
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    assert(has_value_);
    return &value_;
  }
  T* operator->() {
    assert(has_value_);
    return &value_;
  }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

}  // namespace tinprov

#endif  // TINPROV_UTIL_STATUS_H_
