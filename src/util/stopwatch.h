// Monotonic wall-clock stopwatch used by every measurement harness.
#ifndef TINPROV_UTIL_STOPWATCH_H_
#define TINPROV_UTIL_STOPWATCH_H_

#include <chrono>

namespace tinprov {

/// Starts running on construction; ElapsedSeconds() can be read repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tinprov

#endif  // TINPROV_UTIL_STOPWATCH_H_
