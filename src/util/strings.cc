#include "util/strings.h"

#include <cmath>
#include <cstdio>

namespace tinprov {

namespace {

std::string Printf(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return std::string(buf);
}

std::string PrintfDecimals(double value, int decimals, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", decimals, value, suffix);
  return std::string(buf);
}

}  // namespace

std::string FormatSeconds(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0.0) return "-";
  if (seconds >= 1.0) return Printf("%.2fs", seconds);
  if (seconds >= 1e-3) return Printf("%.1fms", seconds * 1e3);
  if (seconds >= 1e-6) return Printf("%.0fus", seconds * 1e6);
  return Printf("%.0fns", seconds * 1e9);
}

std::string AsciiLower(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return lower;
}

std::string FormatCompact(double value, int decimals) {
  if (!std::isfinite(value)) return "-";
  const double magnitude = std::fabs(value);
  if (magnitude >= 1e9) return PrintfDecimals(value / 1e9, decimals, "B");
  if (magnitude >= 1e6) return PrintfDecimals(value / 1e6, decimals, "M");
  if (magnitude >= 1e3) return PrintfDecimals(value / 1e3, decimals, "K");
  return PrintfDecimals(value, decimals, "");
}

}  // namespace tinprov
