// Human-readable number formatting shared by the bench tables.
#ifndef TINPROV_UTIL_STRINGS_H_
#define TINPROV_UTIL_STRINGS_H_

#include <string>
#include <string_view>

namespace tinprov {

/// Formats a duration with an adaptive unit: "1.42s", "37.1ms", "820us",
/// "95ns". Negative or non-finite inputs render as "-".
std::string FormatSeconds(double seconds);

/// Formats a value compactly with K/M/B suffixes above 1000:
/// FormatCompact(19234.5, 1) == "19.2K", FormatCompact(0.7, 2) == "0.70".
std::string FormatCompact(double value, int decimals);

/// Lower-cases ASCII letters; all other bytes pass through unchanged.
/// Backs the case-insensitive name lookups of the tracker factories.
std::string AsciiLower(std::string_view text);

}  // namespace tinprov

#endif  // TINPROV_UTIL_STRINGS_H_
