#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analytics/experiment.h"
#include "analytics/report.h"
#include "datagen/generator.h"
#include "policies/proportional_dense.h"

namespace tinprov {
namespace {

Tin SmallTin() {
  GeneratorConfig config;
  config.num_vertices = 30;
  config.num_interactions = 400;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 0.8;
  config.seed = 21;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Dataset", "time"});
  table.AddRow({"Bitcoin", "1.2s"});
  table.AddRow({"CTU", "800ms"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("Bitcoin"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Number columns are right-aligned to equal width: "  1.2s" vs " 800ms".
  EXPECT_NE(out.find(" 1.2s\n"), std::string::npos);
  EXPECT_NE(out.find("800ms\n"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_EQ(table.num_rows(), 1u);
  // Must not crash or mis-index; short rows render with empty cells.
  EXPECT_FALSE(table.ToString().empty());
}

TEST(MeasureRunTest, RunsAndReportsPeak) {
  const Tin tin = SmallTin();
  auto tracker = CreateTracker(PolicyKind::kProportionalSparse,
                               tin.num_vertices());
  auto measurement = MeasureRun(tracker.get(), tin, "test");
  ASSERT_TRUE(measurement.ok());
  EXPECT_TRUE(measurement->feasible);
  EXPECT_GE(measurement->seconds, 0.0);
  EXPECT_GT(measurement->peak_memory, 0u);
  // Peak was sampled during the run; it can only be >= the final state
  // for monotonically growing policies, and here it is exactly final.
  EXPECT_GE(measurement->peak_memory, tracker->MemoryUsage());
}

TEST(MeasureRunTest, NullTrackerIsAnError) {
  const Tin tin = SmallTin();
  EXPECT_FALSE(MeasureRun(nullptr, tin, "x").ok());
}

TEST(MeasurePolicyTest, DenseGateBlocksLargeVertexSets) {
  const Tin tin = SmallTin();  // 30 vertices: 7.2KB worst case
  // Generous limit: runs.
  auto run = MeasurePolicy(PolicyKind::kProportionalDense, tin, "small",
                           size_t{1} << 20);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->feasible);
  // Tight limit: gated out without running.
  auto gated = MeasurePolicy(PolicyKind::kProportionalDense, tin, "small",
                             DenseMemoryBound(tin.num_vertices()) - 1);
  ASSERT_TRUE(gated.ok());
  EXPECT_FALSE(gated->feasible);
  // Zero disables the gate.
  auto ungated =
      MeasurePolicy(PolicyKind::kProportionalDense, tin, "small", 0);
  ASSERT_TRUE(ungated.ok());
  EXPECT_TRUE(ungated->feasible);
}

TEST(MeasurePolicyTest, GateLeavesOtherPoliciesAlone) {
  const Tin tin = SmallTin();
  for (const PolicyKind kind : AllPolicies()) {
    if (kind == PolicyKind::kProportionalDense) continue;
    auto measurement = MeasurePolicy(kind, tin, "small", 1);
    ASSERT_TRUE(measurement.ok()) << PolicyName(kind);
    EXPECT_TRUE(measurement->feasible) << PolicyName(kind);
  }
}

}  // namespace
}  // namespace tinprov
