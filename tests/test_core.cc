#include <gtest/gtest.h>

#include <vector>

#include "core/buffer.h"
#include "core/tin.h"
#include "util/random.h"

namespace tinprov {
namespace {

TEST(TinTest, SortsInteractionsByTime) {
  std::vector<Interaction> log = {
      {0, 1, 5.0, 1.0}, {1, 2, 2.0, 2.0}, {2, 0, 9.0, 3.0}, {0, 2, 1.0, 4.0}};
  const Tin tin(3, std::move(log));
  ASSERT_EQ(tin.num_interactions(), 4u);
  for (size_t i = 1; i < tin.interactions().size(); ++i) {
    EXPECT_LE(tin.interactions()[i - 1].t, tin.interactions()[i].t);
  }
  EXPECT_EQ(tin.interactions().front().quantity, 4.0);
  EXPECT_EQ(tin.interactions().back().quantity, 3.0);
}

TEST(TinTest, StableSortKeepsSimultaneousOrder) {
  std::vector<Interaction> log = {
      {0, 1, 1.0, 10.0}, {1, 2, 1.0, 20.0}, {2, 0, 1.0, 30.0}};
  const Tin tin(3, std::move(log));
  EXPECT_EQ(tin.interactions()[0].quantity, 10.0);
  EXPECT_EQ(tin.interactions()[1].quantity, 20.0);
  EXPECT_EQ(tin.interactions()[2].quantity, 30.0);
}

TEST(TinTest, VertexIndexCoversSourceAndDestination) {
  std::vector<Interaction> log = {
      {0, 1, 1.0, 1.0}, {1, 2, 2.0, 1.0}, {2, 2, 3.0, 1.0}};
  const Tin tin(3, std::move(log));
  size_t count = 0;
  const uint32_t* entries = tin.VertexInteractions(1, &count);
  ASSERT_EQ(count, 2u);  // receives at t=1, sends at t=2
  EXPECT_EQ(entries[0], 0u);
  EXPECT_EQ(entries[1], 1u);
  // Self-loop appears once, not twice.
  entries = tin.VertexInteractions(2, &count);
  ASSERT_EQ(count, 2u);
  // Out-of-range vertex yields an empty slice.
  EXPECT_EQ(tin.VertexInteractions(99, &count), nullptr);
  EXPECT_EQ(count, 0u);
}

TEST(TinTest, ComputeStats) {
  std::vector<Interaction> log = {
      {0, 1, 1.0, 2.0}, {0, 1, 2.0, 4.0}, {1, 1, 3.0, 6.0}};
  const Tin tin(4, std::move(log));
  const TinStats stats = tin.ComputeStats();
  EXPECT_EQ(stats.num_vertices, 4u);
  EXPECT_EQ(stats.num_interactions, 3u);
  EXPECT_EQ(stats.num_edges, 2u);  // (0,1) and (1,1)
  EXPECT_EQ(stats.num_self_loops, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_quantity, 4.0);
  EXPECT_GT(tin.MemoryUsage(), 0u);
}

TEST(TinTest, EmptyTinIsValid) {
  const Tin tin(5, {});
  EXPECT_EQ(tin.num_interactions(), 0u);
  const TinStats stats = tin.ComputeStats();
  EXPECT_EQ(stats.avg_quantity, 0.0);
}

TEST(BinaryHeapTest, PopsInComparatorOrder) {
  BinaryHeap<ProvTriple, EarlierBirthFirst> heap;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    heap.Push({static_cast<VertexId>(i), rng.NextDouble(), 1.0});
  }
  double last = -1.0;
  while (!heap.empty()) {
    const ProvTriple top = heap.Pop();
    EXPECT_GE(top.birth, last);
    last = top.birth;
  }
}

TEST(BinaryHeapTest, LaterBirthFirstReverses) {
  BinaryHeap<ProvTriple, LaterBirthFirst> heap;
  heap.Push({0, 1.0, 1.0});
  heap.Push({1, 3.0, 1.0});
  heap.Push({2, 2.0, 1.0});
  EXPECT_EQ(heap.Pop().origin, 1u);
  EXPECT_EQ(heap.Pop().origin, 2u);
  EXPECT_EQ(heap.Pop().origin, 0u);
}

TEST(BinaryHeapTest, MutableTopPreservesInvariant) {
  BinaryHeap<ProvTriple, EarlierBirthFirst> heap;
  heap.Push({0, 1.0, 10.0});
  heap.Push({1, 2.0, 5.0});
  heap.MutableTop().quantity -= 4.0;  // split: birth key untouched
  EXPECT_DOUBLE_EQ(heap.Top().quantity, 6.0);
  EXPECT_EQ(heap.Pop().origin, 0u);
  EXPECT_EQ(heap.Pop().origin, 1u);
}

TEST(RingDequeTest, FifoAndLifoEnds) {
  RingDeque<int> deque;
  for (int i = 0; i < 5; ++i) deque.PushBack(i);
  EXPECT_EQ(deque.PopFront(), 0);
  EXPECT_EQ(deque.PopBack(), 4);
  EXPECT_EQ(deque.Front(), 1);
  EXPECT_EQ(deque.Back(), 3);
  EXPECT_EQ(deque.size(), 3u);
}

TEST(RingDequeTest, WrapsAroundOnGrowth) {
  RingDeque<int> deque;
  // Force head rotation, then growth across the wrap point.
  for (int i = 0; i < 8; ++i) deque.PushBack(i);
  for (int i = 0; i < 6; ++i) deque.PopFront();
  for (int i = 8; i < 40; ++i) deque.PushBack(i);
  ASSERT_EQ(deque.size(), 34u);
  for (int i = 6; i < 40; ++i) {
    ASSERT_EQ(deque.PopFront(), i);
  }
  EXPECT_TRUE(deque.empty());
}

TEST(RingDequeTest, RandomizedAgainstReference) {
  RingDeque<int> deque;
  std::vector<int> reference;
  Rng rng(13);
  for (int step = 0; step < 5000; ++step) {
    const uint64_t op = rng.NextBounded(3);
    if (op == 0 || reference.empty()) {
      const int value = static_cast<int>(rng.NextBounded(1000));
      deque.PushBack(value);
      reference.push_back(value);
    } else if (op == 1) {
      ASSERT_EQ(deque.PopFront(), reference.front());
      reference.erase(reference.begin());
    } else {
      ASSERT_EQ(deque.PopBack(), reference.back());
      reference.pop_back();
    }
    ASSERT_EQ(deque.size(), reference.size());
  }
}

TEST(BufferTest, TotalsAndEntrySum) {
  Buffer buffer;
  buffer.entries = {{0, 1.5}, {3, 2.5}};
  buffer.total = 4.0;
  EXPECT_DOUBLE_EQ(buffer.Total(), 4.0);
  EXPECT_DOUBLE_EQ(buffer.EntrySum(), 4.0);
}

}  // namespace
}  // namespace tinprov
