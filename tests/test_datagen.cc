#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "policies/proportional_dense.h"

namespace tinprov {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_vertices = 100;
  config.num_interactions = 2000;
  config.src_skew = 1.2;
  config.dst_skew = 1.2;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.seed = 5;
  return config;
}

TEST(GeneratorTest, ProducesRequestedShape) {
  auto tin = Generate(SmallConfig());
  ASSERT_TRUE(tin.ok());
  EXPECT_EQ(tin->num_vertices(), 100u);
  EXPECT_EQ(tin->num_interactions(), 2000u);
  for (const Interaction& interaction : tin->interactions()) {
    EXPECT_LT(interaction.src, 100u);
    EXPECT_LT(interaction.dst, 100u);
    EXPECT_GT(interaction.quantity, 0.0);
  }
}

TEST(GeneratorTest, TimestampsStrictlyIncrease) {
  auto tin = Generate(SmallConfig());
  ASSERT_TRUE(tin.ok());
  const auto& stream = tin->interactions();
  for (size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GT(stream[i].t, stream[i - 1].t);
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  auto a = Generate(SmallConfig());
  auto b = Generate(SmallConfig());
  GeneratorConfig other = SmallConfig();
  other.seed = 6;
  auto c = Generate(other);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  bool differs = false;
  for (size_t i = 0; i < a->num_interactions(); ++i) {
    const Interaction& ia = a->interactions()[i];
    const Interaction& ib = b->interactions()[i];
    EXPECT_EQ(ia.src, ib.src);
    EXPECT_EQ(ia.dst, ib.dst);
    EXPECT_DOUBLE_EQ(ia.quantity, ib.quantity);
    const Interaction& ic = c->interactions()[i];
    if (ia.src != ic.src || ia.dst != ic.dst) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, SelfLoopFractionRespected) {
  GeneratorConfig config = SmallConfig();
  config.self_loop_fraction = 0.5;
  auto tin = Generate(config);
  ASSERT_TRUE(tin.ok());
  const TinStats stats = tin->ComputeStats();
  // At least the forced half, minus sampling noise.
  EXPECT_GT(stats.num_self_loops, tin->num_interactions() / 3);
}

TEST(GeneratorTest, RejectsBadConfigs) {
  GeneratorConfig config;
  EXPECT_FALSE(Generate(config).ok());  // zero vertices
  config.num_vertices = 10;
  EXPECT_FALSE(Generate(config).ok());  // zero interactions
  config.num_interactions = 10;
  config.mean_inter_arrival = 0.0;
  EXPECT_FALSE(Generate(config).ok());
  config.mean_inter_arrival = 1.0;
  config.self_loop_fraction = 1.5;
  EXPECT_FALSE(Generate(config).ok());
  config.self_loop_fraction = 0.0;
  config.quantity_model = QuantityModel::kPareto;
  config.quantity_param2 = 0.0;
  EXPECT_FALSE(Generate(config).ok());
}

TEST(GeneratorTest, QuantityModels) {
  GeneratorConfig config = SmallConfig();
  config.quantity_model = QuantityModel::kFixed;
  config.quantity_param1 = 3.5;
  auto fixed = Generate(config);
  ASSERT_TRUE(fixed.ok());
  for (const Interaction& interaction : fixed->interactions()) {
    EXPECT_DOUBLE_EQ(interaction.quantity, 3.5);
  }
  config.quantity_model = QuantityModel::kUniform;
  config.quantity_param1 = 50.0;
  config.quantity_param2 = 200.0;
  auto uniform = Generate(config);
  ASSERT_TRUE(uniform.ok());
  for (const Interaction& interaction : uniform->interactions()) {
    EXPECT_GE(interaction.quantity, 50.0);
    EXPECT_LT(interaction.quantity, 200.0);
  }
}

TEST(PresetTest, AllPresetsGenerateAtSmallScale) {
  for (const DatasetKind kind : AllDatasets()) {
    auto tin = MakeDataset(kind, 0.1);
    ASSERT_TRUE(tin.ok()) << DatasetName(kind);
    EXPECT_GT(tin->num_interactions(), 0u) << DatasetName(kind);
    EXPECT_GT(tin->num_vertices(), 0u) << DatasetName(kind);
  }
  EXPECT_EQ(AllDatasets().size(), 5u);
}

TEST(PresetTest, RejectsNonPositiveScale) {
  EXPECT_FALSE(MakeDataset(DatasetKind::kTaxis, 0.0).ok());
  EXPECT_FALSE(MakeDataset(DatasetKind::kTaxis, -1.0).ok());
}

TEST(PresetTest, SmallVertexNetworksKeepRealCounts) {
  // Flights and Taxis model a tiny vertex set under a huge stream; their
  // vertex counts are the paper's real ones and never scale.
  for (const double scale : {0.1, 1.0, 4.0}) {
    EXPECT_EQ(PresetConfig(DatasetKind::kFlights, scale).num_vertices, 629u);
    EXPECT_EQ(PresetConfig(DatasetKind::kTaxis, scale).num_vertices, 255u);
  }
}

TEST(PresetTest, DenseFeasibilityPatternIsScaleStable) {
  // The paper's Tables 7-8 run dense proportional only on Flights and
  // Taxis. With the benches' 128MB gate that pattern must hold at any
  // downscale, because vertex counts never shrink below base.
  const size_t limit = size_t{128} * 1024 * 1024;
  for (const double scale : {0.1, 0.5, 1.0}) {
    for (const DatasetKind kind : AllDatasets()) {
      const size_t vertices = PresetConfig(kind, scale).num_vertices;
      const bool fits = DenseMemoryBound(vertices) <= limit;
      const bool expect_fits =
          kind == DatasetKind::kFlights || kind == DatasetKind::kTaxis;
      EXPECT_EQ(fits, expect_fits)
          << DatasetName(kind) << " at scale " << scale;
    }
  }
}

TEST(PresetTest, ScaleGrowsInteractions) {
  const GeneratorConfig small = PresetConfig(DatasetKind::kCtu, 0.1);
  const GeneratorConfig base = PresetConfig(DatasetKind::kCtu, 1.0);
  const GeneratorConfig big = PresetConfig(DatasetKind::kCtu, 2.0);
  EXPECT_LT(small.num_interactions, base.num_interactions);
  EXPECT_LT(base.num_interactions, big.num_interactions);
  EXPECT_EQ(small.num_vertices, base.num_vertices);  // floor at base
  EXPECT_GT(big.num_vertices, base.num_vertices);
}

}  // namespace
}  // namespace tinprov
