// Runtime SIMD dispatch: every kernel table the host can execute must
// produce bit-identical outputs (util/simd.h's contract — parallel
// sharded replay/ingest rely on it), with Sum() as the one documented
// tolerance-checked exception. Tables are compared side by side via
// KernelsFor(level), never above cpu::DetectSimdLevel() — a table the
// CPU cannot execute would fault, not fail.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "util/cpu.h"
#include "util/simd.h"
#include "util/simd_dispatch.h"

namespace tinprov {
namespace {

using simd::KernelTable;
using simd::PairLane;

// Every dispatch level this host can actually execute, scalar first.
std::vector<cpu::SimdLevel> ExecutableLevels() {
  std::vector<cpu::SimdLevel> levels;
  const auto max = cpu::DetectSimdLevel();
  for (const cpu::SimdLevel level :
       {cpu::SimdLevel::kScalar, cpu::SimdLevel::kSse2,
        cpu::SimdLevel::kAvx2}) {
    if (level <= max) levels.push_back(level);
  }
  return levels;
}

// Doubles spanning several magnitudes plus exact small integers, so
// both "typical quantity" and "bit-pattern edge" inputs are covered.
std::vector<double> FuzzDoubles(std::mt19937_64& rng, size_t n) {
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-20, 20);
  std::uniform_int_distribution<int> kind(0, 9);
  std::vector<double> out(n);
  for (auto& v : out) {
    switch (kind(rng)) {
      case 0:
        v = 0.0;
        break;
      case 1:
        v = static_cast<double>(exponent(rng));
        break;
      default:
        v = std::ldexp(mantissa(rng), exponent(rng));
        break;
    }
  }
  return out;
}

// Origin-sorted pair list with random gaps (so gallop runs vary) and
// nonzero padding bytes (so "pads copied bit-exactly" is observable).
std::vector<PairLane> FuzzPairs(std::mt19937_64& rng, size_t n) {
  std::uniform_int_distribution<uint32_t> gap(1, 9);
  std::vector<PairLane> out(n);
  const std::vector<double> quantities = FuzzDoubles(rng, n);
  uint32_t origin = 0;
  for (size_t i = 0; i < n; ++i) {
    origin += gap(rng);
    out[i].origin = origin;
    out[i].pad = 0xA5A50000u + static_cast<uint32_t>(i);
    out[i].quantity = quantities[i];
  }
  return out;
}

void ExpectBytesEqual(const void* expected, const void* actual, size_t bytes,
                      const char* kernel, const char* level) {
  EXPECT_EQ(std::memcmp(expected, actual, bytes), 0)
      << kernel << " diverges at dispatch level " << level;
}

// The sizes sweep remainders of every lane width (1..17 covers scalar
// tails of 2-, 4-, and 8-wide loops) plus larger merge-shaped inputs.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1023};

TEST(DispatchEquivalenceTest, DenseKernelsBitIdenticalAcrossLevels) {
  std::mt19937_64 rng(20220815);
  const auto levels = ExecutableLevels();
  const KernelTable& scalar = simd::KernelsFor(cpu::SimdLevel::kScalar);
  for (const size_t n : kSizes) {
    const std::vector<double> base_dst = FuzzDoubles(rng, n);
    const std::vector<double> base_src = FuzzDoubles(rng, n);
    const double factor = 0.3784512;
    const double fraction = 0.6123;

    std::vector<double> add_ref = base_dst;
    scalar.add(add_ref.data(), base_src.data(), n);
    std::vector<double> scale_ref = base_dst;
    scalar.scale(scale_ref.data(), factor, n);
    std::vector<double> tf_dst_ref = base_dst;
    std::vector<double> tf_src_ref = base_src;
    scalar.transfer_fraction(tf_dst_ref.data(), tf_src_ref.data(), fraction,
                             n);

    for (const cpu::SimdLevel level : levels) {
      const KernelTable& k = simd::KernelsFor(level);
      const char* name = cpu::SimdLevelName(level);

      std::vector<double> dst = base_dst;
      k.add(dst.data(), base_src.data(), n);
      ExpectBytesEqual(add_ref.data(), dst.data(), n * sizeof(double), "add",
                       name);

      dst = base_dst;
      k.scale(dst.data(), factor, n);
      ExpectBytesEqual(scale_ref.data(), dst.data(), n * sizeof(double),
                       "scale", name);

      dst = base_dst;
      std::vector<double> src = base_src;
      k.transfer_fraction(dst.data(), src.data(), fraction, n);
      ExpectBytesEqual(tf_dst_ref.data(), dst.data(), n * sizeof(double),
                       "transfer_fraction dst", name);
      ExpectBytesEqual(tf_src_ref.data(), src.data(), n * sizeof(double),
                       "transfer_fraction src", name);
    }
  }
}

TEST(DispatchEquivalenceTest, SumAgreesWithinReassociationTolerance) {
  // Sum is the documented exception: lane accumulators reassociate, so
  // the contract is "close", not "bit-identical".
  std::mt19937_64 rng(7);
  for (const size_t n : kSizes) {
    const std::vector<double> src = FuzzDoubles(rng, n);
    const double reference =
        simd::KernelsFor(cpu::SimdLevel::kScalar).sum(src.data(), n);
    double magnitude = 0.0;
    for (const double v : src) magnitude += std::abs(v);
    for (const cpu::SimdLevel level : ExecutableLevels()) {
      const double actual = simd::KernelsFor(level).sum(src.data(), n);
      EXPECT_NEAR(actual, reference, 1e-12 * (magnitude + 1.0))
          << "sum at " << cpu::SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(DispatchEquivalenceTest, PairKernelsBitIdenticalIncludingPadding) {
  std::mt19937_64 rng(424242);
  const KernelTable& scalar = simd::KernelsFor(cpu::SimdLevel::kScalar);
  for (const size_t n : kSizes) {
    const std::vector<PairLane> base = FuzzPairs(rng, n);
    const double factor = 0.87501;

    std::vector<PairLane> copy_ref(n);
    scalar.scale_copy_pairs(copy_ref.data(), base.data(), factor, n);
    std::vector<PairLane> inplace_ref = base;
    scalar.scale_pairs_in_place(inplace_ref.data(), factor, n);

    for (const cpu::SimdLevel level : ExecutableLevels()) {
      const KernelTable& k = simd::KernelsFor(level);
      const char* name = cpu::SimdLevelName(level);

      std::vector<PairLane> out(n);
      k.scale_copy_pairs(out.data(), base.data(), factor, n);
      // Full 16-byte structs, padding included: the wrapper
      // reinterprets whole ProvPair arrays, so pads must survive.
      ExpectBytesEqual(copy_ref.data(), out.data(), n * sizeof(PairLane),
                       "scale_copy_pairs", name);

      out = base;
      k.scale_pairs_in_place(out.data(), factor, n);
      ExpectBytesEqual(inplace_ref.data(), out.data(), n * sizeof(PairLane),
                       "scale_pairs_in_place", name);
    }
  }
}

TEST(DispatchEquivalenceTest, GallopMergeBitIdenticalAcrossLevels) {
  std::mt19937_64 rng(99173);
  const KernelTable& scalar = simd::KernelsFor(cpu::SimdLevel::kScalar);
  // Asymmetric shapes exercise gallop runs in both inputs; equal-origin
  // overlap comes from drawing both lists over the same origin space.
  const std::pair<size_t, size_t> shapes[] = {
      {0, 0}, {0, 5}, {5, 0}, {1, 1},   {3, 17},
      {17, 3}, {64, 64}, {1000, 10}, {10, 1000}, {511, 513}};
  for (const auto& [na, nb] : shapes) {
    const std::vector<PairLane> a = FuzzPairs(rng, na);
    const std::vector<PairLane> b = FuzzPairs(rng, nb);
    const double factor = 0.412345;

    std::vector<PairLane> ref(na + nb);
    const size_t ref_len = scalar.gallop_merge_scaled(
        ref.data(), a.data(), na, b.data(), nb, factor);
    ASSERT_LE(ref_len, na + nb);

    for (const cpu::SimdLevel level : ExecutableLevels()) {
      const KernelTable& k = simd::KernelsFor(level);
      std::vector<PairLane> out(na + nb);
      const size_t len = k.gallop_merge_scaled(out.data(), a.data(), na,
                                               b.data(), nb, factor);
      ASSERT_EQ(len, ref_len) << "gallop_merge_scaled length at "
                              << cpu::SimdLevelName(level);
      ExpectBytesEqual(ref.data(), out.data(), len * sizeof(PairLane),
                       "gallop_merge_scaled", cpu::SimdLevelName(level));
    }
  }
}

TEST(DispatchEquivalenceTest, PublicWrappersMatchScalarTable) {
  // The util/simd.h inline wrappers latch ActiveKernels(); whatever
  // level that resolved to must agree with the scalar reference.
  std::mt19937_64 rng(31337);
  const KernelTable& scalar = simd::KernelsFor(cpu::SimdLevel::kScalar);
  const std::vector<PairLane> a = FuzzPairs(rng, 257);
  const std::vector<PairLane> b = FuzzPairs(rng, 123);

  std::vector<PairLane> ref(a.size() + b.size());
  const size_t ref_len = scalar.gallop_merge_scaled(
      ref.data(), a.data(), a.size(), b.data(), b.size(), 0.25);

  std::vector<PairLane> out(a.size() + b.size());
  const size_t len = simd::GallopMergeScaled(out.data(), a.data(), a.size(),
                                             b.data(), b.size(), 0.25);
  ASSERT_EQ(len, ref_len);
  ExpectBytesEqual(ref.data(), out.data(), len * sizeof(PairLane),
                   "GallopMergeScaled wrapper", "active");
}

// ---------------------------------------------------------------------
// cpu:: plumbing.

TEST(CpuTest, ParseSimdLevelAcceptsKnownNamesCaseInsensitively) {
  EXPECT_EQ(cpu::ParseSimdLevel("scalar"), cpu::SimdLevel::kScalar);
  EXPECT_EQ(cpu::ParseSimdLevel("SSE2"), cpu::SimdLevel::kSse2);
  EXPECT_EQ(cpu::ParseSimdLevel("Avx2"), cpu::SimdLevel::kAvx2);
  EXPECT_EQ(cpu::ParseSimdLevel(""), std::nullopt);
  EXPECT_EQ(cpu::ParseSimdLevel("avx512"), std::nullopt);
  EXPECT_EQ(cpu::ParseSimdLevel("sse"), std::nullopt);
}

TEST(CpuTest, SimdLevelNamesRoundTrip) {
  for (const cpu::SimdLevel level :
       {cpu::SimdLevel::kScalar, cpu::SimdLevel::kSse2,
        cpu::SimdLevel::kAvx2}) {
    EXPECT_EQ(cpu::ParseSimdLevel(cpu::SimdLevelName(level)), level);
  }
}

TEST(CpuTest, ActiveLevelNeverExceedsDetected) {
  // Holds with or without a TINPROV_SIMD override: overrides only ever
  // clamp downward.
  EXPECT_LE(cpu::ActiveSimdLevel(), cpu::DetectSimdLevel());
}

TEST(CpuTest, ActiveKernelsNameMatchesActiveLevel) {
  EXPECT_STREQ(simd::ActiveKernels().name,
               cpu::SimdLevelName(cpu::ActiveSimdLevel()));
}

TEST(CpuTest, EveryExecutableTableNamesItsLevel) {
  for (const cpu::SimdLevel level : ExecutableLevels()) {
    EXPECT_STREQ(simd::KernelsFor(level).name, cpu::SimdLevelName(level));
  }
}

}  // namespace
}  // namespace tinprov
