// Lazy-layer semantics: replay-on-demand must be indistinguishable from
// eager tracking. Full lazy replay is checked bit-exactly against every
// factory-constructible tracker; sliced replay against full replay on
// the query vertex; the time-travel index against full-prefix replay at
// arbitrary historical times (snapshot boundaries and pre-history
// included); and snapshot/restore must round-trip every policy's state
// bit-exactly, byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/experiment.h"
#include "datagen/generator.h"
#include "lazy/replay.h"
#include "lazy/time_travel.h"
#include "policies/tracker.h"

namespace tinprov {
namespace {

// The same hand-built TIN as test_policies.cc: deficit generation,
// partial consumption, re-sends, and a self-loop over 6 interactions.
Tin HandTin() {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 5.0},  // 1 generates 5, sends to 0
      {2, 0, 2.0, 3.0},  // 2 generates 3, sends to 0
      {0, 3, 3.0, 4.0},  // 0 forwards a mix
      {3, 3, 4.0, 2.0},  // self-loop at 3
      {3, 4, 5.0, 6.0},  // exceeds 3's buffer: deficit generated at 3
      {4, 0, 6.0, 1.0},  // flows back
  };
  return Tin(5, std::move(log));
}

Tin GeneratedTin() {
  GeneratorConfig config;
  config.num_vertices = 60;
  config.num_interactions = 3000;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 41;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

// Mid-range scalable configuration; small enough that Budget shrinks and
// Windowed resets actually fire across snapshot boundaries.
ScalableParams TestParams() {
  ScalableParams params;
  params.window = 500;
  params.num_tracked = 10;
  params.num_groups = 7;
  params.budget.capacity = 8;
  params.budget.keep_fraction = 0.5;
  return params;
}

// Bit-exact comparison: replay-on-demand promises the *identical*
// result, not an approximation, so no tolerance anywhere.
void ExpectSameBuffer(const Buffer& expected, const Buffer& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.total, actual.total) << context;
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << context;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_TRUE(expected.entries[i] == actual.entries[i])
        << context << " entry " << i << ": (" << expected.entries[i].origin
        << ", " << expected.entries[i].quantity << ") vs ("
        << actual.entries[i].origin << ", " << actual.entries[i].quantity
        << ")";
  }
}

std::unique_ptr<Tracker> EagerPrefix(const TrackerFactory& factory,
                                     const Tin& tin, size_t prefix) {
  std::unique_ptr<Tracker> tracker = factory();
  EXPECT_NE(tracker, nullptr);
  const auto& log = tin.interactions();
  for (size_t i = 0; i < prefix && i < log.size(); ++i) {
    EXPECT_TRUE(tracker->Process(log[i]).ok());
  }
  return tracker;
}

std::vector<std::string> AllPolicyNames() {
  std::vector<std::string> names;
  for (const PolicyKind kind : AllPolicies()) {
    names.emplace_back(PolicyName(kind));
  }
  return names;
}

bool NotAlnum(char c) { return !std::isalnum(static_cast<unsigned char>(c)); }

std::string SanitizeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  name.erase(std::remove_if(name.begin(), name.end(), NotAlnum), name.end());
  return name;
}

// ---------------------------------------------------------------------
// (a) Full lazy replay reproduces eager tracking exactly, for every
// factory name (all seven policies and all four scalable trackers).

class LazyFullReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LazyFullReplayTest, MatchesEagerBitExactly) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto eager = TrackerRegistry::Global().Create({GetParam(), params}, tin);
  ASSERT_TRUE(eager.ok()) << eager.status().ToString();
  ASSERT_TRUE((*eager)->ProcessAll(tin).ok());

  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();
  LazyReplayEngine lazy(tin, *factory);
  for (VertexId v = 0; v < tin.num_vertices(); v += 7) {
    auto buffer = lazy.Provenance(v);
    ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
    ExpectSameBuffer((*eager)->Provenance(v), *buffer,
                     GetParam() + " vertex " + std::to_string(v));
    EXPECT_EQ(lazy.last_stats().interactions_replayed, tin.num_interactions());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFactoryNames, LazyFullReplayTest,
                         ::testing::ValuesIn(TrackerRegistry::Global().Names()),
                         SanitizeName);

// ---------------------------------------------------------------------
// (b) Sliced replay equals full replay on the query vertex, replaying
// at most as many interactions.

class SlicedReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SlicedReplayTest, EqualsFullReplayOnQueryVertex) {
  const Tin tin = GeneratedTin();
  auto kind = PolicyKindFromName(GetParam());
  ASSERT_TRUE(kind.ok());
  LazyReplayEngine lazy(tin, *kind);
  for (VertexId v = 0; v < tin.num_vertices(); v += 11) {
    auto full = lazy.Provenance(v);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    const size_t full_count = lazy.last_stats().interactions_replayed;
    auto sliced = lazy.ProvenanceSliced(v);
    ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
    ExpectSameBuffer(*full, *sliced,
                     GetParam() + " vertex " + std::to_string(v));
    EXPECT_LE(lazy.last_stats().interactions_replayed, full_count);
    EXPECT_LE(lazy.last_stats().cone_vertices, tin.num_vertices());
    EXPECT_GE(lazy.last_stats().cone_vertices, 1u);
  }
}

// Every PolicyKind name (the scalable trackers are covered separately:
// sliced replay is exact for any tracker whose behaviour at a vertex
// depends only on cone-vertex histories, which excludes Windowed's
// global reset counter).
INSTANTIATE_TEST_SUITE_P(PolicyNames, SlicedReplayTest,
                         ::testing::ValuesIn(AllPolicyNames()), SanitizeName);

TEST(SlicedReplayScalableTest, VertexLocalScalableTrackersAreExact) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  const char* names[] = {"Selective", "Grouped", "Budget"};
  for (const char* name : names) {
    auto factory = TrackerRegistry::Global().Factory({name, params}, tin);
    ASSERT_TRUE(factory.ok());
    LazyReplayEngine lazy(tin, *factory);
    for (VertexId v = 0; v < tin.num_vertices(); v += 13) {
      auto full = lazy.Provenance(v);
      ASSERT_TRUE(full.ok());
      auto sliced = lazy.ProvenanceSliced(v);
      ASSERT_TRUE(sliced.ok());
      ExpectSameBuffer(*full, *sliced,
                       std::string(name) + " vertex " + std::to_string(v));
    }
  }
}

TEST(InfluenceConeTest, HandTinConesAreExactAndMinimalityShows) {
  const Tin tin = HandTin();
  size_t cone_vertices = 0;
  // Vertex 1 only ever sends: its cone is its single outflow.
  std::vector<uint32_t> cone = BackwardInfluenceCone(tin, 1, &cone_vertices);
  EXPECT_EQ(cone, (std::vector<uint32_t>{0}));
  EXPECT_EQ(cone_vertices, 1u);
  // Vertex 0 receives from everyone, directly or transitively: the cone
  // is the whole log.
  cone = BackwardInfluenceCone(tin, 0, &cone_vertices);
  EXPECT_EQ(cone, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(cone_vertices, 5u);
  // Out-of-range query vertices yield an empty cone.
  cone = BackwardInfluenceCone(tin, 99, &cone_vertices);
  EXPECT_TRUE(cone.empty());
  EXPECT_EQ(cone_vertices, 0u);
}

TEST(InfluenceConeTest, SlicedMatchesFullAtEveryHandTinVertex) {
  const Tin tin = HandTin();
  for (const PolicyKind kind : AllPolicies()) {
    LazyReplayEngine lazy(tin, kind);
    for (VertexId v = 0; v < tin.num_vertices(); ++v) {
      auto full = lazy.Provenance(v);
      ASSERT_TRUE(full.ok());
      auto sliced = lazy.ProvenanceSliced(v);
      ASSERT_TRUE(sliced.ok());
      ExpectSameBuffer(*full, *sliced,
                       std::string(PolicyName(kind)) + " vertex " +
                           std::to_string(v));
    }
  }
}

// ---------------------------------------------------------------------
// Historical prefix queries on the engine itself.

TEST(LazyPrefixTest, HistoricalQueryEqualsEagerPrefixReplay) {
  const Tin tin = GeneratedTin();
  const TrackerFactory factory = [n = tin.num_vertices()] {
    return CreateTracker(PolicyKind::kFifo, n);
  };
  LazyReplayEngine lazy(tin, factory);
  const auto& log = tin.interactions();
  for (const size_t prefix :
       {size_t{0}, size_t{1}, log.size() / 3, log.size() - 1, log.size()}) {
    const Timestamp t = prefix == 0 ? log.front().t - 1.0 : log[prefix - 1].t;
    const size_t expected_prefix = PrefixLength(tin, t);
    const auto eager = EagerPrefix(factory, tin, expected_prefix);
    for (const VertexId v : {VertexId{0}, VertexId{17}, VertexId{59}}) {
      auto buffer = lazy.Provenance(v, t);
      ASSERT_TRUE(buffer.ok());
      ExpectSameBuffer(eager->Provenance(v), *buffer,
                       "prefix " + std::to_string(expected_prefix) +
                           " vertex " + std::to_string(v));
      EXPECT_EQ(lazy.last_stats().interactions_replayed, expected_prefix);
    }
  }
}

TEST(LazyPrefixTest, TimeBeforeFirstInteractionYieldsEmptyBuffer) {
  const Tin tin = HandTin();
  LazyReplayEngine lazy(tin, PolicyKind::kLifo);
  auto buffer = lazy.Provenance(0, 0.5);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(buffer->total, 0.0);
  EXPECT_TRUE(buffer->entries.empty());
  EXPECT_EQ(lazy.last_stats().interactions_replayed, 0u);
}

TEST(LazyEngineTest, RejectsOutOfRangeVertices) {
  const Tin tin = HandTin();
  LazyReplayEngine lazy(tin, PolicyKind::kFifo);
  EXPECT_EQ(lazy.Provenance(99).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(lazy.Provenance(99, 3.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(lazy.ProvenanceSliced(99).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LazyEngineTest, FactoryBuildsIndependentTrackers) {
  const Tin tin = HandTin();
  auto factory =
      TrackerRegistry::Global().Factory({"FIFO", ScalableParams{}}, tin);
  ASSERT_TRUE(factory.ok());
  std::unique_ptr<Tracker> a = (*factory)();
  std::unique_ptr<Tracker> b = (*factory)();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(a->ProcessAll(tin).ok());
  // b saw nothing: per-query trackers must not share state.
  EXPECT_EQ(b->BufferTotal(0), 0.0);
  EXPECT_GT(a->BufferTotal(0), 0.0);
}

// ---------------------------------------------------------------------
// (c) The time-travel index answers at arbitrary t identically to
// full-prefix replay, for every factory name.

class TimeTravelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TimeTravelTest, MatchesFullPrefixReplayEverywhere) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok());
  const size_t interval = 97;  // prime: boundaries align with nothing
  auto index = TimeTravelIndex::Build(tin, *factory, interval);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ((*index)->num_snapshots(), tin.num_interactions() / interval);
  EXPECT_GT((*index)->MemoryUsage(), 0u);

  // Probe before history (empty state), the first interaction, an exact
  // snapshot boundary, one past a boundary, mid-stream, the full
  // stream, and after history.
  const auto& log = tin.interactions();
  const std::vector<Timestamp> probes = {
      log.front().t - 1.0, log.front().t, log[interval - 1].t,
      log[3 * interval].t, log[log.size() / 2].t, log.back().t,
      log.back().t + 1.0};
  for (const Timestamp t : probes) {
    const size_t prefix = PrefixLength(tin, t);
    const auto eager = EagerPrefix(*factory, tin, prefix);
    for (const VertexId v : {VertexId{0}, VertexId{23}, VertexId{59}}) {
      auto buffer = (*index)->Provenance(v, t);
      ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
      ExpectSameBuffer(eager->Provenance(v), *buffer,
                       GetParam() + " t=" + std::to_string(t) + " vertex " +
                           std::to_string(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFactoryNames, TimeTravelTest,
                         ::testing::ValuesIn(TrackerRegistry::Global().Names()),
                         SanitizeName);

TEST(TimeTravelEdgeTest, ZeroIntervalClampsToOne) {
  const Tin tin = HandTin();
  auto index = TimeTravelIndex::Build(tin, PolicyKind::kFifo, 0);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->snapshot_interval(), 1u);
  EXPECT_EQ((*index)->num_snapshots(), tin.num_interactions());
}

TEST(TimeTravelEdgeTest, IntervalBeyondStreamStillAnswersCorrectly) {
  const Tin tin = HandTin();
  auto index = TimeTravelIndex::Build(tin, PolicyKind::kMrb,
                                      tin.num_interactions() * 2);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_snapshots(), 0u);
  LazyReplayEngine lazy(tin, PolicyKind::kMrb);
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    auto expected = lazy.Provenance(v, 4.0);
    auto actual = (*index)->Provenance(v, 4.0);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    ExpectSameBuffer(*expected, *actual, "vertex " + std::to_string(v));
  }
}

TEST(TimeTravelEdgeTest, RejectsOutOfRangeVertices) {
  const Tin tin = HandTin();
  auto index = TimeTravelIndex::Build(tin, PolicyKind::kFifo, 2);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->Provenance(99, 3.0).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// (d) Snapshot/restore round-trips every policy's state bit-exactly.

class SnapshotRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SnapshotRoundTripTest, SaveRestoreSaveIsByteIdentical) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok());
  const size_t half = tin.num_interactions() / 2;

  std::unique_ptr<Tracker> original = EagerPrefix(*factory, tin, half);
  std::vector<uint8_t> saved;
  original->SaveState(&saved);
  EXPECT_FALSE(saved.empty());

  std::unique_ptr<Tracker> restored = (*factory)();
  ASSERT_TRUE(restored->RestoreState(saved).ok());
  std::vector<uint8_t> resaved;
  restored->SaveState(&resaved);
  EXPECT_EQ(saved, resaved) << GetParam() << ": restore is not byte-identical";

  // Resumed replay must stay bit-exact through the end of the stream.
  const auto& log = tin.interactions();
  for (size_t i = half; i < log.size(); ++i) {
    ASSERT_TRUE(original->Process(log[i]).ok());
    ASSERT_TRUE(restored->Process(log[i]).ok());
  }
  EXPECT_EQ(original->total_generated(), restored->total_generated());
  EXPECT_EQ(original->MemoryUsage(), restored->MemoryUsage());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    EXPECT_EQ(original->BufferTotal(v), restored->BufferTotal(v));
    ExpectSameBuffer(original->Provenance(v), restored->Provenance(v),
                     GetParam() + " vertex " + std::to_string(v));
  }
}

TEST_P(SnapshotRoundTripTest, RejectsCorruptSnapshots) {
  const Tin tin = HandTin();
  const ScalableParams params = TestParams();
  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok());
  std::unique_ptr<Tracker> tracker = EagerPrefix(*factory, tin, 4);
  std::vector<uint8_t> saved;
  tracker->SaveState(&saved);

  std::unique_ptr<Tracker> target = (*factory)();
  // Truncation anywhere must fail cleanly, never read out of bounds.
  EXPECT_FALSE(target->RestoreState(saved.data(), saved.size() - 1).ok());
  EXPECT_FALSE(target->RestoreState(saved.data(), 3).ok());
  EXPECT_FALSE(target->RestoreState(saved.data(), 0).ok());
  // Trailing bytes mean the snapshot came from a different layout.
  std::vector<uint8_t> padded = saved;
  padded.push_back(0);
  EXPECT_FALSE(target->RestoreState(padded).ok());
  // A clean restore still succeeds afterwards.
  EXPECT_TRUE(target->RestoreState(saved).ok());
}

INSTANTIATE_TEST_SUITE_P(AllFactoryNames, SnapshotRoundTripTest,
                         ::testing::ValuesIn(TrackerRegistry::Global().Names()),
                         SanitizeName);

TEST(SnapshotMismatchTest, RejectsWrongVertexCount) {
  const Tin tin = HandTin();
  std::unique_ptr<Tracker> small = CreateTracker(PolicyKind::kFifo, 5);
  ASSERT_TRUE(small->ProcessAll(tin).ok());
  std::vector<uint8_t> saved;
  small->SaveState(&saved);
  std::unique_ptr<Tracker> large = CreateTracker(PolicyKind::kFifo, 6);
  const Status status = large->RestoreState(saved);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tinprov
