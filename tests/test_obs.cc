// The observability substrate: log2-histogram percentiles against exact
// quantiles, sharded counters and histograms under real thread
// contention (the TSan leg runs this label), trace-sink ring semantics
// and chrome://tracing JSON shape, exporter output, the metrics-off
// no-op proof, and the engine-facing pieces that ride on the registry —
// per-batch ingest metrics, the unified "memory." gauge sum, and the
// trackers' alpha-residue accounting (including its snapshot survival).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#if !defined(TINPROV_NO_THREADS)
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/health.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "policies/proportional_sparse.h"
#include "scalable/budget.h"
#include "scalable/windowed.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"

namespace tinprov {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::HealthRegistry;
using obs::HealthResult;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::OpsServer;
using obs::Recorder;
using obs::SlowQueryLog;
using obs::TraceSink;
using obs::TraceSpan;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTesting();
    TraceSink::Global().Clear();
    HealthRegistry::Global().Clear();
    SlowQueryLog::Global().Clear();
  }
};

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter counter;
  counter.Add();
  counter.Add(41);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(counter.Value(), 42u);
  } else {
    EXPECT_EQ(counter.Value(), 0u);  // compiled-out build: provable no-op
  }
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(ObsTest, GaugeSetAddMax) {
  Gauge gauge;
  gauge.Set(10.0);
  gauge.Add(5.0);
  gauge.SetMax(12.0);  // below current 15 -> no change
  if (obs::kMetricsEnabled) {
    EXPECT_DOUBLE_EQ(gauge.Value(), 15.0);
    gauge.SetMax(20.0);
    EXPECT_DOUBLE_EQ(gauge.Value(), 20.0);
  } else {
    EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  }
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    // Bucket i>0 holds [2^(i-1), 2^i).
    const auto low = static_cast<uint64_t>(Histogram::BucketLow(i));
    const auto high = static_cast<uint64_t>(Histogram::BucketHigh(i));
    EXPECT_EQ(Histogram::BucketIndex(low), i);
    EXPECT_EQ(Histogram::BucketIndex(high - 1), i);
    EXPECT_EQ(Histogram::BucketIndex(high), i + 1);
  }
}

// The log2-bucket estimate must land within the exact quantile's bucket:
// the error is bounded by the bucket's 2x width, never more.
TEST_F(ObsTest, HistogramPercentilesTrackExactQuantiles) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram histogram;
  std::vector<uint64_t> samples;
  // Deterministic skewed data: mostly small with a long tail, like a
  // latency distribution.
  uint64_t state = 88172645463325252ULL;
  for (int i = 0; i < 20000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const uint64_t value = (state % 1000) < 950 ? state % 4096
                                                : state % (1 << 20);
    samples.push_back(value);
    histogram.Observe(value);
  }
  EXPECT_EQ(histogram.Count(), samples.size());
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.50, 0.90, 0.99}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(p * static_cast<double>(samples.size())));
    const uint64_t exact = samples[rank - 1];
    const double estimate = histogram.Percentile(p);
    const size_t bucket = Histogram::BucketIndex(exact);
    EXPECT_GE(estimate, Histogram::BucketLow(bucket))
        << "p=" << p << " exact=" << exact;
    EXPECT_LE(estimate, Histogram::BucketHigh(bucket))
        << "p=" << p << " exact=" << exact;
  }
  // Degenerate cases.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  Histogram zeros;
  zeros.Observe(0);
  zeros.Observe(0);
  EXPECT_DOUBLE_EQ(zeros.Percentile(0.99), 0.0);
}

TEST_F(ObsTest, RegistryInternsByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.interned");
  EXPECT_EQ(counter, registry.GetCounter("test.interned"));
  EXPECT_NE(counter, registry.GetCounter("test.other"));
  // Counters, gauges, and histograms occupy separate namespaces.
  registry.GetGauge("test.interned");
  registry.GetHistogram("test.interned");
  counter->Add(7);
  registry.ResetForTesting();
  // Reset zeroes values but keeps the interned pointers valid.
  EXPECT_EQ(counter, registry.GetCounter("test.interned"));
  EXPECT_EQ(counter->Value(), 0u);
}

// The TSan target: concurrent writers on one counter and one histogram,
// exact totals once the writers have joined.
TEST_F(ObsTest, ConcurrentCountersAndHistogramsAreExact) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.concurrent_counter");
  Gauge* peak = registry.GetGauge("test.concurrent_peak");
  Histogram* histogram = registry.GetHistogram("test.concurrent_histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Observe(static_cast<uint64_t>(i));
        peak->SetMax(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const uint64_t per_thread_sum =
      static_cast<uint64_t>(kPerThread) * (kPerThread - 1) / 2;
  EXPECT_EQ(histogram->Sum(), kThreads * per_thread_sum);
  EXPECT_DOUBLE_EQ(peak->Value(),
                   static_cast<double>(kThreads * kPerThread - 1));
}

TEST_F(ObsTest, MemoryBytesSumsOnlyMemoryGauges) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("memory.test_a")->Set(100.0);
  registry.GetGauge("memory.test_b")->Set(23.0);
  registry.GetGauge("test.not_memory")->Set(1e9);
  EXPECT_DOUBLE_EQ(registry.MemoryBytes(), 123.0);
  EXPECT_DOUBLE_EQ(obs::EngineMemoryBytes(), 123.0);
}

TEST_F(ObsTest, TraceSinkRingBoundsAndCountsDrops) {
  TraceSink& sink = TraceSink::Global();
  sink.SetCapacityForTesting(4);
  sink.SetEnabledForTesting(true);
  for (int i = 0; i < 10; ++i) {
    sink.Record("test.event", "test", i * 100, 50);
  }
  sink.SetEnabledForTesting(false);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(sink.num_events(), 4u);
    EXPECT_EQ(sink.dropped_events(), 6u);
  } else {
    // Tracing can never be enabled in a metrics-off build.
    EXPECT_EQ(sink.num_events(), 0u);
    EXPECT_EQ(sink.dropped_events(), 0u);
  }
  sink.SetCapacityForTesting(1 << 16);
}

TEST_F(ObsTest, TraceSpansProduceChromeTracingJson) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TraceSink& sink = TraceSink::Global();
  sink.SetEnabledForTesting(true);
  {
    TraceSpan outer("test.outer", "test");
    TraceSpan inner("test.inner", "test");
  }
  sink.SetEnabledForTesting(false);
  EXPECT_EQ(sink.num_events(), 2u);
  const std::string json = sink.ToJson();
  // Structural shape of the chrome://tracing trace_event format; the
  // scripts/smoke.sh trace smoke additionally json.load()s a real file.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  // Destruction order: inner closes first, so it is recorded first.
  EXPECT_LT(json.find("test.inner"), json.find("test.outer"));
}

TEST_F(ObsTest, SpansAreNotRecordedWhileDisabled) {
  TraceSink& sink = TraceSink::Global();
  ASSERT_FALSE(sink.enabled());
  {
    TraceSpan span("test.ignored", "test");
  }
  EXPECT_EQ(sink.num_events(), 0u);
}

TEST_F(ObsTest, PrometheusTextShapes) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom_counter")->Add(3);
  registry.GetGauge("test.prom_gauge")->Set(1.5);
  registry.GetHistogram("test.prom_hist")->Observe(100);
  const std::string text = obs::PrometheusText();
  EXPECT_NE(text.find("# TYPE tinprov_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("tinprov_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tinprov_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tinprov_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("tinprov_test_prom_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tinprov_test_prom_hist_count 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonIsWellFormedAndComplete) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json_counter")->Add(5);
  registry.GetHistogram("test.json_hist")->Observe(7);
  const std::string json = obs::MetricsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  if (obs::kMetricsEnabled) {
    EXPECT_NE(json.find("\"test.json_counter\":5"), std::string::npos);
    EXPECT_NE(json.find("\"test.json_hist\":{\"count\":1"),
              std::string::npos);
  }
}

// ---- Exporters under concurrent mutation (the TSan leg runs this):
// ---- the scrape path must stay well-formed while ingest-side threads
// ---- hammer every metric type.

#if !defined(TINPROV_NO_THREADS)
TEST_F(ObsTest, ExportersStayWellFormedUnderConcurrentMutation) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.scrape_counter");
  Gauge* gauge = registry.GetGauge("test.scrape_gauge");
  Histogram* histogram = registry.GetHistogram("test.scrape_hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        gauge->Set(static_cast<double>(t * 1000 + (i % 1000)));
        histogram->Observe(i % 4096);
        // Interning new names concurrently exercises the registry map
        // lock against the exporters' snapshot path.
        if (i % 512 == 0) {
          registry.GetCounter("test.scrape_born_" + std::to_string(t))
              ->Add(1);
        }
        ++i;
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const std::string text = obs::PrometheusText();
    const std::string json = obs::MetricsJson();
    ASSERT_NE(text.find("# TYPE"), std::string::npos);
    ASSERT_EQ(json.front(), '{');
    ASSERT_EQ(json.back(), '}');
    ASSERT_NE(json.find("\"counters\":{"), std::string::npos);
    if (obs::kMetricsEnabled) {
      ASSERT_NE(json.find("\"test.scrape_counter\":"), std::string::npos);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& writer : writers) writer.join();
  // A final scrape agrees with the quiesced registry exactly.
  const std::string json = obs::MetricsJson();
  EXPECT_NE(json.find("\"test.scrape_counter\":" +
                      std::to_string(counter->Value())),
            std::string::npos);
}
#endif  // !TINPROV_NO_THREADS

// ---- TraceSink: idempotent export and drain-once semantics.

TEST_F(ObsTest, TraceSinkToJsonIsIdempotent) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TraceSink& sink = TraceSink::Global();
  sink.SetEnabledForTesting(true);
  sink.Record("test.a", "test", 0, 10);
  sink.Record("test.b", "test", 20, 10);
  sink.SetEnabledForTesting(false);
  const std::string first = sink.ToJson();
  const std::string second = sink.ToJson();
  EXPECT_EQ(first, second);
  EXPECT_EQ(sink.num_events(), 2u);  // export did not consume the ring
}

TEST_F(ObsTest, TraceSinkDrainHandsOutEachEventOnce) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TraceSink& sink = TraceSink::Global();
  sink.SetCapacityForTesting(2);
  sink.SetEnabledForTesting(true);
  sink.Record("test.one", "test", 0, 1);
  sink.Record("test.two", "test", 10, 1);
  sink.Record("test.three", "test", 20, 1);  // overwrites test.one

  const std::string drained = sink.DrainJson();
  EXPECT_NE(drained.find("test.two"), std::string::npos);
  EXPECT_NE(drained.find("test.three"), std::string::npos);
  EXPECT_EQ(drained.find("test.one"), std::string::npos);
  EXPECT_EQ(sink.num_events(), 0u);
  EXPECT_EQ(sink.DrainJson().find("test.two"), std::string::npos);

  // Drains preserve the cumulative accounting and leave the ring
  // usable: more spans land, more drops count.
  EXPECT_EQ(sink.recorded_events(), 3u);
  EXPECT_EQ(sink.dropped_events(), 1u);
  sink.Record("test.four", "test", 30, 1);
  sink.Record("test.five", "test", 40, 1);
  sink.Record("test.six", "test", 50, 1);
  sink.SetEnabledForTesting(false);
  EXPECT_EQ(sink.num_events(), 2u);
  EXPECT_EQ(sink.recorded_events(), 6u);
  EXPECT_EQ(sink.dropped_events(), 2u);
  sink.SetCapacityForTesting(1 << 16);
}

#if !defined(TINPROV_NO_THREADS)
// Drains interleaved with concurrent span emission never lose or
// duplicate an event: everything recorded is either handed out by some
// drain, still buffered, or counted as dropped.
TEST_F(ObsTest, TraceSinkDrainIsSafeUnderConcurrentEmission) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TraceSink& sink = TraceSink::Global();
  sink.SetCapacityForTesting(64);
  sink.SetEnabledForTesting(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.Record("test.emit", "test", i, 1);
      }
    });
  }
  size_t handed_out = 0;
  for (int round = 0; round < 200; ++round) {
    const std::string json = sink.DrainJson();
    size_t pos = 0;
    while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
      ++handed_out;
      pos += 8;
    }
  }
  for (std::thread& writer : writers) writer.join();
  const std::string last = sink.DrainJson();
  size_t pos = 0;
  while ((pos = last.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++handed_out;
    pos += 8;
  }
  sink.SetEnabledForTesting(false);
  EXPECT_EQ(handed_out + sink.dropped_events(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.recorded_events(),
            static_cast<size_t>(kThreads) * kPerThread);
  sink.SetCapacityForTesting(1 << 16);
}
#endif  // !TINPROV_NO_THREADS

// ---- HealthRegistry: aggregation, gauge mirroring, thresholds.

TEST_F(ObsTest, HealthRegistryAggregatesVerdicts) {
  HealthRegistry health;
  EXPECT_TRUE(health.RunAll().healthy);  // vacuously healthy when empty
  health.Register("always_ok", [] { return HealthResult{true, 1.0, "fine"}; });
  EXPECT_TRUE(health.RunAll().healthy);
  health.Register("broken", [] { return HealthResult{false, 9.0, "bad"}; });
  const HealthRegistry::Report report = health.RunAll();
  EXPECT_FALSE(report.healthy);
  ASSERT_EQ(report.checks.size(), 2u);
  // Sorted by name; each check carries its own verdict.
  EXPECT_EQ(report.checks[0].name, "always_ok");
  EXPECT_TRUE(report.checks[0].result.healthy);
  EXPECT_EQ(report.checks[1].name, "broken");
  EXPECT_FALSE(report.checks[1].result.healthy);

  bool healthy = true;
  const std::string json = health.Json(&healthy);
  EXPECT_FALSE(healthy);
  EXPECT_NE(json.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(json.find("\"broken\":{\"healthy\":false"), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"bad\""), std::string::npos);

  health.Unregister("broken");
  EXPECT_TRUE(health.RunAll().healthy);
  EXPECT_EQ(health.size(), 1u);
}

TEST_F(ObsTest, HealthChecksThatThrowReportUnhealthy) {
  HealthRegistry health;
  health.Register("throws", []() -> HealthResult {
    throw std::runtime_error("boom");
  });
  const HealthRegistry::Report report = health.RunAll();
  EXPECT_FALSE(report.healthy);
  EXPECT_NE(report.checks[0].result.message.find("boom"), std::string::npos);
}

TEST_F(ObsTest, HealthVerdictsMirrorIntoGauges) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  HealthRegistry health;
  health.Register("mirrored", [] { return HealthResult{true, 0.0, ""}; });
  health.RunAll();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("health.mirrored")->Value(), 1.0);
  health.Register("mirrored", [] { return HealthResult{false, 0.0, ""}; });
  health.RunAll();
  EXPECT_DOUBLE_EQ(
      MetricsRegistry::Global().GetGauge("health.mirrored")->Value(), 0.0);
}

TEST_F(ObsTest, GaugeAtMostCheckComparesAgainstLimit) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry::Global().GetGauge("test.lag")->Set(5.0);
  const obs::HealthCheck check = obs::GaugeAtMostCheck("test.lag", 10.0);
  EXPECT_TRUE(check().healthy);
  MetricsRegistry::Global().GetGauge("test.lag")->Set(11.0);
  const HealthResult result = check();
  EXPECT_FALSE(result.healthy);
  EXPECT_DOUBLE_EQ(result.value, 11.0);
}

// ---- SlowQueryLog: bounded ring, ids, JSON shape.

TEST_F(ObsTest, SlowQueryLogBoundsRingAndCountsDrops) {
  SlowQueryLog log(/*capacity=*/3);
  const uint64_t first_id = log.NextQueryId();
  EXPECT_GT(log.NextQueryId(), first_id);  // monotonic, never zero
  for (uint64_t i = 1; i <= 5; ++i) {
    obs::SlowQueryRecord record;
    record.query_id = i;
    record.kind = "provenance";
    record.vertex = 10 + i;
    record.latency_ns = static_cast<int64_t>(i) * 1000;
    log.Record(record);
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<obs::SlowQueryRecord> snapshot = log.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Oldest first, and the two oldest records were the ones overwritten.
  EXPECT_EQ(snapshot.front().query_id, 3u);
  EXPECT_EQ(snapshot.back().query_id, 5u);

  const std::string json = log.Json();
  EXPECT_NE(json.find("\"capacity\":3"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":5"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"vertex\":15"), std::string::npos);
}

// ---- Recorder: ring bound, windowed rates, time-series JSON.

TEST_F(ObsTest, RecorderSamplesComputeWindowedDeltas) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.recorded_counter");
  registry.GetGauge("test.recorded_gauge")->Set(7.0);
  registry.GetHistogram("test.recorded_hist")->Observe(100);

  obs::RecorderOptions options;
  options.capacity = 2;
  Recorder recorder(options);
  recorder.SampleNow();
  counter->Add(1000);
  recorder.SampleNow();
  EXPECT_EQ(recorder.num_samples(), 2u);
  EXPECT_DOUBLE_EQ(recorder.Delta("test.recorded_counter"), 1000.0);
  EXPECT_GT(recorder.Rate("test.recorded_counter"), 0.0);
  EXPECT_DOUBLE_EQ(recorder.Delta("test.absent"), 0.0);
  EXPECT_DOUBLE_EQ(recorder.LatestGauge("test.recorded_gauge"), 7.0);

  // The ring is bounded: a third sample evicts the first, and the
  // window (now samples 2..3) no longer spans the counter bump.
  recorder.SampleNow();
  EXPECT_EQ(recorder.num_samples(), 2u);
  EXPECT_EQ(recorder.total_samples(), 3u);
  EXPECT_DOUBLE_EQ(recorder.Delta("test.recorded_counter"), 0.0);

  const std::string json = recorder.TimeSeriesJson();
  EXPECT_NE(json.find("\"samples\":["), std::string::npos);
  EXPECT_NE(json.find("\"test.recorded_counter\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"test.recorded_hist\":{\"count\":1"),
            std::string::npos);
}

#if !defined(TINPROV_NO_THREADS)
TEST_F(ObsTest, RecorderBackgroundThreadKeepsSampling) {
  obs::RecorderOptions options;
  options.interval_ms = 2;
  Recorder recorder(options);
  ASSERT_TRUE(recorder.Start().ok());
  EXPECT_FALSE(recorder.Start().ok());  // double start refused
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  recorder.Stop();
  const size_t samples = recorder.num_samples();
  EXPECT_GE(samples, 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(recorder.num_samples(), samples);  // thread really stopped
}
#endif  // !TINPROV_NO_THREADS

// ---- OpsServer: routing, built-in endpoints, and the real socket.

TEST_F(ObsTest, OpsServerDispatchRoutesBuiltins) {
  MetricsRegistry::Global().GetCounter("test.ops_counter")->Add(3);
  OpsServer server;

  EXPECT_EQ(server.Dispatch("/nope").status, 404);

  const obs::HttpResponse metrics = server.Dispatch("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE"), std::string::npos);

  const obs::HttpResponse metricsz = server.Dispatch("/metricsz");
  EXPECT_EQ(metricsz.status, 200);
  EXPECT_EQ(metricsz.content_type, "application/json");
  EXPECT_NE(metricsz.body.find("\"counters\":{"), std::string::npos);

  const obs::HttpResponse statusz = server.Dispatch("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"uptime_s\":"), std::string::npos);

  const obs::HttpResponse tracez = server.Dispatch("/tracez");
  EXPECT_EQ(tracez.status, 200);
  EXPECT_NE(tracez.body.find("\"traceEvents\":["), std::string::npos);

  const obs::HttpResponse slow = server.Dispatch("/tracez?slow=1");
  EXPECT_NE(slow.body.find("\"queries\":["), std::string::npos);

  // A custom handler overrides a built-in route.
  server.SetHandler("/statusz", [](std::string_view) {
    obs::HttpResponse response;
    response.body = "override";
    return response;
  });
  EXPECT_EQ(server.Dispatch("/statusz").body, "override");
}

TEST_F(ObsTest, OpsServerHealthzFlipsTo503) {
  OpsServer server;
  EXPECT_EQ(server.Dispatch("/healthz").status, 200);
  HealthRegistry::Global().Register("test.forced_failure", [] {
    return HealthResult{false, 1.0, "forced by test"};
  });
  const obs::HttpResponse unhealthy = server.Dispatch("/healthz");
  EXPECT_EQ(unhealthy.status, 503);
  EXPECT_NE(unhealthy.body.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(unhealthy.body.find("forced by test"), std::string::npos);
  HealthRegistry::Global().Unregister("test.forced_failure");
  EXPECT_EQ(server.Dispatch("/healthz").status, 200);
}

// The /tracez?drain=1 route consumes the ring through the server.
TEST_F(ObsTest, OpsServerTracezDrainConsumes) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TraceSink& sink = TraceSink::Global();
  sink.SetEnabledForTesting(true);
  sink.Record("test.served", "test", 0, 1);
  sink.SetEnabledForTesting(false);
  OpsServer server;
  const obs::HttpResponse peek = server.Dispatch("/tracez");
  EXPECT_NE(peek.body.find("test.served"), std::string::npos);
  const obs::HttpResponse drain = server.Dispatch("/tracez?drain=1");
  EXPECT_NE(drain.body.find("test.served"), std::string::npos);
  EXPECT_EQ(sink.num_events(), 0u);
  const obs::HttpResponse after = server.Dispatch("/tracez");
  EXPECT_EQ(after.body.find("test.served"), std::string::npos);
}

#if !defined(TINPROV_NO_THREADS)

/// Minimal loopback HTTP client for the socket round-trip tests.
std::string HttpRequest(uint16_t port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST_F(ObsTest, OpsServerServesOverLoopbackSocket) {
  OpsServer server;
  ASSERT_TRUE(server.Start(0).ok());  // ephemeral port
  ASSERT_GT(server.port(), 0);
  EXPECT_FALSE(server.Start(0).ok());  // one listener per server

  const std::string metrics =
      HttpRequest(server.port(), "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  const std::string missing = HttpRequest(server.port(), "GET /no HTTP/1.0");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  const std::string post = HttpRequest(server.port(), "POST /metrics HTTP/1.0");
  EXPECT_NE(post.find("HTTP/1.0 405"), std::string::npos);

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_TRUE(HttpRequest(server.port(), "GET /metrics HTTP/1.0").empty());
}

#endif  // !TINPROV_NO_THREADS

// ---- Engine integration: the layers actually report through the
// ---- registry, and the unified memory answer is one call away.

Tin SmallTin() {
  GeneratorConfig config;
  config.num_vertices = 40;
  config.num_interactions = 2000;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.seed = 7;
  return *Generate(config);
}

TEST_F(ObsTest, IngestReportsThroughRegistry) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const Tin tin = SmallTin();
  ProportionalSparseTracker tracker(tin.num_vertices());
  StreamIngestor ingestor(&tracker, {/*batch_size=*/256});
  MaterializedStream stream(tin);
  ASSERT_TRUE(ingestor.IngestAll(stream).ok());

  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("ingest.interactions")->Value(),
            tin.num_interactions());
  EXPECT_EQ(registry.GetCounter("ingest.batches")->Value(),
            ingestor.stats().batches);
  EXPECT_DOUBLE_EQ(registry.GetGauge("ingest.watermark")->Value(),
                   ingestor.stats().watermark);
  EXPECT_DOUBLE_EQ(registry.GetGauge("ingest.peak_batch")->Value(), 256.0);
  EXPECT_EQ(registry.GetCounter("tracker.interactions")->Value(),
            tin.num_interactions());
  // One call reports engine-wide bytes, and the ingest-side tracker
  // gauge is part of the sum.
  EXPECT_GE(obs::EngineMemoryBytes(),
            registry.GetGauge("memory.ingest_tracker_bytes")->Value());
  EXPECT_GT(registry.GetGauge("memory.ingest_tracker_bytes")->Value(), 0.0);
}

TEST_F(ObsTest, AlphaResidueTracksUnattributedQuantity) {
  const Tin tin = SmallTin();

  // The exact policy attributes everything: alpha stays (numerically) 0.
  ProportionalSparseTracker exact(tin.num_vertices());
  for (const Interaction& interaction : tin.interactions()) {
    ASSERT_TRUE(exact.Process(interaction).ok());
  }
  EXPECT_NEAR(exact.AlphaResidue(), 0.0,
              1e-9 * std::max(1.0, exact.total_generated()));

  // Budgeted tracking drops tuples: alpha grows, stays within
  // [0, total_generated], and survives a snapshot round-trip.
  BudgetConfig config;
  config.capacity = 4;
  config.keep_fraction = 0.5;
  BudgetTracker budget(tin.num_vertices(), config);
  for (const Interaction& interaction : tin.interactions()) {
    ASSERT_TRUE(budget.Process(interaction).ok());
  }
  EXPECT_GT(budget.AlphaResidue(), 0.0);
  EXPECT_LE(budget.AlphaResidue(),
            budget.total_generated() * (1.0 + 1e-9));

  std::vector<uint8_t> state;
  budget.SaveState(&state);
  BudgetTracker restored(tin.num_vertices(), config);
  ASSERT_TRUE(restored.RestoreState(state.data(), state.size()).ok());
  EXPECT_DOUBLE_EQ(restored.AlphaResidue(), budget.AlphaResidue());

  // A window reset collapses every list into alpha.
  WindowedTracker windowed(tin.num_vertices(), tin.num_interactions());
  for (const Interaction& interaction : tin.interactions()) {
    ASSERT_TRUE(windowed.Process(interaction).ok());
  }
  ASSERT_EQ(windowed.reset_count(), 1u);
  EXPECT_EQ(windowed.num_entries(), 0u);
  EXPECT_NEAR(windowed.AlphaResidue(), windowed.total_generated(),
              1e-9 * std::max(1.0, windowed.total_generated()));
}

}  // namespace
}  // namespace tinprov
