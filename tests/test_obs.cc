// The observability substrate: log2-histogram percentiles against exact
// quantiles, sharded counters and histograms under real thread
// contention (the TSan leg runs this label), trace-sink ring semantics
// and chrome://tracing JSON shape, exporter output, the metrics-off
// no-op proof, and the engine-facing pieces that ride on the registry —
// per-batch ingest metrics, the unified "memory." gauge sum, and the
// trackers' alpha-residue accounting (including its snapshot survival).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "policies/proportional_sparse.h"
#include "scalable/budget.h"
#include "scalable/windowed.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"

namespace tinprov {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceSink;
using obs::TraceSpan;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().ResetForTesting();
    TraceSink::Global().Clear();
  }
};

TEST_F(ObsTest, CounterAddsAndResets) {
  Counter counter;
  counter.Add();
  counter.Add(41);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(counter.Value(), 42u);
  } else {
    EXPECT_EQ(counter.Value(), 0u);  // compiled-out build: provable no-op
  }
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(ObsTest, GaugeSetAddMax) {
  Gauge gauge;
  gauge.Set(10.0);
  gauge.Add(5.0);
  gauge.SetMax(12.0);  // below current 15 -> no change
  if (obs::kMetricsEnabled) {
    EXPECT_DOUBLE_EQ(gauge.Value(), 15.0);
    gauge.SetMax(20.0);
    EXPECT_DOUBLE_EQ(gauge.Value(), 20.0);
  } else {
    EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  }
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  for (size_t i = 1; i + 1 < Histogram::kNumBuckets; ++i) {
    // Bucket i>0 holds [2^(i-1), 2^i).
    const auto low = static_cast<uint64_t>(Histogram::BucketLow(i));
    const auto high = static_cast<uint64_t>(Histogram::BucketHigh(i));
    EXPECT_EQ(Histogram::BucketIndex(low), i);
    EXPECT_EQ(Histogram::BucketIndex(high - 1), i);
    EXPECT_EQ(Histogram::BucketIndex(high), i + 1);
  }
}

// The log2-bucket estimate must land within the exact quantile's bucket:
// the error is bounded by the bucket's 2x width, never more.
TEST_F(ObsTest, HistogramPercentilesTrackExactQuantiles) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram histogram;
  std::vector<uint64_t> samples;
  // Deterministic skewed data: mostly small with a long tail, like a
  // latency distribution.
  uint64_t state = 88172645463325252ULL;
  for (int i = 0; i < 20000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const uint64_t value = (state % 1000) < 950 ? state % 4096
                                                : state % (1 << 20);
    samples.push_back(value);
    histogram.Observe(value);
  }
  EXPECT_EQ(histogram.Count(), samples.size());
  std::sort(samples.begin(), samples.end());
  for (const double p : {0.50, 0.90, 0.99}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(p * static_cast<double>(samples.size())));
    const uint64_t exact = samples[rank - 1];
    const double estimate = histogram.Percentile(p);
    const size_t bucket = Histogram::BucketIndex(exact);
    EXPECT_GE(estimate, Histogram::BucketLow(bucket))
        << "p=" << p << " exact=" << exact;
    EXPECT_LE(estimate, Histogram::BucketHigh(bucket))
        << "p=" << p << " exact=" << exact;
  }
  // Degenerate cases.
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
  Histogram zeros;
  zeros.Observe(0);
  zeros.Observe(0);
  EXPECT_DOUBLE_EQ(zeros.Percentile(0.99), 0.0);
}

TEST_F(ObsTest, RegistryInternsByName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.interned");
  EXPECT_EQ(counter, registry.GetCounter("test.interned"));
  EXPECT_NE(counter, registry.GetCounter("test.other"));
  // Counters, gauges, and histograms occupy separate namespaces.
  registry.GetGauge("test.interned");
  registry.GetHistogram("test.interned");
  counter->Add(7);
  registry.ResetForTesting();
  // Reset zeroes values but keeps the interned pointers valid.
  EXPECT_EQ(counter, registry.GetCounter("test.interned"));
  EXPECT_EQ(counter->Value(), 0u);
}

// The TSan target: concurrent writers on one counter and one histogram,
// exact totals once the writers have joined.
TEST_F(ObsTest, ConcurrentCountersAndHistogramsAreExact) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.concurrent_counter");
  Gauge* peak = registry.GetGauge("test.concurrent_peak");
  Histogram* histogram = registry.GetHistogram("test.concurrent_histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Observe(static_cast<uint64_t>(i));
        peak->SetMax(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const uint64_t per_thread_sum =
      static_cast<uint64_t>(kPerThread) * (kPerThread - 1) / 2;
  EXPECT_EQ(histogram->Sum(), kThreads * per_thread_sum);
  EXPECT_DOUBLE_EQ(peak->Value(),
                   static_cast<double>(kThreads * kPerThread - 1));
}

TEST_F(ObsTest, MemoryBytesSumsOnlyMemoryGauges) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetGauge("memory.test_a")->Set(100.0);
  registry.GetGauge("memory.test_b")->Set(23.0);
  registry.GetGauge("test.not_memory")->Set(1e9);
  EXPECT_DOUBLE_EQ(registry.MemoryBytes(), 123.0);
  EXPECT_DOUBLE_EQ(obs::EngineMemoryBytes(), 123.0);
}

TEST_F(ObsTest, TraceSinkRingBoundsAndCountsDrops) {
  TraceSink& sink = TraceSink::Global();
  sink.SetCapacityForTesting(4);
  sink.SetEnabledForTesting(true);
  for (int i = 0; i < 10; ++i) {
    sink.Record("test.event", "test", i * 100, 50);
  }
  sink.SetEnabledForTesting(false);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(sink.num_events(), 4u);
    EXPECT_EQ(sink.dropped_events(), 6u);
  } else {
    // Tracing can never be enabled in a metrics-off build.
    EXPECT_EQ(sink.num_events(), 0u);
    EXPECT_EQ(sink.dropped_events(), 0u);
  }
  sink.SetCapacityForTesting(1 << 16);
}

TEST_F(ObsTest, TraceSpansProduceChromeTracingJson) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  TraceSink& sink = TraceSink::Global();
  sink.SetEnabledForTesting(true);
  {
    TraceSpan outer("test.outer", "test");
    TraceSpan inner("test.inner", "test");
  }
  sink.SetEnabledForTesting(false);
  EXPECT_EQ(sink.num_events(), 2u);
  const std::string json = sink.ToJson();
  // Structural shape of the chrome://tracing trace_event format; the
  // scripts/smoke.sh trace smoke additionally json.load()s a real file.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  // Destruction order: inner closes first, so it is recorded first.
  EXPECT_LT(json.find("test.inner"), json.find("test.outer"));
}

TEST_F(ObsTest, SpansAreNotRecordedWhileDisabled) {
  TraceSink& sink = TraceSink::Global();
  ASSERT_FALSE(sink.enabled());
  {
    TraceSpan span("test.ignored", "test");
  }
  EXPECT_EQ(sink.num_events(), 0u);
}

TEST_F(ObsTest, PrometheusTextShapes) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom_counter")->Add(3);
  registry.GetGauge("test.prom_gauge")->Set(1.5);
  registry.GetHistogram("test.prom_hist")->Observe(100);
  const std::string text = obs::PrometheusText();
  EXPECT_NE(text.find("# TYPE tinprov_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("tinprov_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tinprov_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tinprov_test_prom_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("tinprov_test_prom_hist{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("tinprov_test_prom_hist_count 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonIsWellFormedAndComplete) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.json_counter")->Add(5);
  registry.GetHistogram("test.json_hist")->Observe(7);
  const std::string json = obs::MetricsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  if (obs::kMetricsEnabled) {
    EXPECT_NE(json.find("\"test.json_counter\":5"), std::string::npos);
    EXPECT_NE(json.find("\"test.json_hist\":{\"count\":1"),
              std::string::npos);
  }
}

// ---- Engine integration: the layers actually report through the
// ---- registry, and the unified memory answer is one call away.

Tin SmallTin() {
  GeneratorConfig config;
  config.num_vertices = 40;
  config.num_interactions = 2000;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.seed = 7;
  return *Generate(config);
}

TEST_F(ObsTest, IngestReportsThroughRegistry) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const Tin tin = SmallTin();
  ProportionalSparseTracker tracker(tin.num_vertices());
  StreamIngestor ingestor(&tracker, {/*batch_size=*/256});
  MaterializedStream stream(tin);
  ASSERT_TRUE(ingestor.IngestAll(stream).ok());

  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("ingest.interactions")->Value(),
            tin.num_interactions());
  EXPECT_EQ(registry.GetCounter("ingest.batches")->Value(),
            ingestor.stats().batches);
  EXPECT_DOUBLE_EQ(registry.GetGauge("ingest.watermark")->Value(),
                   ingestor.stats().watermark);
  EXPECT_DOUBLE_EQ(registry.GetGauge("ingest.peak_batch")->Value(), 256.0);
  EXPECT_EQ(registry.GetCounter("tracker.interactions")->Value(),
            tin.num_interactions());
  // One call reports engine-wide bytes, and the ingest-side tracker
  // gauge is part of the sum.
  EXPECT_GE(obs::EngineMemoryBytes(),
            registry.GetGauge("memory.ingest_tracker_bytes")->Value());
  EXPECT_GT(registry.GetGauge("memory.ingest_tracker_bytes")->Value(), 0.0);
}

TEST_F(ObsTest, AlphaResidueTracksUnattributedQuantity) {
  const Tin tin = SmallTin();

  // The exact policy attributes everything: alpha stays (numerically) 0.
  ProportionalSparseTracker exact(tin.num_vertices());
  for (const Interaction& interaction : tin.interactions()) {
    ASSERT_TRUE(exact.Process(interaction).ok());
  }
  EXPECT_NEAR(exact.AlphaResidue(), 0.0,
              1e-9 * std::max(1.0, exact.total_generated()));

  // Budgeted tracking drops tuples: alpha grows, stays within
  // [0, total_generated], and survives a snapshot round-trip.
  BudgetConfig config;
  config.capacity = 4;
  config.keep_fraction = 0.5;
  BudgetTracker budget(tin.num_vertices(), config);
  for (const Interaction& interaction : tin.interactions()) {
    ASSERT_TRUE(budget.Process(interaction).ok());
  }
  EXPECT_GT(budget.AlphaResidue(), 0.0);
  EXPECT_LE(budget.AlphaResidue(),
            budget.total_generated() * (1.0 + 1e-9));

  std::vector<uint8_t> state;
  budget.SaveState(&state);
  BudgetTracker restored(tin.num_vertices(), config);
  ASSERT_TRUE(restored.RestoreState(state.data(), state.size()).ok());
  EXPECT_DOUBLE_EQ(restored.AlphaResidue(), budget.AlphaResidue());

  // A window reset collapses every list into alpha.
  WindowedTracker windowed(tin.num_vertices(), tin.num_interactions());
  for (const Interaction& interaction : tin.interactions()) {
    ASSERT_TRUE(windowed.Process(interaction).ok());
  }
  ASSERT_EQ(windowed.reset_count(), 1u);
  EXPECT_EQ(windowed.num_entries(), 0u);
  EXPECT_NEAR(windowed.AlphaResidue(), windowed.total_generated(),
              1e-9 * std::max(1.0, windowed.total_generated()));
}

}  // namespace
}  // namespace tinprov
