// Parallel-replay semantics: sharded replay must be indistinguishable —
// bit for bit — from sequential replay, for every factory-constructible
// tracker, every shard strategy, and the degenerate shapes (one thread,
// more threads than shards, more shards than labels, empty datasets).
// The equality harness mirrors tests/test_lazy.cc: no tolerances
// anywhere, the parallel engine promises the identical result.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analytics/experiment.h"
#include "datagen/generator.h"
#include "lazy/replay.h"
#include "parallel/scheduler.h"
#include "parallel/sharded_ingest.h"
#include "parallel/sharded_replay.h"
#include "policies/tracker.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"

namespace tinprov {
namespace {

// The same hand-built TIN as test_policies.cc: deficit generation,
// partial consumption, re-sends, and a self-loop over 6 interactions.
Tin HandTin() {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 5.0},  // 1 generates 5, sends to 0
      {2, 0, 2.0, 3.0},  // 2 generates 3, sends to 0
      {0, 3, 3.0, 4.0},  // 0 forwards a mix
      {3, 3, 4.0, 2.0},  // self-loop at 3
      {3, 4, 5.0, 6.0},  // exceeds 3's buffer: deficit generated at 3
      {4, 0, 6.0, 1.0},  // flows back
  };
  return Tin(5, std::move(log));
}

Tin GeneratedTin() {
  GeneratorConfig config;
  config.num_vertices = 60;
  config.num_interactions = 3000;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 41;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

// Mid-range scalable configuration; small enough that Budget shrinks
// and Windowed resets actually fire while shards replay.
ScalableParams TestParams() {
  ScalableParams params;
  params.window = 500;
  params.num_tracked = 10;
  params.num_groups = 7;
  params.budget.capacity = 8;
  params.budget.keep_fraction = 0.5;
  return params;
}

void ExpectSameBuffer(const Buffer& expected, const Buffer& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.total, actual.total) << context;
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << context;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_TRUE(expected.entries[i] == actual.entries[i])
        << context << " entry " << i << ": (" << expected.entries[i].origin
        << ", " << expected.entries[i].quantity << ") vs ("
        << actual.entries[i].origin << ", " << actual.entries[i].quantity
        << ")";
  }
}

// Replays `tin` sequentially through the named tracker and checks the
// sharded result against it, vertex by vertex.
void ExpectBitIdentical(const Tin& tin, const std::string& name,
                        const ParallelParams& parallel,
                        const std::string& context) {
  const ScalableParams params = TestParams();
  auto eager = TrackerRegistry::Global().Create({name, params}, tin);
  ASSERT_TRUE(eager.ok()) << context;
  ASSERT_TRUE((*eager)->ProcessAll(tin).ok()) << context;

  auto spec = TrackerRegistry::Global().Sharded({name, params}, tin);
  ASSERT_TRUE(spec.ok()) << context;
  ShardedReplayEngine engine(tin, *std::move(spec), parallel);
  auto result = engine.Replay();
  ASSERT_TRUE(result.ok()) << context << ": " << result.status().ToString();

  EXPECT_EQ((*eager)->total_generated(), result->total_generated) << context;
  EXPECT_EQ(result->interactions_replayed, tin.num_interactions()) << context;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    ExpectSameBuffer((*eager)->Provenance(v), result->Provenance(v),
                     context + " vertex " + std::to_string(v));
    EXPECT_EQ((*eager)->BufferTotal(v), result->BufferTotal(v)) << context;
  }
}

bool NotAlnum(char c) { return !std::isalnum(static_cast<unsigned char>(c)); }

std::string SanitizeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  name.erase(std::remove_if(name.begin(), name.end(), NotAlnum), name.end());
  return name;
}

// ---------------------------------------------------------------------
// (a) Sharded replay is bit-identical to sequential replay for every
// factory name, across shard strategies and thread/shard shapes.

class ShardedReplayTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedReplayTest, FourShardsMatchSequentialBitExactly) {
  const Tin tin = GeneratedTin();
  for (const ShardStrategy strategy :
       {ShardStrategy::kRoundRobin, ShardStrategy::kHash,
        ShardStrategy::kContiguous, ShardStrategy::kActivity}) {
    ParallelParams parallel;
    parallel.num_threads = 4;
    parallel.num_shards = 4;
    parallel.strategy = strategy;
    ExpectBitIdentical(tin, GetParam(), parallel,
                       GetParam() + "/strategy" +
                           std::to_string(static_cast<int>(strategy)));
  }
}

TEST_P(ShardedReplayTest, OneThreadManyShardsMatches) {
  // One worker draining five shards exercises the sharding and exchange
  // logic with zero scheduling nondeterminism.
  ParallelParams parallel;
  parallel.num_threads = 1;
  parallel.num_shards = 5;
  ExpectBitIdentical(GeneratedTin(), GetParam(), parallel,
                     GetParam() + "/1-thread");
}

TEST_P(ShardedReplayTest, MoreThreadsThanShardsMatches) {
  ParallelParams parallel;
  parallel.num_threads = 8;
  parallel.num_shards = 2;
  ExpectBitIdentical(GeneratedTin(), GetParam(), parallel,
                     GetParam() + "/8-threads-2-shards");
}

TEST_P(ShardedReplayTest, EmptyDatasetYieldsEmptyState) {
  const Tin tin(5, {});
  ParallelParams parallel;
  parallel.num_threads = 4;
  auto spec =
      TrackerRegistry::Global().Sharded({GetParam(), TestParams()}, tin);
  ASSERT_TRUE(spec.ok());
  ShardedReplayEngine engine(tin, *std::move(spec), parallel);
  auto result = engine.Replay();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_generated, 0.0);
  EXPECT_EQ(result->num_entries, 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(result->BufferTotal(v), 0.0);
    EXPECT_TRUE(result->Provenance(v).entries.empty());
  }
}

TEST_P(ShardedReplayTest, PrefixReplayMatchesSequentialPrefix) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  const size_t prefix = tin.num_interactions() / 2;

  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok());
  std::unique_ptr<Tracker> eager = (*factory)();
  const auto& log = tin.interactions();
  for (size_t i = 0; i < prefix; ++i) {
    ASSERT_TRUE(eager->Process(log[i]).ok());
  }

  ParallelParams parallel;
  parallel.num_threads = 3;
  auto spec = TrackerRegistry::Global().Sharded({GetParam(), params}, tin);
  ASSERT_TRUE(spec.ok());
  ShardedReplayEngine engine(tin, *std::move(spec), parallel);
  auto result = engine.ReplayPrefix(prefix);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->interactions_replayed, prefix);
  EXPECT_EQ(eager->total_generated(), result->total_generated);
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    ExpectSameBuffer(eager->Provenance(v), result->Provenance(v),
                     GetParam() + "/prefix vertex " + std::to_string(v));
  }
}

TEST_P(ShardedReplayTest, RepeatedRunsAreDeterministic) {
  // Thread scheduling varies between runs; results must not.
  const Tin tin = GeneratedTin();
  ParallelParams parallel;
  parallel.num_threads = 4;
  parallel.num_shards = 7;
  auto spec =
      TrackerRegistry::Global().Sharded({GetParam(), TestParams()}, tin);
  ASSERT_TRUE(spec.ok());
  ShardedReplayEngine engine(tin, *std::move(spec), parallel);
  auto first = engine.Replay();
  auto second = engine.Replay();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->total_generated, second->total_generated);
  EXPECT_EQ(first->num_entries, second->num_entries);
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    ExpectSameBuffer(first->Provenance(v), second->Provenance(v),
                     GetParam() + "/determinism vertex " + std::to_string(v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTrackerNames, ShardedReplayTest,
                         ::testing::ValuesIn(TrackerRegistry::Global().Names()),
                         SanitizeName);

// ---------------------------------------------------------------------
// (b) Engine mechanics: which path runs, and the label-space clamps.

TEST(ShardedReplayEngineTest, DecomposableNamesTakeTheParallelPath) {
  const Tin tin = GeneratedTin();
  ParallelParams parallel;
  parallel.num_threads = 4;
  for (const char* name : {"Prop-sparse", "Selective", "Grouped",
                           "Windowed"}) {
    auto spec = TrackerRegistry::Global().Sharded({name, TestParams()}, tin);
    ASSERT_TRUE(spec.ok());
    EXPECT_TRUE(spec->decomposable) << name;
    ShardedReplayEngine engine(tin, *std::move(spec), parallel);
    auto result = engine.Replay();
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->used_parallel_path) << name;
    EXPECT_GT(result->num_shards, 1u) << name;
    EXPECT_EQ(result->shards.size(), result->num_shards) << name;
  }
}

TEST(ShardedReplayEngineTest, NonDecomposableNamesFallBackSequentially) {
  const Tin tin = GeneratedTin();
  ParallelParams parallel;
  parallel.num_threads = 4;
  for (const char* name :
       {"NoProv", "LIFO", "FIFO", "LRB", "MRB", "Prop-dense", "Budget"}) {
    auto spec = TrackerRegistry::Global().Sharded({name, TestParams()}, tin);
    ASSERT_TRUE(spec.ok());
    EXPECT_FALSE(spec->decomposable) << name;
    ShardedReplayEngine engine(tin, *std::move(spec), parallel);
    auto result = engine.Replay();
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_FALSE(result->used_parallel_path) << name;
    EXPECT_EQ(result->num_shards, 1u) << name;
  }
}

TEST(ShardedReplayEngineTest, ShardCountClampsToLabelSpace) {
  // Grouped labels live in [0, num_groups); asking for more shards than
  // labels must clamp, not leave empty shards (7 groups in TestParams).
  const Tin tin = GeneratedTin();
  ParallelParams parallel;
  parallel.num_threads = 4;
  parallel.num_shards = 16;
  auto spec =
      TrackerRegistry::Global().Sharded({"Grouped", TestParams()}, tin);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->label_count, 7u);
  ShardedReplayEngine engine(tin, *std::move(spec), parallel);
  auto result = engine.Replay();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_shards, 7u);
  ExpectBitIdentical(tin, "Grouped", parallel, "Grouped/clamped");
}

TEST(ShardedReplayEngineTest, HandBuiltTinAcrossShardCounts) {
  const Tin tin = HandTin();
  for (size_t shards = 1; shards <= 5; ++shards) {
    ParallelParams parallel;
    parallel.num_threads = 2;
    parallel.num_shards = shards;
    ExpectBitIdentical(tin, "Prop-sparse", parallel,
                       "hand/shards" + std::to_string(shards));
  }
}

TEST(ShardedReplayEngineTest, AssignLabelsCoversEveryLabelOnce) {
  const Tin tin = GeneratedTin();
  for (const ShardStrategy strategy :
       {ShardStrategy::kRoundRobin, ShardStrategy::kHash,
        ShardStrategy::kContiguous, ShardStrategy::kActivity}) {
    const auto groups = ShardedReplayEngine::AssignLabels(
        tin, strategy, tin.num_vertices(), 4);
    ASSERT_EQ(groups.size(), tin.num_vertices());
    for (const GroupId g : groups) EXPECT_LT(g, 4u);
  }
}

// ---------------------------------------------------------------------
// (c) Wiring: the lazy engine's parallel mode and the measurement
// harness return the same answers as their sequential counterparts.

TEST(ParallelWiringTest, LazyEngineParallelMatchesSequential) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  for (const char* name : {"Prop-sparse", "Grouped", "LIFO"}) {
    auto factory = TrackerRegistry::Global().Factory({name, params}, tin);
    ASSERT_TRUE(factory.ok());
    LazyReplayEngine sequential(tin, *factory);
    LazyReplayEngine parallel_engine(tin, *factory);
    auto spec = TrackerRegistry::Global().Sharded({name, params}, tin);
    ASSERT_TRUE(spec.ok());
    ParallelParams parallel;
    parallel.num_threads = 4;
    parallel_engine.EnableParallel(*std::move(spec), parallel);

    const VertexId v = 3;
    auto expected_full = sequential.Provenance(v);
    auto actual_full = parallel_engine.Provenance(v);
    ASSERT_TRUE(expected_full.ok());
    ASSERT_TRUE(actual_full.ok());
    ExpectSameBuffer(*expected_full, *actual_full,
                     std::string(name) + "/lazy-full");

    const Timestamp t = tin.interactions()[tin.num_interactions() / 3].t;
    auto expected_prefix = sequential.Provenance(v, t);
    auto actual_prefix = parallel_engine.Provenance(v, t);
    ASSERT_TRUE(expected_prefix.ok());
    ASSERT_TRUE(actual_prefix.ok());
    ExpectSameBuffer(*expected_prefix, *actual_prefix,
                     std::string(name) + "/lazy-prefix");
  }
}

TEST(ParallelWiringTest, MeasureTrackerParallelOptionRuns) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  MeasureOptions options;
  options.tin = &tin;
  options.parallel = true;
  options.parallel_params.num_threads = 2;

  auto sharded = MeasureTracker({"Prop-sparse", params}, options);
  ASSERT_TRUE(sharded.ok());
  EXPECT_TRUE(sharded->feasible);
  EXPECT_TRUE(sharded->parallel);
  EXPECT_GT(sharded->peak_memory, 0u);

  // Non-decomposable names silently measure on the classic path.
  auto fallback = MeasureTracker({"LIFO", params}, options);
  ASSERT_TRUE(fallback.ok());
  EXPECT_FALSE(fallback->parallel);

  // The final logical memory must agree with the sequential tracker's.
  auto eager = TrackerRegistry::Global().Create({"Prop-sparse", params}, tin);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE((*eager)->ProcessAll(tin).ok());
  EXPECT_EQ(sharded->peak_memory, (*eager)->MemoryUsage());
}

// ---------------------------------------------------------------------
// (d) Vertex-sharded ingest == sequential StreamIngestor, bit for bit,
// for every decomposable registry tracker.

void ExpectSameTrackerState(const Tracker& expected, const Tracker& actual,
                            const std::string& context) {
  EXPECT_EQ(expected.total_generated(), actual.total_generated()) << context;
  ASSERT_EQ(expected.num_vertices(), actual.num_vertices()) << context;
  for (VertexId v = 0; v < expected.num_vertices(); ++v) {
    EXPECT_EQ(expected.BufferTotal(v), actual.BufferTotal(v))
        << context << " vertex " << v;
    ExpectSameBuffer(expected.Provenance(v), actual.Provenance(v),
                     context + " vertex " + std::to_string(v));
  }
}

// Ingests `tin`'s log as a stream through both paths — sequential
// StreamIngestor on spec.sequential(), and the sharded engine — and
// requires bit-identical trackers plus matching ingest stats.
void ExpectIngestBitIdentical(const Tin& tin, const std::string& name,
                              const ParallelParams& parallel,
                              const std::string& context,
                              bool expect_parallel_path = true) {
  const ScalableParams params = TestParams();
  auto spec = TrackerRegistry::Global().Sharded(
      {name, params, TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok()) << context << ": " << spec.status().ToString();

  std::unique_ptr<Tracker> reference = spec->sequential();
  IngestOptions options;
  options.batch_size = 257;  // deliberately not a divisor of the length
  StreamIngestor ingestor(reference.get(), options);
  MaterializedStream reference_stream(tin);
  ASSERT_TRUE(ingestor.IngestAll(reference_stream).ok()) << context;

  ShardedIngestEngine engine(tin.Stats(), *std::move(spec), parallel,
                             options);
  MaterializedStream stream(tin);
  auto result = engine.IngestStream(stream);
  ASSERT_TRUE(result.ok()) << context << ": " << result.status().ToString();
  EXPECT_EQ(result->used_parallel_path, expect_parallel_path) << context;

  ExpectSameTrackerState(*reference, *result->tracker, context);
  EXPECT_EQ(result->stats.interactions, ingestor.stats().interactions)
      << context;
  EXPECT_EQ(result->stats.watermark, ingestor.stats().watermark) << context;
}

class ShardedIngestTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedIngestTest, FourShardsMatchSequentialBitExactly) {
  ParallelParams parallel;
  parallel.num_threads = 4;
  parallel.num_shards = 4;
  parallel.stream_chunk = 97;  // forces many partial chunks
  parallel.stream_queue_chunks = 2;
  ExpectIngestBitIdentical(GeneratedTin(), GetParam(), parallel,
                           GetParam() + "/ingest-4-shards");
}

TEST_P(ShardedIngestTest, ShardCountSweepMatches) {
  const Tin tin = GeneratedTin();
  for (const size_t shards : {size_t{2}, size_t{3}, size_t{7}}) {
    ParallelParams parallel;
    parallel.num_threads = shards;  // shards and workers are 1:1 here
    parallel.num_shards = shards;
    ExpectIngestBitIdentical(tin, GetParam(), parallel,
                             GetParam() + "/ingest-shards" +
                                 std::to_string(shards));
  }
}

TEST_P(ShardedIngestTest, HandBuiltTinMatches) {
  // 5 vertices, self-loop, deficit generation: the cross-shard exchange
  // fires on nearly every interaction.
  ParallelParams parallel;
  parallel.num_threads = 3;
  parallel.num_shards = 3;
  parallel.stream_chunk = 2;
  ExpectIngestBitIdentical(HandTin(), GetParam(), parallel,
                           GetParam() + "/ingest-hand");
}

TEST_P(ShardedIngestTest, RepeatedRunsAreDeterministic) {
  const Tin tin = GeneratedTin();
  ParallelParams parallel;
  parallel.num_threads = 4;
  parallel.num_shards = 4;
  auto make_result = [&] {
    auto spec = TrackerRegistry::Global().Sharded(
        {GetParam(), TestParams(), TrackerMode::kStreaming}, tin.Stats());
    EXPECT_TRUE(spec.ok());
    ShardedIngestEngine engine(tin.Stats(), *std::move(spec), parallel);
    MaterializedStream stream(tin);
    return engine.IngestStream(stream);
  };
  auto first = make_result();
  auto second = make_result();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectSameTrackerState(*first->tracker, *second->tracker,
                         GetParam() + "/ingest-determinism");
}

INSTANTIATE_TEST_SUITE_P(DecomposableNames, ShardedIngestTest,
                         ::testing::Values("Prop-sparse", "Windowed",
                                           "Selective", "Grouped"),
                         SanitizeName);

TEST(ShardedIngestEngineTest, NonDecomposableNamesFallBackSequentially) {
  const Tin tin = GeneratedTin();
  ParallelParams parallel;
  parallel.num_threads = 4;
  for (const char* name : {"NoProv", "LIFO", "FIFO", "Budget"}) {
    ExpectIngestBitIdentical(tin, name, parallel,
                             std::string(name) + "/ingest-fallback",
                             /*expect_parallel_path=*/false);
  }
}

TEST(ShardedIngestEngineTest, SingleThreadFallsBackSequentially) {
  ParallelParams parallel;
  parallel.num_threads = 1;
  parallel.num_shards = 4;  // shards clamp to threads: 1 shard, fallback
  ExpectIngestBitIdentical(GeneratedTin(), "Prop-sparse", parallel,
                           "Prop-sparse/ingest-1-thread",
                           /*expect_parallel_path=*/false);
}

TEST(ShardedIngestEngineTest, SinkForcesSequentialFallback) {
  // A durability sink must observe batches after the tracker applied
  // them — that contract serializes, so the engine must not shard.
  class CountingSink : public BatchSink {
   public:
    Status OnBatch(const Interaction*, size_t count) override {
      interactions += count;
      ++batches;
      return Status::Ok();
    }
    size_t interactions = 0;
    size_t batches = 0;
  };

  const Tin tin = GeneratedTin();
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok());
  CountingSink sink;
  IngestOptions options;
  options.sink = &sink;
  ParallelParams parallel;
  parallel.num_threads = 4;
  ShardedIngestEngine engine(tin.Stats(), *std::move(spec), parallel,
                             options);
  MaterializedStream stream(tin);
  auto result = engine.IngestStream(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->used_parallel_path);
  EXPECT_EQ(sink.interactions, tin.num_interactions());
  EXPECT_EQ(sink.batches, result->stats.batches);
}

TEST(ShardedIngestEngineTest, ParallelPathRejectsOutOfOrderStream) {
  std::vector<Interaction> disordered;
  for (size_t i = 0; i < 200; ++i) {
    Interaction interaction;
    interaction.src = static_cast<VertexId>(i % 9);
    interaction.dst = static_cast<VertexId>((i + 4) % 9);
    interaction.t = static_cast<Timestamp>(i + 1);
    interaction.quantity = 1.0;
    disordered.push_back(interaction);
  }
  std::swap(disordered[50], disordered[150]);
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming},
      DatasetStats{9, 200});
  ASSERT_TRUE(spec.ok());
  ParallelParams parallel;
  parallel.num_threads = 3;
  parallel.stream_chunk = 16;
  ShardedIngestEngine engine(DatasetStats{9, 200}, *std::move(spec),
                             parallel);
  EXPECT_TRUE(engine.ResolvedShards() > 1);
  VectorStream stream(9, disordered);
  auto result = engine.IngestStream(stream);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedIngestEngineTest, EmptyStreamYieldsEmptyTracker) {
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming},
      DatasetStats{12, 0});
  ASSERT_TRUE(spec.ok());
  ParallelParams parallel;
  parallel.num_threads = 4;
  ShardedIngestEngine engine(DatasetStats{12, 0}, *std::move(spec),
                             parallel);
  VectorStream stream(12, {});
  auto result = engine.IngestStream(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->tracker, nullptr);
  EXPECT_EQ(result->tracker->total_generated(), 0.0);
  EXPECT_EQ(result->stats.interactions, 0u);
  for (VertexId v = 0; v < 12; ++v) {
    EXPECT_TRUE(result->tracker->Provenance(v).entries.empty());
  }
}

TEST(ShardedIngestEngineTest, ShardInfoAccountsEveryVertexOnce) {
  const Tin tin = GeneratedTin();
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok());
  ParallelParams parallel;
  parallel.num_threads = 4;
  parallel.num_shards = 4;
  ShardedIngestEngine engine(tin.Stats(), *std::move(spec), parallel);
  MaterializedStream stream(tin);
  auto result = engine.IngestStream(stream);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->used_parallel_path);
  ASSERT_EQ(result->shards.size(), result->num_shards);
  size_t vertices = 0;
  for (const ShardInfo& shard : result->shards) vertices += shard.labels;
  EXPECT_EQ(vertices, tin.num_vertices());
}

TEST(ShardedIngestEngineTest, AssignVerticesIsContiguousAndComplete) {
  for (const auto& [vertices, shards] :
       {std::pair<size_t, size_t>{10, 3}, {7, 7}, {100, 4}, {5, 1}}) {
    const auto owner = ShardedIngestEngine::AssignVertices(vertices, shards);
    ASSERT_EQ(owner.size(), vertices);
    std::vector<size_t> counts(shards, 0);
    for (size_t v = 0; v < vertices; ++v) {
      ASSERT_LT(owner[v], shards);
      ++counts[owner[v]];
      // Contiguous ranges: the owner id never decreases.
      if (v > 0) {
        EXPECT_GE(owner[v], owner[v - 1]);
      }
    }
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_GT(counts[s], 0u) << vertices << "/" << shards << " shard " << s;
    }
  }
}

// ---------------------------------------------------------------------
// (e) Work-stealing scheduler unit tests.

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{7}}) {
    for (const size_t count :
         {size_t{0}, size_t{1}, size_t{3}, size_t{64}, size_t{1000}}) {
      WorkStealingScheduler scheduler(threads);
      EXPECT_EQ(scheduler.num_threads(), threads);
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h.store(0);
      scheduler.ParallelFor(count, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "threads=" << threads << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(SchedulerTest, TasksStatAccumulatesAcrossCalls) {
  WorkStealingScheduler scheduler(2);
  scheduler.ParallelFor(10, [](size_t) {});
  scheduler.ParallelFor(5, [](size_t) {});
  EXPECT_EQ(scheduler.stats().tasks, 15u);
}

TEST(SchedulerTest, SingleThreadInlinePathNeverSteals) {
  WorkStealingScheduler scheduler(1);
  std::atomic<size_t> sum{0};
  scheduler.ParallelFor(100, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
  EXPECT_EQ(scheduler.stats().tasks, 100u);
  EXPECT_EQ(scheduler.stats().steals, 0u);
}

TEST(SchedulerTest, SkewedBodiesStillCoverEverything) {
  // A few indices are much slower than the rest; with more than one
  // worker the fast workers drain their deques and steal. Coverage must
  // hold regardless of how the steal races resolve.
  WorkStealingScheduler scheduler(4);
  const size_t count = 200;
  std::vector<std::atomic<int>> hits(count);
  for (auto& h : hits) h.store(0);
  scheduler.ParallelFor(count, [&](size_t i) {
    if (i < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
  }
  EXPECT_EQ(scheduler.stats().tasks, count);
}

TEST(SchedulerTest, HardwareThreadsIsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(SchedulerTest, ResidentPoolRunsInterlockedTasks) {
  // Two tasks that strictly alternate through atomics: only dedicated
  // threads (not a shared pool) can run these to completion.
  std::atomic<int> turn{0};
  std::atomic<int> handoffs{0};
  auto task = [&](int me) {
    for (int round = 0; round < 50; ++round) {
      while (turn.load(std::memory_order_acquire) != me) {
        std::this_thread::yield();
      }
      handoffs.fetch_add(1, std::memory_order_relaxed);
      turn.store(1 - me, std::memory_order_release);
    }
  };
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&] { task(0); });
  tasks.emplace_back([&] { task(1); });
  ResidentPool pool(std::move(tasks));
  pool.Join();
  EXPECT_EQ(handoffs.load(), 100);
}

}  // namespace
}  // namespace tinprov
