// Policy-tracker semantics: the conservation-of-flow invariant on every
// policy, the ordering that distinguishes LIFO / FIFO / LRB / MRB, and
// sparse-vs-dense proportional agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "datagen/generator.h"
#include "policies/generation_order.h"
#include "policies/no_provenance.h"
#include "policies/proportional_dense.h"
#include "policies/proportional_sparse.h"
#include "policies/receipt_order.h"
#include "policies/tracker.h"

namespace tinprov {
namespace {

constexpr double kTolerance = 1e-9;

// A small TIN exercising deficit generation, partial consumption,
// re-sends, and a self-loop.
Tin HandTin() {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 5.0},  // 1 generates 5, sends to 0
      {2, 0, 2.0, 3.0},  // 2 generates 3, sends to 0
      {0, 3, 3.0, 4.0},  // 0 forwards a mix
      {3, 3, 4.0, 2.0},  // self-loop at 3
      {3, 4, 5.0, 6.0},  // exceeds 3's buffer: deficit generated at 3
      {4, 0, 6.0, 1.0},  // flows back
  };
  return Tin(5, std::move(log));
}

// Reference balances under any policy: selection changes who the
// quantity came from, never how much a vertex holds.
std::vector<double> ReferenceBalances(const Tin& tin) {
  NoProvenanceTracker baseline(tin.num_vertices());
  EXPECT_TRUE(baseline.ProcessAll(tin).ok());
  std::vector<double> balances(tin.num_vertices());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    balances[v] = baseline.BufferTotal(v);
  }
  return balances;
}

void CheckConservation(Tracker* tracker, const Tin& tin,
                       const std::vector<double>& reference,
                       bool has_breakdown) {
  double buffered = 0.0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    const Buffer buffer = tracker->Provenance(v);
    EXPECT_NEAR(buffer.Total(), tracker->BufferTotal(v), kTolerance);
    EXPECT_NEAR(buffer.Total(), reference[v], 1e-6)
        << "vertex " << v << " balance diverged from the no-prov baseline";
    if (has_breakdown) {
      // Provenance totals must equal the net received quantity.
      EXPECT_NEAR(buffer.EntrySum(), buffer.Total(), 1e-6)
          << "entry sum diverged at vertex " << v;
      for (const ProvPair& entry : buffer.entries) {
        EXPECT_GE(entry.quantity, 0.0);
        EXPECT_LT(entry.origin, tin.num_vertices());
      }
    }
    buffered += tracker->BufferTotal(v);
  }
  // Conservation of flow: nothing buffered that was not generated.
  EXPECT_NEAR(buffered, tracker->total_generated(), 1e-6);
}

TEST(ConservationTest, AllPoliciesOnHandTin) {
  const Tin tin = HandTin();
  const std::vector<double> reference = ReferenceBalances(tin);
  for (const PolicyKind kind : AllPolicies()) {
    auto tracker = CreateTracker(kind, tin.num_vertices());
    ASSERT_NE(tracker, nullptr) << PolicyName(kind);
    ASSERT_TRUE(tracker->ProcessAll(tin).ok()) << PolicyName(kind);
    CheckConservation(tracker.get(), tin, reference,
                      kind != PolicyKind::kNoProvenance);
  }
}

TEST(ConservationTest, AllPoliciesOnGeneratedTin) {
  GeneratorConfig config;
  config.num_vertices = 40;
  config.num_interactions = 1500;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 77;
  auto tin = Generate(config);
  ASSERT_TRUE(tin.ok());
  const std::vector<double> reference = ReferenceBalances(*tin);
  for (const PolicyKind kind : AllPolicies()) {
    auto tracker = CreateTracker(kind, tin->num_vertices());
    ASSERT_TRUE(tracker->ProcessAll(*tin).ok()) << PolicyName(kind);
    CheckConservation(tracker.get(), *tin, reference,
                      kind != PolicyKind::kNoProvenance);
    EXPECT_GT(tracker->MemoryUsage(), 0u);
    EXPECT_GT(tracker->total_generated(), 0.0);
  }
}

// Receipt-order semantics. Vertex 0 receives 5 units from origin 1,
// then 3 from origin 2, then forwards 4 to vertex 3.
TEST(ReceiptOrderTest, LifoSpendsNewestFirst) {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 5.0}, {2, 0, 2.0, 3.0}, {0, 3, 3.0, 4.0}};
  const Tin tin(4, std::move(log));
  LifoTracker tracker(4);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  // LIFO forwards all of origin 2's 3 units plus 1 of origin 1's.
  std::map<VertexId, double> at3;
  for (const ProvPair& e : tracker.Provenance(3).entries) {
    at3[e.origin] += e.quantity;
  }
  EXPECT_NEAR(at3[2], 3.0, kTolerance);
  EXPECT_NEAR(at3[1], 1.0, kTolerance);
  // Vertex 0 keeps 4 units, all from origin 1.
  const Buffer at0 = tracker.Provenance(0);
  ASSERT_EQ(at0.entries.size(), 1u);
  EXPECT_EQ(at0.entries[0].origin, 1u);
  EXPECT_NEAR(at0.entries[0].quantity, 4.0, kTolerance);
}

TEST(ReceiptOrderTest, FifoSpendsOldestFirst) {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 5.0}, {2, 0, 2.0, 3.0}, {0, 3, 3.0, 4.0}};
  const Tin tin(4, std::move(log));
  FifoTracker tracker(4);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  // FIFO forwards 4 of origin 1's units; origin 2's stay at 0.
  const Buffer at3 = tracker.Provenance(3);
  ASSERT_EQ(at3.entries.size(), 1u);
  EXPECT_EQ(at3.entries[0].origin, 1u);
  EXPECT_NEAR(at3.entries[0].quantity, 4.0, kTolerance);
  std::map<VertexId, double> at0;
  for (const ProvPair& e : tracker.Provenance(0).entries) {
    at0[e.origin] += e.quantity;
  }
  EXPECT_NEAR(at0[1], 1.0, kTolerance);
  EXPECT_NEAR(at0[2], 3.0, kTolerance);
}

TEST(ReceiptOrderTest, FifoSelfLoopRotatesBuffer) {
  // 0 holds [origin1: 2, origin2: 3]; a self-loop of 2 moves origin 1's
  // quantity from the front to the back.
  std::vector<Interaction> log = {
      {1, 0, 1.0, 2.0}, {2, 0, 2.0, 3.0}, {0, 0, 3.0, 2.0}};
  const Tin tin(3, std::move(log));
  FifoTracker tracker(3);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  const Buffer buffer = tracker.Provenance(0);
  ASSERT_EQ(buffer.entries.size(), 2u);
  EXPECT_EQ(buffer.entries[0].origin, 2u);  // now oldest
  EXPECT_EQ(buffer.entries[1].origin, 1u);  // rotated to newest
  EXPECT_NEAR(buffer.Total(), 5.0, kTolerance);
}

// Generation-order semantics. Receipt order at vertex 0 is origin 2
// (born t=2) then origin 1 (born t=1) — inverted relative to births —
// so LRB and FIFO disagree on what 0 forwards.
TEST(GenerationOrderTest, LrbSpendsOldestBornFirst) {
  std::vector<Interaction> log = {
      {1, 4, 1.0, 5.0},   // origin 1, born t=1, parked at 4
      {2, 0, 2.0, 3.0},   // origin 2, born t=2, straight to 0
      {4, 0, 3.0, 5.0},   // origin 1's quantity arrives at 0 last
      {0, 3, 4.0, 4.0}};  // 0 forwards 4
  const Tin tin(5, std::move(log));
  LrbTracker tracker(5);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  // Oldest birth (origin 1, t=1) is spent first despite arriving last.
  const Buffer at3 = tracker.Provenance(3);
  ASSERT_EQ(at3.entries.size(), 1u);
  EXPECT_EQ(at3.entries[0].origin, 1u);
  EXPECT_NEAR(at3.entries[0].quantity, 4.0, kTolerance);
  std::map<VertexId, double> at0;
  for (const ProvPair& e : tracker.Provenance(0).entries) {
    at0[e.origin] += e.quantity;
  }
  EXPECT_NEAR(at0[1], 1.0, kTolerance);
  EXPECT_NEAR(at0[2], 3.0, kTolerance);
}

TEST(GenerationOrderTest, MrbSpendsNewestBornFirst) {
  std::vector<Interaction> log = {
      {1, 4, 1.0, 5.0}, {2, 0, 2.0, 3.0}, {4, 0, 3.0, 5.0}, {0, 3, 4.0, 4.0}};
  const Tin tin(5, std::move(log));
  MrbTracker tracker(5);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  // Newest birth (origin 2, t=2) goes first, topped up from origin 1.
  std::map<VertexId, double> at3;
  for (const ProvPair& e : tracker.Provenance(3).entries) {
    at3[e.origin] += e.quantity;
  }
  EXPECT_NEAR(at3[2], 3.0, kTolerance);
  EXPECT_NEAR(at3[1], 1.0, kTolerance);
  const Buffer at0 = tracker.Provenance(0);
  ASSERT_EQ(at0.entries.size(), 1u);
  EXPECT_EQ(at0.entries[0].origin, 1u);
  EXPECT_NEAR(at0.entries[0].quantity, 4.0, kTolerance);
}

// Proportional semantics: a transfer moves the same fraction of every
// origin's share.
TEST(ProportionalTest, SparseSplitsProRata) {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 6.0}, {2, 0, 2.0, 2.0}, {0, 3, 3.0, 4.0}};
  const Tin tin(4, std::move(log));
  ProportionalSparseTracker tracker(4);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  // 0 held {1: 6, 2: 2}; sending 4 of 8 moves exactly half of each.
  const Buffer at3 = tracker.Provenance(3);
  ASSERT_EQ(at3.entries.size(), 2u);
  EXPECT_EQ(at3.entries[0].origin, 1u);
  EXPECT_NEAR(at3.entries[0].quantity, 3.0, kTolerance);
  EXPECT_EQ(at3.entries[1].origin, 2u);
  EXPECT_NEAR(at3.entries[1].quantity, 1.0, kTolerance);
  const Buffer at0 = tracker.Provenance(0);
  ASSERT_EQ(at0.entries.size(), 2u);
  EXPECT_NEAR(at0.entries[0].quantity, 3.0, kTolerance);
  EXPECT_NEAR(at0.entries[1].quantity, 1.0, kTolerance);
}

TEST(ProportionalTest, WholeBufferMoveClearsSource) {
  std::vector<Interaction> log = {{1, 0, 1.0, 5.0}, {0, 2, 2.0, 5.0}};
  const Tin tin(3, std::move(log));
  ProportionalSparseTracker tracker(3);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_TRUE(tracker.Provenance(0).entries.empty());
  const Buffer at2 = tracker.Provenance(2);
  ASSERT_EQ(at2.entries.size(), 1u);
  EXPECT_EQ(at2.entries[0].origin, 1u);
  EXPECT_NEAR(at2.entries[0].quantity, 5.0, kTolerance);
  // The move is a swap into the empty destination; the global tuple
  // count must not drift.
  EXPECT_EQ(tracker.num_entries(), 1u);
}

TEST(ProportionalTest, WholeBufferMoveMergesIntoNonEmpty) {
  // Vertex 2 already holds origin-3 quantity when 0 moves everything in.
  std::vector<Interaction> log = {
      {3, 2, 1.0, 2.0}, {1, 0, 2.0, 5.0}, {0, 2, 3.0, 5.0}};
  const Tin tin(4, std::move(log));
  ProportionalSparseTracker tracker(4);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_TRUE(tracker.Provenance(0).entries.empty());
  const Buffer at2 = tracker.Provenance(2);
  ASSERT_EQ(at2.entries.size(), 2u);
  EXPECT_EQ(at2.entries[0].origin, 1u);
  EXPECT_NEAR(at2.entries[0].quantity, 5.0, kTolerance);
  EXPECT_EQ(at2.entries[1].origin, 3u);
  EXPECT_NEAR(at2.entries[1].quantity, 2.0, kTolerance);
  EXPECT_EQ(tracker.num_entries(), 2u);
}

TEST(ProportionalTest, MergeScaledMergesSortedLists) {
  SparseVector dst = {{1, 1.0}, {4, 2.0}, {9, 3.0}};
  const SparseVector src = {{0, 10.0}, {4, 10.0}, {12, 10.0}};
  MergeScaled(&dst, src, 0.5);
  ASSERT_EQ(dst.size(), 5u);
  EXPECT_EQ(dst[0].origin, 0u);
  EXPECT_DOUBLE_EQ(dst[0].quantity, 5.0);
  EXPECT_EQ(dst[1].origin, 1u);
  EXPECT_DOUBLE_EQ(dst[1].quantity, 1.0);
  EXPECT_EQ(dst[2].origin, 4u);
  EXPECT_DOUBLE_EQ(dst[2].quantity, 7.0);
  EXPECT_EQ(dst[3].origin, 9u);
  EXPECT_DOUBLE_EQ(dst[3].quantity, 3.0);
  EXPECT_EQ(dst[4].origin, 12u);
  EXPECT_DOUBLE_EQ(dst[4].quantity, 5.0);
}

TEST(ProportionalTest, MergeScaledIntoEmpty) {
  SparseVector dst;
  MergeScaled(&dst, {{2, 4.0}}, 0.25);
  ASSERT_EQ(dst.size(), 1u);
  EXPECT_DOUBLE_EQ(dst[0].quantity, 1.0);
  MergeScaled(&dst, {}, 0.5);  // empty src is a no-op
  EXPECT_EQ(dst.size(), 1u);
}

TEST(ProportionalTest, SparseAndDenseAgree) {
  GeneratorConfig config;
  config.num_vertices = 48;
  config.num_interactions = 2000;
  config.src_skew = 1.0;
  config.dst_skew = 1.2;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 0.5;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.03;
  config.seed = 123;
  auto tin = Generate(config);
  ASSERT_TRUE(tin.ok());
  ProportionalSparseTracker sparse(config.num_vertices);
  ProportionalDenseTracker dense(config.num_vertices);
  ASSERT_TRUE(sparse.ProcessAll(*tin).ok());
  ASSERT_TRUE(dense.ProcessAll(*tin).ok());
  for (VertexId v = 0; v < config.num_vertices; ++v) {
    EXPECT_NEAR(sparse.BufferTotal(v), dense.BufferTotal(v), 1e-6);
    std::map<VertexId, double> sparse_map;
    for (const ProvPair& e : sparse.Provenance(v).entries) {
      sparse_map[e.origin] += e.quantity;
    }
    std::map<VertexId, double> dense_map;
    for (const ProvPair& e : dense.Provenance(v).entries) {
      dense_map[e.origin] += e.quantity;
    }
    for (const auto& [origin, quantity] : sparse_map) {
      EXPECT_NEAR(quantity, dense_map[origin], 1e-6)
          << "vertex " << v << " origin " << origin;
    }
    for (const auto& [origin, quantity] : dense_map) {
      EXPECT_NEAR(quantity, sparse_map[origin], 1e-6)
          << "vertex " << v << " origin " << origin;
    }
  }
  EXPECT_NEAR(sparse.total_generated(), dense.total_generated(), 1e-6);
}

TEST(TrackerTest, DeficitGeneratedOnEmptySend) {
  std::vector<Interaction> log = {{0, 1, 1.0, 7.5}};
  const Tin tin(2, std::move(log));
  for (const PolicyKind kind : AllPolicies()) {
    auto tracker = CreateTracker(kind, 2);
    ASSERT_TRUE(tracker->ProcessAll(tin).ok()) << PolicyName(kind);
    EXPECT_NEAR(tracker->total_generated(), 7.5, kTolerance);
    EXPECT_NEAR(tracker->BufferTotal(1), 7.5, kTolerance);
    EXPECT_NEAR(tracker->BufferTotal(0), 0.0, kTolerance);
    if (kind != PolicyKind::kNoProvenance) {
      const Buffer buffer = tracker->Provenance(1);
      ASSERT_EQ(buffer.entries.size(), 1u) << PolicyName(kind);
      EXPECT_EQ(buffer.entries[0].origin, 0u) << PolicyName(kind);
    }
  }
}

TEST(TrackerTest, RejectsInvalidInteractions) {
  for (const PolicyKind kind : AllPolicies()) {
    auto tracker = CreateTracker(kind, 3);
    EXPECT_FALSE(tracker->Process({5, 0, 1.0, 1.0}).ok()) << PolicyName(kind);
    EXPECT_FALSE(tracker->Process({0, 9, 1.0, 1.0}).ok()) << PolicyName(kind);
    EXPECT_FALSE(tracker->Process({0, 1, 1.0, -2.0}).ok()) << PolicyName(kind);
    EXPECT_FALSE(
        tracker->Process({0, 1, 1.0, std::nan("")}).ok())
        << PolicyName(kind);
  }
}

TEST(TrackerTest, PolicyNamesAreUnique) {
  const std::vector<PolicyKind> policies = AllPolicies();
  EXPECT_EQ(policies.size(), 7u);
  for (size_t i = 0; i < policies.size(); ++i) {
    for (size_t j = i + 1; j < policies.size(); ++j) {
      EXPECT_NE(PolicyName(policies[i]), PolicyName(policies[j]));
    }
  }
}

}  // namespace
}  // namespace tinprov
