// Scalable-layer semantics: conservation of flow on the tracked subset
// (selective), group-assignment partitioning invariants (grouped),
// window-reset counting (windowed), shrink-stat bookkeeping (budget),
// and the name-based factory shared by all of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analytics/experiment.h"
#include "datagen/generator.h"
#include "policies/no_provenance.h"
#include "policies/proportional_sparse.h"
#include "scalable/budget.h"
#include "scalable/grouped.h"
#include "scalable/selective.h"
#include "scalable/windowed.h"
#include "util/strings.h"

namespace tinprov {
namespace {

constexpr double kTolerance = 1e-9;

// The same hand-built TIN as test_policies.cc: deficit generation,
// partial consumption, re-sends, and a self-loop over 6 interactions.
Tin HandTin() {
  std::vector<Interaction> log = {
      {1, 0, 1.0, 5.0},  // 1 generates 5, sends to 0
      {2, 0, 2.0, 3.0},  // 2 generates 3, sends to 0
      {0, 3, 3.0, 4.0},  // 0 forwards a mix
      {3, 3, 4.0, 2.0},  // self-loop at 3
      {3, 4, 5.0, 6.0},  // exceeds 3's buffer: deficit generated at 3
      {4, 0, 6.0, 1.0},  // flows back
  };
  return Tin(5, std::move(log));
}

Tin GeneratedTin() {
  GeneratorConfig config;
  config.num_vertices = 60;
  config.num_interactions = 3000;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 41;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

std::vector<double> ReferenceBalances(const Tin& tin) {
  NoProvenanceTracker baseline(tin.num_vertices());
  EXPECT_TRUE(baseline.ProcessAll(tin).ok());
  std::vector<double> balances(tin.num_vertices());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    balances[v] = baseline.BufferTotal(v);
  }
  return balances;
}

// Aggregates a tracker's breakdown at `v` by origin (or group label).
std::map<VertexId, double> BreakdownAt(const Tracker& tracker, VertexId v) {
  std::map<VertexId, double> breakdown;
  for (const ProvPair& entry : tracker.Provenance(v).entries) {
    breakdown[entry.origin] += entry.quantity;
  }
  return breakdown;
}

// ---------------------------------------------------------------------
// Name-based factory: regression for proper Status errors, and the
// shared conservation-of-flow suite over every constructible tracker.

TEST(TrackerFactoryTest, RejectsUnknownNamesWithStatus) {
  const Tin tin = HandTin();
  const ScalableParams params;
  auto bad = TrackerRegistry::Global().Create({"not-a-policy", params}, tin);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The error names the accepted spellings so callers can self-correct.
  EXPECT_NE(bad.status().message().find("Windowed"), std::string::npos);

  MeasureOptions options;
  options.tin = &tin;
  auto measured = MeasureTracker({"not-a-policy", params}, options);
  ASSERT_FALSE(measured.ok());
  EXPECT_EQ(measured.status().code(), StatusCode::kInvalidArgument);

  EXPECT_FALSE(PolicyKindFromName("").ok());
  EXPECT_FALSE(PolicyKindFromName("LIFO2").ok());
}

TEST(TrackerFactoryTest, AcceptsEveryAdvertisedNameCaseInsensitively) {
  const Tin tin = HandTin();
  const ScalableParams params;
  const TrackerRegistry& registry = TrackerRegistry::Global();
  for (const std::string& name : registry.Names()) {
    auto tracker = registry.Create({name, params}, tin);
    ASSERT_TRUE(tracker.ok()) << name;
    EXPECT_NE(tracker->get(), nullptr) << name;
    auto lower = registry.Create({AsciiLower(name), params}, tin);
    EXPECT_TRUE(lower.ok()) << name;
  }
}

TEST(TrackerFactoryTest, DenseFeasibilityGateAppliesByName) {
  const Tin tin = HandTin();
  const ScalableParams params;
  // A 1-byte limit makes any |V|^2 dense footprint infeasible.
  MeasureOptions gated_options;
  gated_options.tin = &tin;
  gated_options.dense_memory_limit = 1;
  auto gated = MeasureTracker({"Prop-dense", params}, gated_options);
  ASSERT_TRUE(gated.ok());
  EXPECT_FALSE(gated->feasible);
  // A zero limit disables the gate and the run proceeds.
  MeasureOptions ungated_options;
  ungated_options.tin = &tin;
  auto ungated = MeasureTracker({"Prop-dense", params}, ungated_options);
  ASSERT_TRUE(ungated.ok());
  EXPECT_TRUE(ungated->feasible);
}

TEST(TrackerFactoryTest, PolicyKindNamesRoundTrip) {
  for (const PolicyKind kind : AllPolicies()) {
    auto parsed = PolicyKindFromName(PolicyName(kind));
    ASSERT_TRUE(parsed.ok()) << PolicyName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

class FactoryConservationTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FactoryConservationTest, ConservesFlow) {
  const Tin tin = GeneratedTin();
  const std::vector<double> reference = ReferenceBalances(tin);
  ScalableParams params;
  params.window = 500;
  params.num_tracked = 10;
  params.num_groups = 7;
  params.budget.capacity = 8;
  params.budget.keep_fraction = 0.5;
  auto tracker = TrackerRegistry::Global().Create({GetParam(), params}, tin);
  ASSERT_TRUE(tracker.ok()) << tracker.status().ToString();
  ASSERT_TRUE((*tracker)->ProcessAll(tin).ok());
  double buffered = 0.0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    const Buffer buffer = (*tracker)->Provenance(v);
    EXPECT_NEAR(buffer.Total(), (*tracker)->BufferTotal(v), kTolerance);
    EXPECT_NEAR(buffer.Total(), reference[v], 1e-6)
        << "vertex " << v << " balance diverged from the no-prov baseline";
    // Scalable trackers may under-attribute (alpha residue) but never
    // over-attribute.
    EXPECT_LE(buffer.EntrySum(), buffer.Total() + 1e-6)
        << "vertex " << v << " attributes more than it holds";
    for (const ProvPair& entry : buffer.entries) {
      EXPECT_GE(entry.quantity, 0.0);
    }
    buffered += (*tracker)->BufferTotal(v);
  }
  EXPECT_NEAR(buffered, (*tracker)->total_generated(), 1e-6);
  EXPECT_GT((*tracker)->MemoryUsage(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFactoryNames, FactoryConservationTest,
    ::testing::ValuesIn(TrackerRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      name.erase(std::remove_if(name.begin(), name.end(),
                                [](char c) { return !std::isalnum(
                                    static_cast<unsigned char>(c)); }),
                 name.end());
      return name;
    });

// ---------------------------------------------------------------------
// Selective tracking.

TEST(SelectiveTest, AttributesOnlyTrackedOrigins) {
  const Tin tin = HandTin();
  const std::vector<double> reference = ReferenceBalances(tin);
  SelectiveTracker tracker(tin.num_vertices(), {1, 3});
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_EQ(tracker.num_tracked(), 2u);
  double attributed = 0.0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    EXPECT_NEAR(tracker.BufferTotal(v), reference[v], kTolerance);
    for (const ProvPair& entry : tracker.Provenance(v).entries) {
      EXPECT_TRUE(entry.origin == 1 || entry.origin == 3)
          << "untracked origin " << entry.origin << " at vertex " << v;
      attributed += entry.quantity;
    }
  }
  // Conservation of flow on the tracked subset: everything generated at
  // tracked vertices is attributed somewhere, and nothing else is.
  EXPECT_NEAR(attributed, tracker.tracked_generated(), kTolerance);
  // Origins 1 and 3 generate 5 and 2 (the t=5 send exceeds 3's buffer
  // of 4 by 2); origin 2's 3 units stay unattributed.
  EXPECT_NEAR(tracker.tracked_generated(), 7.0, kTolerance);
  EXPECT_NEAR(tracker.total_generated(), 10.0, kTolerance);
}

TEST(SelectiveTest, TrackedSubsetConservationOnGeneratedTin) {
  const Tin tin = GeneratedTin();
  const std::vector<VertexId> tracked = TopGeneratingVertices(tin, 5);
  ASSERT_EQ(tracked.size(), 5u);
  SelectiveTracker tracker(tin.num_vertices(), tracked);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  double attributed = 0.0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    for (const ProvPair& entry : tracker.Provenance(v).entries) {
      EXPECT_TRUE(tracker.IsTracked(entry.origin));
      attributed += entry.quantity;
    }
  }
  EXPECT_NEAR(attributed, tracker.tracked_generated(), 1e-6);
  EXPECT_GT(tracker.tracked_generated(), 0.0);
  EXPECT_LT(tracker.tracked_generated(),
            tracker.total_generated() + kTolerance);
}

TEST(SelectiveTest, IgnoresDuplicateAndOutOfRangeIds) {
  SelectiveTracker tracker(4, {1, 1, 99, kInvalidVertex});
  EXPECT_EQ(tracker.num_tracked(), 1u);
  EXPECT_TRUE(tracker.IsTracked(1));
  EXPECT_FALSE(tracker.IsTracked(2));
  EXPECT_FALSE(tracker.IsTracked(99));
}

TEST(SelectiveTest, TopGeneratingVerticesRanksByGeneratedQuantity) {
  // 0 generates 10, 2 generates 4; 1 only forwards what it received.
  std::vector<Interaction> log = {
      {0, 1, 1.0, 10.0}, {2, 3, 2.0, 4.0}, {1, 4, 3.0, 5.0}};
  const Tin tin(5, std::move(log));
  EXPECT_EQ(TopGeneratingVertices(tin, 1), (std::vector<VertexId>{0}));
  EXPECT_EQ(TopGeneratingVertices(tin, 2), (std::vector<VertexId>{0, 2}));
  // Non-generators are never padded in.
  EXPECT_EQ(TopGeneratingVertices(tin, 10), (std::vector<VertexId>{0, 2}));
  EXPECT_TRUE(TopGeneratingVertices(tin, 0).empty());
}

// ---------------------------------------------------------------------
// Grouped tracking: assignment partitioning invariants and semantics.

TEST(GroupAssignmentTest, RoundRobinBalancesSizes) {
  const std::vector<GroupId> groups = RoundRobinGroups(10, 3);
  ASSERT_EQ(groups.size(), 10u);
  std::vector<size_t> sizes(3, 0);
  for (size_t v = 0; v < groups.size(); ++v) {
    ASSERT_LT(groups[v], 3u);
    EXPECT_EQ(groups[v], v % 3);
    ++sizes[groups[v]];
  }
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(),
                                                    sizes.end());
  EXPECT_LE(*max_it - *min_it, 1u);
}

TEST(GroupAssignmentTest, ContiguousGroupsAreIntervals) {
  const std::vector<GroupId> groups = ContiguousGroups(100, 7);
  ASSERT_EQ(groups.size(), 100u);
  EXPECT_EQ(groups.front(), 0u);
  EXPECT_EQ(groups.back(), 6u);
  for (size_t v = 1; v < groups.size(); ++v) {
    ASSERT_LT(groups[v], 7u);
    EXPECT_GE(groups[v], groups[v - 1]);  // non-decreasing => intervals
  }
  std::vector<size_t> sizes(7, 0);
  for (const GroupId g : groups) ++sizes[g];
  const auto [min_it, max_it] = std::minmax_element(sizes.begin(),
                                                    sizes.end());
  EXPECT_LE(*max_it - *min_it, 1u);
}

TEST(GroupAssignmentTest, HashGroupsDeterministicAndInRange) {
  const std::vector<GroupId> groups = HashGroups(1000, 7);
  ASSERT_EQ(groups.size(), 1000u);
  std::set<GroupId> used;
  for (const GroupId g : groups) {
    ASSERT_LT(g, 7u);
    used.insert(g);
  }
  // A mixing hash spreads 1000 ids over 7 groups; determinism makes
  // this assertion stable.
  EXPECT_EQ(used.size(), 7u);
  EXPECT_EQ(groups, HashGroups(1000, 7));
}

TEST(GroupAssignmentTest, ActivityGroupsBalanceLoadWithinHeaviestVertex) {
  const Tin tin = GeneratedTin();
  const size_t k = 4;
  const std::vector<GroupId> groups = ActivityGroups(tin, k);
  ASSERT_EQ(groups.size(), tin.num_vertices());
  std::vector<uint64_t> activity(tin.num_vertices(), 0);
  for (const Interaction& interaction : tin.interactions()) {
    ++activity[interaction.src];
    ++activity[interaction.dst];
  }
  std::vector<uint64_t> load(k, 0);
  uint64_t heaviest = 0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    ASSERT_LT(groups[v], k);
    load[groups[v]] += activity[v];
    heaviest = std::max(heaviest, activity[v]);
  }
  const auto [min_it, max_it] = std::minmax_element(load.begin(),
                                                    load.end());
  // The LPT guarantee: no group exceeds the lightest by more than one
  // vertex's activity.
  EXPECT_LE(*max_it - *min_it, heaviest);
  EXPECT_GT(*min_it, 0u);
}

TEST(GroupAssignmentTest, ZeroGroupsClampToOne) {
  for (const std::vector<GroupId>& groups :
       {RoundRobinGroups(5, 0), HashGroups(5, 0), ContiguousGroups(5, 0)}) {
    ASSERT_EQ(groups.size(), 5u);
    for (const GroupId g : groups) EXPECT_EQ(g, 0u);
  }
}

TEST(GroupedTest, BreakdownIsSparseBreakdownFoldedByGroup) {
  const Tin tin = GeneratedTin();
  const size_t k = 7;
  const std::vector<GroupId> groups =
      RoundRobinGroups(tin.num_vertices(), k);
  GroupedTracker grouped(tin.num_vertices(), groups, k);
  ProportionalSparseTracker exact(tin.num_vertices());
  ASSERT_TRUE(grouped.ProcessAll(tin).ok());
  ASSERT_TRUE(exact.ProcessAll(tin).ok());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    EXPECT_NEAR(grouped.BufferTotal(v), exact.BufferTotal(v), 1e-6);
    std::map<VertexId, double> expected;
    for (const ProvPair& entry : exact.Provenance(v).entries) {
      expected[groups[entry.origin]] += entry.quantity;
    }
    const std::map<VertexId, double> actual = BreakdownAt(grouped, v);
    ASSERT_EQ(actual.size(), expected.size()) << "vertex " << v;
    for (const auto& [group, quantity] : expected) {
      const auto it = actual.find(group);
      ASSERT_NE(it, actual.end()) << "vertex " << v << " group " << group;
      EXPECT_NEAR(it->second, quantity, 1e-6)
          << "vertex " << v << " group " << group;
    }
  }
  // Grouping never drops attribution, it only coarsens it.
  double attributed = 0.0;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    attributed += grouped.Provenance(v).EntrySum();
  }
  EXPECT_NEAR(attributed, grouped.total_generated(), 1e-6);
}

// ---------------------------------------------------------------------
// Windowed tracking.

TEST(WindowedTest, CountsResetsAndPreservesBalances) {
  const Tin tin = HandTin();  // 6 interactions
  const std::vector<double> reference = ReferenceBalances(tin);
  WindowedTracker tracker(tin.num_vertices(), 2);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_EQ(tracker.reset_count(), 3u);  // resets after 2, 4, 6
  EXPECT_EQ(tracker.num_entries(), 0u);  // the 6th interaction reset
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    EXPECT_NEAR(tracker.BufferTotal(v), reference[v], kTolerance);
    EXPECT_TRUE(tracker.Provenance(v).entries.empty());
  }
}

TEST(WindowedTest, LargeWindowMatchesExactProportional) {
  const Tin tin = GeneratedTin();
  WindowedTracker windowed(tin.num_vertices(), tin.num_interactions() + 1);
  ProportionalSparseTracker exact(tin.num_vertices());
  ASSERT_TRUE(windowed.ProcessAll(tin).ok());
  ASSERT_TRUE(exact.ProcessAll(tin).ok());
  EXPECT_EQ(windowed.reset_count(), 0u);
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    const std::map<VertexId, double> expected = BreakdownAt(exact, v);
    const std::map<VertexId, double> actual = BreakdownAt(windowed, v);
    ASSERT_EQ(actual.size(), expected.size()) << "vertex " << v;
    for (const auto& [origin, quantity] : expected) {
      EXPECT_NEAR(actual.at(origin), quantity, 1e-6)
          << "vertex " << v << " origin " << origin;
    }
  }
}

TEST(WindowedTest, WindowOfOneAttributesNothingAcrossInteractions) {
  const Tin tin = GeneratedTin();
  const std::vector<double> reference = ReferenceBalances(tin);
  WindowedTracker tracker(tin.num_vertices(), 1);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_EQ(tracker.reset_count(), tin.num_interactions());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    EXPECT_NEAR(tracker.BufferTotal(v), reference[v], 1e-6);
    EXPECT_TRUE(tracker.Provenance(v).entries.empty());
  }
}

TEST(WindowedTest, ZeroWindowClampsToOne) {
  WindowedTracker tracker(3, 0);
  EXPECT_EQ(tracker.window(), 1u);
}

// ---------------------------------------------------------------------
// Budget tracking.

TEST(BudgetTest, CapsEveryListAtCapacity) {
  const Tin tin = GeneratedTin();
  BudgetConfig config;
  config.capacity = 4;
  config.keep_fraction = 0.5;
  BudgetTracker tracker(tin.num_vertices(), config);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_EQ(tracker.keep_count(), 2u);
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    const Buffer buffer = tracker.Provenance(v);
    EXPECT_LE(buffer.entries.size(), config.capacity) << "vertex " << v;
    EXPECT_LE(buffer.EntrySum(), buffer.Total() + 1e-6) << "vertex " << v;
  }
  EXPECT_GT(tracker.total_shrinks(), 0u);
  const ShrinkStats stats = tracker.ComputeShrinkStats();
  EXPECT_GE(stats.avg_shrinks, 1.0);
  EXPECT_GT(stats.pct_vertices, 0.0);
  EXPECT_LE(stats.pct_vertices, 100.0);
}

TEST(BudgetTest, LargeCapacityNeverShrinksAndMatchesExact) {
  const Tin tin = GeneratedTin();
  BudgetConfig config;
  config.capacity = 1 << 20;
  BudgetTracker budget(tin.num_vertices(), config);
  ProportionalSparseTracker exact(tin.num_vertices());
  ASSERT_TRUE(budget.ProcessAll(tin).ok());
  ASSERT_TRUE(exact.ProcessAll(tin).ok());
  EXPECT_EQ(budget.total_shrinks(), 0u);
  const ShrinkStats stats = budget.ComputeShrinkStats();
  EXPECT_EQ(stats.avg_shrinks, 0.0);
  EXPECT_EQ(stats.pct_vertices, 0.0);
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    const std::map<VertexId, double> expected = BreakdownAt(exact, v);
    const std::map<VertexId, double> actual = BreakdownAt(budget, v);
    ASSERT_EQ(actual.size(), expected.size()) << "vertex " << v;
    for (const auto& [origin, quantity] : expected) {
      EXPECT_NEAR(actual.at(origin), quantity, 1e-6)
          << "vertex " << v << " origin " << origin;
    }
  }
}

TEST(BudgetTest, ShrinkKeepsLargestSharesAndCountsOnce) {
  // Five distinct origins pour into vertex 0; capacity 3 with keep
  // fraction 2/3 shrinks once (at the 4th entry) down to the 2 largest.
  std::vector<Interaction> log = {{1, 0, 1.0, 1.0},
                                  {2, 0, 2.0, 9.0},
                                  {3, 0, 3.0, 2.0},
                                  {4, 0, 4.0, 8.0},
                                  {5, 0, 5.0, 3.0}};
  const Tin tin(6, std::move(log));
  BudgetConfig config;
  config.capacity = 3;
  config.keep_fraction = 2.0 / 3.0;
  BudgetTracker tracker(tin.num_vertices(), config);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  EXPECT_EQ(tracker.ShrinkCount(0), 1u);
  EXPECT_EQ(tracker.total_shrinks(), 1u);
  const std::map<VertexId, double> at0 = BreakdownAt(tracker, 0);
  // Survivors of the shrink: origins 2 (9 units) and 4 (8 units); the
  // post-shrink arrival from origin 5 fits within capacity.
  ASSERT_EQ(at0.size(), 3u);
  EXPECT_NEAR(at0.at(2), 9.0, kTolerance);
  EXPECT_NEAR(at0.at(4), 8.0, kTolerance);
  EXPECT_NEAR(at0.at(5), 3.0, kTolerance);
  // The dropped 1 + 2 units remain buffered as unattributed alpha.
  EXPECT_NEAR(tracker.BufferTotal(0), 23.0, kTolerance);
  EXPECT_NEAR(tracker.Provenance(0).EntrySum(), 20.0, kTolerance);
  const ShrinkStats stats = tracker.ComputeShrinkStats();
  EXPECT_NEAR(stats.avg_shrinks, 1.0, kTolerance);
  EXPECT_NEAR(stats.pct_vertices, 100.0 / 6.0, kTolerance);
}

TEST(BudgetTest, DegenerateConfigsAreNormalized) {
  const Tin tin = HandTin();
  BudgetConfig config;
  config.capacity = 0;    // treated as 1
  config.keep_fraction = 0.0;  // clamped: keep at least 1 tuple
  BudgetTracker tracker(tin.num_vertices(), config);
  EXPECT_EQ(tracker.config().capacity, 1u);
  EXPECT_EQ(tracker.keep_count(), 1u);
  ASSERT_TRUE(tracker.ProcessAll(tin).ok());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    EXPECT_LE(tracker.Provenance(v).entries.size(), 1u);
  }
}

}  // namespace
}  // namespace tinprov
