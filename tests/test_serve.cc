// Serve-layer semantics: snapshot-isolated queries over a live ingest
// must be indistinguishable from stop-the-world replay. Every answer
// carries the epoch (prefix, watermark) it was resolved against, and
// replaying exactly that prefix through an identically configured
// tracker must reproduce the answer bit-exactly — while the writer was
// publishing, under concurrent readers, across epoch-ring wraparound,
// and across the handoff boundary of a seeding TimeTravelIndex.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/registry.h"
#include "datagen/generator.h"
#include "lazy/replay.h"
#include "lazy/time_travel.h"
#include "obs/health.h"
#include "obs/slowlog.h"
#include "serve/request_queue.h"
#include "serve/service.h"
#include "stream/interaction_stream.h"

#if !defined(TINPROV_NO_THREADS)
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#endif

namespace tinprov {
namespace {

Tin GeneratedTin(size_t num_interactions = 3000) {
  GeneratorConfig config;
  config.num_vertices = 60;
  config.num_interactions = num_interactions;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 41;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

ScalableParams TestParams() {
  ScalableParams params;
  params.window = 500;
  params.num_tracked = 10;
  params.num_groups = 7;
  params.budget.capacity = 8;
  params.budget.keep_fraction = 0.5;
  return params;
}

TrackerSpec StreamingSpec(const std::string& name) {
  return {name, TestParams(), TrackerMode::kStreaming};
}

// Bit-exact: the serve layer promises the identical result, never an
// approximation, so no tolerance anywhere.
void ExpectSameBuffer(const Buffer& expected, const Buffer& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.total, actual.total) << context;
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << context;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_TRUE(expected.entries[i] == actual.entries[i])
        << context << " entry " << i << ": (" << expected.entries[i].origin
        << ", " << expected.entries[i].quantity << ") vs ("
        << actual.entries[i].origin << ", " << actual.entries[i].quantity
        << ")";
  }
}

// Stop-the-world reference: a fresh identically configured tracker
// replayed over exactly `prefix` interactions of the log.
std::unique_ptr<Tracker> ReferencePrefix(const TrackerSpec& spec,
                                         const Tin& tin, size_t prefix) {
  auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
  EXPECT_TRUE(factory.ok()) << factory.status().ToString();
  std::unique_ptr<Tracker> tracker = (*factory)();
  const auto& log = tin.interactions();
  for (size_t i = 0; i < prefix && i < log.size(); ++i) {
    EXPECT_TRUE(tracker->Process(log[i]).ok());
  }
  return tracker;
}

std::string SanitizeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  name.erase(std::remove_if(name.begin(), name.end(),
                            [](char c) {
                              return !std::isalnum(
                                  static_cast<unsigned char>(c));
                            }),
             name.end());
  return name;
}

// ---------------------------------------------------------------------
// (a) The drained service answers exactly like stop-the-world replay,
// for policies and scalable trackers alike.

class ServeFinalStateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeFinalStateTest, FinalEpochMatchesStopTheWorld) {
  const Tin tin = GeneratedTin();
  ServeOptions options;
  options.epoch_interval = 700;  // not a divisor of the stream length
  auto service =
      ProvenanceService::Create(StreamingSpec(GetParam()), tin.Stats(),
                                options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  const EpochInfo epoch = (*service)->LatestEpoch();
  EXPECT_EQ(epoch.prefix, tin.num_interactions());
  EXPECT_EQ(epoch.watermark, tin.interactions().back().t);
  EXPECT_EQ((*service)->ingest_stats().interactions, tin.num_interactions());

  const auto reference =
      ReferencePrefix(StreamingSpec(GetParam()), tin, tin.num_interactions());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    QueryResult result = (*service)->Provenance(v);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.epoch.prefix, tin.num_interactions());
    ExpectSameBuffer(reference->Provenance(v), result.buffer,
                     GetParam() + " vertex " + std::to_string(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Names, ServeFinalStateTest,
                         ::testing::Values("FIFO", "LRB", "Prop-sparse",
                                           "Windowed", "Budget", "Selective",
                                           "Grouped"),
                         SanitizeName);

// ---------------------------------------------------------------------
// (b) Concurrent readers against the live writer: every answer, taken
// at whatever epoch the reader happened to pin, must equal the
// stop-the-world replay of exactly that epoch's prefix.

#if !defined(TINPROV_NO_THREADS)
TEST(ServeConcurrencyTest, ConcurrentReadersBitIdenticalToStopTheWorld) {
  const Tin tin = GeneratedTin(20000);
  const TrackerSpec spec = StreamingSpec("Prop-sparse");
  ServeOptions options;
  options.epoch_interval = 256;  // frequent publishes under the readers
  options.ingest_batch = 128;
  auto service = ProvenanceService::Create(spec, tin.Stats(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  struct Sample {
    size_t prefix = 0;
    VertexId v = 0;
    Buffer buffer;
  };
  constexpr size_t kReaders = 3;
  std::vector<std::vector<Sample>> samples(kReaders);
  std::atomic<bool> failed{false};

  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      VertexId v = static_cast<VertexId>(r);
      while (!(*service)->IngestDone()) {
        QueryResult result = (*service)->Provenance(v);
        if (!result.status.ok()) {
          failed.store(true);
          return;
        }
        samples[r].push_back({result.epoch.prefix, v, result.buffer});
        v = (v + 7) % static_cast<VertexId>(tin.num_vertices());
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  ASSERT_TRUE((*service)->WaitIngest().ok());
  ASSERT_FALSE(failed.load());

  // One more read per vertex after the drain, so the final epoch is
  // always among the verified prefixes.
  std::vector<Sample> all;
  for (auto& per_reader : samples) {
    all.insert(all.end(), per_reader.begin(), per_reader.end());
  }
  for (VertexId v = 0; v < tin.num_vertices(); v += 11) {
    QueryResult result = (*service)->Provenance(v);
    ASSERT_TRUE(result.status.ok());
    all.push_back({result.epoch.prefix, v, result.buffer});
  }
  ASSERT_FALSE(all.empty());

  // Verify against one reference tracker advanced prefix-by-prefix in
  // sorted order — each sampled epoch replayed stop-the-world.
  std::sort(all.begin(), all.end(), [](const Sample& a, const Sample& b) {
    return a.prefix < b.prefix;
  });
  auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
  ASSERT_TRUE(factory.ok());
  std::unique_ptr<Tracker> reference = (*factory)();
  size_t applied = 0;
  const auto& log = tin.interactions();
  for (const Sample& sample : all) {
    ASSERT_LE(sample.prefix, log.size());
    while (applied < sample.prefix) {
      ASSERT_TRUE(reference->Process(log[applied]).ok());
      ++applied;
    }
    ExpectSameBuffer(reference->Provenance(sample.v), sample.buffer,
                     "prefix " + std::to_string(sample.prefix) + " vertex " +
                         std::to_string(sample.v));
  }
}

TEST(ServeConcurrencyTest, WorkerPoolResolvesSubmittedQueries) {
  const Tin tin = GeneratedTin();
  ServeOptions options;
  options.epoch_interval = 500;
  options.num_query_threads = 2;
  auto service = ProvenanceService::Create(StreamingSpec("Prop-sparse"),
                                           tin.Stats(), options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->num_query_threads(), 2u);
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());

  std::vector<std::future<QueryResult>> futures;
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    QueryRequest request;
    request.kind = QueryKind::kProvenance;
    request.v = v;
    futures.push_back((*service)->Submit(request));
  }
  for (auto& future : futures) {
    const QueryResult result = future.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  }
  ASSERT_TRUE((*service)->WaitIngest().ok());
}
#endif  // !TINPROV_NO_THREADS

// ---------------------------------------------------------------------
// (c) Epoch-ring wraparound: long past the ring's reach, historical
// queries still answer exactly via nearest snapshot + delta replay.

TEST(ServeHistoryTest, RingWraparoundStillAnswersExactly) {
  const Tin tin = GeneratedTin();
  const TrackerSpec spec = StreamingSpec("Prop-sparse");
  ServeOptions options;
  options.epoch_interval = 100;
  options.ring_size = 2;  // ~30 epochs published, only 2 retained live
  auto service = ProvenanceService::Create(spec, tin.Stats(), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());
  ASSERT_GT((*service)->LatestEpoch().seq, 10u);

  const auto& log = tin.interactions();
  // Probe times across the whole stream, almost all far behind the
  // 2-epoch ring, plus the boundaries.
  const std::vector<Timestamp> probes = {
      log.front().t - 1.0, log.front().t, log[150].t, log[1234].t,
      log[2500].t,         log.back().t,  log.back().t + 5.0};
  for (const Timestamp t : probes) {
    const size_t prefix = PrefixLength(tin, t);
    const auto reference = ReferencePrefix(spec, tin, prefix);
    for (const VertexId v : {VertexId{0}, VertexId{17}, VertexId{59}}) {
      QueryResult result = (*service)->Provenance(v, t);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ExpectSameBuffer(reference->Provenance(v), result.buffer,
                       "t=" + std::to_string(t) + " v=" + std::to_string(v));
    }
  }
}

TEST(ServeHistoryTest, RetentionOffBoundsHistoricalReach) {
  const Tin tin = GeneratedTin();
  ServeOptions options;
  options.epoch_interval = 100;
  options.ring_size = 2;
  options.retain_history = false;
  auto service = ProvenanceService::Create(StreamingSpec("Prop-sparse"),
                                           tin.Stats(), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  // At or past the final watermark the latest epoch answers.
  QueryResult fresh =
      (*service)->Provenance(0, tin.interactions().back().t);
  EXPECT_TRUE(fresh.status.ok());
  // Far behind the 2-epoch ring there is nothing to answer from.
  QueryResult stale =
      (*service)->Provenance(0, tin.interactions().front().t - 1.0);
  EXPECT_EQ(stale.status.code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------
// (d) Handoff from a finalized TimeTravelIndex: queries before, at, and
// after the handoff watermark all equal full-replay references, and the
// two regimes meet bit-exactly at the boundary.

TEST(ServeHistoryTest, HandoffBoundaryMatchesFullReplay) {
  const Tin tin = GeneratedTin();
  const TrackerSpec spec = StreamingSpec("Prop-sparse");
  auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
  ASSERT_TRUE(factory.ok());

  const size_t split = tin.num_interactions() / 2;
  const auto& log = tin.interactions();
  auto index =
      TimeTravelIndex::NewStreaming(tin.num_vertices(), *factory, 97);
  ASSERT_TRUE(index.ok());
  for (size_t i = 0; i < split; ++i) {
    ASSERT_TRUE((*index)->Observe(log[i]).ok());
  }
  ASSERT_TRUE((*index)->Finalize().ok());
  std::shared_ptr<const TimeTravelIndex> history = std::move(*index);
  const Timestamp handoff = history->watermark();

  ServeOptions options;
  options.epoch_interval = 300;
  auto service = ProvenanceService::CreateWithHistory(spec, tin.Stats(),
                                                      history, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  // Epoch 0 is the handoff state itself.
  EXPECT_EQ((*service)->LatestEpoch().watermark, handoff);

  std::vector<Interaction> tail(log.begin() + split, log.end());
  ASSERT_TRUE(
      (*service)
          ->Start(std::make_unique<VectorStream>(tin.num_vertices(),
                                                 std::move(tail)))
          .ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  const std::vector<Timestamp> probes = {
      log.front().t,       log[split / 2].t, handoff - 1e-9,
      handoff,             log[split + 10].t, log.back().t};
  for (const Timestamp t : probes) {
    const size_t prefix = PrefixLength(tin, t);
    const auto reference = ReferencePrefix(spec, tin, prefix);
    for (const VertexId v : {VertexId{3}, VertexId{21}, VertexId{42}}) {
      QueryResult result = (*service)->Provenance(v, t);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ExpectSameBuffer(reference->Provenance(v), result.buffer,
                       "t=" + std::to_string(t) + " v=" + std::to_string(v));
    }
  }

  // The live side's final state equals full replay of the whole log.
  const auto full = ReferencePrefix(spec, tin, tin.num_interactions());
  for (VertexId v = 0; v < tin.num_vertices(); v += 13) {
    QueryResult result = (*service)->Provenance(v);
    ASSERT_TRUE(result.status.ok());
    ExpectSameBuffer(full->Provenance(v), result.buffer,
                     "final vertex " + std::to_string(v));
  }
}

// ---------------------------------------------------------------------
// (d2) Catchup: the vertex-sharded bulk-load before Start() must leave
// the service indistinguishable from one that ingested everything
// through the live path.

TEST(ServeCatchupTest, CatchupPlusTailMatchesFullSequentialStart) {
  const Tin tin = GeneratedTin();
  const TrackerSpec spec = StreamingSpec("Prop-sparse");
  const auto& log = tin.interactions();
  const size_t split = tin.num_interactions() / 2;

  ServeOptions options;
  options.epoch_interval = 300;
  options.catchup.num_threads = 4;
  options.catchup.num_shards = 4;
  auto service = ProvenanceService::Create(spec, tin.Stats(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::vector<Interaction> head(log.begin(), log.begin() + split);
  ASSERT_TRUE((*service)
                  ->Catchup(std::make_unique<VectorStream>(
                      tin.num_vertices(), std::move(head)))
                  .ok());
  EXPECT_EQ((*service)->catchup_stats().interactions, split);
  // The catchup result is immediately queryable at its own epoch.
  EXPECT_EQ((*service)->LatestEpoch().prefix, split);
  EXPECT_EQ((*service)->LatestEpoch().watermark, log[split - 1].t);

  std::vector<Interaction> tail(log.begin() + split, log.end());
  ASSERT_TRUE((*service)
                  ->Start(std::make_unique<VectorStream>(tin.num_vertices(),
                                                         std::move(tail)))
                  .ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  // Epoch prefixes keep counting interactions-applied-since-empty, so
  // the final epoch covers the whole log, not just the tail.
  EXPECT_EQ((*service)->LatestEpoch().prefix, tin.num_interactions());
  EXPECT_EQ((*service)->LatestEpoch().watermark, log.back().t);
  EXPECT_EQ((*service)->ingest_stats().interactions,
            tin.num_interactions() - split);

  const auto reference = ReferencePrefix(spec, tin, tin.num_interactions());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    QueryResult result = (*service)->Provenance(v);
    ASSERT_TRUE(result.status.ok());
    ExpectSameBuffer(reference->Provenance(v), result.buffer,
                     "catchup vertex " + std::to_string(v));
  }
}

TEST(ServeCatchupTest, HistoricalQueriesSpanTheCatchupRange) {
  // retain_history keeps the catchup interactions in the retained log
  // (the engine's stream is teed through it), so Provenance(v, t) for a
  // t inside the caught-up range answers exactly as if the range had
  // been ingested live.
  const Tin tin = GeneratedTin();
  const TrackerSpec spec = StreamingSpec("Windowed");
  const auto& log = tin.interactions();
  const size_t split = (2 * tin.num_interactions()) / 3;

  ServeOptions options;
  options.epoch_interval = 100;
  options.catchup.num_threads = 3;
  auto service = ProvenanceService::Create(spec, tin.Stats(), options);
  ASSERT_TRUE(service.ok());
  std::vector<Interaction> head(log.begin(), log.begin() + split);
  ASSERT_TRUE((*service)
                  ->Catchup(std::make_unique<VectorStream>(
                      tin.num_vertices(), std::move(head)))
                  .ok());
  std::vector<Interaction> tail(log.begin() + split, log.end());
  ASSERT_TRUE((*service)
                  ->Start(std::make_unique<VectorStream>(tin.num_vertices(),
                                                         std::move(tail)))
                  .ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  const std::vector<Timestamp> probes = {log[10].t, log[split / 2].t,
                                         log[split - 1].t, log[split + 5].t,
                                         log.back().t};
  for (const Timestamp t : probes) {
    const size_t prefix = PrefixLength(tin, t);
    const auto reference = ReferencePrefix(spec, tin, prefix);
    for (const VertexId v : {VertexId{1}, VertexId{29}, VertexId{58}}) {
      QueryResult result = (*service)->Provenance(v, t);
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ExpectSameBuffer(reference->Provenance(v), result.buffer,
                       "catchup-history t=" + std::to_string(t) + " v=" +
                           std::to_string(v));
    }
  }
}

TEST(ServeCatchupTest, LifecyclePreconditions) {
  const Tin tin = GeneratedTin();
  const TrackerSpec spec = StreamingSpec("Prop-sparse");
  const auto& log = tin.interactions();
  auto make_stream = [&] {
    return std::make_unique<VectorStream>(
        tin.num_vertices(), std::vector<Interaction>(log.begin(),
                                                     log.begin() + 100));
  };

  {
    auto service = ProvenanceService::Create(spec, tin.Stats());
    ASSERT_TRUE(service.ok());
    EXPECT_EQ((*service)->Catchup(nullptr).code(),
              StatusCode::kInvalidArgument);
    // A second catchup would double-apply: one bulk load only.
    ASSERT_TRUE((*service)->Catchup(make_stream()).ok());
    EXPECT_EQ((*service)->Catchup(make_stream()).code(),
              StatusCode::kFailedPrecondition);
  }
  {
    // Once the live ingest started, the bulk path is closed.
    auto service = ProvenanceService::Create(spec, tin.Stats());
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(
        (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
    EXPECT_EQ((*service)->Catchup(make_stream()).code(),
              StatusCode::kFailedPrecondition);
    ASSERT_TRUE((*service)->WaitIngest().ok());
  }
  {
    // A handoff index already carries history: catchup must start from
    // empty state.
    auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
    ASSERT_TRUE(factory.ok());
    auto index =
        TimeTravelIndex::NewStreaming(tin.num_vertices(), *factory, 100);
    ASSERT_TRUE(index.ok());
    ASSERT_TRUE((*index)->Observe(log[0]).ok());
    ASSERT_TRUE((*index)->Finalize().ok());
    std::shared_ptr<const TimeTravelIndex> history = std::move(*index);
    auto service =
        ProvenanceService::CreateWithHistory(spec, tin.Stats(), history);
    ASSERT_TRUE(service.ok());
    EXPECT_EQ((*service)->Catchup(make_stream()).code(),
              StatusCode::kFailedPrecondition);
  }
}

// ---------------------------------------------------------------------
// (e) API edges: construction validation, top-k ordering, dispatch,
// lifecycle, and ingest-error propagation.

TEST(ServeApiTest, RejectsMaterializedModeSpecs) {
  const Tin tin = GeneratedTin();
  TrackerSpec spec{"Prop-sparse", TestParams(), TrackerMode::kMaterialized};
  auto service = ProvenanceService::Create(spec, tin.Stats());
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeApiTest, RejectsUnfinalizedHistory) {
  const Tin tin = GeneratedTin();
  const TrackerSpec spec = StreamingSpec("FIFO");
  auto factory = TrackerRegistry::Global().Factory(spec, tin.Stats());
  ASSERT_TRUE(factory.ok());
  auto index =
      TimeTravelIndex::NewStreaming(tin.num_vertices(), *factory, 100);
  ASSERT_TRUE(index.ok());  // never finalized
  std::shared_ptr<const TimeTravelIndex> history = std::move(*index);
  auto service =
      ProvenanceService::CreateWithHistory(spec, tin.Stats(), history);
  ASSERT_FALSE(service.ok());
  EXPECT_EQ(service.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ServeApiTest, TopOriginsSortsAndTruncates) {
  const Tin tin = GeneratedTin();
  auto service =
      ProvenanceService::Create(StreamingSpec("Prop-sparse"), tin.Stats());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  for (VertexId v = 0; v < tin.num_vertices(); v += 9) {
    const QueryResult all = (*service)->Provenance(v);
    ASSERT_TRUE(all.status.ok());
    const QueryResult top = (*service)->TopOrigins(v, 3);
    ASSERT_TRUE(top.status.ok());
    EXPECT_LE(top.buffer.entries.size(), 3u);
    EXPECT_EQ(top.buffer.entries.size(),
              std::min<size_t>(3, all.buffer.entries.size()));
    // Quantity-descending, origin-ascending on ties; total untouched.
    EXPECT_EQ(top.buffer.total, all.buffer.total);
    for (size_t i = 1; i < top.buffer.entries.size(); ++i) {
      const ProvPair& a = top.buffer.entries[i - 1];
      const ProvPair& b = top.buffer.entries[i];
      EXPECT_TRUE(a.quantity > b.quantity ||
                  (a.quantity == b.quantity && a.origin < b.origin))
          << "vertex " << v << " entry " << i;
    }
    // Nothing outside the top-k beats anything inside it.
    if (!top.buffer.entries.empty()) {
      double kth = top.buffer.entries.back().quantity;
      for (const ProvPair& entry : all.buffer.entries) {
        EXPECT_LE(
            entry.quantity,
            top.buffer.entries.front().quantity);
        (void)kth;
      }
    }
  }
}

TEST(ServeApiTest, ExecuteDispatchAndBoundsChecks) {
  const Tin tin = GeneratedTin();
  auto service =
      ProvenanceService::Create(StreamingSpec("FIFO"), tin.Stats());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  QueryRequest request;
  request.kind = QueryKind::kTopOrigins;
  request.v = 1;
  request.k = 2;
  const QueryResult via_execute = (*service)->Execute(request);
  const QueryResult direct = (*service)->TopOrigins(1, 2);
  ASSERT_TRUE(via_execute.status.ok());
  ExpectSameBuffer(direct.buffer, via_execute.buffer, "execute dispatch");

  // Out-of-range vertices are an error on every path, not a crash.
  EXPECT_EQ((*service)->Provenance(999).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*service)->Provenance(999, 1.0).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*service)->TopOrigins(999, 3).status.code(),
            StatusCode::kInvalidArgument);

  // One ingest per service.
  EXPECT_EQ(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).code(),
      StatusCode::kFailedPrecondition);
}

TEST(ServeApiTest, IngestErrorsSurfaceThroughWaitIngest) {
  std::vector<Interaction> disordered;
  for (size_t i = 0; i < 50; ++i) {
    Interaction interaction;
    interaction.src = static_cast<VertexId>(i % 5);
    interaction.dst = static_cast<VertexId>((i + 2) % 5);
    interaction.t = static_cast<Timestamp>(50 - i);  // strictly decreasing
    interaction.quantity = 1.0;
    disordered.push_back(interaction);
  }
  auto service = ProvenanceService::Create(StreamingSpec("FIFO"),
                                           DatasetStats{5, 50});
  ASSERT_TRUE(service.ok());
  const Status start =
      (*service)->Start(std::make_unique<VectorStream>(5, disordered));
  // Threaded builds report via WaitIngest; synchronous builds may fail
  // either there or at Start itself.
  if (start.ok()) {
    EXPECT_EQ((*service)->WaitIngest().code(), StatusCode::kInvalidArgument);
  } else {
    EXPECT_EQ(start.code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------
// (f) MemoryBytes regression (the dynamic_cast probe replacement):
// every tracker reports an allocator-level footprint at least as large
// as its logical accounting, whatever the policy.

TEST(ServeApiTest, MemoryBytesCoversLogicalBytesForEveryTracker) {
  const Tin tin = GeneratedTin();
  const TrackerRegistry& registry = TrackerRegistry::Global();
  for (const std::string& name : registry.Names()) {
    auto tracker = registry.Create({name, TestParams()}, tin);
    ASSERT_TRUE(tracker.ok()) << name;
    ASSERT_TRUE((*tracker)->ProcessAll(tin).ok()) << name;
    EXPECT_GE((*tracker)->MemoryBytes(), (*tracker)->MemoryUsage()) << name;
    (*tracker)->PublishMetrics();  // must be callable on any tracker
  }
}

// ---------------------------------------------------------------------
// (g) Ops plane: /statusz agrees with what a pinned reader sees, the
// slow-query log tags queries on both entry points, and /healthz flips
// to 503 the moment a registered check reports unhealthy.

// Pulls the unsigned integer following `"key":` out of hand-built JSON.
uint64_t JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return ~uint64_t{0};
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(ServeOpsTest, StatuszJsonMatchesPinnedEpoch) {
  const Tin tin = GeneratedTin();
  auto service =
      ProvenanceService::Create(StreamingSpec("Prop-sparse"), tin.Stats());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  // The page pins one view, exactly like a query does; after the drain
  // both must be the final epoch.
  const std::string statusz = (*service)->StatuszJson();
  const QueryResult pinned = (*service)->Provenance(0);
  ASSERT_TRUE(pinned.status.ok());
  EXPECT_EQ(JsonField(statusz, "prefix"), pinned.epoch.prefix);
  EXPECT_EQ(JsonField(statusz, "seq"), pinned.epoch.seq);
  EXPECT_EQ(JsonField(statusz, "prefix"), (*service)->LatestEpoch().prefix);
  EXPECT_NE(statusz.find("\"done\":true"), std::string::npos);
  EXPECT_NE(statusz.find("\"total_bytes\":"), std::string::npos);
}

TEST(ServeOpsTest, SlowQueryLogTagsQueriesOnBothEntryPoints) {
  obs::SlowQueryLog& log = obs::SlowQueryLog::Global();
  log.Clear();
  const Tin tin = GeneratedTin();
  ServeOptions options;
  options.slow_query_ns = 1;  // everything is slow
  auto service = ProvenanceService::Create(StreamingSpec("Prop-sparse"),
                                           tin.Stats(), options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  QueryRequest request;
  request.kind = QueryKind::kProvenance;
  request.v = 7;
  const QueryResult direct = (*service)->Execute(request);
  ASSERT_TRUE(direct.status.ok());
  EXPECT_GT(direct.query_id, 0u);
  ASSERT_EQ(log.recorded(), 1u);
  {
    const std::vector<obs::SlowQueryRecord> records = log.Snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].query_id, direct.query_id);
    EXPECT_STREQ(records[0].kind, "provenance");
    EXPECT_EQ(records[0].vertex, 7u);
    EXPECT_GT(records[0].latency_ns, 0);
    EXPECT_EQ(records[0].epoch_prefix, direct.epoch.prefix);
  }

  // Submit funnels through the same Execute wrapper.
  request.kind = QueryKind::kTopOrigins;
  request.v = 3;
  request.k = 2;
  const QueryResult submitted = (*service)->Submit(request).get();
  ASSERT_TRUE(submitted.status.ok());
  EXPECT_GT(submitted.query_id, direct.query_id);
  ASSERT_EQ(log.recorded(), 2u);
  EXPECT_STREQ(log.Snapshot().back().kind, "top_origins");

  // A disabled threshold records nothing, but ids keep flowing.
  ServeOptions quiet;
  quiet.slow_query_ns = 0;
  auto quiet_service = ProvenanceService::Create(
      StreamingSpec("Prop-sparse"), tin.Stats(), quiet);
  ASSERT_TRUE(quiet_service.ok());
  ASSERT_TRUE((*quiet_service)
                  ->Start(std::make_unique<MaterializedStream>(tin))
                  .ok());
  ASSERT_TRUE((*quiet_service)->WaitIngest().ok());
  request.kind = QueryKind::kProvenance;
  const QueryResult untracked = (*quiet_service)->Execute(request);
  ASSERT_TRUE(untracked.status.ok());
  EXPECT_GT(untracked.query_id, submitted.query_id);
  EXPECT_EQ(log.recorded(), 2u);
  log.Clear();
}

#if !defined(TINPROV_NO_THREADS)

// Minimal loopback HTTP client (mirrors the one in test_obs.cc).
std::string OpsHttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(ServeOpsTest, OpsServerServesConsistentStatusAndHealth) {
  const Tin tin = GeneratedTin();
  auto service =
      ProvenanceService::Create(StreamingSpec("Prop-sparse"), tin.Stats());
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE(
      (*service)->Start(std::make_unique<MaterializedStream>(tin)).ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());

  auto port = (*service)->EnableOpsServer(0);  // ephemeral
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(*port, 0);
  EXPECT_FALSE((*service)->EnableOpsServer(0).ok());  // one per service
  ASSERT_NE((*service)->ops_recorder(), nullptr);

  // /statusz over the wire reports the same epoch a pinned reader sees.
  const std::string statusz = OpsHttpGet(*port, "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.0 200"), std::string::npos);
  const QueryResult pinned = (*service)->Provenance(0);
  ASSERT_TRUE(pinned.status.ok());
  EXPECT_EQ(JsonField(statusz, "prefix"), pinned.epoch.prefix);

  // Healthy service: the full catalogue passes (ingest is drained, the
  // queue is empty, nothing dropped).
  const std::string healthy = OpsHttpGet(*port, "/healthz");
  EXPECT_NE(healthy.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(healthy.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(healthy.find("serve.epoch_age"), std::string::npos);
  EXPECT_NE(healthy.find("ingest.watermark_lag"), std::string::npos);

  // Force one check unhealthy: the endpoint must flip to 503.
  obs::HealthRegistry::Global().Register("test.forced", [] {
    obs::HealthResult result;
    result.healthy = false;
    result.message = "forced by test";
    return result;
  });
  const std::string sick = OpsHttpGet(*port, "/healthz");
  EXPECT_NE(sick.find("HTTP/1.0 503"), std::string::npos);
  EXPECT_NE(sick.find("forced by test"), std::string::npos);
  obs::HealthRegistry::Global().Unregister("test.forced");
  EXPECT_NE(OpsHttpGet(*port, "/healthz").find("HTTP/1.0 200"),
            std::string::npos);

  // The other built-ins answer through the same listener.
  EXPECT_NE(OpsHttpGet(*port, "/metrics").find("# TYPE"), std::string::npos);
  EXPECT_NE(OpsHttpGet(*port, "/metricsz").find("\"counters\""),
            std::string::npos);

  (*service)->DisableOpsServer();
  (*service)->DisableOpsServer();  // idempotent
  EXPECT_TRUE(OpsHttpGet(*port, "/healthz").empty());
  // The service's health checks left the global registry with it.
  EXPECT_EQ(obs::HealthRegistry::Global().size(), 0u);
}

#endif  // !TINPROV_NO_THREADS

}  // namespace
}  // namespace tinprov
