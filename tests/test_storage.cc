// Storage-layer contracts: checksummed segments and snapshots must turn
// any crash artifact — torn tail, short write, bit rot, failed sync —
// into a clean truncation, and recovery must resume bit-identically to
// a fresh replay of whatever prefix the disk actually kept. The matrix
// tests drive every registry tracker through every FaultInjectingEnv
// mode and hold that equality; the serve tests hold it end to end
// through ProvenanceService restart.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/registry.h"
#include "core/tin.h"
#include "datagen/generator.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "storage/durable_log.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "storage/log_format.h"
#include "storage/recovery.h"
#include "storage/segment.h"
#include "storage/snapshot_store.h"
#include "stream/interaction_stream.h"
#include "util/crc32c.h"
#include "util/serialize.h"

namespace tinprov {
namespace {

namespace st = tinprov::storage;

// --- Scratch directories ---------------------------------------------------

/// A unique directory under the build tree, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    static int counter = 0;
    path_ = "tinprov_test_" + tag + "_" + std::to_string(counter++) + "_" +
            std::to_string(static_cast<unsigned>(::getpid()));
    (void)st::Env::Posix()->CreateDir(path_);
  }

  ~ScratchDir() {
    auto names = st::Env::Posix()->ListDir(path_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        (void)st::Env::Posix()->DeleteFile(st::JoinPath(path_, name));
      }
    }
    ::rmdir(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<uint8_t> SlurpFile(const std::string& path) {
  auto file = st::Env::Posix()->NewRandomAccessFile(path);
  EXPECT_TRUE(file.ok());
  auto size = (*file)->Size();
  EXPECT_TRUE(size.ok());
  std::vector<uint8_t> bytes(static_cast<size_t>(*size));
  size_t read = 0;
  if (!bytes.empty()) {
    EXPECT_TRUE((*file)->Read(0, bytes.size(), bytes.data(), &read).ok());
  }
  EXPECT_EQ(read, bytes.size());
  return bytes;
}

void DumpFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  auto file = st::Env::Posix()->NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(bytes.data(), bytes.size()).ok());
  ASSERT_TRUE((*file)->Close().ok());
}

// --- Test data -------------------------------------------------------------

Tin GeneratedTin(size_t num_vertices, size_t num_interactions,
                 uint64_t seed) {
  GeneratorConfig config;
  config.num_vertices = num_vertices;
  config.num_interactions = num_interactions;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = seed;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

ScalableParams TestParams() {
  ScalableParams params;
  params.window = 200;
  params.num_tracked = 8;
  params.num_groups = 5;
  params.budget.capacity = 8;
  params.budget.keep_fraction = 0.5;
  return params;
}

TrackerSpec StreamingSpec(const std::string& name) {
  return {name, TestParams(), TrackerMode::kStreaming};
}

void ExpectInteractionsEqual(const std::vector<Interaction>& expected,
                             const std::vector<Interaction>& actual,
                             const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].src, actual[i].src) << context << " entry " << i;
    EXPECT_EQ(expected[i].dst, actual[i].dst) << context << " entry " << i;
    EXPECT_EQ(expected[i].t, actual[i].t) << context << " entry " << i;
    EXPECT_EQ(expected[i].quantity, actual[i].quantity)
        << context << " entry " << i;
  }
}

/// True when `shorter` is an exact prefix of `longer`.
bool IsPrefixOf(const std::vector<Interaction>& shorter,
                const std::vector<Interaction>& longer) {
  if (shorter.size() > longer.size()) return false;
  for (size_t i = 0; i < shorter.size(); ++i) {
    if (shorter[i].src != longer[i].src || shorter[i].dst != longer[i].dst ||
        shorter[i].t != longer[i].t ||
        shorter[i].quantity != longer[i].quantity) {
      return false;
    }
  }
  return true;
}

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / "123456789").
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32c(digits, sizeof(digits)), 0xe3069283u);
  // 32 zero bytes — the iSCSI test vector.
  const std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::vector<uint8_t> data(301);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{300}}) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, MaskRoundtripAndDistinctness) {
  for (const uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);
  }
}

// --- Env -------------------------------------------------------------------

TEST(PosixEnv, WriteReadRoundtrip) {
  ScratchDir dir("env");
  st::Env* env = st::Env::Posix();
  const std::string path = st::JoinPath(dir.path(), "file");

  EXPECT_FALSE(env->FileExists(path));
  auto missing = env->NewRandomAccessFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  auto file = env->NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(payload.data(), 3).ok());
  ASSERT_TRUE((*file)->Append(payload.data() + 3, 2).ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());

  EXPECT_TRUE(env->FileExists(path));
  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());

  auto reader = env->NewRandomAccessFile(path);
  ASSERT_TRUE(reader.ok());
  std::vector<uint8_t> out(16, 0);
  size_t read = 0;
  // Over-long read: short count at EOF, not an error.
  ASSERT_TRUE((*reader)->Read(0, out.size(), out.data(), &read).ok());
  EXPECT_EQ(read, payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), out.begin()));
  // Offset read.
  ASSERT_TRUE((*reader)->Read(3, 2, out.data(), &read).ok());
  EXPECT_EQ(read, 2u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[1], 5);
  // Read past EOF: zero bytes, still not an error.
  ASSERT_TRUE((*reader)->Read(99, 4, out.data(), &read).ok());
  EXPECT_EQ(read, 0u);
}

TEST(PosixEnv, RenameListDeleteAndHeadroom) {
  ScratchDir dir("env2");
  st::Env* env = st::Env::Posix();
  const std::string a = st::JoinPath(dir.path(), "a");
  const std::string b = st::JoinPath(dir.path(), "b");
  DumpFile(a, {42});

  ASSERT_TRUE(env->RenameFile(a, b).ok());
  EXPECT_FALSE(env->FileExists(a));
  EXPECT_TRUE(env->FileExists(b));

  auto names = env->ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], "b");

  // CreateDir on an existing directory is Ok (mkdir -p semantics).
  EXPECT_TRUE(env->CreateDir(dir.path()).ok());

  auto free_bytes = env->FreeDiskBytes(dir.path());
  ASSERT_TRUE(free_bytes.ok());
  EXPECT_GT(*free_bytes, 0u);

  ASSERT_TRUE(env->DeleteFile(b).ok());
  EXPECT_EQ(env->DeleteFile(b).code(), StatusCode::kNotFound);
}

TEST(Storage, FileNameRoundtrip) {
  uint64_t value = 0;
  EXPECT_TRUE(st::ParseSegmentFileName(st::SegmentFileName(0), &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(st::ParseSegmentFileName(st::SegmentFileName(987654), &value));
  EXPECT_EQ(value, 987654u);
  EXPECT_TRUE(
      st::ParseSnapshotFileName(st::SnapshotFileName(123456789), &value));
  EXPECT_EQ(value, 123456789u);
  // Lexicographic order equals numeric order (fixed-width counters).
  EXPECT_LT(st::SegmentFileName(9), st::SegmentFileName(10));
  EXPECT_LT(st::SnapshotFileName(99), st::SnapshotFileName(100));
  // Foreign names are rejected, not misparsed.
  EXPECT_FALSE(st::ParseSegmentFileName("seg-.tin", &value));
  EXPECT_FALSE(st::ParseSegmentFileName("seg-12x4567890.tin", &value));
  EXPECT_FALSE(st::ParseSegmentFileName("snap-0000000001.snap", &value));
  EXPECT_FALSE(st::ParseSnapshotFileName("tmp-snap-1.snap", &value));
}

// --- Segments --------------------------------------------------------------

/// Writes `batches` into one segment; returns per-record batch sizes.
std::vector<Interaction> WriteSegmentFile(const std::string& path,
                                          const std::vector<size_t>& batches,
                                          bool seal) {
  std::vector<Interaction> all;
  auto writer = st::SegmentWriter::Open(st::Env::Posix(), path, 0);
  EXPECT_TRUE(writer.ok());
  Timestamp t = 1.0;
  VertexId v = 0;
  for (const size_t count : batches) {
    std::vector<Interaction> batch;
    for (size_t i = 0; i < count; ++i) {
      batch.push_back({v % 11, (v + 3) % 11, t, 1.0 + 0.25 * i});
      ++v;
      t += 0.5;
    }
    EXPECT_TRUE((*writer)->Append(batch.data(), batch.size()).ok());
    all.insert(all.end(), batch.begin(), batch.end());
  }
  if (seal) {
    EXPECT_TRUE((*writer)->Seal().ok());
  } else {
    EXPECT_TRUE((*writer)->Sync().ok());
  }
  return all;
}

TEST(Segment, SealedRoundtripWithZoneMap) {
  ScratchDir dir("seg");
  const std::string path = st::JoinPath(dir.path(), st::SegmentFileName(0));
  const std::vector<Interaction> all = WriteSegmentFile(path, {3, 1, 4}, true);

  st::SegmentReadResult result;
  ASSERT_TRUE(st::ReadSegment(st::Env::Posix(), path, &result).ok());
  EXPECT_EQ(result.end, st::SegmentEnd::kClean);
  EXPECT_TRUE(result.sealed);
  EXPECT_EQ(result.base_prefix, 0u);
  ExpectInteractionsEqual(all, result.interactions, "sealed roundtrip");
  EXPECT_EQ(result.zone_map.num_records, 3u);
  EXPECT_EQ(result.zone_map.num_interactions, all.size());
  Timestamp min_t = all.front().t;
  Timestamp max_t = all.back().t;
  EXPECT_EQ(result.zone_map.min_t, min_t);
  EXPECT_EQ(result.zone_map.max_t, max_t);
  EXPECT_TRUE(result.zone_map.OverlapsTime(min_t - 1.0, min_t));
  EXPECT_FALSE(result.zone_map.OverlapsTime(max_t + 1.0, max_t + 2.0));
}

TEST(Segment, UnsealedEndsClean) {
  ScratchDir dir("seg_open");
  const std::string path = st::JoinPath(dir.path(), st::SegmentFileName(0));
  const std::vector<Interaction> all = WriteSegmentFile(path, {2, 2}, false);

  st::SegmentReadResult result;
  ASSERT_TRUE(st::ReadSegment(st::Env::Posix(), path, &result).ok());
  EXPECT_EQ(result.end, st::SegmentEnd::kClean);
  EXPECT_FALSE(result.sealed);
  ExpectInteractionsEqual(all, result.interactions, "unsealed");
  // The recomputed zone map still covers the data.
  EXPECT_EQ(result.zone_map.num_interactions, all.size());
}

TEST(Segment, TruncationAtEveryOffsetIsACleanStop) {
  ScratchDir dir("seg_trunc");
  const std::string path = st::JoinPath(dir.path(), st::SegmentFileName(0));
  const std::vector<Interaction> all = WriteSegmentFile(path, {3, 2, 4}, true);
  const std::vector<uint8_t> bytes = SlurpFile(path);

  // Record boundaries: (end offset, cumulative interactions). The
  // footer is a record too, with the full count.
  std::vector<std::pair<size_t, size_t>> boundaries;
  boundaries.push_back({st::kSegmentHeaderBytes, 0});
  size_t offset = st::kSegmentHeaderBytes;
  size_t cumulative = 0;
  for (const size_t count : {size_t{3}, size_t{2}, size_t{4}}) {
    offset += st::kRecordHeaderBytes + 4 + count * st::kInteractionWireBytes;
    cumulative += count;
    boundaries.push_back({offset, cumulative});
  }
  boundaries.push_back({bytes.size(), cumulative});

  const std::string trunc = st::JoinPath(dir.path(), "trunc.bin");
  for (size_t len = 0; len <= bytes.size(); ++len) {
    DumpFile(trunc, std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    st::SegmentReadResult result;
    ASSERT_TRUE(st::ReadSegment(st::Env::Posix(), trunc, &result).ok())
        << "len " << len;
    // Truncation is always a clean stop at a record boundary — never a
    // checksum accusation, never an over-read.
    size_t expected = 0;
    bool at_boundary = len == 0;
    for (const auto& [end, count] : boundaries) {
      if (len >= end) expected = count;
      if (len == end) at_boundary = true;
    }
    EXPECT_EQ(result.interactions.size(), expected) << "len " << len;
    EXPECT_TRUE(IsPrefixOf(result.interactions, all)) << "len " << len;
    if (len < bytes.size()) {
      EXPECT_FALSE(result.sealed) << "len " << len;
      EXPECT_EQ(result.end,
                at_boundary && len >= st::kSegmentHeaderBytes
                    ? st::SegmentEnd::kClean
                    : st::SegmentEnd::kTorn)
          << "len " << len;
    } else {
      EXPECT_TRUE(result.sealed);
      EXPECT_EQ(result.end, st::SegmentEnd::kClean);
    }
  }
}

TEST(Segment, BitFlipAtEveryByteYieldsAPrefix) {
  ScratchDir dir("seg_flip");
  const std::string path = st::JoinPath(dir.path(), st::SegmentFileName(0));
  const std::vector<Interaction> all = WriteSegmentFile(path, {3, 2, 4}, true);
  const std::vector<uint8_t> bytes = SlurpFile(path);

  const std::string flipped = st::JoinPath(dir.path(), "flip.bin");
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> copy = bytes;
    copy[i] ^= 0x01;
    DumpFile(flipped, copy);
    st::SegmentReadResult result;
    ASSERT_TRUE(st::ReadSegment(st::Env::Posix(), flipped, &result).ok())
        << "flip at " << i;
    // Whatever a single flipped bit does — corrupt header, failed
    // record checksum, poisoned length or footer — the recovered
    // interactions are an exact prefix of what was written, and the
    // flip never goes unnoticed: every byte is covered by the header
    // value checks, a record CRC, or the footer cross-check, so a
    // flipped file can never read back as a clean sealed segment.
    EXPECT_TRUE(IsPrefixOf(result.interactions, all)) << "flip at " << i;
    EXPECT_FALSE(result.sealed && result.end == st::SegmentEnd::kClean)
        << "flip at " << i;
  }
}

// --- Snapshot store --------------------------------------------------------

TEST(SnapshotStore, RoundtripAndNewestSelection) {
  ScratchDir dir("snap");
  st::SnapshotStore store(st::Env::Posix(), dir.path());

  const std::vector<uint8_t> state_a = {1, 2, 3};
  const std::vector<uint8_t> state_b = {9, 8, 7, 6};
  ASSERT_TRUE(store.Write(100, 10.0, state_a).ok());
  ASSERT_TRUE(store.Write(200, 20.0, state_b).ok());

  auto list = store.List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].prefix, 100u);
  EXPECT_EQ((*list)[1].prefix, 200u);

  auto newest = store.LoadNewestValid(500);
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest->prefix, 200u);
  EXPECT_EQ(newest->watermark, 20.0);
  EXPECT_EQ(newest->state, state_b);
  EXPECT_EQ(newest->corrupt_skipped, 0u);

  // A prefix cap below 200 falls back to the older snapshot; below 100
  // to the empty prefix-0 state.
  auto capped = store.LoadNewestValid(150);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->prefix, 100u);
  EXPECT_EQ(capped->state, state_a);
  auto none = store.LoadNewestValid(99);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->prefix, 0u);
  EXPECT_TRUE(none->state.empty());
}

TEST(SnapshotStore, FallsBackPastCorruption) {
  ScratchDir dir("snap_corrupt");
  st::SnapshotStore store(st::Env::Posix(), dir.path());
  ASSERT_TRUE(store.Write(100, 10.0, {1, 2, 3}).ok());
  ASSERT_TRUE(store.Write(200, 20.0, {4, 5, 6}).ok());

  // Rot a bit in the newest snapshot.
  const std::string newest_path =
      st::JoinPath(dir.path(), st::SnapshotFileName(200));
  std::vector<uint8_t> bytes = SlurpFile(newest_path);
  bytes[bytes.size() / 2] ^= 0x10;
  DumpFile(newest_path, bytes);

  auto loaded = store.LoadNewestValid(500);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->prefix, 100u);
  EXPECT_EQ(loaded->corrupt_skipped, 1u);

  // Every snapshot corrupt: the empty prefix-0 result, never an error.
  const std::string older_path =
      st::JoinPath(dir.path(), st::SnapshotFileName(100));
  bytes = SlurpFile(older_path);
  bytes[0] ^= 0xff;
  DumpFile(older_path, bytes);
  loaded = store.LoadNewestValid(500);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->prefix, 0u);
  EXPECT_EQ(loaded->corrupt_skipped, 2u);
}

TEST(SnapshotStore, TruncationAndFlipNeverLoad) {
  ScratchDir dir("snap_fuzz");
  st::SnapshotStore store(st::Env::Posix(), dir.path());
  const std::vector<uint8_t> state = {10, 20, 30, 40, 50};
  ASSERT_TRUE(store.Write(64, 6.5, state).ok());
  const std::string path = st::JoinPath(dir.path(), st::SnapshotFileName(64));
  const std::vector<uint8_t> bytes = SlurpFile(path);

  for (size_t len = 0; len < bytes.size(); ++len) {
    DumpFile(path, std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    st::LoadedSnapshot out;
    const Status status = store.Load({64, st::SnapshotFileName(64)}, &out);
    EXPECT_FALSE(status.ok()) << "truncated to " << len;
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> copy = bytes;
    copy[i] ^= 0x01;
    DumpFile(path, copy);
    st::LoadedSnapshot out;
    const Status status = store.Load({64, st::SnapshotFileName(64)}, &out);
    EXPECT_FALSE(status.ok()) << "flip at " << i;
  }
}

TEST(SnapshotStore, SweepRemovesTempFilesOnly) {
  ScratchDir dir("snap_sweep");
  st::SnapshotStore store(st::Env::Posix(), dir.path());
  ASSERT_TRUE(store.Write(7, 1.0, {1}).ok());
  DumpFile(st::JoinPath(dir.path(), "tmp-snap-junk.snap"), {1, 2});
  ASSERT_TRUE(store.SweepTempFiles().ok());
  auto names = st::Env::Posix()->ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  EXPECT_EQ((*names)[0], st::SnapshotFileName(7));
}

// --- Fault-injecting env ---------------------------------------------------

TEST(FaultEnv, ModesBehaveAsDocumented) {
  ScratchDir dir("fault");
  st::FaultInjectingEnv env(st::Env::Posix());
  const std::string path = st::JoinPath(dir.path(), "f");
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};

  // kFailWrite: clean failure, nothing lands.
  env.Arm({st::FaultMode::kFailWrite, 0, false});
  auto file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  Status status = (*file)->Append(payload.data(), payload.size());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(env.faults_injected(), 1u);
  // Next op passes (one-shot plan).
  EXPECT_TRUE((*file)->Append(payload.data(), payload.size()).ok());
  ASSERT_TRUE((*file)->Close().ok());

  // kShortWrite: half persisted, error observed.
  env.Arm({st::FaultMode::kShortWrite, 0, false});
  file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  status = (*file)->Append(payload.data(), payload.size());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE((*file)->Close().ok());
  auto size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size() / 2);

  // kTornWrite: half persisted, success reported, later writes vanish.
  env.Arm({st::FaultMode::kTornWrite, 1, false});
  file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(payload.data(), payload.size()).ok());  // op 0
  EXPECT_TRUE((*file)->Append(payload.data(), payload.size()).ok());  // torn
  EXPECT_TRUE((*file)->Append(payload.data(), payload.size()).ok());  // gone
  EXPECT_TRUE((*file)->Sync().ok());  // silently dropped too
  ASSERT_TRUE((*file)->Close().ok());
  size = env.FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size() + payload.size() / 2);

  // kCorruptWrite: full length, one bit off.
  env.Arm({st::FaultMode::kCorruptWrite, 0, false});
  file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(payload.data(), payload.size()).ok());
  ASSERT_TRUE((*file)->Close().ok());
  env.Disarm();
  std::vector<uint8_t> bytes = SlurpFile(path);
  ASSERT_EQ(bytes.size(), payload.size());
  size_t diffs = 0;
  for (size_t i = 0; i < bytes.size(); ++i) diffs += bytes[i] != payload[i];
  EXPECT_EQ(diffs, 1u);

  // kFailSync.
  env.Arm({st::FaultMode::kFailSync, 1, false});
  file = env.NewWritableFile(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append(payload.data(), payload.size()).ok());
  EXPECT_EQ((*file)->Sync().code(), StatusCode::kUnavailable);
  ASSERT_TRUE((*file)->Close().ok());

  // kFailRead / kCorruptRead.
  env.Arm({st::FaultMode::kFailRead, 0, false});
  auto reader = env.NewRandomAccessFile(path);
  ASSERT_TRUE(reader.ok());
  std::vector<uint8_t> out(payload.size());
  size_t read = 0;
  EXPECT_EQ((*reader)->Read(0, out.size(), out.data(), &read).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE((*reader)->Read(0, out.size(), out.data(), &read).ok());

  env.Arm({st::FaultMode::kCorruptRead, 0, false});
  reader = env.NewRandomAccessFile(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->Read(0, out.size(), out.data(), &read).ok());
  diffs = 0;
  for (size_t i = 0; i < out.size(); ++i) diffs += out[i] != payload[i];
  EXPECT_EQ(diffs, 1u);
}

// --- DurableLog + recovery -------------------------------------------------

st::DurableLogOptions SmallSegments() {
  st::DurableLogOptions options;
  options.rotate_bytes = 2048;  // force several segments per run
  return options;
}

TEST(DurableLog, RotatesAndRecoversClean) {
  ScratchDir dir("dlog");
  const Tin tin = GeneratedTin(24, 400, 11);
  const std::vector<Interaction>& data = tin.interactions();

  auto log = st::DurableLog::Open(st::Env::Posix(), dir.path(), 0, 0,
                                  SmallSegments());
  ASSERT_TRUE(log.ok());
  for (size_t i = 0; i < data.size(); i += 25) {
    const size_t n = std::min<size_t>(25, data.size() - i);
    ASSERT_TRUE((*log)->Append(&data[i], n).ok());
  }
  EXPECT_EQ((*log)->prefix(), data.size());
  EXPECT_FALSE((*log)->degraded());
  ASSERT_TRUE((*log)->Seal().ok());

  // Several rotation-bounded segments on disk, all sealed or clean.
  auto names = st::Env::Posix()->ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  EXPECT_GT(names->size(), 2u);

  st::ReadLogResult recovered;
  ASSERT_TRUE(st::ReadLog(st::Env::Posix(), dir.path(), &recovered).ok());
  ExpectInteractionsEqual(data, recovered.interactions, "clean recovery");
  EXPECT_EQ(recovered.torn_tails, 0u);
  EXPECT_EQ(recovered.corrupt_records, 0u);
  EXPECT_EQ(recovered.segments_dropped, 0u);
  EXPECT_EQ(recovered.next_seq, recovered.segments_scanned);
}

TEST(DurableLog, DegradePolicySwallowsFailuresAndLatches) {
  ScratchDir dir("dlog_degrade");
  st::FaultInjectingEnv env(st::Env::Posix());
  const Tin tin = GeneratedTin(24, 120, 12);
  const std::vector<Interaction>& data = tin.interactions();

  st::DurableLogOptions options = SmallSegments();
  options.failure_policy = st::FailurePolicy::kDegrade;
  auto log = st::DurableLog::Open(&env, dir.path(), 0, 0, options);
  ASSERT_TRUE(log.ok());

  env.Arm({st::FaultMode::kFailWrite, 4, true});
  for (size_t i = 0; i < data.size(); i += 20) {
    const size_t n = std::min<size_t>(20, data.size() - i);
    // Every append reports Ok — the pipeline never observes the disk.
    ASSERT_TRUE((*log)->Append(&data[i], n).ok());
  }
  EXPECT_TRUE((*log)->degraded());
  // The global count still tracks what the pipeline applied.
  EXPECT_EQ((*log)->prefix(), data.size());
  EXPECT_TRUE((*log)->Sync().ok());
  EXPECT_TRUE((*log)->WriteSnapshot(data.size(), 1.0, {1, 2}).ok());
  EXPECT_TRUE((*log)->Seal().ok());

  // What did land is still a recoverable prefix.
  env.Disarm();
  st::ReadLogResult recovered;
  ASSERT_TRUE(st::ReadLog(st::Env::Posix(), dir.path(), &recovered).ok());
  EXPECT_TRUE(IsPrefixOf(recovered.interactions, data));
  EXPECT_LT(recovered.interactions.size(), data.size());
}

/// Simulated serve writer: apply a batch to the tracker, append it to
/// the durable log, snapshot every `snapshot_every` interactions —
/// stopping at the first storage error exactly like the fail-stop
/// ingest loop. Returns false on storage error (expected under some
/// fault modes), true on a clean drain.
bool SimulatedIngest(st::Env* env, const std::string& dir, Tracker* tracker,
                     const std::vector<Interaction>& data, size_t batch,
                     size_t snapshot_every) {
  auto log = st::DurableLog::Open(env, dir, 0, 0, SmallSegments());
  if (!log.ok()) return false;
  size_t last_snapshot = 0;
  for (size_t i = 0; i < data.size();) {
    const size_t n = std::min(batch, data.size() - i);
    for (size_t j = 0; j < n; ++j) {
      const Status status = tracker->Process(data[i + j]);
      EXPECT_TRUE(status.ok()) << status.message();
    }
    if (!(*log)->Append(&data[i], n).ok()) return false;
    i += n;
    if (i - last_snapshot >= snapshot_every) {
      last_snapshot = i;
      std::vector<uint8_t> state;
      tracker->SaveState(&state);
      if (!(*log)->WriteSnapshot(i, data[i - 1].t, state).ok()) return false;
    }
  }
  return (*log)->Seal().ok();
}

// The headline contract, held across every tracker the registry can
// build and every injectable fault: whatever prefix survives on disk,
// recovery's state equals a fresh tracker's clean replay of exactly
// that prefix, bit for bit.
TEST(Recovery, EveryTrackerEveryFaultModeRecoversBitExactly) {
  const Tin tin = GeneratedTin(32, 600, 13);
  const std::vector<Interaction>& data = tin.interactions();
  const DatasetStats stats = tin.Stats();

  const std::vector<uint64_t> triggers = {3, 17};
  for (const std::string& name : TrackerRegistry::Global().Names()) {
    auto factory =
        TrackerRegistry::Global().Factory(StreamingSpec(name), stats);
    ASSERT_TRUE(factory.ok()) << name;
    for (const st::FaultMode mode : st::AllFaultModes()) {
      for (const uint64_t trigger : triggers) {
        const std::string context = name + "/" +
                                    std::string(st::FaultModeName(mode)) +
                                    "/op" + std::to_string(trigger);
        ScratchDir dir("matrix");
        st::FaultInjectingEnv env(st::Env::Posix());
        const bool read_side = mode == st::FaultMode::kFailRead ||
                               mode == st::FaultMode::kCorruptRead;

        // Ingest — faulted for write-side modes, clean for read-side.
        if (!read_side) env.Arm({mode, trigger, false});
        std::unique_ptr<Tracker> live = (*factory)();
        const bool ingest_ok =
            SimulatedIngest(&env, dir.path(), live.get(), data, 25, 100);

        // Recover — faulted for read-side modes, clean otherwise.
        if (read_side) {
          env.Arm({mode, trigger, false});
        } else {
          env.Disarm();
        }
        st::RecoveryManager manager(&env, dir.path());
        auto recovered = manager.Recover(*factory);
        if (mode == st::FaultMode::kFailRead && !recovered.ok()) {
          // An I/O error during recovery is a real error, surfaced —
          // and a retry on the healed disk succeeds in full. (Whether
          // the one-shot fault fires at all depends on where the
          // trigger op lands among the recovery reads.)
          EXPECT_EQ(recovered.status().code(), StatusCode::kUnavailable)
              << context;
          env.Disarm();
          recovered = manager.Recover(*factory);
        } else {
          env.Disarm();
        }
        ASSERT_TRUE(recovered.ok()) << context << ": "
                                    << recovered.status().message();

        // The trusted log is an exact prefix of what was fed.
        ASSERT_TRUE(IsPrefixOf(recovered->log, data)) << context;
        ASSERT_EQ(recovered->prefix, recovered->log.size()) << context;
        if (!read_side && !ingest_ok) {
          // Fail-stop observed a storage error mid-stream, so the
          // durable prefix must stop short of the full feed.
          EXPECT_LT(recovered->prefix, data.size()) << context;
        }
        if (mode == st::FaultMode::kTornWrite) {
          // The silent crash always loses the tail: everything after
          // the torn op vanished even though the writer saw only Ok.
          EXPECT_LT(recovered->prefix, data.size()) << context;
        }

        // Bit-exact equivalence with a clean replay of that prefix.
        std::unique_ptr<Tracker> reference = (*factory)();
        for (const Interaction& interaction : recovered->log) {
          ASSERT_TRUE(reference->Process(interaction).ok()) << context;
        }
        std::vector<uint8_t> reference_state;
        reference->SaveState(&reference_state);
        EXPECT_EQ(recovered->state, reference_state) << context;
      }
    }
  }
}

TEST(Recovery, ResumedLogReadsAsOneContinuousHistory) {
  // Crash (torn tail) -> recover -> resume appending at the recovered
  // position -> recover again: the trusted log must be the full
  // concatenation, with the torn segment and the resumed one joined at
  // exactly the truncation point.
  ScratchDir dir("resume");
  st::FaultInjectingEnv env(st::Env::Posix());
  const Tin tin = GeneratedTin(24, 300, 14);
  const std::vector<Interaction>& data = tin.interactions();
  const size_t half = data.size() / 2;

  env.Arm({st::FaultMode::kTornWrite, 9, false});
  {
    auto log = st::DurableLog::Open(&env, dir.path(), 0, 0, SmallSegments());
    ASSERT_TRUE(log.ok());
    for (size_t i = 0; i < half; i += 20) {
      const size_t n = std::min<size_t>(20, half - i);
      ASSERT_TRUE((*log)->Append(&data[i], n).ok());  // torn: reports Ok
    }
    (void)(*log)->Seal();
  }
  env.Disarm();

  st::ReadLogResult first;
  ASSERT_TRUE(st::ReadLog(&env, dir.path(), &first).ok());
  const size_t recovered_prefix = first.interactions.size();
  ASSERT_TRUE(IsPrefixOf(first.interactions, data));
  ASSERT_LT(recovered_prefix, half);  // the tear lost something
  EXPECT_GE(first.torn_tails, 1u);

  // Resume exactly where recovery stopped, as a restarted serve would.
  {
    auto log = st::DurableLog::Open(&env, dir.path(), recovered_prefix,
                                    first.next_seq, SmallSegments());
    ASSERT_TRUE(log.ok());
    for (size_t i = recovered_prefix; i < data.size(); i += 20) {
      const size_t n = std::min<size_t>(20, data.size() - i);
      ASSERT_TRUE((*log)->Append(&data[i], n).ok());
    }
    ASSERT_TRUE((*log)->Seal().ok());
  }

  st::ReadLogResult second;
  ASSERT_TRUE(st::ReadLog(&env, dir.path(), &second).ok());
  ExpectInteractionsEqual(data, second.interactions, "resumed log");
}

// --- Tracker snapshot fuzzing (serialize hardening) ------------------------

TEST(SnapshotFuzz, TruncateAndBitFlipEveryTrackerStateSafely) {
  const Tin tin = GeneratedTin(20, 250, 15);
  const DatasetStats stats = tin.Stats();

  for (const std::string& name : TrackerRegistry::Global().Names()) {
    auto factory =
        TrackerRegistry::Global().Factory(StreamingSpec(name), stats);
    ASSERT_TRUE(factory.ok()) << name;
    std::unique_ptr<Tracker> tracker = (*factory)();
    for (const Interaction& interaction : tin.interactions()) {
      ASSERT_TRUE(tracker->Process(interaction).ok()) << name;
    }
    std::vector<uint8_t> state;
    tracker->SaveState(&state);
    ASSERT_FALSE(state.empty()) << name;

    // Every truncation must fail loudly — a shorter byte string can
    // never restore (every vector is length-gated, every span sized).
    for (size_t len = 0; len < state.size(); ++len) {
      std::unique_ptr<Tracker> victim = (*factory)();
      const Status status = victim->RestoreState(state.data(), len);
      EXPECT_FALSE(status.ok()) << name << " truncated to " << len;
    }

    // Every single-bit flip must be rejected or absorbed — never an
    // out-of-bounds read or a crash (the ASan leg enforces "never").
    for (size_t i = 0; i < state.size(); ++i) {
      std::vector<uint8_t> copy = state;
      copy[i] ^= 0x01;
      std::unique_ptr<Tracker> victim = (*factory)();
      (void)victim->RestoreState(copy.data(), copy.size());
    }

    // Null data is an error, not a dereference, whatever the size.
    std::unique_ptr<Tracker> victim = (*factory)();
    EXPECT_FALSE(victim->RestoreState(nullptr, state.size()).ok()) << name;
  }
}

// --- Serve integration -----------------------------------------------------

ServeOptions DurableServeOptions(const std::string& dir, st::Env* env) {
  ServeOptions options;
  options.epoch_interval = 256;
  options.ingest_batch = 64;
  options.ring_size = 3;
  options.durability.dir = dir;
  options.durability.env = env;
  options.durability.log.rotate_bytes = 4096;
  options.durability.history_snapshot_interval = 200;
  return options;
}

void ExpectSameBuffer(const Buffer& expected, const Buffer& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.total, actual.total) << context;
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << context;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_TRUE(expected.entries[i] == actual.entries[i])
        << context << " entry " << i;
  }
}

TEST(ServeDurable, CleanRestartResumesBitExactly) {
  ScratchDir dir("serve_restart");
  const Tin tin = GeneratedTin(40, 2000, 16);
  const std::vector<Interaction>& data = tin.interactions();
  const DatasetStats stats = tin.Stats();
  const TrackerSpec spec = StreamingSpec("Prop-sparse");
  const size_t half = data.size() / 2;

  // Phase 1: ingest the first half, shut down cleanly.
  {
    auto service = ProvenanceService::Create(
        spec, stats, DurableServeOptions(dir.path(), nullptr));
    ASSERT_TRUE(service.ok()) << service.status().message();
    ASSERT_TRUE((*service)
                    ->Start(std::make_unique<VectorStream>(
                        stats.num_vertices,
                        std::vector<Interaction>(data.begin(),
                                                 data.begin() + half)))
                    .ok());
    ASSERT_TRUE((*service)->WaitIngest().ok());
  }

  // Phase 2: a new service over the same directory resumes where the
  // old one stopped and serves identical answers.
  auto service = ProvenanceService::Create(
      spec, stats, DurableServeOptions(dir.path(), nullptr));
  ASSERT_TRUE(service.ok()) << service.status().message();
  EXPECT_EQ((*service)->LatestEpoch().watermark, data[half - 1].t);

  auto factory = TrackerRegistry::Global().Factory(spec, stats);
  ASSERT_TRUE(factory.ok());
  std::unique_ptr<Tracker> reference = (*factory)();
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(reference->Process(data[i]).ok());
  }
  for (VertexId v = 0; v < stats.num_vertices; ++v) {
    const QueryResult result = (*service)->Provenance(v);
    ASSERT_TRUE(result.status.ok());
    ExpectSameBuffer(reference->Provenance(v), result.buffer,
                     "restart vertex " + std::to_string(v));
  }

  // Historical queries reach into the recovered (pre-restart) past.
  const Timestamp old_t = data[half / 2].t;
  const QueryResult historical = (*service)->Provenance(7, old_t);
  ASSERT_TRUE(historical.status.ok());
  std::unique_ptr<Tracker> past = (*factory)();
  for (size_t i = 0; i < half && data[i].t <= old_t; ++i) {
    ASSERT_TRUE(past->Process(data[i]).ok());
  }
  ExpectSameBuffer(past->Provenance(7), historical.buffer, "historical");

  // Resume ingesting the second half; the end state must equal one
  // uninterrupted replay of everything.
  ASSERT_TRUE((*service)
                  ->Start(std::make_unique<VectorStream>(
                      stats.num_vertices,
                      std::vector<Interaction>(data.begin() + half,
                                               data.end())))
                  .ok());
  ASSERT_TRUE((*service)->WaitIngest().ok());
  for (size_t i = half; i < data.size(); ++i) {
    ASSERT_TRUE(reference->Process(data[i]).ok());
  }
  for (VertexId v = 0; v < stats.num_vertices; ++v) {
    const QueryResult result = (*service)->Provenance(v);
    ASSERT_TRUE(result.status.ok());
    ExpectSameBuffer(reference->Provenance(v), result.buffer,
                     "resumed vertex " + std::to_string(v));
  }

  const std::string statusz = (*service)->StatuszJson();
  EXPECT_NE(statusz.find("\"storage\":{\"enabled\":true"), std::string::npos);
  EXPECT_NE(statusz.find("\"degraded\":false"), std::string::npos);
}

TEST(ServeDurable, TornCrashRecoversToCleanReplayOfTheTrustedPrefix) {
  const Tin tin = GeneratedTin(40, 2000, 17);
  const std::vector<Interaction>& data = tin.interactions();
  const DatasetStats stats = tin.Stats();

  for (const std::string& name :
       {std::string("FIFO"), std::string("Prop-sparse"),
        std::string("Windowed")}) {
    ScratchDir dir("serve_crash");
    st::FaultInjectingEnv env(st::Env::Posix());
    const TrackerSpec spec = StreamingSpec(name);

    // The "crash": a torn write mid-ingest. The service believes every
    // write landed; the disk kept only a prefix.
    env.Arm({st::FaultMode::kTornWrite, 21, false});
    {
      auto service = ProvenanceService::Create(
          spec, stats, DurableServeOptions(dir.path(), &env));
      ASSERT_TRUE(service.ok()) << name;
      ASSERT_TRUE((*service)
                      ->Start(std::make_unique<VectorStream>(
                          stats.num_vertices, data))
                      .ok());
      ASSERT_TRUE((*service)->WaitIngest().ok()) << name;
    }
    env.Disarm();

    // What does the disk actually hold?
    auto factory = TrackerRegistry::Global().Factory(spec, stats);
    ASSERT_TRUE(factory.ok());
    st::RecoveryManager manager(&env, dir.path());
    auto recovered = manager.Recover(*factory);
    ASSERT_TRUE(recovered.ok()) << name;
    ASSERT_TRUE(IsPrefixOf(recovered->log, data)) << name;
    ASSERT_LT(recovered->prefix, data.size()) << name;
    ASSERT_GT(recovered->prefix, 0u) << name;

    // Restarted service == clean replay of exactly that prefix.
    auto service = ProvenanceService::Create(
        spec, stats, DurableServeOptions(dir.path(), &env));
    ASSERT_TRUE(service.ok()) << name << ": " << service.status().message();
    std::unique_ptr<Tracker> reference = (*factory)();
    for (const Interaction& interaction : recovered->log) {
      ASSERT_TRUE(reference->Process(interaction).ok());
    }
    for (VertexId v = 0; v < stats.num_vertices; ++v) {
      const QueryResult result = (*service)->Provenance(v);
      ASSERT_TRUE(result.status.ok());
      ExpectSameBuffer(reference->Provenance(v), result.buffer,
                       name + " crash vertex " + std::to_string(v));
    }

    // And it can keep ingesting from the recovery watermark.
    std::vector<Interaction> rest(
        data.begin() + static_cast<ptrdiff_t>(recovered->prefix), data.end());
    ASSERT_TRUE((*service)
                    ->Start(std::make_unique<VectorStream>(stats.num_vertices,
                                                           std::move(rest)))
                    .ok());
    ASSERT_TRUE((*service)->WaitIngest().ok()) << name;
    for (size_t i = recovered->prefix; i < data.size(); ++i) {
      ASSERT_TRUE(reference->Process(data[i]).ok());
    }
    for (VertexId v = 0; v < stats.num_vertices; ++v) {
      const QueryResult result = (*service)->Provenance(v);
      ASSERT_TRUE(result.status.ok());
      ExpectSameBuffer(reference->Provenance(v), result.buffer,
                       name + " resumed vertex " + std::to_string(v));
    }
  }
}

TEST(ServeDurable, DegradePolicyKeepsServingAndFlipsTheGauge) {
  ScratchDir dir("serve_degrade");
  st::FaultInjectingEnv env(st::Env::Posix());
  const Tin tin = GeneratedTin(30, 1200, 18);
  const DatasetStats stats = tin.Stats();
  const TrackerSpec spec = StreamingSpec("LIFO");

  ServeOptions options = DurableServeOptions(dir.path(), &env);
  options.durability.log.failure_policy = st::FailurePolicy::kDegrade;
  env.Arm({st::FaultMode::kFailWrite, 6, true});  // the disk stays broken

  auto service = ProvenanceService::Create(spec, stats, options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)
                  ->Start(std::make_unique<VectorStream>(stats.num_vertices,
                                                         tin.interactions()))
                  .ok());
  // The broken disk never surfaces: ingest completes, queries answer.
  ASSERT_TRUE((*service)->WaitIngest().ok());
  const QueryResult result = (*service)->Provenance(3);
  EXPECT_TRUE(result.status.ok());

#if defined(TINPROV_METRICS_ENABLED)
  // The gauge mirror only exists when metrics are compiled in ...
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetGauge("storage.degraded")->Value(),
      1.0);
#endif
  // ... but statusz reads DurableLog's atomic directly, so the degraded
  // flag must surface in every build flavor.
  const std::string statusz = (*service)->StatuszJson();
  EXPECT_NE(statusz.find("\"degraded\":true"), std::string::npos);
  env.Disarm();
}

TEST(ServeDurable, StatuszReportsDisabledWithoutADirectory) {
  const Tin tin = GeneratedTin(20, 300, 19);
  auto service = ProvenanceService::Create(StreamingSpec("FIFO"), tin.Stats(),
                                           ServeOptions{});
  ASSERT_TRUE(service.ok());
  const std::string statusz = (*service)->StatuszJson();
  EXPECT_NE(statusz.find("\"storage\":{\"enabled\":false"),
            std::string::npos);
}

TEST(ServeDurable, RejectsTwoHistorySources) {
  ScratchDir dir("serve_conflict");
  const Tin tin = GeneratedTin(20, 400, 20);
  const DatasetStats stats = tin.Stats();
  const TrackerSpec spec = StreamingSpec("FIFO");

  {
    auto service = ProvenanceService::Create(
        spec, stats, DurableServeOptions(dir.path(), nullptr));
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)
                    ->Start(std::make_unique<VectorStream>(
                        stats.num_vertices, tin.interactions()))
                    .ok());
    ASSERT_TRUE((*service)->WaitIngest().ok());
  }

  auto factory = TrackerRegistry::Global().Factory(spec, stats);
  ASSERT_TRUE(factory.ok());
  auto index = TimeTravelIndex::NewStreaming(stats.num_vertices, *factory, 64);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->Observe({0, 1, 0.5, 1.0}).ok());
  ASSERT_TRUE((*index)->Finalize().ok());

  auto conflicted = ProvenanceService::CreateWithHistory(
      spec, stats, std::shared_ptr<const TimeTravelIndex>(std::move(*index)),
      DurableServeOptions(dir.path(), nullptr));
  ASSERT_FALSE(conflicted.ok());
  EXPECT_EQ(conflicted.status().code(), StatusCode::kInvalidArgument);
}

#if !defined(TINPROV_NO_THREADS)
TEST(ServeDurable, OpsServerRegistersStorageHealthChecks) {
  ScratchDir dir("serve_health");
  const Tin tin = GeneratedTin(20, 300, 21);
  auto service = ProvenanceService::Create(
      StreamingSpec("FIFO"), tin.Stats(),
      DurableServeOptions(dir.path(), nullptr));
  ASSERT_TRUE(service.ok());
  auto port = (*service)->EnableOpsServer(0);
  ASSERT_TRUE(port.ok());

  const obs::HealthRegistry::Report report =
      obs::HealthRegistry::Global().RunAll();
  bool durability = false;
  bool corrupt = false;
  bool headroom = false;
  for (const auto& check : report.checks) {
    if (check.name == "storage.durability") {
      durability = true;
      EXPECT_TRUE(check.result.healthy);
    }
    if (check.name == "storage.segment_corrupt") corrupt = true;
    if (check.name == "storage.disk_headroom") {
      headroom = true;
      EXPECT_GT(check.result.value, 0.0);
    }
  }
  EXPECT_TRUE(durability);
  EXPECT_TRUE(corrupt);
  EXPECT_TRUE(headroom);
  (*service)->DisableOpsServer();
}
#endif  // !defined(TINPROV_NO_THREADS)

}  // namespace
}  // namespace tinprov
