// Streaming-layer semantics: the pull-based pipeline must be
// indistinguishable from materialized replay. ProcessStream and
// StreamIngestor are checked bit-exactly against ProcessAll for every
// factory name; GeneratorStream against the materializing generator for
// every Table-6 preset; SortingStream across its reorder-window edge
// cases (empty stream, window smaller than the disorder, the exact
// boundary); the streaming time-travel build against Build(); and the
// sharded engine's ReplayStream against materialized Replay().
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analytics/experiment.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "lazy/time_travel.h"
#include "parallel/sharded_replay.h"
#include "policies/proportional_sparse.h"
#include "policies/tracker.h"
#include "stream/ingest.h"
#include "stream/interaction_stream.h"

namespace tinprov {
namespace {

Tin GeneratedTin() {
  GeneratorConfig config;
  config.num_vertices = 60;
  config.num_interactions = 3000;
  config.src_skew = 1.1;
  config.dst_skew = 0.9;
  config.quantity_model = QuantityModel::kLogNormal;
  config.quantity_param1 = 1.0;
  config.quantity_param2 = 1.0;
  config.self_loop_fraction = 0.05;
  config.seed = 41;
  auto tin = Generate(config);
  EXPECT_TRUE(tin.ok());
  return std::move(tin).value();
}

// Mid-range scalable configuration; small enough that Budget shrinks
// and Windowed resets fire within the generated stream.
ScalableParams TestParams() {
  ScalableParams params;
  params.window = 500;
  params.num_tracked = 10;
  params.num_groups = 7;
  params.budget.capacity = 8;
  params.budget.keep_fraction = 0.5;
  return params;
}

// Bit-exact comparison: streaming promises the *identical* result, not
// an approximation, so no tolerance anywhere.
void ExpectSameBuffer(const Buffer& expected, const Buffer& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.total, actual.total) << context;
  ASSERT_EQ(expected.entries.size(), actual.entries.size()) << context;
  for (size_t i = 0; i < expected.entries.size(); ++i) {
    EXPECT_TRUE(expected.entries[i] == actual.entries[i])
        << context << " entry " << i << ": (" << expected.entries[i].origin
        << ", " << expected.entries[i].quantity << ") vs ("
        << actual.entries[i].origin << ", " << actual.entries[i].quantity
        << ")";
  }
}

void ExpectSameTracker(const Tracker& expected, const Tracker& actual,
                       const std::string& context) {
  EXPECT_EQ(expected.total_generated(), actual.total_generated()) << context;
  for (VertexId v = 0; v < expected.num_vertices(); ++v) {
    EXPECT_EQ(expected.BufferTotal(v), actual.BufferTotal(v))
        << context << " vertex " << v;
    ExpectSameBuffer(expected.Provenance(v), actual.Provenance(v),
                     context + " vertex " + std::to_string(v));
  }
}

bool NotAlnum(char c) { return !std::isalnum(static_cast<unsigned char>(c)); }

std::string SanitizeName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  name.erase(std::remove_if(name.begin(), name.end(), NotAlnum), name.end());
  return name;
}

// A sorted toy stream with distinct timestamps, for the SortingStream
// and ingestor edge cases.
std::vector<Interaction> SortedToy(size_t count) {
  std::vector<Interaction> log;
  for (size_t i = 0; i < count; ++i) {
    Interaction interaction;
    interaction.src = static_cast<VertexId>(i % 5);
    interaction.dst = static_cast<VertexId>((i + 2) % 5);
    interaction.t = static_cast<Timestamp>(i + 1);
    interaction.quantity = 1.0 + static_cast<double>(i % 3);
    log.push_back(interaction);
  }
  return log;
}

std::vector<Interaction> Drain(InteractionStream& stream) {
  std::vector<Interaction> out;
  Interaction interaction;
  while (stream.Next(&interaction)) out.push_back(interaction);
  return out;
}

// ---------------------------------------------------------------------
// (a) Streaming replay is bit-identical to materialized replay for
// every factory name — ProcessStream directly and through the
// micro-batched StreamIngestor.

class StreamingVsMaterializedTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamingVsMaterializedTest, BitIdenticalToProcessAll) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();

  std::unique_ptr<Tracker> eager = (*factory)();
  ASSERT_TRUE(eager->ProcessAll(tin).ok());

  std::unique_ptr<Tracker> streamed = (*factory)();
  MaterializedStream direct(tin);
  ASSERT_TRUE(streamed->ProcessStream(direct).ok());
  ExpectSameTracker(*eager, *streamed, GetParam() + "/ProcessStream");

  std::unique_ptr<Tracker> ingested = (*factory)();
  IngestOptions options;
  options.batch_size = 257;  // deliberately not a divisor of the length
  StreamIngestor ingestor(ingested.get(), options);
  MaterializedStream batched(tin);
  ASSERT_TRUE(ingestor.IngestAll(batched).ok());
  ExpectSameTracker(*eager, *ingested, GetParam() + "/StreamIngestor");

  const IngestStats& stats = ingestor.stats();
  EXPECT_EQ(stats.interactions, tin.num_interactions());
  EXPECT_EQ(stats.batches,
            (tin.num_interactions() + options.batch_size - 1) /
                options.batch_size);
  EXPECT_LE(stats.peak_batch, options.batch_size);
  EXPECT_EQ(stats.watermark, tin.interactions().back().t);
}

INSTANTIATE_TEST_SUITE_P(AllNames, StreamingVsMaterializedTest,
                         ::testing::ValuesIn(TrackerRegistry::Global().Names()),
                         SanitizeName);

// ---------------------------------------------------------------------
// (b) GeneratorStream emits exactly what the materializing generator
// puts into a Tin, preset by preset.

class GeneratorStreamPresetTest
    : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(GeneratorStreamPresetTest, MatchesMaterializedGenerator) {
  const double scale = 0.05;  // clamped to >= 200 interactions per preset
  const GeneratorConfig config = PresetConfig(GetParam(), scale);
  auto tin = MakeDataset(GetParam(), scale);
  ASSERT_TRUE(tin.ok());

  auto stream = GeneratorStream::Create(config);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(stream->Stats().num_vertices, config.num_vertices);
  EXPECT_EQ(stream->Stats().num_interactions, config.num_interactions);

  const std::vector<Interaction> emitted = Drain(*stream);
  const auto& log = tin->interactions();
  ASSERT_EQ(emitted.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(emitted[i].src, log[i].src) << "interaction " << i;
    EXPECT_EQ(emitted[i].dst, log[i].dst) << "interaction " << i;
    EXPECT_EQ(emitted[i].t, log[i].t) << "interaction " << i;
    EXPECT_EQ(emitted[i].quantity, log[i].quantity) << "interaction " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, GeneratorStreamPresetTest,
    ::testing::ValuesIn(AllDatasets()),
    [](const ::testing::TestParamInfo<DatasetKind>& info) {
      return std::string(DatasetName(info.param));
    });

TEST(GeneratorStreamTest, RejectsInvalidConfig) {
  GeneratorConfig config;  // num_vertices == 0
  auto stream = GeneratorStream::Create(config);
  EXPECT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneratorStreamTest, DrivesTrackerEndToEnd) {
  const double scale = 0.05;
  const DatasetKind kind = DatasetKind::kTaxis;
  auto tin = MakeDataset(kind, scale);
  ASSERT_TRUE(tin.ok());
  ProportionalSparseTracker eager(tin->num_vertices());
  ASSERT_TRUE(eager.ProcessAll(*tin).ok());

  auto stream = GeneratorStream::Create(PresetConfig(kind, scale));
  ASSERT_TRUE(stream.ok());
  ProportionalSparseTracker streamed(tin->num_vertices());
  ASSERT_TRUE(streamed.ProcessStream(*stream).ok());
  ExpectSameTracker(eager, streamed, "GeneratorStream/Prop-sparse");
}

// ---------------------------------------------------------------------
// (c) SortingStream edge cases.

TEST(SortingStreamTest, EmptyStream) {
  for (const size_t window : {size_t{0}, size_t{3}, size_t{1000}}) {
    SortingStream stream(std::make_unique<VectorStream>(4, SortedToy(0)),
                         window);
    Interaction interaction;
    EXPECT_FALSE(stream.Next(&interaction)) << "window " << window;
    EXPECT_FALSE(stream.Next(&interaction)) << "window " << window;
  }
}

TEST(SortingStreamTest, WindowZeroPassesThrough) {
  std::vector<Interaction> shuffled = SortedToy(10);
  std::swap(shuffled[2], shuffled[7]);
  SortingStream stream(std::make_unique<VectorStream>(5, shuffled), 0);
  const std::vector<Interaction> out = Drain(stream);
  ASSERT_EQ(out.size(), shuffled.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].t, shuffled[i].t) << "position " << i;
  }
}

TEST(SortingStreamTest, ExactWindowBoundary) {
  // The earliest element arrives exactly `displacement` positions late:
  // a window of that size restores the order, one less cannot.
  const size_t displacement = 5;
  std::vector<Interaction> sorted = SortedToy(20);
  std::vector<Interaction> late = sorted;
  std::rotate(late.begin(), late.begin() + 1,
              late.begin() + displacement + 1);  // sorted[0] now at index 5

  SortingStream enough(std::make_unique<VectorStream>(5, late), displacement);
  const std::vector<Interaction> repaired = Drain(enough);
  ASSERT_EQ(repaired.size(), sorted.size());
  for (size_t i = 0; i < repaired.size(); ++i) {
    EXPECT_EQ(repaired[i].t, sorted[i].t) << "position " << i;
  }

  SortingStream short_by_one(std::make_unique<VectorStream>(5, late),
                             displacement - 1);
  const std::vector<Interaction> degraded = Drain(short_by_one);
  ASSERT_EQ(degraded.size(), sorted.size());
  // Best-effort: the late element misses its slot (the first emit
  // happens before it is pulled), but nothing is lost.
  EXPECT_NE(degraded[0].t, sorted[0].t);
  EXPECT_EQ(degraded[1].t, sorted[0].t);
}

TEST(SortingStreamTest, WindowCoveringWholeStreamFullySorts) {
  std::vector<Interaction> reversed = SortedToy(12);
  std::reverse(reversed.begin(), reversed.end());
  SortingStream stream(std::make_unique<VectorStream>(5, reversed), 100);
  const std::vector<Interaction> out = Drain(stream);
  ASSERT_EQ(out.size(), reversed.size());
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].t, out[i].t) << "position " << i;
  }
}

TEST(SortingStreamTest, EqualTimestampsKeepArrivalOrder) {
  std::vector<Interaction> ties = SortedToy(8);
  for (auto& interaction : ties) interaction.t = 1.0;
  SortingStream stream(std::make_unique<VectorStream>(5, ties), 3);
  const std::vector<Interaction> out = Drain(stream);
  ASSERT_EQ(out.size(), ties.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].quantity, ties[i].quantity) << "position " << i;
  }
}

TEST(SortingStreamTest, StatsPassThrough) {
  SortingStream stream(std::make_unique<VectorStream>(7, SortedToy(9)), 4);
  EXPECT_EQ(stream.Stats().num_vertices, 7u);
  EXPECT_EQ(stream.Stats().num_interactions, 9u);
}

// ---------------------------------------------------------------------
// (d) StreamIngestor contract: order enforcement and the stats-free
// ReserveHint pre-sizing path.

TEST(StreamIngestorTest, RejectsOutOfOrderInput) {
  std::vector<Interaction> disordered = SortedToy(10);
  std::swap(disordered[3], disordered[8]);
  ProportionalSparseTracker tracker(5);
  StreamIngestor ingestor(&tracker);
  VectorStream stream(5, disordered);
  const Status status = ingestor.IngestAll(stream);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SortingStream"), std::string::npos);
  // The diagnostic pinpoints the offense: which batch, and both the
  // offending timestamp and the watermark it fell below. After the
  // swap the stream runs 1,2,3,9,5,... — interaction t=5 violates
  // watermark 9 inside the first batch.
  EXPECT_NE(status.message().find("batch 0"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find(std::to_string(Timestamp{5})),
            std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find(std::to_string(Timestamp{9})),
            std::string::npos)
      << status.message();
}

TEST(StreamIngestorTest, SortingStreamRepairsDisorderedIngest) {
  std::vector<Interaction> disordered = SortedToy(40);
  std::swap(disordered[3], disordered[8]);
  std::swap(disordered[20], disordered[24]);

  // The Tin constructor sorts, so it is the materialized reference for
  // what repaired streaming ingestion must reproduce.
  Tin tin(5, disordered);
  ProportionalSparseTracker eager(5);
  ASSERT_TRUE(eager.ProcessAll(tin).ok());

  ProportionalSparseTracker streamed(5);
  StreamIngestor ingestor(&streamed);
  SortingStream repaired(std::make_unique<VectorStream>(5, disordered), 8);
  ASSERT_TRUE(ingestor.IngestAll(repaired).ok());
  ExpectSameTracker(eager, streamed, "SortingStream+ingest");
}

// The ingestor must pre-size from the stream's advertised shape even
// when the stream then yields nothing — that is the Tin-free
// ReserveHint path doing its job before the first batch.
class AdvertisingEmptyStream : public InteractionStream {
 public:
  bool Next(Interaction*) override { return false; }
  DatasetStats Stats() const override { return {100, 5000}; }
};

TEST(StreamIngestorTest, ReservesFromAdvertisedStats) {
  ProportionalSparseTracker tracker(100);
  EXPECT_EQ(tracker.PoolBytesReserved(), 0u);
  StreamIngestor ingestor(&tracker);
  AdvertisingEmptyStream stream;
  ASSERT_TRUE(ingestor.IngestAll(stream).ok());
  EXPECT_GT(tracker.PoolBytesReserved(), 0u);
  EXPECT_EQ(ingestor.stats().interactions, 0u);
  EXPECT_EQ(ingestor.stats().batches, 0u);
}

TEST(ReserveHintTest, TinFormRoutesThroughStats) {
  const Tin tin = GeneratedTin();
  ProportionalSparseTracker via_tin(tin.num_vertices());
  ProportionalSparseTracker via_stats(tin.num_vertices());
  via_tin.ReserveHint(tin);
  via_stats.ReserveHint(tin.Stats());
  EXPECT_GT(via_tin.PoolBytesReserved(), 0u);
  EXPECT_EQ(via_tin.PoolBytesReserved(), via_stats.PoolBytesReserved());

  // Unknown stream length reserves nothing; the arena grows on demand.
  ProportionalSparseTracker unknown(tin.num_vertices());
  unknown.ReserveHint(DatasetStats{tin.num_vertices(), 0});
  EXPECT_EQ(unknown.PoolBytesReserved(), 0u);
}

// ---------------------------------------------------------------------
// (e) Streaming time-travel build == materialized Build().

class StreamingTimeTravelTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(StreamingTimeTravelTest, MatchesMaterializedBuild) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto factory = TrackerRegistry::Global().Factory({GetParam(), params}, tin);
  ASSERT_TRUE(factory.ok());
  const size_t interval = 700;  // not a divisor of the stream length

  auto built = TimeTravelIndex::Build(tin, *factory, interval);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  auto streaming =
      TimeTravelIndex::NewStreaming(tin.num_vertices(), *factory, interval);
  ASSERT_TRUE(streaming.ok());
  EXPECT_FALSE((*streaming)->finalized());
  MaterializedStream arrivals(tin);
  ASSERT_TRUE((*streaming)->ObserveStream(arrivals).ok());
  ASSERT_TRUE((*streaming)->Finalize().ok());
  EXPECT_TRUE((*streaming)->finalized());

  EXPECT_EQ((*built)->num_snapshots(), (*streaming)->num_snapshots());
  EXPECT_EQ((*streaming)->watermark(), tin.interactions().back().t);

  const Timestamp end = tin.interactions().back().t;
  const std::vector<Timestamp> probes = {
      -1.0, 0.0, end * 0.25, end * 0.5, end * 0.9, end, end + 10.0};
  for (const Timestamp t : probes) {
    for (const VertexId v : {VertexId{0}, VertexId{17}, VertexId{59}}) {
      auto expected = (*built)->Provenance(v, t);
      auto actual = (*streaming)->Provenance(v, t);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok());
      ExpectSameBuffer(*expected, *actual,
                       GetParam() + " t=" + std::to_string(t) + " v=" +
                           std::to_string(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Names, StreamingTimeTravelTest,
                         ::testing::Values("FIFO", "Prop-sparse", "Windowed"),
                         SanitizeName);

TEST(StreamingTimeTravelTest, LifecycleGuards) {
  const Tin tin = GeneratedTin();
  auto index = TimeTravelIndex::NewStreaming(
      tin.num_vertices(),
      [n = tin.num_vertices()] { return CreateTracker(PolicyKind::kFifo, n); },
      100);
  ASSERT_TRUE(index.ok());

  // Querying before Finalize is a precondition failure.
  EXPECT_EQ((*index)->Provenance(0, 1.0).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE((*index)->Observe(tin.interactions()[0]).ok());
  // Out-of-order arrivals are rejected, not silently replayed.
  Interaction early = tin.interactions()[0];
  early.t -= 1.0;
  EXPECT_EQ((*index)->Observe(early).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE((*index)->Finalize().ok());
  EXPECT_EQ((*index)->Observe(tin.interactions()[1]).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE((*index)->Provenance(0, 1.0).ok());
}

TEST(StreamingTimeTravelTest, BuildsFromGeneratorStream) {
  const GeneratorConfig config = PresetConfig(DatasetKind::kTaxis, 0.05);
  auto tin = Generate(config);
  ASSERT_TRUE(tin.ok());
  const TrackerFactory factory = [n = tin->num_vertices()] {
    return CreateTracker(PolicyKind::kLifo, n);
  };

  auto built = TimeTravelIndex::Build(*tin, factory, 150);
  ASSERT_TRUE(built.ok());

  auto stream = GeneratorStream::Create(config);
  ASSERT_TRUE(stream.ok());
  auto streaming =
      TimeTravelIndex::NewStreaming(config.num_vertices, factory, 150);
  ASSERT_TRUE(streaming.ok());
  ASSERT_TRUE((*streaming)->ObserveStream(*stream).ok());
  ASSERT_TRUE((*streaming)->Finalize().ok());

  const Timestamp end = tin->interactions().back().t;
  for (const Timestamp t : {end * 0.3, end * 0.8, end}) {
    auto expected = (*built)->Provenance(3, t);
    auto actual = (*streaming)->Provenance(3, t);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    ExpectSameBuffer(*expected, *actual, "generator-built index");
  }
}

// ---------------------------------------------------------------------
// (f) Sharded streaming replay == sharded materialized replay.

void ExpectSameResult(const ShardedReplayResult& expected,
                      const ShardedReplayResult& actual,
                      const std::string& context) {
  EXPECT_EQ(expected.total_generated, actual.total_generated) << context;
  EXPECT_EQ(expected.num_entries, actual.num_entries) << context;
  ASSERT_EQ(expected.num_vertices, actual.num_vertices) << context;
  EXPECT_EQ(expected.interactions_replayed, actual.interactions_replayed)
      << context;
  for (VertexId v = 0; v < expected.num_vertices; ++v) {
    EXPECT_EQ(expected.totals[v], actual.totals[v])
        << context << " vertex " << v;
    ASSERT_EQ(expected.entries[v].size(), actual.entries[v].size())
        << context << " vertex " << v;
    for (size_t i = 0; i < expected.entries[v].size(); ++i) {
      EXPECT_TRUE(expected.entries[v][i] == actual.entries[v][i])
          << context << " vertex " << v << " entry " << i;
    }
  }
}

class ShardedStreamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedStreamTest, StreamingMatchesMaterializedSharded) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  // One spec for both engines: the streaming form must reproduce the
  // materialized engine bit-for-bit when fed the identical sequence.
  auto spec = TrackerRegistry::Global().Sharded(
      {GetParam(), params, TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  ParallelParams parallel;
  parallel.num_threads = 3;
  parallel.num_shards = 5;
  parallel.stream_chunk = 97;  // forces many partial chunks
  parallel.stream_queue_chunks = 2;

  ShardedReplayEngine materialized(tin, *spec, parallel);
  auto expected = materialized.Replay();
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ShardedReplayEngine streaming(tin.Stats(), *spec, parallel);
  MaterializedStream stream(tin);
  auto actual = streaming.ReplayStream(stream);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_EQ(expected->used_parallel_path, actual->used_parallel_path);
  ExpectSameResult(*expected, *actual, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Decomposable, ShardedStreamTest,
                         ::testing::Values("Prop-sparse", "Windowed",
                                           "Selective", "Grouped"),
                         SanitizeName);

TEST(ShardedStreamTest, HonorsLogFreeStrategies) {
  // kHash and kContiguous need no log, so the Tin-free engine must
  // apply them (only kActivity falls back to round-robin): shard label
  // loads have to match the materialized engine's exactly.
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", params, TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok());
  for (const ShardStrategy strategy :
       {ShardStrategy::kHash, ShardStrategy::kContiguous}) {
    ParallelParams parallel;
    parallel.num_threads = 2;
    parallel.num_shards = 4;
    parallel.strategy = strategy;

    ShardedReplayEngine materialized(tin, *spec, parallel);
    auto expected = materialized.Replay();
    ASSERT_TRUE(expected.ok());

    ShardedReplayEngine streaming(tin.Stats(), *spec, parallel);
    MaterializedStream stream(tin);
    auto actual = streaming.ReplayStream(stream);
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(expected->shards.size(), actual->shards.size());
    for (size_t s = 0; s < expected->shards.size(); ++s) {
      EXPECT_EQ(expected->shards[s].labels, actual->shards[s].labels)
          << "strategy " << static_cast<int>(strategy) << " shard " << s;
      EXPECT_EQ(expected->shards[s].entries, actual->shards[s].entries)
          << "strategy " << static_cast<int>(strategy) << " shard " << s;
    }
    ExpectSameResult(*expected, *actual,
                     "strategy " + std::to_string(static_cast<int>(strategy)));
  }
}

TEST(ShardedStreamTest, SequentialFallbackMatchesEager) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto spec = TrackerRegistry::Global().Sharded(
      {"FIFO", params, TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok());
  ASSERT_FALSE(spec->decomposable);

  ShardedReplayEngine engine(tin.Stats(), *spec, ParallelParams{});
  MaterializedStream stream(tin);
  auto result = engine.ReplayStream(stream);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->used_parallel_path);

  auto eager = CreateTracker(PolicyKind::kFifo, tin.num_vertices());
  ASSERT_TRUE(eager->ProcessAll(tin).ok());
  for (VertexId v = 0; v < tin.num_vertices(); ++v) {
    ExpectSameBuffer(eager->Provenance(v), result->Provenance(v),
                     "FIFO fallback vertex " + std::to_string(v));
  }
}

TEST(ShardedStreamTest, SingleWorkerInlinePathMatches) {
  const Tin tin = GeneratedTin();
  const ScalableParams params = TestParams();
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", params, TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok());

  ParallelParams parallel;
  parallel.num_threads = 1;  // forces the no-queue inline broadcast
  parallel.num_shards = 4;
  parallel.stream_chunk = 64;

  ShardedReplayEngine materialized(tin, *spec, parallel);
  auto expected = materialized.Replay();
  ASSERT_TRUE(expected.ok());

  ShardedReplayEngine streaming(tin.Stats(), *spec, parallel);
  MaterializedStream stream(tin);
  auto actual = streaming.ReplayStream(stream);
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(*expected, *actual, "inline path");
}

TEST(ShardedStreamTest, StreamingEngineRejectsMaterializedEntryPoints) {
  const Tin tin = GeneratedTin();
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming}, tin.Stats());
  ASSERT_TRUE(spec.ok());
  ShardedReplayEngine engine(tin.Stats(), *spec, ParallelParams{});
  EXPECT_EQ(engine.Replay().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.ReplayPrefix(10).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.QueryPrefix(0, 10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedStreamTest, RejectsOutOfOrderStream) {
  std::vector<Interaction> disordered = SortedToy(50);
  std::swap(disordered[10], disordered[30]);
  auto spec = TrackerRegistry::Global().Sharded(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming},
      DatasetStats{5, 50});
  ASSERT_TRUE(spec.ok());
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    ParallelParams parallel;
    parallel.num_threads = threads;
    parallel.num_shards = 3;
    parallel.stream_chunk = 8;
    ShardedReplayEngine engine(DatasetStats{5, 50}, *spec, parallel);
    VectorStream stream(5, disordered);
    const auto result = engine.ReplayStream(stream);
    ASSERT_FALSE(result.ok()) << "threads " << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------
// (g) Streaming analytics entry points.

TEST(StreamAnalyticsTest, StreamFactoryRejectsUnknownNames) {
  auto factory = TrackerRegistry::Global().Factory(
      {"No-such", TestParams(), TrackerMode::kStreaming},
      DatasetStats{10, 100});
  ASSERT_FALSE(factory.ok());
  EXPECT_EQ(factory.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(factory.status().message().find("Prop-sparse"),
            std::string::npos);
}

TEST(StreamAnalyticsTest, MeasureTrackerStreamingPath) {
  const GeneratorConfig config = PresetConfig(DatasetKind::kFlights, 0.05);
  auto stream = GeneratorStream::Create(config);
  ASSERT_TRUE(stream.ok());
  IngestStats stats;
  MeasureOptions options;
  options.stream = &*stream;
  options.ingest_stats = &stats;
  auto measurement = MeasureTracker(
      {"Prop-sparse", TestParams(), TrackerMode::kStreaming}, options);
  ASSERT_TRUE(measurement.ok()) << measurement.status().ToString();
  EXPECT_TRUE(measurement->feasible);
  EXPECT_EQ(stats.interactions, config.num_interactions);
  EXPECT_GT(measurement->peak_memory, 0u);
}

TEST(StreamAnalyticsTest, DenseFeasibilityGateAppliesToStreams) {
  const GeneratorConfig config = PresetConfig(DatasetKind::kBitcoin, 0.05);
  auto stream = GeneratorStream::Create(config);
  ASSERT_TRUE(stream.ok());
  MeasureOptions options;
  options.stream = &*stream;
  options.dense_memory_limit = 1024;
  auto measurement = MeasureTracker(
      {"Prop-dense", TestParams(), TrackerMode::kStreaming}, options);
  ASSERT_TRUE(measurement.ok());
  EXPECT_FALSE(measurement->feasible);
}

}  // namespace
}  // namespace tinprov
