#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/arena.h"
#include "util/memory.h"
#include "util/pool.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace tinprov {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status bad = Status::InvalidArgument("negative quantity");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: negative quantity");
}

TEST(StatusOrTest, ValueAndStatus) {
  StatusOr<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before_restart = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before_restart + 1.0);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.NextBounded(10);
    ASSERT_LT(x, 10u);
    ++counts[x];
  }
  for (const int count : counts) EXPECT_GT(count, 0);
}

TEST(ZipfTest, RanksInRangeAndSkewed) {
  Rng rng(3);
  ZipfDistribution zipf(1000, 1.2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t rank = zipf(rng);
    ASSERT_LT(rank, 1000u);
    ++counts[rank];
  }
  // Rank 0 must dominate the tail by a wide margin.
  EXPECT_GT(counts[0], 10 * counts[500] + 10);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(ZipfTest, SupportsSkewOne) {
  Rng rng(4);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(zipf(rng), 100u);
  }
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(1.42), "1.42s");
  EXPECT_EQ(FormatSeconds(0.0371), "37.1ms");
  EXPECT_EQ(FormatSeconds(8.2e-3), "8.2ms");
  EXPECT_EQ(FormatSeconds(8.2e-5), "82us");
  EXPECT_EQ(FormatSeconds(5e-8), "50ns");
  EXPECT_EQ(FormatSeconds(-1.0), "-");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(size_t{1536}), "1.5KB");
  EXPECT_EQ(FormatBytes(size_t{5} << 20), "5.0MB");
  EXPECT_EQ(FormatBytes((size_t{3} << 30) / 2), "1.5GB");
}

TEST(FormatTest, Compact) {
  EXPECT_EQ(FormatCompact(19234.5, 1), "19.2K");
  EXPECT_EQ(FormatCompact(0.7, 2), "0.70");
  EXPECT_EQ(FormatCompact(34.4, 2), "34.40");
  EXPECT_EQ(FormatCompact(2.5e6, 1), "2.5M");
  EXPECT_EQ(FormatCompact(3.1e9, 2), "3.10B");
}

TEST(MemoryProbeTest, RssIsPlausibleOnLinux) {
#if defined(__linux__)
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
#endif
}

TEST(SimdTest, AddMatchesScalar) {
  std::vector<double> dst(1001, 1.0);
  std::vector<double> src(1001);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i);
  simd::Add(dst.data(), src.data(), src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    ASSERT_DOUBLE_EQ(dst[i], 1.0 + static_cast<double>(i));
  }
}

TEST(SimdTest, ScaleAndSum) {
  std::vector<double> values(517, 2.0);
  simd::Scale(values.data(), 0.5, values.size());
  EXPECT_NEAR(simd::Sum(values.data(), values.size()),
              static_cast<double>(values.size()), 1e-9);
}

TEST(SimdTest, TransferFractionConservesMass) {
  std::vector<double> src(333);
  std::vector<double> dst(333);
  Rng rng(5);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = rng.NextDouble();
    dst[i] = rng.NextDouble();
  }
  const double before =
      simd::Sum(src.data(), src.size()) + simd::Sum(dst.data(), dst.size());
  simd::TransferFraction(dst.data(), src.data(), 0.3, src.size());
  const double after =
      simd::Sum(src.data(), src.size()) + simd::Sum(dst.data(), dst.size());
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(SimdTest, ZeroLengthIsSafe) {
  simd::Add(nullptr, nullptr, 0);
  simd::Scale(nullptr, 2.0, 0);
  simd::TransferFraction(nullptr, nullptr, 0.5, 0);
  EXPECT_EQ(simd::Sum(nullptr, 0), 0.0);
}

TEST(ArenaTest, AllocationsAreAlignedAndCounted) {
  Arena arena;
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  void* a = arena.Allocate(24);
  void* b = arena.Allocate(1);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % Arena::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % Arena::kAlignment, 0u);
  EXPECT_GE(arena.bytes_used(), 32u + 16u);  // both rounded up
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(ArenaTest, ReserveAvoidsFurtherChunks) {
  Arena arena;
  arena.Reserve(1 << 20);
  const size_t reserved = arena.bytes_reserved();
  for (int i = 0; i < 1000; ++i) arena.Allocate(1024);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(NodePoolTest, RecyclesFreedBlocks) {
  NodePool pool;
  void* block = pool.Allocate(100);  // class-rounded to 128
  pool.Deallocate(block, 100);
  // Same class -> the freed block comes straight back.
  EXPECT_EQ(pool.Allocate(128), block);
  // Different class -> fresh storage.
  EXPECT_NE(pool.Allocate(256), block);
}

struct TestPair {
  uint32_t origin = 0;
  double quantity = 0.0;
};

TEST(PooledVecTest, VectorBasicsOnHeapAndPool) {
  NodePool pool;
  PooledVec<TestPair> pooled(&pool);
  PooledVec<TestPair> heap;  // null pool -> global heap
  for (uint32_t i = 0; i < 100; ++i) {
    pooled.push_back({i, i * 2.0});
    heap.push_back({i, i * 2.0});
  }
  ASSERT_EQ(pooled.size(), 100u);
  ASSERT_EQ(heap.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pooled[i].origin, heap[i].origin);
    EXPECT_EQ(pooled[i].quantity, heap[i].quantity);
  }
  EXPECT_GT(pool.bytes_reserved(), 0u);

  pooled.clear();
  EXPECT_TRUE(pooled.empty());
  EXPECT_GE(pooled.capacity(), 100u);  // clear keeps capacity
}

TEST(PooledVecTest, InsertKeepsOrderAndResizeInitializes) {
  PooledVec<TestPair> vec = {{1, 1.0}, {5, 5.0}};
  vec.insert(vec.begin() + 1, {3, 3.0});
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_EQ(vec[0].origin, 1u);
  EXPECT_EQ(vec[1].origin, 3u);
  EXPECT_EQ(vec[2].origin, 5u);

  vec.resize(5);  // growth value-initializes
  EXPECT_EQ(vec[4].origin, 0u);
  EXPECT_EQ(vec[4].quantity, 0.0);
  vec.resize(2);  // shrink keeps the prefix
  ASSERT_EQ(vec.size(), 2u);
  EXPECT_EQ(vec[1].origin, 3u);
}

TEST(PooledVecTest, SwapCarriesThePoolWithTheStorage) {
  NodePool pool;
  PooledVec<TestPair> pooled(&pool);
  pooled.push_back({7, 7.0});
  PooledVec<TestPair> heap = {{9, 9.0}};
  pooled.swap(heap);
  EXPECT_EQ(pooled[0].origin, 9u);
  EXPECT_EQ(heap[0].origin, 7u);
  // Each block must still return to the allocator it came from after
  // the swap — ASan (CI's sanitize legs) would catch a mismatch when
  // these vectors destruct.
}

TEST(PooledVecTest, CopyAndMoveSemantics) {
  NodePool pool;
  PooledVec<TestPair> original(&pool);
  for (uint32_t i = 0; i < 10; ++i) original.push_back({i, 1.0});
  PooledVec<TestPair> copy = original;
  ASSERT_EQ(copy.size(), 10u);
  copy.push_back({99, 9.9});
  EXPECT_EQ(original.size(), 10u);  // deep copy

  PooledVec<TestPair> moved = std::move(copy);
  EXPECT_EQ(moved.size(), 11u);
  EXPECT_EQ(moved[10].origin, 99u);
}

TEST(GallopMergeTest, MatchesSimpleMergeOnRandomLists) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    // Random sorted lists with duplicates across (but not within) lists.
    auto make = [&rng](size_t len) {
      PooledVec<TestPair> v;
      uint32_t origin = 0;
      for (size_t i = 0; i < len; ++i) {
        origin += 1 + static_cast<uint32_t>(rng.NextBounded(6));
        v.push_back({origin, rng.NextDouble() + 0.1});
      }
      return v;
    };
    const PooledVec<TestPair> a = make(rng.NextBounded(64));
    const PooledVec<TestPair> b = make(rng.NextBounded(64));
    const double factor = 0.25;

    // Reference: naive two-pointer merge.
    std::vector<TestPair> expected;
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() || j < b.size()) {
      if (j == b.size() || (i < a.size() && a[i].origin < b[j].origin)) {
        expected.push_back(a[i++]);
      } else if (i == a.size() || b[j].origin < a[i].origin) {
        expected.push_back({b[j].origin, b[j].quantity * factor});
        ++j;
      } else {
        expected.push_back(
            {a[i].origin, a[i].quantity + b[j].quantity * factor});
        ++i;
        ++j;
      }
    }

    PooledVec<TestPair> out;
    out.ResizeUninitialized(a.size() + b.size());
    const size_t merged = simd::GallopMergeScaled(
        out.data(), a.data(), a.size(), b.data(), b.size(), factor);
    out.ResizeUninitialized(merged);
    ASSERT_EQ(out.size(), expected.size()) << "round " << round;
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(out[k].origin, expected[k].origin) << "round " << round;
      EXPECT_EQ(out[k].quantity, expected[k].quantity) << "round " << round;
    }
  }
}

TEST(GallopMergeTest, ScalePairsKernelsPreserveOriginBits) {
  PooledVec<TestPair> pairs;
  for (uint32_t i = 0; i < 37; ++i) {  // odd length exercises the tail
    pairs.push_back({0xDEADBEEFu - i, 1.5});
  }
  PooledVec<TestPair> scaled;
  scaled.ResizeUninitialized(pairs.size());
  simd::ScaleCopyPairs(scaled.data(), pairs.data(), 0.5, pairs.size());
  simd::ScalePairsInPlace(pairs.data(), 0.5, pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(scaled[i].origin, 0xDEADBEEFu - static_cast<uint32_t>(i));
    EXPECT_EQ(scaled[i].quantity, 0.75);
    EXPECT_EQ(pairs[i].origin, scaled[i].origin);
    EXPECT_EQ(pairs[i].quantity, 0.75);
  }
}

}  // namespace
}  // namespace tinprov
