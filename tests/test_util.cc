#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/memory.h"
#include "util/random.h"
#include "util/simd.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace tinprov {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status bad = Status::InvalidArgument("negative quantity");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: negative quantity");
}

TEST(StatusOrTest, ValueAndStatus) {
  StatusOr<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  StatusOr<int> bad(Status::NotFound("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before_restart = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), before_restart + 1.0);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t x = rng.NextBounded(10);
    ASSERT_LT(x, 10u);
    ++counts[x];
  }
  for (const int count : counts) EXPECT_GT(count, 0);
}

TEST(ZipfTest, RanksInRangeAndSkewed) {
  Rng rng(3);
  ZipfDistribution zipf(1000, 1.2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t rank = zipf(rng);
    ASSERT_LT(rank, 1000u);
    ++counts[rank];
  }
  // Rank 0 must dominate the tail by a wide margin.
  EXPECT_GT(counts[0], 10 * counts[500] + 10);
  EXPECT_GT(counts[0], counts[1]);
}

TEST(ZipfTest, SupportsSkewOne) {
  Rng rng(4);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(zipf(rng), 100u);
  }
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(FormatSeconds(1.42), "1.42s");
  EXPECT_EQ(FormatSeconds(0.0371), "37.1ms");
  EXPECT_EQ(FormatSeconds(8.2e-3), "8.2ms");
  EXPECT_EQ(FormatSeconds(8.2e-5), "82us");
  EXPECT_EQ(FormatSeconds(5e-8), "50ns");
  EXPECT_EQ(FormatSeconds(-1.0), "-");
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(size_t{1536}), "1.5KB");
  EXPECT_EQ(FormatBytes(size_t{5} << 20), "5.0MB");
  EXPECT_EQ(FormatBytes((size_t{3} << 30) / 2), "1.5GB");
}

TEST(FormatTest, Compact) {
  EXPECT_EQ(FormatCompact(19234.5, 1), "19.2K");
  EXPECT_EQ(FormatCompact(0.7, 2), "0.70");
  EXPECT_EQ(FormatCompact(34.4, 2), "34.40");
  EXPECT_EQ(FormatCompact(2.5e6, 1), "2.5M");
  EXPECT_EQ(FormatCompact(3.1e9, 2), "3.10B");
}

TEST(MemoryProbeTest, RssIsPlausibleOnLinux) {
#if defined(__linux__)
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
#endif
}

TEST(SimdTest, AddMatchesScalar) {
  std::vector<double> dst(1001, 1.0);
  std::vector<double> src(1001);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i);
  simd::Add(dst.data(), src.data(), src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    ASSERT_DOUBLE_EQ(dst[i], 1.0 + static_cast<double>(i));
  }
}

TEST(SimdTest, ScaleAndSum) {
  std::vector<double> values(517, 2.0);
  simd::Scale(values.data(), 0.5, values.size());
  EXPECT_NEAR(simd::Sum(values.data(), values.size()),
              static_cast<double>(values.size()), 1e-9);
}

TEST(SimdTest, TransferFractionConservesMass) {
  std::vector<double> src(333);
  std::vector<double> dst(333);
  Rng rng(5);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = rng.NextDouble();
    dst[i] = rng.NextDouble();
  }
  const double before =
      simd::Sum(src.data(), src.size()) + simd::Sum(dst.data(), dst.size());
  simd::TransferFraction(dst.data(), src.data(), 0.3, src.size());
  const double after =
      simd::Sum(src.data(), src.size()) + simd::Sum(dst.data(), dst.size());
  EXPECT_NEAR(before, after, 1e-9);
}

TEST(SimdTest, ZeroLengthIsSafe) {
  simd::Add(nullptr, nullptr, 0);
  simd::Scale(nullptr, 2.0, 0);
  simd::TransferFraction(nullptr, nullptr, 0.5, 0);
  EXPECT_EQ(simd::Sum(nullptr, 0), 0.0);
}

}  // namespace
}  // namespace tinprov
